//! The **pre-refactor streaming engine**, frozen verbatim (unit tests
//! stripped) as a differential and performance baseline: the cursor-core
//! refactor of `xq_stream` is locked byte- and counter-identical to this
//! code by `crates/stream/tests/cursor_diff.rs`, and harness table T22
//! times the refactored engine against it. Recovered from git history —
//! do not edit; if the baseline needs to change, the refactor broke
//! compatibility.
//!
//! ---
//!
//! The iterator-based streaming evaluator of Theorem 4.5 — the EXPSPACE
//! upper bound for `XQ[=deep, child, descendant]`.
//!
//! The materializing evaluator can build intermediate trees of doubly
//! exponential size (Prop 4.2 + Lemma 3.3). This engine follows the
//! paper's alternative: a *list iterator design pattern* with
//! `getNext`/`atEnd` (plus the derived `count`/`get`), where
//!
//! * results are streams of opening/closing-tag [`Token`]s, never trees;
//! * a `for`-variable binds to a **lazy handle** — "item `m` of
//!   `[[α]](~e)`" — not to a materialized tree;
//! * referencing a variable *re-streams* its defining expression and
//!   skips to item `m` (recomputation trades time for space);
//! * axis steps and deep equality work directly on token streams with
//!   depth counters.
//!
//! Live state is therefore a bounded number of cursors and counters per
//! query variable: [`StreamStats::peak_live_cursors`] measures it, and the
//! E4 experiment contrasts it with the materializing evaluator's allocated
//! nodes on the Prop 4.2 blowup family.
//!
//! # The buffered fast path
//!
//! Pure recomputation is the right *space* story but a terrible *time*
//! story on small intermediates: re-streaming a `for`-source once per
//! `item_exists` probe and once per variable reference makes the engine
//! ~160× slower than materializing on the tiny doubling-family outputs
//! (ROADMAP "Perf headroom"). [`stream_query_buffered`] adds a fast path:
//! when a `for`-source (or a `some`/`every` source) streams to completion
//! within a per-source token cap, its items are materialized **once** into
//! token buffers and the loop variable binds to plain slices — skipping
//! the per-token `Item` cursor bookkeeping and all re-streaming for that
//! source. Sources that exceed the cap fall back to the lazy Theorem 4.5
//! discipline. Every *live* loop/quantifier scope holds at most one
//! buffer, so worst-case space is `O(live cursors × buffer cap)` — the
//! cap bounds the degradation per scope, not globally.
//! [`StreamStats::buffered_sources`] counts how often the fast path
//! engaged.

use cv_xtree::{ArenaDoc, Axis, IToken, Label, NodeId, NodeTest, Token, Tree};
use std::cell::Cell;
use std::rc::Rc;
use xq_core::ast::{Cond, EqMode, Query, Var};
use xq_core::par::chunks;
use xq_core::plan::{ParPlan, ShardPlan};

/// Streaming failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Unbound variable.
    UnboundVariable(String),
    /// `=mon` is not an XQuery equality.
    BadEqualityMode,
    /// The step budget was exhausted (streaming recomputes aggressively;
    /// time can be exponential in the query).
    Budget,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            StreamError::BadEqualityMode => f.write_str("=mon is not an XQuery equality"),
            StreamError::Budget => f.write_str("streaming step budget exhausted"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Counters exposed by the streaming engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Tokens produced at the top level.
    pub tokens_out: u64,
    /// Total cursor pulls (the time cost of recomputation).
    pub pulls: u64,
    /// Times a defining expression was re-streamed for a variable
    /// reference or a loop restart.
    pub recomputations: u64,
    /// Peak number of simultaneously live cursors — the measured "working
    /// memory" of Theorem 4.5 (each cursor is O(1) counters plus a
    /// constant number of references).
    pub peak_live_cursors: u64,
    /// Sources materialized by the buffered fast path
    /// ([`stream_query_buffered`]); always 0 under [`stream_query`].
    pub buffered_sources: u64,
    /// Workers actually spawned by [`stream_query_arena_par`] — the
    /// maximum over the plan's shard executions, which can be less than
    /// the requested thread count when a work-list has fewer items than
    /// threads. 0 on every sequential path.
    pub workers: usize,
}

#[derive(Clone)]
struct Shared {
    pulls: Rc<Cell<u64>>,
    live: Rc<Cell<u64>>,
    peak: Rc<Cell<u64>>,
    recomp: Rc<Cell<u64>>,
    buffered: Rc<Cell<u64>>,
    max_pulls: u64,
    /// Per-source token cap for the buffered fast path; 0 disables it.
    buffer_limit: usize,
}

impl Shared {
    fn new(max_pulls: u64, buffer_limit: usize) -> Shared {
        Shared {
            pulls: Rc::new(Cell::new(0)),
            live: Rc::new(Cell::new(0)),
            peak: Rc::new(Cell::new(0)),
            recomp: Rc::new(Cell::new(0)),
            buffered: Rc::new(Cell::new(0)),
            max_pulls,
            buffer_limit,
        }
    }

    fn pull(&self) -> Result<(), StreamError> {
        self.pulls.set(self.pulls.get() + 1);
        if self.pulls.get() > self.max_pulls {
            return Err(StreamError::Budget);
        }
        Ok(())
    }

    fn alloc(&self) {
        self.live.set(self.live.get() + 1);
        if self.live.get() > self.peak.get() {
            self.peak.set(self.live.get());
        }
    }

    fn free(&self) {
        self.live.set(self.live.get() - 1);
    }

    fn recompute(&self) {
        self.recomp.set(self.recomp.get() + 1);
    }
}

/// What a variable is bound to.
#[derive(Clone)]
enum Binding<'q> {
    /// The input tree, pre-tokenized (given data, not working memory).
    Input(Rc<[Token]>),
    /// Item `index` of `[[expr]](env)` — a lazy handle.
    Lazy {
        expr: &'q Query,
        env: Env<'q>,
        index: u64,
    },
}

struct EnvNode<'q> {
    var: Var,
    binding: Binding<'q>,
    parent: Env<'q>,
}

type Env<'q> = Option<Rc<EnvNode<'q>>>;

fn bind<'q>(env: &Env<'q>, var: Var, binding: Binding<'q>) -> Env<'q> {
    Some(Rc::new(EnvNode {
        var,
        binding,
        parent: env.clone(),
    }))
}

fn lookup<'q>(env: &Env<'q>, v: &Var) -> Result<Binding<'q>, StreamError> {
    let mut cur = env;
    while let Some(node) = cur {
        if &node.var == v {
            return Ok(node.binding.clone());
        }
        cur = &node.parent;
    }
    Err(StreamError::UnboundVariable(v.name().to_string()))
}

/// A pull cursor over a token stream.
struct XCursor<'q> {
    kind: Kind<'q>,
    shared: Shared,
}

enum Kind<'q> {
    Done,
    /// Raw token slice (the input or a subtree of it).
    Slice {
        tokens: Rc<[Token]>,
        pos: usize,
    },
    /// `⟨a⟩ body ⟨/a⟩`.
    Elem {
        tag: Label,
        opened: bool,
        body: Option<Box<XCursor<'q>>>,
    },
    /// `α` then `β`.
    Seq {
        cur: Box<XCursor<'q>>,
        rest: Option<(&'q Query, Env<'q>)>,
    },
    /// Pass through item #index of the inner stream.
    Item {
        inner: Box<XCursor<'q>>,
        index: u64,
        seen: u64,
        depth: i64,
        done: bool,
    },
    /// Axis step over all items of a re-streamable base.
    AxisStep {
        base: &'q Query,
        env: Env<'q>,
        axis: Axis,
        test: NodeTest,
        match_idx: u64,
        sub: Option<MatchEmitter<'q>>,
        exhausted: bool,
    },
    /// `for var in source return body`, item-by-item. [`SourceIter`]
    /// yields the per-item bindings (lazy handles, or buffered slices on
    /// the fast path).
    For {
        var: Var,
        source: &'q Query,
        body: &'q Query,
        env: Env<'q>,
        iter: Option<SourceIter<'q>>,
        cur: Option<Box<XCursor<'q>>>,
        exhausted: bool,
    },
    /// `if c then body` — condition evaluated on first pull.
    If {
        cond: &'q Cond,
        body: &'q Query,
        env: Env<'q>,
        decided: Option<Box<XCursor<'q>>>,
        dead: bool,
    },
}

/// Streams the subtree of match #target within an inner cursor.
struct MatchEmitter<'q> {
    inner: Box<XCursor<'q>>,
    axis: Axis,
    test: NodeTest,
    target: u64,
    matches_seen: u64,
    depth: i64,
    emitting_from: Option<i64>,
    found: bool,
}

impl Drop for XCursor<'_> {
    fn drop(&mut self) {
        self.shared.free();
    }
}

impl<'q> XCursor<'q> {
    fn new(kind: Kind<'q>, shared: &Shared) -> XCursor<'q> {
        shared.alloc();
        XCursor {
            kind,
            shared: shared.clone(),
        }
    }

    fn of_query(q: &'q Query, env: &Env<'q>, shared: &Shared) -> Result<XCursor<'q>, StreamError> {
        let kind = match q {
            Query::Empty => Kind::Done,
            Query::Elem(a, body) => Kind::Elem {
                tag: a.clone(),
                opened: false,
                body: Some(Box::new(XCursor::of_query(body, env, shared)?)),
            },
            Query::Seq(a, b) => Kind::Seq {
                cur: Box::new(XCursor::of_query(a, env, shared)?),
                rest: Some((b, env.clone())),
            },
            Query::Var(v) => return XCursor::of_binding(lookup(env, v)?, shared),
            Query::Step(base, axis, test) => Kind::AxisStep {
                base,
                env: env.clone(),
                axis: *axis,
                test: test.clone(),
                match_idx: 0,
                sub: None,
                exhausted: false,
            },
            Query::For(v, s, b) | Query::Let(v, s, b) => Kind::For {
                var: v.clone(),
                source: s,
                body: b,
                env: env.clone(),
                iter: None,
                cur: None,
                exhausted: false,
            },
            Query::If(c, body) => Kind::If {
                cond: c,
                body,
                env: env.clone(),
                decided: None,
                dead: false,
            },
        };
        Ok(XCursor::new(kind, shared))
    }

    fn of_binding(b: Binding<'q>, shared: &Shared) -> Result<XCursor<'q>, StreamError> {
        match b {
            Binding::Input(tokens) => Ok(XCursor::new(Kind::Slice { tokens, pos: 0 }, shared)),
            Binding::Lazy { expr, env, index } => {
                shared.recompute();
                let inner = XCursor::of_query(expr, &env, shared)?;
                Ok(XCursor::new(
                    Kind::Item {
                        inner: Box::new(inner),
                        index,
                        seen: 0,
                        depth: 0,
                        done: false,
                    },
                    shared,
                ))
            }
        }
    }

    /// Pulls the next token.
    fn next(&mut self) -> Result<Option<Token>, StreamError> {
        self.shared.pull()?;
        let shared = self.shared.clone();
        match &mut self.kind {
            Kind::Done => Ok(None),
            Kind::Slice { tokens, pos } => {
                if *pos < tokens.len() {
                    let t = tokens[*pos].clone();
                    *pos += 1;
                    Ok(Some(t))
                } else {
                    Ok(None)
                }
            }
            Kind::Elem { tag, opened, body } => {
                if !*opened {
                    *opened = true;
                    return Ok(Some(Token::Open(tag.clone())));
                }
                if let Some(b) = body {
                    if let Some(t) = b.next()? {
                        return Ok(Some(t));
                    }
                    let t = Token::Close(tag.clone());
                    self.kind = Kind::Done;
                    return Ok(Some(t));
                }
                Ok(None)
            }
            Kind::Seq { cur, rest } => loop {
                if let Some(t) = cur.next()? {
                    return Ok(Some(t));
                }
                match rest.take() {
                    Some((q, env)) => {
                        **cur = XCursor::of_query(q, &env, &shared)?;
                    }
                    None => return Ok(None),
                }
            },
            Kind::Item {
                inner,
                index,
                seen,
                depth,
                done,
            } => {
                if *done {
                    return Ok(None);
                }
                loop {
                    let Some(t) = inner.next()? else {
                        *done = true;
                        return Ok(None);
                    };
                    match &t {
                        Token::Open(_) => {
                            if *depth == 0 {
                                *seen += 1;
                            }
                            *depth += 1;
                        }
                        Token::Close(_) => {
                            *depth -= 1;
                        }
                    }
                    // 1-based item number of the token just processed.
                    if *seen == *index + 1 {
                        if *depth == 0 {
                            *done = true; // closing token of our item
                        }
                        return Ok(Some(t));
                    }
                    if *seen > *index + 1 {
                        *done = true;
                        return Ok(None);
                    }
                }
            }
            Kind::AxisStep {
                base,
                env,
                axis,
                test,
                match_idx,
                sub,
                exhausted,
            } => loop {
                if *exhausted {
                    return Ok(None);
                }
                if sub.is_none() {
                    shared.recompute();
                    let inner = XCursor::of_query(base, env, &shared)?;
                    *sub = Some(MatchEmitter {
                        inner: Box::new(inner),
                        axis: *axis,
                        test: test.clone(),
                        target: *match_idx,
                        matches_seen: 0,
                        depth: 0,
                        emitting_from: None,
                        found: false,
                    });
                }
                let emitter = sub.as_mut().expect("just set");
                match emitter.next()? {
                    Some(t) => return Ok(Some(t)),
                    None => {
                        let found = emitter.found;
                        *sub = None;
                        if found {
                            *match_idx += 1;
                        } else {
                            *exhausted = true;
                        }
                    }
                }
            },
            Kind::For {
                var,
                source,
                body,
                env,
                iter,
                cur,
                exhausted,
            } => loop {
                if *exhausted {
                    return Ok(None);
                }
                if cur.is_none() {
                    if iter.is_none() {
                        *iter = Some(SourceIter::new(source, env, &shared)?);
                    }
                    let next = iter.as_mut().expect("just set").next_binding(&shared)?;
                    let Some(binding) = next else {
                        *exhausted = true;
                        return Ok(None);
                    };
                    let new_env = bind(env, var.clone(), binding);
                    *cur = Some(Box::new(XCursor::of_query(body, &new_env, &shared)?));
                }
                if let Some(t) = cur.as_mut().expect("just set").next()? {
                    return Ok(Some(t));
                }
                *cur = None;
            },
            Kind::If {
                cond,
                body,
                env,
                decided,
                dead,
            } => {
                if *dead {
                    return Ok(None);
                }
                if decided.is_none() {
                    if eval_cond(cond, env, &shared)? {
                        *decided = Some(Box::new(XCursor::of_query(body, env, &shared)?));
                    } else {
                        *dead = true;
                        return Ok(None);
                    }
                }
                decided.as_mut().expect("just set").next()
            }
        }
    }
}

impl MatchEmitter<'_> {
    /// Whether an `Open` that raised the depth to `d` starts a node
    /// selected by the axis (items are at depth 1).
    fn selects(&self, d: i64) -> bool {
        match self.axis {
            Axis::SelfAxis => d == 1,
            Axis::Child => d == 2,
            Axis::Descendant => d >= 2,
            Axis::DescendantOrSelf => d >= 1,
        }
    }

    fn next(&mut self) -> Result<Option<Token>, StreamError> {
        loop {
            let Some(t) = self.inner.next()? else {
                return Ok(None);
            };
            match &t {
                Token::Open(label) => {
                    self.depth += 1;
                    if self.emitting_from.is_none()
                        && self.selects(self.depth)
                        && self.test.matches(label)
                    {
                        if self.matches_seen == self.target {
                            self.emitting_from = Some(self.depth);
                            self.found = true;
                        }
                        self.matches_seen += 1;
                    }
                    if self.emitting_from.is_some() {
                        return Ok(Some(t));
                    }
                }
                Token::Close(_) => {
                    let emit = self.emitting_from.is_some();
                    let finished = self.emitting_from == Some(self.depth);
                    self.depth -= 1;
                    if emit {
                        if finished {
                            // Final close of this match: emit it and stop;
                            // the enclosing AxisStep restarts for the next
                            // match.
                            self.emitting_from = None;
                            self.inner.kind = Kind::Done;
                            return Ok(Some(t));
                        }
                        return Ok(Some(t));
                    }
                }
            }
        }
    }
}

/// Incrementally materialized items of a `for`/`some`/`every` source —
/// the buffered fast path. One cursor streams the source exactly once;
/// items are split off the token stream *on demand*, so a consumer that
/// stops early (a short-circuiting condition, an outer boolean probe)
/// pulls no more of the source than the lazy discipline would. When the
/// stream exceeds the per-source token cap, `overflowed` is set and the
/// caller falls back to lazy re-streaming (the pulls spent probing still
/// count against the budget).
struct ItemBuffer<'q> {
    cursor: Option<Box<XCursor<'q>>>,
    items: Vec<Rc<[Token]>>,
    partial: Vec<Token>,
    depth: i64,
    total: usize,
    overflowed: bool,
}

impl<'q> ItemBuffer<'q> {
    fn new(expr: &'q Query, env: &Env<'q>, shared: &Shared) -> Result<ItemBuffer<'q>, StreamError> {
        shared.recompute();
        Ok(ItemBuffer {
            cursor: Some(Box::new(XCursor::of_query(expr, env, shared)?)),
            items: Vec::new(),
            partial: Vec::new(),
            depth: 0,
            total: 0,
            overflowed: false,
        })
    }

    /// Returns item #m (0-based), pulling just far enough to materialize
    /// it. `Ok(None)` means the source ended before item #m *or* the cap
    /// was exceeded — check [`ItemBuffer::overflowed`] to tell them apart.
    fn get(&mut self, m: usize, shared: &Shared) -> Result<Option<Rc<[Token]>>, StreamError> {
        while self.items.len() <= m {
            let Some(cursor) = self.cursor.as_mut() else {
                return Ok(None);
            };
            let Some(t) = cursor.next()? else {
                // Source fully buffered: this is a completed fast path.
                self.cursor = None;
                shared.buffered.set(shared.buffered.get() + 1);
                return Ok(None);
            };
            self.total += 1;
            if self.total > shared.buffer_limit {
                self.overflowed = true;
                self.cursor = None;
                return Ok(None);
            }
            match &t {
                Token::Open(_) => self.depth += 1,
                Token::Close(_) => self.depth -= 1,
            }
            self.partial.push(t);
            if self.depth == 0 {
                self.items.push(Rc::from(std::mem::take(&mut self.partial)));
            }
        }
        Ok(Some(self.items[m].clone()))
    }
}

/// Iterates the item bindings of a `for`/`some`/`every` source: the
/// buffered fast path when enabled (falling back to lazy re-streaming on
/// overflow), pure `item_exists` probing otherwise. Both disciplines
/// yield bindings one at a time, so early-stopping consumers (quantifier
/// short-circuits, outer boolean probes) pull no more of the source than
/// strictly needed.
struct SourceIter<'q> {
    source: &'q Query,
    env: Env<'q>,
    m: u64,
    buf: Option<ItemBuffer<'q>>,
}

impl<'q> SourceIter<'q> {
    fn new(
        source: &'q Query,
        env: &Env<'q>,
        shared: &Shared,
    ) -> Result<SourceIter<'q>, StreamError> {
        let buf = if shared.buffer_limit > 0 {
            Some(ItemBuffer::new(source, env, shared)?)
        } else {
            None
        };
        Ok(SourceIter {
            source,
            env: env.clone(),
            m: 0,
            buf,
        })
    }

    /// The binding for the next item, or `None` when the source ends.
    fn next_binding(&mut self, shared: &Shared) -> Result<Option<Binding<'q>>, StreamError> {
        let m = self.m;
        self.m += 1;
        let mut overflowed = false;
        if let Some(b) = self.buf.as_mut() {
            match b.get(m as usize, shared)? {
                Some(item) => return Ok(Some(Binding::Input(item))),
                None => {
                    if b.overflowed {
                        overflowed = true;
                    } else {
                        return Ok(None);
                    }
                }
            }
        }
        if overflowed {
            self.buf = None;
        }
        if !item_exists(self.source, &self.env, m, shared)? {
            return Ok(None);
        }
        Ok(Some(Binding::Lazy {
            expr: self.source,
            env: self.env.clone(),
            index: m,
        }))
    }
}

/// Does `[[expr]](env)` have an item #m (0-based)? Re-streams and counts.
fn item_exists<'q>(
    expr: &'q Query,
    env: &Env<'q>,
    m: u64,
    shared: &Shared,
) -> Result<bool, StreamError> {
    shared.recompute();
    let mut c = XCursor::of_query(expr, env, shared)?;
    let mut depth: i64 = 0;
    let mut seen: u64 = 0;
    while let Some(t) = c.next()? {
        match t {
            Token::Open(_) => {
                if depth == 0 {
                    seen += 1;
                    if seen > m {
                        return Ok(true);
                    }
                }
                depth += 1;
            }
            Token::Close(_) => depth -= 1,
        }
    }
    Ok(false)
}

fn first_label(b: Binding<'_>, shared: &Shared) -> Result<Option<Label>, StreamError> {
    let mut c = XCursor::of_binding(b, shared)?;
    match c.next()? {
        Some(Token::Open(l)) => Ok(Some(l)),
        _ => Ok(None),
    }
}

fn streams_equal<'q>(a: Binding<'q>, b: Binding<'q>, shared: &Shared) -> Result<bool, StreamError> {
    let mut ca = XCursor::of_binding(a, shared)?;
    let mut cb = XCursor::of_binding(b, shared)?;
    loop {
        match (ca.next()?, cb.next()?) {
            (None, None) => return Ok(true),
            (Some(x), Some(y)) if x == y => continue,
            _ => return Ok(false),
        }
    }
}

fn eval_cond<'q>(c: &'q Cond, env: &Env<'q>, shared: &Shared) -> Result<bool, StreamError> {
    match c {
        Cond::True => Ok(true),
        Cond::VarEq(x, y, mode) => {
            let bx = lookup(env, x)?;
            let by = lookup(env, y)?;
            match mode {
                EqMode::Deep => streams_equal(bx, by, shared),
                EqMode::Atomic => Ok(first_label(bx, shared)? == first_label(by, shared)?),
                EqMode::Mon => Err(StreamError::BadEqualityMode),
            }
        }
        Cond::ConstEq(x, a, mode) => {
            let bx = lookup(env, x)?;
            match mode {
                EqMode::Deep => {
                    let mut cx = XCursor::of_binding(bx, shared)?;
                    let t1 = cx.next()?;
                    let t2 = cx.next()?;
                    let t3 = cx.next()?;
                    Ok(t1 == Some(Token::Open(a.clone()))
                        && t2 == Some(Token::Close(a.clone()))
                        && t3.is_none())
                }
                _ => Ok(first_label(bx, shared)?.as_ref() == Some(a)),
            }
        }
        Cond::Query(q) => {
            let mut c = XCursor::of_query(q, env, shared)?;
            Ok(c.next()?.is_some())
        }
        Cond::Some(v, source, sat) => {
            let mut iter = SourceIter::new(source, env, shared)?;
            while let Some(binding) = iter.next_binding(shared)? {
                let new_env = bind(env, v.clone(), binding);
                if eval_cond(sat, &new_env, shared)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Cond::Every(v, source, sat) => {
            let mut iter = SourceIter::new(source, env, shared)?;
            while let Some(binding) = iter.next_binding(shared)? {
                let new_env = bind(env, v.clone(), binding);
                if !eval_cond(sat, &new_env, shared)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Cond::And(a, b) => Ok(eval_cond(a, env, shared)? && eval_cond(b, env, shared)?),
        Cond::Or(a, b) => Ok(eval_cond(a, env, shared)? || eval_cond(b, env, shared)?),
        Cond::Not(a) => Ok(!eval_cond(a, env, shared)?),
    }
}

/// Default per-source token cap for [`stream_query_buffered`]: generous
/// enough for everyday intermediates, small enough that the fast path's
/// worst-case extra space stays bounded.
pub const DEFAULT_BUFFER_LIMIT: usize = 1 << 16;

/// Streams `[[q]]($root ↦ input)` into a token vector, reporting stats.
/// `max_pulls` bounds the (possibly exponential) recomputation time.
///
/// This is the pure Theorem 4.5 discipline — every variable reference
/// re-streams. [`stream_query_buffered`] is the fast path.
pub fn stream_query(
    q: &Query,
    input: &Tree,
    max_pulls: u64,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    stream_with(q, input, max_pulls, 0)
}

/// [`stream_query`] with the buffered fast path enabled: any `for`/`some`/
/// `every` source whose full token stream fits in `buffer_limit` tokens is
/// materialized once and iterated as plain slices instead of being
/// re-streamed per item and per variable reference. Oversized sources fall
/// back to the lazy discipline, so the Theorem 4.5 space bound degrades by
/// at most `O(buffer_limit)` *per live loop/quantifier scope* (nested live
/// scopes each hold a buffer).
pub fn stream_query_buffered(
    q: &Query,
    input: &Tree,
    max_pulls: u64,
    buffer_limit: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    stream_with(q, input, max_pulls, buffer_limit)
}

/// [`stream_query_buffered`] over an arena-backed document: the `$root`
/// binding is tokenized straight out of the [`ArenaDoc`]'s parallel
/// vectors — no `Rc` tree is materialized, and per-item bindings are
/// plain token slices. This is the arena fast path of the streaming
/// engine; output is byte-identical to streaming `doc.to_tree()`.
pub fn stream_query_arena(
    q: &Query,
    doc: &ArenaDoc,
    max_pulls: u64,
    buffer_limit: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    stream_tokens(q, doc.tokens().into(), max_pulls, buffer_limit)
}

/// [`stream_query_arena`] with every planner-shardable loop distributed
/// over `threads` workers: the query is analyzed by the parallel planner
/// ([`ParPlan`], `xq_core::plan`) — `Seq` branches stream independently
/// and concatenate in branch order, nested `for`s flatten into one
/// work-list of node rows, `let`-bound singleton sources hoist, and
/// `where`-filtered sources resolve to filtered node sets. Each sharded
/// loop's rows split into contiguous chunks; workers stream the body with
/// the loop variables bound to row token slices straight out of the
/// shared arena — exactly the binding the buffered fast path would
/// produce. Per-chunk output crosses back as interned tokens and is
/// spliced in chunk (= iteration) order, so the stream is byte-identical
/// to [`stream_query_arena`]'s. Queries the planner cannot shard (and
/// `threads <= 1`) take the sequential path.
///
/// The `$root` token stream, when some body needs it, is tokenized from
/// the arena **once** before the thread split; each worker re-wraps the
/// shared slice (a flat copy, not a re-walk of the document).
///
/// `max_pulls` bounds each worker's chunk (and each sequential plan leaf)
/// independently: parallel never exhausts a budget that sufficed
/// sequentially. Merged stats sum `pulls`/`recomputations`/
/// `buffered_sources`, take the maximum for `peak_live_cursors`, and
/// report actually-spawned `workers`.
pub fn stream_query_arena_par(
    q: &Query,
    doc: &ArenaDoc,
    max_pulls: u64,
    buffer_limit: usize,
    threads: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    if threads <= 1 {
        return stream_query_arena(q, doc, max_pulls, buffer_limit);
    }
    // The planner's filter predicates evaluate under the Figure 1
    // semantics; the agreement suites prove both engines semantically
    // identical, so a planner-filtered node set is exactly the item set
    // this engine would stream. Any planner fallback (including predicate
    // errors) lands on the sequential engine, which reproduces the
    // sequential stream — bytes and errors — by definition. The caller's
    // pull budget doubles as the planner's (shared, aggregate) predicate
    // allowance: steps and pulls are the same order of magnitude, and a
    // too-small allowance only means a sequential fallback — never extra
    // unbounded planning work on a budget-limited call.
    let plan_budget = xq_core::Budget {
        max_steps: max_pulls,
        max_items: max_pulls,
        ..xq_core::Budget::default()
    };
    let plan = ParPlan::of(q, doc, plan_budget);
    if !plan.engages() {
        return stream_query_arena(q, doc, max_pulls, buffer_limit);
    }
    let root: Option<Vec<Token>> = plan.needs_root().then(|| doc.tokens());
    let mut exec = StreamExec {
        doc,
        max_pulls,
        buffer_limit,
        threads,
        root,
        hoisted: Vec::new(),
        out: Vec::new(),
        stats: StreamStats::default(),
    };
    exec.run(&plan)?;
    let StreamExec { out, mut stats, .. } = exec;
    stats.tokens_out = out.len() as u64;
    Ok((out, stats))
}

/// Plan executor for the streaming engine (see [`stream_query_arena_par`]).
struct StreamExec<'d> {
    doc: &'d ArenaDoc,
    max_pulls: u64,
    buffer_limit: usize,
    threads: usize,
    /// `$root` tokenized once (iff the plan needs it); workers re-wrap it.
    root: Option<Vec<Token>>,
    /// Hoisted `let` bindings in scope, tokenized once each.
    hoisted: Vec<(Var, Vec<Token>)>,
    out: Vec<Token>,
    stats: StreamStats,
}

impl StreamExec<'_> {
    fn merge_stats(&mut self, s: &StreamStats) {
        self.stats.pulls += s.pulls;
        self.stats.recomputations += s.recomputations;
        self.stats.buffered_sources += s.buffered_sources;
        self.stats.peak_live_cursors = self.stats.peak_live_cursors.max(s.peak_live_cursors);
    }

    fn run(&mut self, plan: &ParPlan<'_>) -> Result<(), StreamError> {
        match plan {
            ParPlan::Wrap(a, inner) => {
                self.out.push(Token::Open(a.clone()));
                self.run(inner)?;
                self.out.push(Token::Close(a.clone()));
                Ok(())
            }
            ParPlan::Seq(branches) => {
                // Branch order is concatenation order; the first error in
                // branch order wins, as sequentially.
                for b in branches {
                    self.run(b)?;
                }
                Ok(())
            }
            ParPlan::Hoist(v, node, inner) => {
                // `let $z := $root` is the common hoist; reuse the shared
                // root token build instead of re-walking the document.
                let tokens = match &self.root {
                    Some(rt) if *node == self.doc.root() => rt.clone(),
                    _ => self.doc.tokens_of(*node),
                };
                self.hoisted.push((v.clone(), tokens));
                let result = self.run(inner);
                self.hoisted.pop();
                result
            }
            ParPlan::Shard(sp) => self.run_shard(sp),
            ParPlan::Opaque(q) => {
                let shared = Shared::new(self.max_pulls, self.buffer_limit);
                let mut env: Env = None;
                if let Some(rt) = &self.root {
                    env = bind(&env, Var::root(), Binding::Input(Rc::from(&rt[..])));
                }
                for (v, t) in &self.hoisted {
                    env = bind(&env, v.clone(), Binding::Input(Rc::from(&t[..])));
                }
                let mut cursor = XCursor::of_query(q, &env, &shared)?;
                while let Some(t) = cursor.next()? {
                    self.out.push(t);
                }
                drop(cursor);
                let stats = StreamStats {
                    pulls: shared.pulls.get(),
                    recomputations: shared.recomp.get(),
                    peak_live_cursors: shared.peak.get(),
                    buffered_sources: shared.buffered.get(),
                    ..StreamStats::default()
                };
                self.merge_stats(&stats);
                Ok(())
            }
        }
    }

    fn run_shard(&mut self, sp: &ShardPlan<'_>) -> Result<(), StreamError> {
        let rows: Vec<&[NodeId]> = sp.rows().collect();
        let parts = chunks(&rows, self.threads);
        self.stats.workers = self.stats.workers.max(parts.len());
        let (doc, max_pulls, buffer_limit) = (self.doc, self.max_pulls, self.buffer_limit);
        let (vars, body) = (sp.vars(), sp.body());
        let root = self.root.as_deref();
        let hoisted = self.hoisted.as_slice();
        if parts.len() <= 1 {
            // One chunk: stream inline — no thread to pay for, and no
            // reason to round-trip the output through interned tokens.
            let chunk = parts.first().copied().unwrap_or(&[]);
            let out = &mut self.out;
            let s = stream_rows(
                doc,
                vars,
                body,
                chunk,
                max_pulls,
                buffer_limit,
                root,
                hoisted,
                |t| out.push(t),
            )?;
            self.merge_stats(&s);
            return Ok(());
        }
        type ChunkOut = Result<(Vec<IToken>, StreamStats), StreamError>;
        let results: Vec<ChunkOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        stream_chunk(
                            doc,
                            vars,
                            body,
                            chunk,
                            max_pulls,
                            buffer_limit,
                            root,
                            hoisted,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("streaming worker panicked"))
                .collect()
        });
        // First error in chunk order wins: deterministic for a fixed
        // thread count.
        for r in results {
            let (itokens, s) = r?;
            self.merge_stats(&s);
            self.out.extend(itokens.iter().map(|t| t.resolve()));
        }
        Ok(())
    }
}

/// The row loop shared by the worker and inline shard paths: the body
/// streamed once per row, with loop-variable bindings tokenized straight
/// out of the shared arena and the `$root`/hoisted streams re-wrapped
/// from the one shared build; every output token goes to `emit` in
/// iteration order.
#[allow(clippy::too_many_arguments)]
fn stream_rows(
    doc: &ArenaDoc,
    vars: &[Var],
    body: &Query,
    rows: &[&[NodeId]],
    max_pulls: u64,
    buffer_limit: usize,
    root: Option<&[Token]>,
    hoisted: &[(Var, Vec<Token>)],
    mut emit: impl FnMut(Token),
) -> Result<StreamStats, StreamError> {
    let shared = Shared::new(max_pulls, buffer_limit);
    let root_rc: Option<Rc<[Token]>> = root.map(Rc::from);
    let hoisted_rc: Vec<(Var, Rc<[Token]>)> = hoisted
        .iter()
        .map(|(v, t)| (v.clone(), Rc::from(&t[..])))
        .collect();
    for &row in rows {
        let mut env: Env = None;
        if let Some(rt) = &root_rc {
            env = bind(&env, Var::root(), Binding::Input(rt.clone()));
        }
        for (v, t) in &hoisted_rc {
            env = bind(&env, v.clone(), Binding::Input(t.clone()));
        }
        for (v, &n) in vars.iter().zip(row) {
            env = bind(&env, v.clone(), Binding::Input(doc.tokens_of(n).into()));
        }
        let mut cursor = XCursor::of_query(body, &env, &shared)?;
        while let Some(t) = cursor.next()? {
            emit(t);
        }
    }
    Ok(StreamStats {
        pulls: shared.pulls.get(),
        recomputations: shared.recomp.get(),
        peak_live_cursors: shared.peak.get(),
        buffered_sources: shared.buffered.get(),
        ..StreamStats::default()
    })
}

/// One worker's share of a sharded loop ([`stream_rows`] with the output
/// crossing back to the merger as interned tokens).
#[allow(clippy::too_many_arguments)]
fn stream_chunk(
    doc: &ArenaDoc,
    vars: &[Var],
    body: &Query,
    rows: &[&[NodeId]],
    max_pulls: u64,
    buffer_limit: usize,
    root: Option<&[Token]>,
    hoisted: &[(Var, Vec<Token>)],
) -> Result<(Vec<IToken>, StreamStats), StreamError> {
    let mut itokens = Vec::new();
    let mut stats = stream_rows(
        doc,
        vars,
        body,
        rows,
        max_pulls,
        buffer_limit,
        root,
        hoisted,
        |t| itokens.push(IToken::intern(&t)),
    )?;
    stats.tokens_out = itokens.len() as u64;
    Ok((itokens, stats))
}

fn stream_with(
    q: &Query,
    input: &Tree,
    max_pulls: u64,
    buffer_limit: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    stream_tokens(q, input.tokens().into(), max_pulls, buffer_limit)
}

fn stream_tokens(
    q: &Query,
    tokens: Rc<[Token]>,
    max_pulls: u64,
    buffer_limit: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    let shared = Shared::new(max_pulls, buffer_limit);
    let env = bind(&None, Var::root(), Binding::Input(tokens));
    let mut cursor = XCursor::of_query(q, &env, &shared)?;
    let mut out = Vec::new();
    while let Some(t) = cursor.next()? {
        out.push(t);
    }
    drop(cursor);
    let stats = StreamStats {
        tokens_out: out.len() as u64,
        pulls: shared.pulls.get(),
        recomputations: shared.recomp.get(),
        peak_live_cursors: shared.peak.get(),
        buffered_sources: shared.buffered.get(),
        workers: 0,
    };
    Ok((out, stats))
}

/// Pulls only until the Boolean verdict is known: for `⟨a⟩α⟨/a⟩`, whether
/// the root element has a child (§7.1 convention); otherwise whether the
/// stream is nonempty. Never materializes the result.
pub fn stream_boolean(q: &Query, input: &Tree, max_pulls: u64) -> Result<bool, StreamError> {
    let shared = Shared::new(max_pulls, 0);
    let tokens: Rc<[Token]> = input.tokens().into();
    let env = bind(&None, Var::root(), Binding::Input(tokens));
    let mut cursor = XCursor::of_query(q, &env, &shared)?;
    match q {
        Query::Elem(_, _) => {
            let _open = cursor.next()?;
            match cursor.next()? {
                Some(Token::Open(_)) => Ok(true),
                _ => Ok(false),
            }
        }
        _ => Ok(cursor.next()?.is_some()),
    }
}
