//! Fragment analysis: which sublanguage of Core XQuery a query belongs to.
//!
//! The paper parameterizes its results by feature sets — `XQ[X]` for `X` a
//! set of operations and axes (Prop 3.1) — and §7 defines the
//! composition-free fragments:
//!
//! * **XQ⁻** (`composition-free Core XQuery`): variables are only bound by
//!   `for $x in $y/axis::ν`, conditions come from the §7 grammar
//!   (`var = var`, `var = ⟨a/⟩`, `true`, `some … in var/axis::ν`, `and`,
//!   `or`, `not`);
//! * **XQ∼**: no `let`, every `for`-source is a step `$y/ν`, conditions
//!   are ordinary queries plus `$z = ⟨a/⟩` — Prop 7.1 proves
//!   `XQ∼ = XQ⁻` via the translations implemented here.

use crate::ast::{Cond, EqMode, Query, Var};
use cv_xtree::Axis;
use std::collections::BTreeSet;

/// Static feature summary of a query — the `X` of `XQ[X]`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Features {
    /// Axes used by steps.
    pub axes: BTreeSet<Axis>,
    /// Equality modes appearing in conditions.
    pub eq_modes: BTreeSet<EqMode>,
    /// Whether `not` appears.
    pub uses_not: bool,
    /// Whether `every` appears (defined via `not` + `some`).
    pub uses_every: bool,
    /// Whether `let` appears.
    pub uses_let: bool,
}

impl Features {
    /// Computes the feature summary of `q`.
    pub fn of(q: &Query) -> Features {
        let mut f = Features::default();
        scan_query(q, &mut f);
        f
    }
}

fn scan_query(q: &Query, f: &mut Features) {
    match q {
        Query::Empty | Query::Var(_) => {}
        Query::Elem(_, b) => scan_query(b, f),
        Query::Seq(a, b) => {
            scan_query(a, f);
            scan_query(b, f);
        }
        Query::Step(b, axis, _) => {
            f.axes.insert(*axis);
            scan_query(b, f);
        }
        Query::For(_, s, b) => {
            scan_query(s, f);
            scan_query(b, f);
        }
        Query::If(c, b) => {
            scan_cond(c, f);
            scan_query(b, f);
        }
        Query::Let(_, s, b) => {
            f.uses_let = true;
            scan_query(s, f);
            scan_query(b, f);
        }
    }
}

fn scan_cond(c: &Cond, f: &mut Features) {
    match c {
        Cond::VarEq(_, _, m) | Cond::ConstEq(_, _, m) => {
            f.eq_modes.insert(*m);
        }
        Cond::Query(q) => scan_query(q, f),
        Cond::True => {}
        Cond::Some(_, s, c) => {
            scan_query(s, f);
            scan_cond(c, f);
        }
        Cond::Every(_, s, c) => {
            f.uses_every = true;
            scan_query(s, f);
            scan_cond(c, f);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            scan_cond(a, f);
            scan_cond(b, f);
        }
        Cond::Not(a) => {
            f.uses_not = true;
            scan_cond(a, f);
        }
    }
}

/// The free variables of a query, in sorted order.
pub fn free_vars(q: &Query) -> BTreeSet<Var> {
    let mut bound = Vec::new();
    let mut free = BTreeSet::new();
    fv_query(q, &mut bound, &mut free);
    free
}

fn fv_query(q: &Query, bound: &mut Vec<Var>, free: &mut BTreeSet<Var>) {
    match q {
        Query::Empty => {}
        Query::Elem(_, b) => fv_query(b, bound, free),
        Query::Seq(a, b) => {
            fv_query(a, bound, free);
            fv_query(b, bound, free);
        }
        Query::Var(v) => {
            if !bound.contains(v) {
                free.insert(v.clone());
            }
        }
        Query::Step(b, _, _) => fv_query(b, bound, free),
        Query::For(v, s, b) | Query::Let(v, s, b) => {
            fv_query(s, bound, free);
            bound.push(v.clone());
            fv_query(b, bound, free);
            bound.pop();
        }
        Query::If(c, b) => {
            fv_cond(c, bound, free);
            fv_query(b, bound, free);
        }
    }
}

fn fv_cond(c: &Cond, bound: &mut Vec<Var>, free: &mut BTreeSet<Var>) {
    match c {
        Cond::VarEq(x, y, _) => {
            for v in [x, y] {
                if !bound.contains(v) {
                    free.insert(v.clone());
                }
            }
        }
        Cond::ConstEq(x, _, _) => {
            if !bound.contains(x) {
                free.insert(x.clone());
            }
        }
        Cond::Query(q) => fv_query(q, bound, free),
        Cond::True => {}
        Cond::Some(v, s, c) | Cond::Every(v, s, c) => {
            fv_query(s, bound, free);
            bound.push(v.clone());
            fv_cond(c, bound, free);
            bound.pop();
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            fv_cond(a, bound, free);
            fv_cond(b, bound, free);
        }
        Cond::Not(a) => fv_cond(a, bound, free),
    }
}

fn is_var_step(q: &Query) -> bool {
    matches!(&q, Query::Step(base, _, _) if matches!(&**base, Query::Var(_)))
}

/// Whether `q` is in strict Core XQuery: steps only on variables, no `let`,
/// conditions only `var = var` or queries (the §3 grammar; derived forms
/// must have been lowered with [`Query::desugar`], which leaves `not`).
pub fn is_strict_core(q: &Query) -> bool {
    fn ok_q(q: &Query) -> bool {
        match q {
            Query::Empty | Query::Var(_) => true,
            Query::Elem(_, b) => ok_q(b),
            Query::Seq(a, b) => ok_q(a) && ok_q(b),
            Query::Step(base, _, _) => matches!(&**base, Query::Var(_)),
            Query::For(_, s, b) => ok_q(s) && ok_q(b),
            Query::If(c, b) => ok_c(c) && ok_q(b),
            Query::Let(_, _, _) => false,
        }
    }
    fn ok_c(c: &Cond) -> bool {
        match c {
            Cond::VarEq(_, _, _) => true,
            Cond::Query(q) => ok_q(q),
            Cond::Not(inner) => ok_c(inner),
            _ => false,
        }
    }
    ok_q(q)
}

/// Whether `q` is composition-free Core XQuery (`XQ⁻`, §7 grammar).
pub fn is_composition_free(q: &Query) -> bool {
    fn ok_q(q: &Query) -> bool {
        match q {
            Query::Empty | Query::Var(_) => true,
            Query::Elem(_, b) => ok_q(b),
            Query::Seq(a, b) => ok_q(a) && ok_q(b),
            Query::Step(base, _, _) => matches!(&**base, Query::Var(_)),
            // for var in var/axis::ν return query
            Query::For(_, s, b) => is_var_step(s) && ok_q(b),
            Query::If(c, b) => ok_c(c) && ok_q(b),
            Query::Let(_, _, _) => false,
        }
    }
    fn ok_c(c: &Cond) -> bool {
        match c {
            Cond::VarEq(_, _, _) | Cond::ConstEq(_, _, _) | Cond::True => true,
            // some var in var/axis::ν satisfies cond
            Cond::Some(_, s, c) | Cond::Every(_, s, c) => is_var_step(s) && ok_c(c),
            Cond::And(a, b) | Cond::Or(a, b) => ok_c(a) && ok_c(b),
            Cond::Not(a) => ok_c(a),
            Cond::Query(_) => false,
        }
    }
    ok_q(q)
}

/// Whether `q` is in `XQ∼` (§7.2): no `let`, every `for`-source is a step
/// on a variable, and conditions are queries, `var = var`, or `$z = ⟨a/⟩`
/// (plus `not`).
pub fn is_xq_tilde(q: &Query) -> bool {
    fn ok_q(q: &Query) -> bool {
        match q {
            Query::Empty | Query::Var(_) => true,
            Query::Elem(_, b) => ok_q(b),
            Query::Seq(a, b) => ok_q(a) && ok_q(b),
            Query::Step(base, _, _) => matches!(&**base, Query::Var(_)),
            Query::For(_, s, b) => is_var_step(s) && ok_q(b),
            Query::If(c, b) => ok_c(c) && ok_q(b),
            Query::Let(_, _, _) => false,
        }
    }
    fn ok_c(c: &Cond) -> bool {
        match c {
            Cond::VarEq(_, _, _) | Cond::ConstEq(_, _, _) => true,
            Cond::Query(q) => ok_q(q),
            Cond::Not(a) => ok_c(a),
            _ => false,
        }
    }
    ok_q(q)
}

/// Converts an `XQ∼` query to an equivalent `XQ⁻` query (Prop 7.1, "⇒"):
/// rewrites every maximal `if`-condition with the translation `f`:
///
/// ```text
/// f(α β)                        = f(α) or f(β)
/// f(for $y in $x/ν return α)    = some $y in $x/ν satisfies f(α)
/// f(if φ then α)                = f(φ) and f(α)
/// f(not φ)                      = not f(φ)
/// f(⟨a⟩α⟨/a⟩)                   = true
/// ```
///
/// plus the boundary cases the paper leaves implicit: `f($x) = true`
/// (variables always bind to a tree) and `f(()) = not(true)`.
pub fn to_composition_free(q: &Query) -> Query {
    fn walk(q: &Query) -> Query {
        match q {
            Query::Empty | Query::Var(_) | Query::Step(_, _, _) => q.clone(),
            Query::Elem(a, b) => Query::elem(a.clone(), walk(b)),
            Query::Seq(a, b) => Query::seq([walk(a), walk(b)]),
            Query::For(v, s, b) => Query::for_in(v.clone(), (**s).clone(), walk(b)),
            Query::If(c, b) => Query::if_then(f_cond(c), walk(b)),
            Query::Let(_, _, _) => {
                unreachable!("XQ∼ queries contain no let (checked by caller)")
            }
        }
    }
    fn f_cond(c: &Cond) -> Cond {
        match c {
            Cond::VarEq(_, _, _) | Cond::ConstEq(_, _, _) | Cond::True => c.clone(),
            Cond::Not(a) => f_cond(a).negate(),
            Cond::And(a, b) => f_cond(a).and(f_cond(b)),
            Cond::Or(a, b) => f_cond(a).or(f_cond(b)),
            Cond::Some(v, s, c) => Cond::some(v.clone(), (**s).clone(), f_cond(c)),
            Cond::Every(v, s, c) => Cond::every(v.clone(), (**s).clone(), f_cond(c)),
            Cond::Query(q) => f_query(q),
        }
    }
    fn f_query(q: &Query) -> Cond {
        match q {
            Query::Empty => Cond::True.negate(),
            Query::Elem(_, _) => Cond::True,
            Query::Var(_) => Cond::True,
            Query::Seq(a, b) => f_query(a).or(f_query(b)),
            Query::Step(base, axis, nt) => {
                // $x/ν as a condition: some $y in $x/ν satisfies true
                let v = Var::new("#cf");
                Cond::some(
                    v,
                    Query::step((**base).clone(), *axis, nt.clone()),
                    Cond::True,
                )
            }
            Query::For(v, s, b) => Cond::some(v.clone(), (**s).clone(), f_query(b)),
            Query::If(c, b) => f_cond(c).and(f_query(b)),
            Query::Let(_, _, _) => {
                unreachable!("XQ∼ queries contain no let (checked by caller)")
            }
        }
    }
    walk(q)
}

/// Converts an `XQ⁻` query to an equivalent `XQ∼` query (Prop 7.1, "⇐"):
/// eliminates `true`, `some`, `and`, and `or` using their §3 definitions,
/// leaving conditions as queries (plus `var = var`, `$z = ⟨a/⟩`, `not`).
pub fn to_xq_tilde(q: &Query) -> Query {
    fn walk(q: &Query) -> Query {
        match q {
            Query::Empty | Query::Var(_) | Query::Step(_, _, _) => q.clone(),
            Query::Elem(a, b) => Query::elem(a.clone(), walk(b)),
            Query::Seq(a, b) => Query::seq([walk(a), walk(b)]),
            Query::For(v, s, b) => Query::for_in(v.clone(), (**s).clone(), walk(b)),
            Query::If(c, b) => Query::if_then(g_cond(c), walk(b)),
            Query::Let(_, _, _) => {
                unreachable!("XQ⁻ queries contain no let (checked by caller)")
            }
        }
    }
    fn g_cond(c: &Cond) -> Cond {
        match c {
            Cond::VarEq(_, _, _) | Cond::ConstEq(_, _, _) => c.clone(),
            Cond::True => Cond::query(Query::leaf("nonempty")),
            Cond::Not(a) => g_cond(a).negate(),
            Cond::And(a, b) => {
                // φ and ψ := if φ then ψ
                Cond::query(Query::if_then(
                    g_cond(a),
                    crate::ast::cond_as_query(&g_cond(b)),
                ))
            }
            Cond::Or(a, b) => Cond::query(Query::seq([
                crate::ast::cond_as_query(&g_cond(a)),
                crate::ast::cond_as_query(&g_cond(b)),
            ])),
            Cond::Some(v, s, c) => {
                // some $x in α satisfies φ := for $x in α return φ
                Cond::query(Query::for_in(
                    v.clone(),
                    (**s).clone(),
                    crate::ast::cond_as_query(&g_cond(c)),
                ))
            }
            Cond::Every(v, s, c) => g_cond(&Cond::Some(
                v.clone(),
                s.clone(),
                std::sync::Arc::new((**c).clone().negate()),
            ))
            .negate(),
            Cond::Query(q) => Cond::query(walk(q)),
        }
    }
    walk(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::semantics::boolean_result;
    use cv_xtree::parse_tree;

    fn p(s: &str) -> Query {
        parse_query(s).unwrap()
    }

    #[test]
    fn features_report_axes_and_equalities() {
        let q = p("for $x in $root//a return if ($x =atomic $x) then $x/b");
        let f = Features::of(&q);
        assert!(f.axes.contains(&Axis::Descendant));
        assert!(f.axes.contains(&Axis::Child));
        assert!(f.eq_modes.contains(&EqMode::Atomic));
        assert!(!f.uses_not);
        let q = p("if (not(true)) then <a/>");
        assert!(Features::of(&q).uses_not);
        let q = p("let $x := <a/> return $x");
        assert!(Features::of(&q).uses_let);
    }

    #[test]
    fn free_vars_respect_binders() {
        let q = p("for $x in $root/a return ($x, $y)");
        let fv = free_vars(&q);
        assert!(fv.contains(&Var::new("root")));
        assert!(fv.contains(&Var::new("y")));
        assert!(!fv.contains(&Var::new("x")));
    }

    #[test]
    fn example_7_2_is_xq_tilde_and_its_translation_is_xq_minus() {
        // The paper's Example 7.2 pair.
        let tilde = p(r#"
            <result>
            { for $x in $root/a return
                if (not(for $y in $x/b return if ($y/c) then ($y/d, $y/e)))
                then $x/f }
            </result>
        "#);
        assert!(is_xq_tilde(&tilde), "Example 7.2 first query is XQ∼");
        assert!(!is_composition_free(&tilde), "query conditions are not XQ⁻");

        let minus = to_composition_free(&tilde);
        assert!(
            is_composition_free(&minus),
            "translated query is XQ⁻:\n{minus}"
        );

        // Semantics preserved on a few documents.
        for doc in [
            "<r><a><b><c/><d/></b><f/></a></r>", // b has c and d ⇒ not(...) false
            "<r><a><b><c/></b><f/></a></r>",     // b has c but no d/e ⇒ true
            "<r><a><f/></a></r>",                // no b at all ⇒ true
            "<r><a><b><d/></b><f/></a></r>",     // b without c ⇒ true
            "<r/>",
        ] {
            let t = parse_tree(doc).unwrap();
            assert_eq!(
                boolean_result(&tilde, &t).unwrap(),
                boolean_result(&minus, &t).unwrap(),
                "doc = {doc}"
            );
        }
    }

    #[test]
    fn round_trip_tilde_minus_tilde() {
        let tilde = p(r#"
            <result>
            { for $x in $root/a return
                if (for $y in $x/b return $y/c) then $x }
            </result>
        "#);
        assert!(is_xq_tilde(&tilde));
        let minus = to_composition_free(&tilde);
        assert!(is_composition_free(&minus));
        let back = to_xq_tilde(&minus);
        assert!(is_xq_tilde(&back));
        for doc in ["<r><a><b><c/></b></a></r>", "<r><a><b/></a></r>", "<r/>"] {
            let t = parse_tree(doc).unwrap();
            let want = boolean_result(&tilde, &t).unwrap();
            assert_eq!(boolean_result(&minus, &t).unwrap(), want, "minus, {doc}");
            assert_eq!(boolean_result(&back, &t).unwrap(), want, "back, {doc}");
        }
    }

    #[test]
    fn strict_core_recognition() {
        let q = p("for $x in $root/a return <w>{$x}</w>");
        assert!(is_strict_core(&q));
        let q = p("let $x := <a/> return $x");
        assert!(!is_strict_core(&q));
        let q = p("(<a><b/></a>)/b");
        assert!(!is_strict_core(&q), "steps on non-variables are not core");
    }

    #[test]
    fn composition_free_recognition() {
        // Paper intro: books_2004 is composition-free (after where-desugaring).
        let q = p(r#"
            <books_2004>
            { for $x in $root/book return
                <book>{ $x/title }</book> }
            </books_2004>
        "#);
        assert!(is_composition_free(&q));
        // A for over a constructed value is not composition-free.
        let q = p("for $y in <a><b/></a> return $y/b");
        assert!(!is_composition_free(&q));
        // A for over another for is not composition-free.
        let q = p("for $y in (for $w in $root/b return <b>{$w}</b>) return $y/*");
        assert!(!is_composition_free(&q));
    }

    #[test]
    fn empty_sequence_condition_translates() {
        let q = p("<result>{ for $x in $root/a return if (()) then $x }</result>");
        assert!(is_xq_tilde(&q));
        let minus = to_composition_free(&q);
        assert!(is_composition_free(&minus));
        let t = parse_tree("<r><a/></r>").unwrap();
        assert!(!boolean_result(&minus, &t).unwrap(), "() is false");
    }
}
