//! The iterator-based streaming evaluator of Theorem 4.5 — the EXPSPACE
//! upper bound for `XQ[=deep, child, descendant]`.
//!
//! The materializing evaluator can build intermediate trees of doubly
//! exponential size (Prop 4.2 + Lemma 3.3). This engine follows the
//! paper's alternative: a *list iterator design pattern* with
//! `getNext`/`atEnd` (plus the derived `count`/`get`), where
//!
//! * results are streams of opening/closing-tag [`Token`]s, never trees;
//! * a `for`-variable binds to a **lazy handle** — "item `m` of
//!   `[[α]](~e)`" — not to a materialized tree;
//! * referencing a variable *re-streams* its defining expression and
//!   skips to item `m` (recomputation trades time for space);
//! * axis steps and deep equality work directly on token streams with
//!   depth counters.
//!
//! Live state is therefore a bounded number of cursors and counters per
//! query variable: [`StreamStats::peak_live_cursors`] measures it, and the
//! E4 experiment contrasts it with the materializing evaluator's allocated
//! nodes on the Prop 4.2 blowup family.

use cv_xtree::{Axis, Label, NodeTest, Token, Tree};
use std::cell::Cell;
use std::rc::Rc;
use xq_core::ast::{Cond, EqMode, Query, Var};

/// Streaming failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Unbound variable.
    UnboundVariable(String),
    /// `=mon` is not an XQuery equality.
    BadEqualityMode,
    /// The step budget was exhausted (streaming recomputes aggressively;
    /// time can be exponential in the query).
    Budget,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            StreamError::BadEqualityMode => f.write_str("=mon is not an XQuery equality"),
            StreamError::Budget => f.write_str("streaming step budget exhausted"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Counters exposed by the streaming engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Tokens produced at the top level.
    pub tokens_out: u64,
    /// Total cursor pulls (the time cost of recomputation).
    pub pulls: u64,
    /// Times a defining expression was re-streamed for a variable
    /// reference or a loop restart.
    pub recomputations: u64,
    /// Peak number of simultaneously live cursors — the measured "working
    /// memory" of Theorem 4.5 (each cursor is O(1) counters plus a
    /// constant number of references).
    pub peak_live_cursors: u64,
}

#[derive(Clone)]
struct Shared {
    pulls: Rc<Cell<u64>>,
    live: Rc<Cell<u64>>,
    peak: Rc<Cell<u64>>,
    recomp: Rc<Cell<u64>>,
    max_pulls: u64,
}

impl Shared {
    fn new(max_pulls: u64) -> Shared {
        Shared {
            pulls: Rc::new(Cell::new(0)),
            live: Rc::new(Cell::new(0)),
            peak: Rc::new(Cell::new(0)),
            recomp: Rc::new(Cell::new(0)),
            max_pulls,
        }
    }

    fn pull(&self) -> Result<(), StreamError> {
        self.pulls.set(self.pulls.get() + 1);
        if self.pulls.get() > self.max_pulls {
            return Err(StreamError::Budget);
        }
        Ok(())
    }

    fn alloc(&self) {
        self.live.set(self.live.get() + 1);
        if self.live.get() > self.peak.get() {
            self.peak.set(self.live.get());
        }
    }

    fn free(&self) {
        self.live.set(self.live.get() - 1);
    }

    fn recompute(&self) {
        self.recomp.set(self.recomp.get() + 1);
    }
}

/// What a variable is bound to.
#[derive(Clone)]
enum Binding<'q> {
    /// The input tree, pre-tokenized (given data, not working memory).
    Input(Rc<[Token]>),
    /// Item `index` of `[[expr]](env)` — a lazy handle.
    Lazy {
        expr: &'q Query,
        env: Env<'q>,
        index: u64,
    },
}

struct EnvNode<'q> {
    var: Var,
    binding: Binding<'q>,
    parent: Env<'q>,
}

type Env<'q> = Option<Rc<EnvNode<'q>>>;

fn bind<'q>(env: &Env<'q>, var: Var, binding: Binding<'q>) -> Env<'q> {
    Some(Rc::new(EnvNode {
        var,
        binding,
        parent: env.clone(),
    }))
}

fn lookup<'q>(env: &Env<'q>, v: &Var) -> Result<Binding<'q>, StreamError> {
    let mut cur = env;
    while let Some(node) = cur {
        if &node.var == v {
            return Ok(node.binding.clone());
        }
        cur = &node.parent;
    }
    Err(StreamError::UnboundVariable(v.name().to_string()))
}

/// A pull cursor over a token stream.
struct XCursor<'q> {
    kind: Kind<'q>,
    shared: Shared,
}

enum Kind<'q> {
    Done,
    /// Raw token slice (the input or a subtree of it).
    Slice {
        tokens: Rc<[Token]>,
        pos: usize,
    },
    /// `⟨a⟩ body ⟨/a⟩`.
    Elem {
        tag: Label,
        opened: bool,
        body: Option<Box<XCursor<'q>>>,
    },
    /// `α` then `β`.
    Seq {
        cur: Box<XCursor<'q>>,
        rest: Option<(&'q Query, Env<'q>)>,
    },
    /// Pass through item #index of the inner stream.
    Item {
        inner: Box<XCursor<'q>>,
        index: u64,
        seen: u64,
        depth: i64,
        done: bool,
    },
    /// Axis step over all items of a re-streamable base.
    AxisStep {
        base: &'q Query,
        env: Env<'q>,
        axis: Axis,
        test: NodeTest,
        match_idx: u64,
        sub: Option<MatchEmitter<'q>>,
        exhausted: bool,
    },
    /// `for var in source return body`, item-by-item with lazy bindings.
    For {
        var: Var,
        source: &'q Query,
        body: &'q Query,
        env: Env<'q>,
        m: u64,
        cur: Option<Box<XCursor<'q>>>,
        exhausted: bool,
    },
    /// `if c then body` — condition evaluated on first pull.
    If {
        cond: &'q Cond,
        body: &'q Query,
        env: Env<'q>,
        decided: Option<Box<XCursor<'q>>>,
        dead: bool,
    },
}

/// Streams the subtree of match #target within an inner cursor.
struct MatchEmitter<'q> {
    inner: Box<XCursor<'q>>,
    axis: Axis,
    test: NodeTest,
    target: u64,
    matches_seen: u64,
    depth: i64,
    emitting_from: Option<i64>,
    found: bool,
}

impl Drop for XCursor<'_> {
    fn drop(&mut self) {
        self.shared.free();
    }
}

impl<'q> XCursor<'q> {
    fn new(kind: Kind<'q>, shared: &Shared) -> XCursor<'q> {
        shared.alloc();
        XCursor {
            kind,
            shared: shared.clone(),
        }
    }

    fn of_query(q: &'q Query, env: &Env<'q>, shared: &Shared) -> Result<XCursor<'q>, StreamError> {
        let kind = match q {
            Query::Empty => Kind::Done,
            Query::Elem(a, body) => Kind::Elem {
                tag: a.clone(),
                opened: false,
                body: Some(Box::new(XCursor::of_query(body, env, shared)?)),
            },
            Query::Seq(a, b) => Kind::Seq {
                cur: Box::new(XCursor::of_query(a, env, shared)?),
                rest: Some((b, env.clone())),
            },
            Query::Var(v) => return XCursor::of_binding(lookup(env, v)?, shared),
            Query::Step(base, axis, test) => Kind::AxisStep {
                base,
                env: env.clone(),
                axis: *axis,
                test: test.clone(),
                match_idx: 0,
                sub: None,
                exhausted: false,
            },
            Query::For(v, s, b) | Query::Let(v, s, b) => Kind::For {
                var: v.clone(),
                source: s,
                body: b,
                env: env.clone(),
                m: 0,
                cur: None,
                exhausted: false,
            },
            Query::If(c, body) => Kind::If {
                cond: c,
                body,
                env: env.clone(),
                decided: None,
                dead: false,
            },
        };
        Ok(XCursor::new(kind, shared))
    }

    fn of_binding(b: Binding<'q>, shared: &Shared) -> Result<XCursor<'q>, StreamError> {
        match b {
            Binding::Input(tokens) => Ok(XCursor::new(Kind::Slice { tokens, pos: 0 }, shared)),
            Binding::Lazy { expr, env, index } => {
                shared.recompute();
                let inner = XCursor::of_query(expr, &env, shared)?;
                Ok(XCursor::new(
                    Kind::Item {
                        inner: Box::new(inner),
                        index,
                        seen: 0,
                        depth: 0,
                        done: false,
                    },
                    shared,
                ))
            }
        }
    }

    /// Pulls the next token.
    fn next(&mut self) -> Result<Option<Token>, StreamError> {
        self.shared.pull()?;
        let shared = self.shared.clone();
        match &mut self.kind {
            Kind::Done => Ok(None),
            Kind::Slice { tokens, pos } => {
                if *pos < tokens.len() {
                    let t = tokens[*pos].clone();
                    *pos += 1;
                    Ok(Some(t))
                } else {
                    Ok(None)
                }
            }
            Kind::Elem { tag, opened, body } => {
                if !*opened {
                    *opened = true;
                    return Ok(Some(Token::Open(tag.clone())));
                }
                if let Some(b) = body {
                    if let Some(t) = b.next()? {
                        return Ok(Some(t));
                    }
                    let t = Token::Close(tag.clone());
                    self.kind = Kind::Done;
                    return Ok(Some(t));
                }
                Ok(None)
            }
            Kind::Seq { cur, rest } => loop {
                if let Some(t) = cur.next()? {
                    return Ok(Some(t));
                }
                match rest.take() {
                    Some((q, env)) => {
                        **cur = XCursor::of_query(q, &env, &shared)?;
                    }
                    None => return Ok(None),
                }
            },
            Kind::Item {
                inner,
                index,
                seen,
                depth,
                done,
            } => {
                if *done {
                    return Ok(None);
                }
                loop {
                    let Some(t) = inner.next()? else {
                        *done = true;
                        return Ok(None);
                    };
                    match &t {
                        Token::Open(_) => {
                            if *depth == 0 {
                                *seen += 1;
                            }
                            *depth += 1;
                        }
                        Token::Close(_) => {
                            *depth -= 1;
                        }
                    }
                    // 1-based item number of the token just processed.
                    if *seen == *index + 1 {
                        if *depth == 0 {
                            *done = true; // closing token of our item
                        }
                        return Ok(Some(t));
                    }
                    if *seen > *index + 1 {
                        *done = true;
                        return Ok(None);
                    }
                }
            }
            Kind::AxisStep {
                base,
                env,
                axis,
                test,
                match_idx,
                sub,
                exhausted,
            } => loop {
                if *exhausted {
                    return Ok(None);
                }
                if sub.is_none() {
                    shared.recompute();
                    let inner = XCursor::of_query(base, env, &shared)?;
                    *sub = Some(MatchEmitter {
                        inner: Box::new(inner),
                        axis: *axis,
                        test: test.clone(),
                        target: *match_idx,
                        matches_seen: 0,
                        depth: 0,
                        emitting_from: None,
                        found: false,
                    });
                }
                let emitter = sub.as_mut().expect("just set");
                match emitter.next()? {
                    Some(t) => return Ok(Some(t)),
                    None => {
                        let found = emitter.found;
                        *sub = None;
                        if found {
                            *match_idx += 1;
                        } else {
                            *exhausted = true;
                        }
                    }
                }
            },
            Kind::For {
                var,
                source,
                body,
                env,
                m,
                cur,
                exhausted,
            } => loop {
                if *exhausted {
                    return Ok(None);
                }
                if cur.is_none() {
                    if !item_exists(source, env, *m, &shared)? {
                        *exhausted = true;
                        return Ok(None);
                    }
                    let new_env = bind(
                        env,
                        var.clone(),
                        Binding::Lazy {
                            expr: source,
                            env: env.clone(),
                            index: *m,
                        },
                    );
                    *cur = Some(Box::new(XCursor::of_query(body, &new_env, &shared)?));
                }
                if let Some(t) = cur.as_mut().expect("just set").next()? {
                    return Ok(Some(t));
                }
                *cur = None;
                *m += 1;
            },
            Kind::If {
                cond,
                body,
                env,
                decided,
                dead,
            } => {
                if *dead {
                    return Ok(None);
                }
                if decided.is_none() {
                    if eval_cond(cond, env, &shared)? {
                        *decided = Some(Box::new(XCursor::of_query(body, env, &shared)?));
                    } else {
                        *dead = true;
                        return Ok(None);
                    }
                }
                decided.as_mut().expect("just set").next()
            }
        }
    }
}

impl MatchEmitter<'_> {
    /// Whether an `Open` that raised the depth to `d` starts a node
    /// selected by the axis (items are at depth 1).
    fn selects(&self, d: i64) -> bool {
        match self.axis {
            Axis::SelfAxis => d == 1,
            Axis::Child => d == 2,
            Axis::Descendant => d >= 2,
            Axis::DescendantOrSelf => d >= 1,
        }
    }

    fn next(&mut self) -> Result<Option<Token>, StreamError> {
        loop {
            let Some(t) = self.inner.next()? else {
                return Ok(None);
            };
            match &t {
                Token::Open(label) => {
                    self.depth += 1;
                    if self.emitting_from.is_none()
                        && self.selects(self.depth)
                        && self.test.matches(label)
                    {
                        if self.matches_seen == self.target {
                            self.emitting_from = Some(self.depth);
                            self.found = true;
                        }
                        self.matches_seen += 1;
                    }
                    if self.emitting_from.is_some() {
                        return Ok(Some(t));
                    }
                }
                Token::Close(_) => {
                    let emit = self.emitting_from.is_some();
                    let finished = self.emitting_from == Some(self.depth);
                    self.depth -= 1;
                    if emit {
                        if finished {
                            // Final close of this match: emit it and stop;
                            // the enclosing AxisStep restarts for the next
                            // match.
                            self.emitting_from = None;
                            self.inner.kind = Kind::Done;
                            return Ok(Some(t));
                        }
                        return Ok(Some(t));
                    }
                }
            }
        }
    }
}

/// Does `[[expr]](env)` have an item #m (0-based)? Re-streams and counts.
fn item_exists<'q>(
    expr: &'q Query,
    env: &Env<'q>,
    m: u64,
    shared: &Shared,
) -> Result<bool, StreamError> {
    shared.recompute();
    let mut c = XCursor::of_query(expr, env, shared)?;
    let mut depth: i64 = 0;
    let mut seen: u64 = 0;
    while let Some(t) = c.next()? {
        match t {
            Token::Open(_) => {
                if depth == 0 {
                    seen += 1;
                    if seen > m {
                        return Ok(true);
                    }
                }
                depth += 1;
            }
            Token::Close(_) => depth -= 1,
        }
    }
    Ok(false)
}

fn first_label(b: Binding<'_>, shared: &Shared) -> Result<Option<Label>, StreamError> {
    let mut c = XCursor::of_binding(b, shared)?;
    match c.next()? {
        Some(Token::Open(l)) => Ok(Some(l)),
        _ => Ok(None),
    }
}

fn streams_equal<'q>(a: Binding<'q>, b: Binding<'q>, shared: &Shared) -> Result<bool, StreamError> {
    let mut ca = XCursor::of_binding(a, shared)?;
    let mut cb = XCursor::of_binding(b, shared)?;
    loop {
        match (ca.next()?, cb.next()?) {
            (None, None) => return Ok(true),
            (Some(x), Some(y)) if x == y => continue,
            _ => return Ok(false),
        }
    }
}

fn eval_cond<'q>(c: &'q Cond, env: &Env<'q>, shared: &Shared) -> Result<bool, StreamError> {
    match c {
        Cond::True => Ok(true),
        Cond::VarEq(x, y, mode) => {
            let bx = lookup(env, x)?;
            let by = lookup(env, y)?;
            match mode {
                EqMode::Deep => streams_equal(bx, by, shared),
                EqMode::Atomic => Ok(first_label(bx, shared)? == first_label(by, shared)?),
                EqMode::Mon => Err(StreamError::BadEqualityMode),
            }
        }
        Cond::ConstEq(x, a, mode) => {
            let bx = lookup(env, x)?;
            match mode {
                EqMode::Deep => {
                    let mut cx = XCursor::of_binding(bx, shared)?;
                    let t1 = cx.next()?;
                    let t2 = cx.next()?;
                    let t3 = cx.next()?;
                    Ok(t1 == Some(Token::Open(a.clone()))
                        && t2 == Some(Token::Close(a.clone()))
                        && t3.is_none())
                }
                _ => Ok(first_label(bx, shared)?.as_ref() == Some(a)),
            }
        }
        Cond::Query(q) => {
            let mut c = XCursor::of_query(q, env, shared)?;
            Ok(c.next()?.is_some())
        }
        Cond::Some(v, source, sat) => {
            let mut m = 0u64;
            while item_exists(source, env, m, shared)? {
                let new_env = bind(
                    env,
                    v.clone(),
                    Binding::Lazy {
                        expr: source,
                        env: env.clone(),
                        index: m,
                    },
                );
                if eval_cond(sat, &new_env, shared)? {
                    return Ok(true);
                }
                m += 1;
            }
            Ok(false)
        }
        Cond::Every(v, source, sat) => {
            let mut m = 0u64;
            while item_exists(source, env, m, shared)? {
                let new_env = bind(
                    env,
                    v.clone(),
                    Binding::Lazy {
                        expr: source,
                        env: env.clone(),
                        index: m,
                    },
                );
                if !eval_cond(sat, &new_env, shared)? {
                    return Ok(false);
                }
                m += 1;
            }
            Ok(true)
        }
        Cond::And(a, b) => Ok(eval_cond(a, env, shared)? && eval_cond(b, env, shared)?),
        Cond::Or(a, b) => Ok(eval_cond(a, env, shared)? || eval_cond(b, env, shared)?),
        Cond::Not(a) => Ok(!eval_cond(a, env, shared)?),
    }
}

/// Streams `[[q]]($root ↦ input)` into a token vector, reporting stats.
/// `max_pulls` bounds the (possibly exponential) recomputation time.
pub fn stream_query(
    q: &Query,
    input: &Tree,
    max_pulls: u64,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    let shared = Shared::new(max_pulls);
    let tokens: Rc<[Token]> = input.tokens().into();
    let env = bind(&None, Var::root(), Binding::Input(tokens));
    let mut cursor = XCursor::of_query(q, &env, &shared)?;
    let mut out = Vec::new();
    while let Some(t) = cursor.next()? {
        out.push(t);
    }
    drop(cursor);
    let stats = StreamStats {
        tokens_out: out.len() as u64,
        pulls: shared.pulls.get(),
        recomputations: shared.recomp.get(),
        peak_live_cursors: shared.peak.get(),
    };
    Ok((out, stats))
}

/// Pulls only until the Boolean verdict is known: for `⟨a⟩α⟨/a⟩`, whether
/// the root element has a child (§7.1 convention); otherwise whether the
/// stream is nonempty. Never materializes the result.
pub fn stream_boolean(q: &Query, input: &Tree, max_pulls: u64) -> Result<bool, StreamError> {
    let shared = Shared::new(max_pulls);
    let tokens: Rc<[Token]> = input.tokens().into();
    let env = bind(&None, Var::root(), Binding::Input(tokens));
    let mut cursor = XCursor::of_query(q, &env, &shared)?;
    match q {
        Query::Elem(_, _) => {
            let _open = cursor.next()?;
            match cursor.next()? {
                Some(Token::Open(_)) => Ok(true),
                _ => Ok(false),
            }
        }
        _ => Ok(cursor.next()?.is_some()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_xtree::parse_tree;
    use xq_core::parse_query;

    const FUEL: u64 = 10_000_000;

    fn agree(src: &str, doc: &str) -> StreamStats {
        let q = parse_query(src).unwrap();
        let t = parse_tree(doc).unwrap();
        let (got, stats) =
            stream_query(&q, &t, FUEL).unwrap_or_else(|e| panic!("stream failed for {src}: {e}"));
        let want: Vec<Token> = xq_core::eval_query(&q, &t)
            .unwrap()
            .iter()
            .flat_map(Tree::tokens)
            .collect();
        assert_eq!(got, want, "query {src} on {doc}");
        stats
    }

    #[test]
    fn streams_basic_forms() {
        agree("()", "<r/>");
        agree("<a/>", "<r/>");
        agree("<a><b/></a>", "<r/>");
        agree("($root, $root)", "<r><x/></r>");
        agree("$root", "<r><a><b/></a></r>");
    }

    #[test]
    fn streams_steps_on_input() {
        let doc = "<r><a><b/></a><c/><a/></r>";
        agree("$root/a", doc);
        agree("$root/*", doc);
        agree("$root//b", doc);
        agree("$root//*", doc);
        agree("$root/self::r", doc);
        agree("$root/zzz", doc);
    }

    #[test]
    fn streams_for_loops_with_lazy_bindings() {
        let doc = "<r><a><x/></a><a><y/></a></r>";
        agree("for $v in $root/a return <w>{$v}</w>", doc);
        agree("for $v in $root/a return $v/*", doc);
        agree(
            "for $v in $root/a return for $u in $v/* return ($u, $u)",
            doc,
        );
    }

    #[test]
    fn streams_steps_over_constructed_values() {
        // Composition: steps on intermediate results, the hard case.
        let doc = "<r><a><x/></a></r>";
        agree("(<w><a/><b/></w>)/a", doc);
        agree(
            "for $y in (for $w in $root/a return <b>{$w}</b>) return $y/*",
            doc,
        );
        agree("(<w><a><b/></a></w>)//b", doc);
    }

    #[test]
    fn conditions_and_equality() {
        let doc = "<r><a><b/></a><a><b/></a><c/></r>";
        agree(
            "for $x in $root/a return for $y in $root/a return \
             if ($x = $y) then <deepeq/>",
            doc,
        );
        agree(
            "for $x in $root/* return if ($x =atomic <c/>) then <hit/>",
            doc,
        );
        agree("for $x in $root/* return if (not($x/b)) then <nob/>", doc);
        agree(
            "if (some $x in $root/* satisfies $x =atomic <c/>) then <y/>",
            doc,
        );
        agree("if (every $x in $root/a satisfies $x/b) then <all/>", doc);
    }

    #[test]
    fn boolean_short_circuits() {
        let q = parse_query("<out>{ for $x in $root/* return <w/> }</out>").unwrap();
        let t = parse_tree("<r><a/><b/><c/></r>").unwrap();
        assert!(stream_boolean(&q, &t, FUEL).unwrap());
        let q = parse_query("<out>{ $root/zzz }</out>").unwrap();
        assert!(!stream_boolean(&q, &t, FUEL).unwrap());
    }

    #[test]
    fn live_cursors_stay_small_while_output_grows() {
        // Doubling family: result size 2^n, live cursor count O(n).
        fn doubling(n: usize) -> String {
            let mut q = String::from("<z/>");
            for i in 0..n {
                q = format!("for $v{i} in ({q}, {q}) return <z/>");
            }
            q
        }
        let t = parse_tree("<r/>").unwrap();
        let mut peaks = Vec::new();
        // Streaming trades time for space: the recomputation cost on this
        // family is super-exponential in n (the EXPSPACE/2EXPTIME story),
        // so the unit test stays at small n; the bench sweeps further.
        for n in [1usize, 2, 3, 4] {
            let q = parse_query(&doubling(n)).unwrap();
            let (out, stats) = stream_query(&q, &t, FUEL).unwrap();
            assert_eq!(out.len() as u64, 2 * (1 << n), "n = {n}");
            peaks.push(stats.peak_live_cursors);
        }
        // Peak cursors grow far slower than output.
        assert!(peaks[3] < 100, "expected small live state, got {peaks:?}");
    }

    #[test]
    fn recomputation_is_counted() {
        let stats = agree(
            "for $v in $root/a return ($v, $v, $v)",
            "<r><a><deep><tree/></deep></a></r>",
        );
        assert!(stats.recomputations >= 3, "{stats:?}");
    }

    #[test]
    fn budget_stops_runaway_recomputation() {
        let q = parse_query(
            "for $a in $root//* return for $b in $root//* return \
             for $c in $root//* return <t/>",
        )
        .unwrap();
        let mut g = cv_xtree::TreeGen::new(5);
        let t = cv_xtree::random_tree(&mut g, 60, &["a"]);
        assert_eq!(
            stream_query(&q, &t, 10_000).unwrap_err(),
            StreamError::Budget
        );
    }

    #[test]
    fn unbound_variable_reported() {
        let q = parse_query("$nope").unwrap();
        let t = parse_tree("<r/>").unwrap();
        assert!(matches!(
            stream_query(&q, &t, FUEL),
            Err(StreamError::UnboundVariable(_))
        ));
    }

    #[test]
    fn agreement_on_random_queries_and_documents() {
        // Broad differential test against the reference semantics.
        let queries = [
            "<out>{ for $x in $root/* return <w>{ $x//b }</w> }</out>",
            "for $x in $root//a return if ($x/b) then $x else <none/>",
            "for $x in $root/* return for $y in $x/* return \
             if ($x = $y) then <odd/> else <ok/>",
            "(<c>{ $root/a }</c>)//b",
        ];
        for seed in 0..5u64 {
            let mut g = cv_xtree::TreeGen::new(seed);
            let t = cv_xtree::random_tree(&mut g, 20, &["a", "b", "c"]);
            for src in &queries {
                let q = parse_query(src).unwrap();
                let (got, _) = stream_query(&q, &t, FUEL).unwrap();
                let want: Vec<Token> = xq_core::eval_query(&q, &t)
                    .unwrap()
                    .iter()
                    .flat_map(Tree::tokens)
                    .collect();
                assert_eq!(got, want, "query {src} seed {seed}");
            }
        }
    }
}
