//! Unranked ordered node-labeled trees — the XML data model of Core XQuery
//! (Koch, PODS 2005, §3).
//!
//! The paper works with *pure node-labeled unranked ordered trees*: no
//! attributes, no text nodes; atomic values are leaves (equivalently, their
//! labels). An XML document is the tag string of such a tree, written with
//! opening and closing tags only (`<a>...</a>`, abbreviated `<a/>` for
//! leaves).
//!
//! Four representations are provided, with conversions between them:
//!
//! * [`Tree`] — a recursive, immutable, cheaply clonable tree (used by the
//!   Figure 1 denotational semantics, which passes whole subtrees around);
//! * [`Document`] — an arena with [`NodeId`]s, parent/child links, and
//!   preorder numbering (used by the composition-free evaluators, whose
//!   variables range over *input-tree nodes*, Prop 7.3);
//! * [`ArenaDoc`] — the production-oriented document store: parallel
//!   [`NodeId`]-indexed vectors with contiguous child spans and interned
//!   [`LabelId`] labels (O(1) label equality, no per-node allocation);
//! * token streams of [`Token`]s (used by the streaming evaluator of
//!   Theorem 4.5 and the string-positional semantics of Theorem 6.6).

mod arena;
mod document;
mod generate;
mod parse;
mod tree;

pub use arena::{
    forest_from_itokens, intern_tokens, interned_labels, resolve_tokens, ArenaBuilder, ArenaDoc,
    IToken, LabelId, LabelInterner,
};
pub use document::{Document, NodeId};
pub use generate::{
    random_arena_document, random_document, random_forest, random_tree, DoublingFamily, TreeGen,
};
pub use parse::{parse_forest, parse_tree, XmlError};
pub use tree::{Label, Token, Tree};

/// The XPath axes considered in the paper: `child` and `descendant` are the
/// core ones (§3, footnote 7); `self` and `descendant-or-self` ("dos")
/// appear in the composition-elimination rewriting of §7.2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Axis {
    /// Children of the context node, in document order.
    Child,
    /// Proper descendants of the context node, in document order.
    Descendant,
    /// The context node itself.
    SelfAxis,
    /// The context node followed by its proper descendants ("dos").
    DescendantOrSelf,
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::SelfAxis => "self",
            Axis::DescendantOrSelf => "dos",
        })
    }
}

/// A node test: either a specific tag name or the wildcard `*`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum NodeTest {
    /// Matches nodes with exactly this label.
    Tag(Label),
    /// `*`: matches every node.
    Wildcard,
}

impl NodeTest {
    /// Builds a tag node test.
    pub fn tag(s: impl Into<Label>) -> NodeTest {
        NodeTest::Tag(s.into())
    }

    /// Whether this test accepts a node labeled `label`.
    pub fn matches(&self, label: &Label) -> bool {
        match self {
            NodeTest::Tag(t) => t == label,
            NodeTest::Wildcard => true,
        }
    }
}

impl std::fmt::Display for NodeTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeTest::Tag(t) => write!(f, "{t}"),
            NodeTest::Wildcard => f.write_str("*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_test_matching() {
        let a = Label::from("a");
        let b = Label::from("b");
        assert!(NodeTest::tag("a").matches(&a));
        assert!(!NodeTest::tag("a").matches(&b));
        assert!(NodeTest::Wildcard.matches(&a));
        assert_eq!(NodeTest::Wildcard.to_string(), "*");
        assert_eq!(NodeTest::tag("x").to_string(), "x");
    }

    #[test]
    fn axis_display() {
        assert_eq!(Axis::Child.to_string(), "child");
        assert_eq!(Axis::DescendantOrSelf.to_string(), "dos");
    }
}
