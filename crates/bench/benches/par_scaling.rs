//! T16 — data-parallel evaluation over the arena store (`xq_core::par`,
//! `xq_stream::stream_query_arena_par`): the cross-join `for`-nests of
//! the doubling families evaluated at 1/2/4 worker threads, plus the
//! indexed-vs-linear `Env::lookup` contrast on a deep `for`-nest
//! environment. The harness binary prints the corresponding table (and
//! `--json` emits it machine-readably); this target keeps the workloads
//! compiling and timeable under `cargo bench`.
//!
//! Note: wall-clock *speedup* from the threaded rows needs actual cores —
//! on a single-core container the 2/4-thread rows measure overhead only.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cv_xtree::{DoublingFamily, Tree};
use xq_bench::{par_workload, stream_workload, ENV_NEST_DEPTH};
use xq_core::{eval_query_par, Budget, Env, Threads, Var};

/// Bench-sized instances (the harness sweeps larger ones).
const FAMILIES: [(DoublingFamily, u32); 3] = [
    (DoublingFamily::Binary, 9),
    (DoublingFamily::Wide, 10),
    (DoublingFamily::Comb, 8),
];

fn bench_eval_par(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/eval");
    for (family, n) in FAMILIES {
        let doc = family.arena(n);
        let q = par_workload(family);
        for threads in [1usize, 2, 4] {
            let budget = Budget::default().with_threads(Threads::N(threads));
            g.bench_function(format!("{family}-n{n}-t{threads}"), |b| {
                b.iter(|| black_box(eval_query_par(&q, &doc, budget).unwrap()))
            });
        }
    }
    g.finish();
}

fn bench_stream_par(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/stream");
    let (family, n) = FAMILIES[0];
    let doc = family.arena(n);
    let q = stream_workload(family);
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("{family}-n{n}-t{threads}"), |b| {
            b.iter(|| {
                black_box(
                    xq_stream::stream_query_arena_par(
                        &q,
                        &doc,
                        u64::MAX,
                        xq_stream::DEFAULT_BUFFER_LIMIT,
                        threads,
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// The deep-`for`-nest environment: `ENV_NEST_DEPTH` live bindings, the
/// referenced variable bound outermost (the linear scan's worst case).
fn bench_env_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/env-lookup");
    let mut env = Env::new();
    env.bind(Var::root(), Tree::leaf("doc"));
    for i in 0..ENV_NEST_DEPTH {
        env.bind(Var::new(format!("v{i}")), Tree::leaf("x"));
    }
    let root = Var::root();
    g.bench_function(format!("indexed-depth{ENV_NEST_DEPTH}"), |b| {
        b.iter(|| black_box(env.lookup(&root).is_some()))
    });
    g.bench_function(format!("linear-depth{ENV_NEST_DEPTH}"), |b| {
        b.iter(|| black_box(env.lookup_linear(&root).is_some()))
    });
    g.finish();
}

criterion_group!(benches, bench_eval_par, bench_stream_par, bench_env_lookup);
criterion_main!(benches);
