//! The iterator-based streaming evaluator of Theorem 4.5 — the EXPSPACE
//! upper bound for `XQ[=deep, child, descendant]` — built as one
//! composable cursor pipeline.
//!
//! The materializing evaluator can build intermediate trees of doubly
//! exponential size (Prop 4.2 + Lemma 3.3). This engine follows the
//! paper's alternative: a *list iterator design pattern* with
//! `getNext`/`atEnd` (plus the derived `count`/`get`), where
//!
//! * results are streams of opening/closing-tag [`Token`]s, never trees;
//! * a `for`-variable binds to a **lazy handle** — "item `m` of
//!   `[[α]](~e)`" — not to a materialized tree;
//! * referencing a variable *re-streams* its defining expression and
//!   skips to item `m` (recomputation trades time for space);
//! * axis steps and deep equality work directly on token streams with
//!   depth counters.
//!
//! Live state is therefore a bounded number of cursors and counters per
//! query variable: [`StreamStats::peak_live_cursors`] measures it, and the
//! E4 experiment contrasts it with the materializing evaluator's allocated
//! nodes on the Prop 4.2 blowup family.
//!
//! # Architecture: one pipeline, four entry points
//!
//! Every public entry point is a thin configuration wrapper over the same
//! machinery:
//!
//! * [`cursor`](self) — the [`Cursor`] trait (`pull`/`size_hint`/`fork`/
//!   kill) and the node cursors (slice, element construction, sequence,
//!   axis step, `for`-loop, conditional, lazy item handle), each charging
//!   exactly one pull per call and registering in the live-cursor gauge
//!   for its lifetime.
//! * `pipeline` — [`Pipeline`], the one builder mapping a query AST (or
//!   hand-picked stages) onto composed cursors over a shared budget.
//! * `buffer` — the [`BufferPolicy`]-driven per-source buffering decision:
//!   a `for`/`some`/`every` source streaming to completion within the cap
//!   is materialized once and iterated as plain slices; an oversized
//!   source falls back to the lazy Theorem 4.5 discipline
//!   ([`StreamStats::lazy_fallbacks`]), so worst-case space is
//!   `O(live cursors × cap)`. [`StreamStats::buffered_sources`] counts
//!   decisions that held.
//! * `par` — the planner-sharded parallel path: workers stream chunks
//!   through the same pipeline and hand the merger bounded interned-token
//!   runs, consumed incrementally in chunk order
//!   ([`StreamStats::peak_buffered_tokens`] proves the bound).
//!
//! The `cursor_diff` differential suite locks the whole stack byte- and
//! counter-identical to the pre-refactor engine over the coverage corpus,
//! including budget error points.

use cv_xtree::{ArenaDoc, Token, Tree};
use std::rc::Rc;
use xq_core::ast::Query;

mod buffer;
mod cursor;
mod par;
mod pipeline;

pub use buffer::BufferPolicy;
pub use cursor::{BoxCursor, Cursor};
pub use par::{QUEUE_CAP_TOKENS as PAR_QUEUE_CAP_TOKENS, RUN_TOKENS as PAR_RUN_TOKENS};
pub use pipeline::Pipeline;

/// Streaming failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Unbound variable.
    UnboundVariable(String),
    /// `=mon` is not an XQuery equality.
    BadEqualityMode,
    /// The step budget was exhausted (streaming recomputes aggressively;
    /// time can be exponential in the query).
    Budget,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            StreamError::BadEqualityMode => f.write_str("=mon is not an XQuery equality"),
            StreamError::Budget => f.write_str("streaming step budget exhausted"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Counters exposed by the streaming engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Tokens produced at the top level.
    pub tokens_out: u64,
    /// Total cursor pulls (the time cost of recomputation).
    pub pulls: u64,
    /// Times a defining expression was re-streamed for a variable
    /// reference or a loop restart.
    pub recomputations: u64,
    /// Peak number of simultaneously live cursors — the measured "working
    /// memory" of Theorem 4.5 (each cursor is O(1) counters plus a
    /// constant number of references).
    pub peak_live_cursors: u64,
    /// Per-source buffering decisions that engaged and *held* — the
    /// source stayed under the [`BufferPolicy`] cap for its whole life
    /// (fully drained or abandoned early without overflowing). Counted
    /// identically on the Rc, arena, and parallel paths (a
    /// planner-sharded loop counts once: its row set is a
    /// planner-materialized buffer); always 0 when the cap is 0
    /// ([`stream_query`]).
    pub buffered_sources: u64,
    /// Workers actually spawned by [`stream_query_arena_par`] — the
    /// maximum over the plan's shard executions, which can be less than
    /// the requested thread count when a work-list has fewer items than
    /// threads. 0 on every sequential path.
    pub workers: usize,
    /// Buffering decisions reverted to the lazy discipline because the
    /// source overflowed the per-source cap.
    pub lazy_fallbacks: u64,
    /// High-water mark of tokens parked in working buffers: per-source
    /// item buffers, and (on the parallel path) the worker→merger run
    /// queues. Maximum across workers/accounting domains, not a sum —
    /// each domain tracks its own peak. This is the number that proves
    /// the parallel merge incremental: it stays bounded while
    /// `tokens_out` grows.
    pub peak_buffered_tokens: u64,
}

/// Default per-source token cap for [`stream_query_buffered`]: generous
/// enough for everyday intermediates, small enough that the fast path's
/// worst-case extra space stays bounded.
pub const DEFAULT_BUFFER_LIMIT: usize = 1 << 16;

/// Streams `[[q]]($root ↦ input)` into a token vector, reporting stats.
/// `max_pulls` bounds the (possibly exponential) recomputation time.
///
/// This is the pure Theorem 4.5 discipline — every variable reference
/// re-streams. [`stream_query_buffered`] is the fast path.
pub fn stream_query(
    q: &Query,
    input: &Tree,
    max_pulls: u64,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    stream_tokens(q, input.tokens().into(), max_pulls, BufferPolicy::lazy())
}

/// [`stream_query`] with the buffered fast path enabled: any `for`/`some`/
/// `every` source whose full token stream fits in `buffer_limit` tokens is
/// materialized once and iterated as plain slices instead of being
/// re-streamed per item and per variable reference. Oversized sources fall
/// back to the lazy discipline, so the Theorem 4.5 space bound degrades by
/// at most `O(buffer_limit)` *per live loop/quantifier scope* (nested live
/// scopes each hold a buffer).
pub fn stream_query_buffered(
    q: &Query,
    input: &Tree,
    max_pulls: u64,
    buffer_limit: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    stream_tokens(
        q,
        input.tokens().into(),
        max_pulls,
        BufferPolicy::fixed(buffer_limit),
    )
}

/// [`stream_query_buffered`] over an arena-backed document: the `$root`
/// binding is tokenized straight out of the [`ArenaDoc`]'s parallel
/// vectors — no `Rc` tree is materialized, and per-item bindings are
/// plain token slices. This is the arena fast path of the streaming
/// engine; output is byte-identical to streaming `doc.to_tree()`.
pub fn stream_query_arena(
    q: &Query,
    doc: &ArenaDoc,
    max_pulls: u64,
    buffer_limit: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    stream_tokens(
        q,
        doc.tokens().into(),
        max_pulls,
        BufferPolicy::fixed(buffer_limit),
    )
}

/// [`stream_query_arena`] with every planner-shardable loop distributed
/// over `threads` workers: the query is analyzed by the parallel planner
/// (`ParPlan`, `xq_core::plan`) — `Seq` branches stream independently
/// and concatenate in branch order, nested `for`s flatten into one
/// work-list of node rows, `let`-bound singleton sources hoist, and
/// `where`-filtered sources resolve to filtered node sets. Each sharded
/// loop's rows split into contiguous chunks; workers stream the body with
/// the loop variables bound to row token slices straight out of the
/// shared arena — exactly the binding the buffered fast path would
/// produce. Per-chunk output crosses back as bounded interned-token runs
/// that the merger consumes *incrementally* in chunk (= iteration) order,
/// so the stream is byte-identical to [`stream_query_arena`]'s while peak
/// in-flight memory stays bounded ([`StreamStats::peak_buffered_tokens`]).
/// Queries the planner cannot shard (and `threads <= 1`) take the
/// sequential path.
///
/// The `$root` token stream, when some body needs it, is tokenized from
/// the arena **once** before the thread split; each worker re-wraps the
/// shared slice (a flat copy, not a re-walk of the document).
///
/// `max_pulls` bounds each worker's chunk (and each sequential plan leaf)
/// independently: parallel never exhausts a budget that sufficed
/// sequentially. Merged stats sum `pulls`/`recomputations`/
/// `buffered_sources`/`lazy_fallbacks`, take the maximum for
/// `peak_live_cursors`/`peak_buffered_tokens`, and report
/// actually-spawned `workers`.
pub fn stream_query_arena_par(
    q: &Query,
    doc: &ArenaDoc,
    max_pulls: u64,
    buffer_limit: usize,
    threads: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    if threads <= 1 {
        return stream_query_arena(q, doc, max_pulls, buffer_limit);
    }
    par::stream_par(q, doc, max_pulls, buffer_limit, threads)
}

/// Streams with every knob derived from an evaluation
/// [`Budget`](xq_core::Budget): the pull cap from `max_steps`, the
/// per-source buffering cap from [`BufferPolicy::from_budget`] (buffer
/// under the item allowance, lazy fallback above it).
pub fn stream_query_budgeted(
    q: &Query,
    input: &Tree,
    budget: &xq_core::Budget,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    stream_tokens(
        q,
        input.tokens().into(),
        budget.max_steps,
        BufferPolicy::from_budget(budget),
    )
}

/// [`stream_query_budgeted`] over an arena document, additionally taking
/// the worker count from the budget's `threads` knob (the parallel path
/// engages exactly as in [`stream_query_arena_par`]).
pub fn stream_query_arena_budgeted(
    q: &Query,
    doc: &ArenaDoc,
    budget: &xq_core::Budget,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    let policy = BufferPolicy::from_budget(budget);
    stream_query_arena_par(
        q,
        doc,
        budget.max_steps,
        policy.per_source_cap,
        budget.threads.count(),
    )
}

/// The one sequential driver behind every non-parallel entry point: a
/// [`Pipeline`] configured with the caller's knobs, drained to a vector.
fn stream_tokens(
    q: &Query,
    tokens: Rc<[Token]>,
    max_pulls: u64,
    policy: BufferPolicy,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    let pipe = Pipeline::new(max_pulls, policy);
    let mut cursor = pipe.build(q, tokens)?;
    let mut out = Vec::new();
    while let Some(t) = cursor.pull()? {
        out.push(t);
    }
    drop(cursor);
    let mut stats = pipe.stats();
    stats.tokens_out = out.len() as u64;
    Ok((out, stats))
}

/// Pulls only until the Boolean verdict is known: for `⟨a⟩α⟨/a⟩`, whether
/// the root element has a child (§7.1 convention); otherwise whether the
/// stream is nonempty. Never materializes the result.
pub fn stream_boolean(q: &Query, input: &Tree, max_pulls: u64) -> Result<bool, StreamError> {
    let pipe = Pipeline::new(max_pulls, BufferPolicy::lazy());
    let tokens: Rc<[Token]> = input.tokens().into();
    let mut cursor = pipe.build(q, tokens)?;
    match q {
        Query::Elem(_, _) => {
            let _open = cursor.pull()?;
            match cursor.pull()? {
                Some(Token::Open(_)) => Ok(true),
                _ => Ok(false),
            }
        }
        _ => Ok(cursor.pull()?.is_some()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_xtree::parse_tree;
    use xq_core::parse_query;

    const FUEL: u64 = 10_000_000;

    fn agree(src: &str, doc: &str) -> StreamStats {
        let q = parse_query(src).unwrap();
        let t = parse_tree(doc).unwrap();
        let (got, stats) =
            stream_query(&q, &t, FUEL).unwrap_or_else(|e| panic!("stream failed for {src}: {e}"));
        let want: Vec<Token> = xq_core::eval_query(&q, &t)
            .unwrap()
            .iter()
            .flat_map(Tree::tokens)
            .collect();
        assert_eq!(got, want, "query {src} on {doc}");
        stats
    }

    #[test]
    fn streams_basic_forms() {
        agree("()", "<r/>");
        agree("<a/>", "<r/>");
        agree("<a><b/></a>", "<r/>");
        agree("($root, $root)", "<r><x/></r>");
        agree("$root", "<r><a><b/></a></r>");
    }

    #[test]
    fn streams_steps_on_input() {
        let doc = "<r><a><b/></a><c/><a/></r>";
        agree("$root/a", doc);
        agree("$root/*", doc);
        agree("$root//b", doc);
        agree("$root//*", doc);
        agree("$root/self::r", doc);
        agree("$root/zzz", doc);
    }

    #[test]
    fn streams_for_loops_with_lazy_bindings() {
        let doc = "<r><a><x/></a><a><y/></a></r>";
        agree("for $v in $root/a return <w>{$v}</w>", doc);
        agree("for $v in $root/a return $v/*", doc);
        agree(
            "for $v in $root/a return for $u in $v/* return ($u, $u)",
            doc,
        );
    }

    #[test]
    fn streams_steps_over_constructed_values() {
        // Composition: steps on intermediate results, the hard case.
        let doc = "<r><a><x/></a></r>";
        agree("(<w><a/><b/></w>)/a", doc);
        agree(
            "for $y in (for $w in $root/a return <b>{$w}</b>) return $y/*",
            doc,
        );
        agree("(<w><a><b/></a></w>)//b", doc);
    }

    #[test]
    fn conditions_and_equality() {
        let doc = "<r><a><b/></a><a><b/></a><c/></r>";
        agree(
            "for $x in $root/a return for $y in $root/a return \
             if ($x = $y) then <deepeq/>",
            doc,
        );
        agree(
            "for $x in $root/* return if ($x =atomic <c/>) then <hit/>",
            doc,
        );
        agree("for $x in $root/* return if (not($x/b)) then <nob/>", doc);
        agree(
            "if (some $x in $root/* satisfies $x =atomic <c/>) then <y/>",
            doc,
        );
        agree("if (every $x in $root/a satisfies $x/b) then <all/>", doc);
    }

    #[test]
    fn boolean_short_circuits() {
        let q = parse_query("<out>{ for $x in $root/* return <w/> }</out>").unwrap();
        let t = parse_tree("<r><a/><b/><c/></r>").unwrap();
        assert!(stream_boolean(&q, &t, FUEL).unwrap());
        let q = parse_query("<out>{ $root/zzz }</out>").unwrap();
        assert!(!stream_boolean(&q, &t, FUEL).unwrap());
    }

    #[test]
    fn live_cursors_stay_small_while_output_grows() {
        // Doubling family: result size 2^n, live cursor count O(n).
        fn doubling(n: usize) -> String {
            let mut q = String::from("<z/>");
            for i in 0..n {
                q = format!("for $v{i} in ({q}, {q}) return <z/>");
            }
            q
        }
        let t = parse_tree("<r/>").unwrap();
        let mut peaks = Vec::new();
        // Streaming trades time for space: the recomputation cost on this
        // family is super-exponential in n (the EXPSPACE/2EXPTIME story),
        // so the unit test stays at small n; the bench sweeps further.
        for n in [1usize, 2, 3, 4] {
            let q = parse_query(&doubling(n)).unwrap();
            let (out, stats) = stream_query(&q, &t, FUEL).unwrap();
            assert_eq!(out.len() as u64, 2 * (1 << n), "n = {n}");
            peaks.push(stats.peak_live_cursors);
        }
        // Peak cursors grow far slower than output.
        assert!(peaks[3] < 100, "expected small live state, got {peaks:?}");
    }

    #[test]
    fn recomputation_is_counted() {
        let stats = agree(
            "for $v in $root/a return ($v, $v, $v)",
            "<r><a><deep><tree/></deep></a></r>",
        );
        assert!(stats.recomputations >= 3, "{stats:?}");
    }

    #[test]
    fn budget_stops_runaway_recomputation() {
        let q = parse_query(
            "for $a in $root//* return for $b in $root//* return \
             for $c in $root//* return <t/>",
        )
        .unwrap();
        let mut g = cv_xtree::TreeGen::new(5);
        let t = cv_xtree::random_tree(&mut g, 60, &["a"]);
        assert_eq!(
            stream_query(&q, &t, 10_000).unwrap_err(),
            StreamError::Budget
        );
    }

    #[test]
    fn unbound_variable_reported() {
        let q = parse_query("$nope").unwrap();
        let t = parse_tree("<r/>").unwrap();
        assert!(matches!(
            stream_query(&q, &t, FUEL),
            Err(StreamError::UnboundVariable(_))
        ));
    }

    /// The buffered fast path agrees with the lazy discipline (and hence
    /// the reference semantics) on the whole corpus of this module.
    #[test]
    fn buffered_fast_path_agrees_with_lazy() {
        let corpus = [
            ("()", "<r/>"),
            (
                "for $v in $root/a return <w>{$v}</w>",
                "<r><a><x/></a><a><y/></a></r>",
            ),
            (
                "for $v in $root/a return for $u in $v/* return ($u, $u)",
                "<r><a><x/></a><a><y/></a></r>",
            ),
            (
                "for $y in (for $w in $root/a return <b>{$w}</b>) return $y/*",
                "<r><a><x/></a></r>",
            ),
            ("(<c>{ $root/a }</c>)//b", "<r><a><b/></a></r>"),
            (
                "for $x in $root/a return for $y in $root/a return \
                 if ($x = $y) then <deepeq/>",
                "<r><a><b/></a><a><b/></a><c/></r>",
            ),
            (
                "if (some $x in $root/* satisfies $x =atomic <c/>) then <y/>",
                "<r><a/><c/></r>",
            ),
            (
                "if (every $x in $root/a satisfies $x/b) then <all/>",
                "<r><a><b/></a></r>",
            ),
        ];
        for (src, doc) in corpus {
            let q = parse_query(src).unwrap();
            let t = parse_tree(doc).unwrap();
            let (want, _) = stream_query(&q, &t, FUEL).unwrap();
            let (got, _stats) = stream_query_buffered(&q, &t, FUEL, DEFAULT_BUFFER_LIMIT).unwrap();
            assert_eq!(got, want, "query {src} on {doc}");
            // A tiny cap forces the lazy fallback — still correct.
            let (fallback, _) = stream_query_buffered(&q, &t, FUEL, 1).unwrap();
            assert_eq!(fallback, want, "fallback for {src} on {doc}");
        }
    }

    #[test]
    fn fast_path_cuts_pulls_on_the_doubling_family() {
        fn doubling(n: usize) -> String {
            let mut q = String::from("<z/>");
            for i in 0..n {
                q = format!("for $v{i} in ({q}, {q}) return <z/>");
            }
            q
        }
        let t = parse_tree("<r/>").unwrap();
        let q = parse_query(&doubling(4)).unwrap();
        let (want, lazy) = stream_query(&q, &t, FUEL).unwrap();
        let (got, fast) = stream_query_buffered(&q, &t, FUEL, DEFAULT_BUFFER_LIMIT).unwrap();
        assert_eq!(got, want);
        assert!(fast.buffered_sources > 0, "{fast:?}");
        assert!(
            fast.pulls * 4 < lazy.pulls,
            "expected ≥4× fewer pulls: fast {} vs lazy {}",
            fast.pulls,
            lazy.pulls
        );
    }

    #[test]
    fn buffering_preserves_quantifier_short_circuit() {
        // The first item of $root/* already satisfies the `some`; the
        // buffered path must not stream the remaining (large) siblings.
        let mut doc = String::from("<r><a/>");
        for _ in 0..200 {
            doc.push_str("<b><c><d/><d/></c></b>");
        }
        doc.push_str("</r>");
        let t = parse_tree(&doc).unwrap();
        let q = parse_query("if (some $x in $root/* satisfies $x =atomic <a/>) then <y/>").unwrap();
        // Tight budget: far below the document's token count, ample for a
        // short-circuiting probe.
        let (out, stats) = stream_query_buffered(&q, &t, 500, DEFAULT_BUFFER_LIMIT)
            .expect("short-circuit must not buffer the whole source");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(stats.pulls < 500, "{stats:?}");
    }

    #[test]
    fn fast_path_still_respects_the_budget() {
        let q = parse_query(
            "for $a in $root//* return for $b in $root//* return \
             for $c in $root//* return <t/>",
        )
        .unwrap();
        let mut g = cv_xtree::TreeGen::new(5);
        let t = cv_xtree::random_tree(&mut g, 60, &["a"]);
        assert_eq!(
            stream_query_buffered(&q, &t, 2_000, DEFAULT_BUFFER_LIMIT).unwrap_err(),
            StreamError::Budget
        );
    }

    #[test]
    fn arena_source_agrees_with_tree_source() {
        let queries = [
            "$root//b",
            "for $x in $root/* return <w>{ $x/* }</w>",
            "if (some $x in $root/* satisfies $x =atomic <a/>) then <y/>",
        ];
        for seed in 0..4u64 {
            let mut g = cv_xtree::TreeGen::new(seed);
            let t = cv_xtree::random_tree(&mut g, 25, &["a", "b", "c"]);
            let doc = ArenaDoc::from_tree(&t);
            for src in &queries {
                let q = parse_query(src).unwrap();
                let (want, _) = stream_query_buffered(&q, &t, FUEL, DEFAULT_BUFFER_LIMIT).unwrap();
                let (got, _) = stream_query_arena(&q, &doc, FUEL, DEFAULT_BUFFER_LIMIT).unwrap();
                assert_eq!(got, want, "query {src} seed {seed}");
            }
        }
    }

    #[test]
    fn parallel_arena_stream_is_byte_identical() {
        let queries = [
            "for $x in $root//a return <w>{ $x/* }</w>",
            "<out>{ for $x in $root/* return ($x//b, <w>{ $x/a }</w>) }</out>",
            "for $x in $root/* return if (some $y in $root/* satisfies $x = $y) then $x",
            "$root//b", // no outer for: sequential fallback
        ];
        for seed in 0..4u64 {
            let mut g = cv_xtree::TreeGen::new(seed);
            let t = cv_xtree::random_tree(&mut g, 30, &["a", "b", "c"]);
            let doc = ArenaDoc::from_tree(&t);
            for src in &queries {
                let q = parse_query(src).unwrap();
                let (want, _) = stream_query_arena(&q, &doc, FUEL, DEFAULT_BUFFER_LIMIT).unwrap();
                for threads in [1usize, 2, 4] {
                    let (got, _) =
                        stream_query_arena_par(&q, &doc, FUEL, DEFAULT_BUFFER_LIMIT, threads)
                            .unwrap();
                    assert_eq!(got, want, "query {src} seed {seed} threads {threads}");
                }
                // A tiny buffer cap (lazy discipline in the workers) must
                // not change the bytes either.
                let (got, _) = stream_query_arena_par(&q, &doc, FUEL, 1, 4).unwrap();
                let (lazy_want, _) = stream_query_arena(&q, &doc, FUEL, 1).unwrap();
                assert_eq!(got, lazy_want, "lazy query {src} seed {seed}");
            }
        }
    }

    #[test]
    fn agreement_on_random_queries_and_documents() {
        // Broad differential test against the reference semantics.
        let queries = [
            "<out>{ for $x in $root/* return <w>{ $x//b }</w> }</out>",
            "for $x in $root//a return if ($x/b) then $x else <none/>",
            "for $x in $root/* return for $y in $x/* return \
             if ($x = $y) then <odd/> else <ok/>",
            "(<c>{ $root/a }</c>)//b",
        ];
        for seed in 0..5u64 {
            let mut g = cv_xtree::TreeGen::new(seed);
            let t = cv_xtree::random_tree(&mut g, 20, &["a", "b", "c"]);
            for src in &queries {
                let q = parse_query(src).unwrap();
                let (got, _) = stream_query(&q, &t, FUEL).unwrap();
                let want: Vec<Token> = xq_core::eval_query(&q, &t)
                    .unwrap()
                    .iter()
                    .flat_map(Tree::tokens)
                    .collect();
                assert_eq!(got, want, "query {src} seed {seed}");
            }
        }
    }

    // -----------------------------------------------------------------
    // Regression tests for the refactor's new counters and entry points.
    // -----------------------------------------------------------------

    /// `buffered_sources` counts held per-source decisions, identically
    /// on the Rc and arena paths, and never under the lazy discipline.
    #[test]
    fn buffered_sources_counted_consistently() {
        let src = "for $v in $root/a return <w>{$v}</w>";
        let doc = "<r><a><x/></a><a><y/></a></r>";
        let q = parse_query(src).unwrap();
        let t = parse_tree(doc).unwrap();
        let arena = ArenaDoc::from_tree(&t);

        let (_, lazy) = stream_query(&q, &t, FUEL).unwrap();
        assert_eq!(lazy.buffered_sources, 0, "lazy path must not buffer");
        assert_eq!(lazy.lazy_fallbacks, 0);
        assert_eq!(lazy.peak_buffered_tokens, 0);

        let (_, rc) = stream_query_buffered(&q, &t, FUEL, DEFAULT_BUFFER_LIMIT).unwrap();
        assert_eq!(rc.buffered_sources, 1, "one for-source, one decision");
        assert_eq!(rc.lazy_fallbacks, 0);
        assert!(rc.peak_buffered_tokens > 0, "{rc:?}");

        let (_, ar) = stream_query_arena(&q, &arena, FUEL, DEFAULT_BUFFER_LIMIT).unwrap();
        assert_eq!(
            ar.buffered_sources, rc.buffered_sources,
            "arena and Rc paths must report the same decisions"
        );
        assert_eq!(ar.lazy_fallbacks, rc.lazy_fallbacks);
    }

    /// Overflow reverts to lazy and is reported as a fallback, not a
    /// buffered source.
    #[test]
    fn overflow_counts_as_lazy_fallback() {
        let src = "for $v in $root/a return $v";
        let q = parse_query(src).unwrap();
        let t = parse_tree("<r><a><x/><y/></a></r>").unwrap();
        // Cap of 1: the 6-token source overflows immediately.
        let (_, stats) = stream_query_buffered(&q, &t, FUEL, 1).unwrap();
        assert_eq!(stats.buffered_sources, 0, "{stats:?}");
        assert!(stats.lazy_fallbacks >= 1, "{stats:?}");
    }

    /// The parallel path reports sharded-loop decisions and counts
    /// deterministically per thread count.
    #[test]
    fn par_path_reports_buffering_decisions() {
        let q = parse_query("for $x in $root/* return <w>{ $x/* }</w>").unwrap();
        let mut g = cv_xtree::TreeGen::new(7);
        let t = cv_xtree::random_tree(&mut g, 30, &["a", "b"]);
        let doc = ArenaDoc::from_tree(&t);
        let (_, s2) = stream_query_arena_par(&q, &doc, FUEL, DEFAULT_BUFFER_LIMIT, 2).unwrap();
        let (_, s2b) = stream_query_arena_par(&q, &doc, FUEL, DEFAULT_BUFFER_LIMIT, 2).unwrap();
        assert!(s2.buffered_sources >= 1, "sharded loop counts: {s2:?}");
        assert_eq!(s2.buffered_sources, s2b.buffered_sources, "deterministic");
    }

    /// The incremental merge keeps in-flight tokens bounded: on a query
    /// whose parallel output is large, `peak_buffered_tokens` stays far
    /// below `tokens_out`.
    #[test]
    fn par_merge_peak_is_bounded() {
        // Each of the ~hundreds of rows emits its whole subtree three
        // times: a large output from a planner-sharded loop.
        let q = parse_query("for $x in $root//* return ($x, $x, $x)").unwrap();
        let mut g = cv_xtree::TreeGen::new(11);
        let t = cv_xtree::random_tree(&mut g, 400, &["a", "b"]);
        let doc = ArenaDoc::from_tree(&t);
        let (out, stats) = stream_query_arena_par(&q, &doc, FUEL, 0, 4).unwrap();
        assert!(stats.workers > 1, "{stats:?}");
        assert!(out.len() > 4 * par::QUEUE_CAP_TOKENS, "not large enough");
        // Bound: the queues can hold at most workers × cap plus one
        // in-flight run per worker.
        let bound = (stats.workers * (par::QUEUE_CAP_TOKENS + par::RUN_TOKENS)) as u64;
        assert!(
            stats.peak_buffered_tokens <= bound,
            "peak {} exceeds bound {bound}",
            stats.peak_buffered_tokens
        );
    }

    /// The Budget-driven entry point derives its knobs from the budget.
    #[test]
    fn budgeted_entry_derives_knobs() {
        let q = parse_query("for $v in $root/a return <w>{$v}</w>").unwrap();
        let t = parse_tree("<r><a><x/></a><a><y/></a></r>").unwrap();
        let budget = xq_core::Budget {
            max_steps: FUEL,
            max_items: FUEL,
            ..xq_core::Budget::default()
        };
        let (got, stats) = stream_query_budgeted(&q, &t, &budget).unwrap();
        let (want, wstats) = stream_query_buffered(&q, &t, FUEL, DEFAULT_BUFFER_LIMIT).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats, wstats);
        // A tiny item allowance shrinks the buffering cap (lazy fallback)
        // without changing bytes.
        let tight = xq_core::Budget {
            max_steps: FUEL,
            max_items: 1,
            ..xq_core::Budget::default()
        };
        let (got, stats) = stream_query_budgeted(&q, &t, &tight).unwrap();
        assert_eq!(got, want);
        assert!(stats.lazy_fallbacks >= 1, "{stats:?}");
        // An exhausted step budget errors deterministically.
        let none = xq_core::Budget {
            max_steps: 0,
            ..xq_core::Budget::default()
        };
        assert_eq!(
            stream_query_budgeted(&q, &t, &none).unwrap_err(),
            StreamError::Budget
        );
    }

    /// The arena budgeted entry agrees with the explicit-knob par entry.
    #[test]
    fn arena_budgeted_entry_agrees() {
        let q = parse_query("for $x in $root//a return <w>{ $x/* }</w>").unwrap();
        let mut g = cv_xtree::TreeGen::new(3);
        let t = cv_xtree::random_tree(&mut g, 30, &["a", "b"]);
        let doc = ArenaDoc::from_tree(&t);
        let budget = xq_core::Budget {
            max_steps: FUEL,
            max_items: FUEL,
            threads: xq_core::Threads::N(4),
            ..xq_core::Budget::default()
        };
        let (got, _) = stream_query_arena_budgeted(&q, &doc, &budget).unwrap();
        let (want, _) = stream_query_arena_par(&q, &doc, FUEL, DEFAULT_BUFFER_LIMIT, 4).unwrap();
        assert_eq!(got, want);
    }

    /// Hand-composed pipelines: fork replays from the fork point, kill
    /// decays to the (still charging) exhausted stream.
    #[test]
    fn hand_composed_pipeline_forks_and_kills() {
        use cv_xtree::{Axis, Label, NodeTest};
        let t = parse_tree("<r><a><b/></a><c/><a/></r>").unwrap();
        let pipe = Pipeline::new(10_000, BufferPolicy::lazy());
        let mut step = pipe.step(t.tokens(), Axis::Child, NodeTest::Tag(Label::new("a")));
        // Pull the first match's open tag, then fork: both streams must
        // finish the remaining five tokens identically.
        let first = pipe
            .step(t.tokens(), Axis::Child, NodeTest::Tag(Label::new("a")))
            .pull()
            .unwrap();
        assert_eq!(first, Some(Token::Open(Label::new("a"))));
        assert!(step.pull().unwrap().is_some());
        let mut fork = step.fork();
        let rest: Vec<Token> = std::iter::from_fn(|| step.pull().unwrap()).collect();
        let rest_fork: Vec<Token> = std::iter::from_fn(|| fork.pull().unwrap()).collect();
        assert_eq!(rest, rest_fork);
        assert_eq!(rest.len(), 5, "{rest:?}");
        // Kill: exhausted, but pulls still charge.
        let mut killed = pipe.step(t.tokens(), Axis::Child, NodeTest::Wildcard);
        assert!(killed.pull().unwrap().is_some());
        let before = pipe.stats().pulls;
        killed.kill();
        assert_eq!(killed.pull().unwrap(), None);
        assert_eq!(pipe.stats().pulls, before + 1, "killed pulls charge");
    }
}
