//! Shared workloads for the benchmark harness (see `benches/` for the
//! per-experiment Criterion targets and `src/bin/harness.rs` for the
//! EXPERIMENTS.md table generator), plus [`legacy_stream`], the frozen
//! pre-refactor streaming engine that `cursor_diff` and T22 baseline
//! against.

pub mod legacy_stream;

use cv_xtree::{Axis, DoublingFamily, NodeTest, Tree, TreeGen};
use xq_core::ast::{Cond, EqMode};
use xq_core::{parse_query, Query, Var};

/// A fixed bibliography-style document generator: `n` books with years,
/// titles, and authors — the workload shape of the paper's introduction.
pub fn bib_document(books: usize) -> Tree {
    let mut gen = TreeGen::new(books as u64);
    let book_nodes: Vec<Tree> = (0..books)
        .map(|i| {
            let year = if gen.chance(1, 3) { "y2004" } else { "y1999" };
            let authors = (0..1 + gen.below(3)).map(|a| {
                Tree::node(
                    "author",
                    [Tree::node(
                        "lastname",
                        [Tree::leaf(format!("name{}", (i + a) % 7))],
                    )],
                )
            });
            let mut children = vec![
                Tree::node("year", [Tree::leaf(year)]),
                Tree::node("title", [Tree::leaf(format!("t{i}"))]),
            ];
            children.extend(authors);
            Tree::node("book", children)
        })
        .collect();
    Tree::node("doc", [Tree::node("bib", book_nodes)])
}

/// The intro's `books_2004` query (composition-free).
pub fn books_query() -> Query {
    // The intro's query, written in strict XQ⁻ form: every `for`/`some`
    // ranges over a single step on a variable (`/bib/book` becomes two
    // nested `for`s; the year test becomes a `some`-chain).
    parse_query(
        r#"<books_2004>
          { for $b in $root/bib return
            for $x in $b/book
            where some $w in $x/year satisfies
                  some $u in $w/y2004 satisfies true
            return <book>{ $x/title }
              <authors>{ for $y in $x/author return
                         <author>{ $y/lastname }</author> }</authors>
            </book> }
          </books_2004>"#,
    )
    .expect("static query parses")
}

/// The doubling query family for the streaming experiment (output size
/// `2^n` from a query of size `O(n)`).
pub fn doubling_query(n: usize) -> Query {
    let mut q = String::from("<z/>");
    for i in 0..n {
        q = format!("for $v{i} in ({q}, {q}) return <z/>");
    }
    parse_query(&q).expect("static query parses")
}

/// The T11/T14/`opt_vs_naive` derived-difference workload: the Example 2.4
/// construction, its built-in counterpart, and a `⟨R, S⟩` input with
/// |R| = 60, |S| = 30 (every second member shared). Returns
/// `(derived, builtin, input)`.
pub fn diff_workload() -> (cv_monad::Expr, cv_monad::Expr, cv_value::Value) {
    use cv_monad::Expr;
    use cv_value::Value;
    let r: Vec<Value> = (0..60).map(|i| Value::atom(format!("r{i}"))).collect();
    let s: Vec<Value> = (0..60)
        .filter(|i| i % 2 == 0)
        .map(|i| Value::atom(format!("r{i}")))
        .collect();
    let input = Value::tuple([("R", Value::set(r)), ("S", Value::set(s))]);
    let derived = cv_monad::derived::derived_diff();
    let builtin = Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into());
    (derived, builtin, input)
}

/// The T16/`par_scaling` cross-join workload for a doubling family: an
/// outer `for` over one tag class joined (by always-false atomic
/// equality, so `some` never short-circuits) against a full re-scan of
/// the other class. Work is `Θ(|x-items| · |doc|)` — the large-`for`-nest
/// shape of the paper's combined-complexity results — and the outer loop
/// is exactly what `xq_core::par` distributes across threads.
pub fn par_workload(family: DoublingFamily) -> Query {
    let (x_src, y_src) = match family {
        // Binary: `a` at even depths, `b` at odd depths.
        DoublingFamily::Binary => ("$root//a", "$root//b"),
        // Wide: leaf children cycling a/b/c.
        DoublingFamily::Wide => ("$root/a", "$root/b"),
        // Comb: an `s` spine carrying `t` leaves.
        DoublingFamily::Comb => ("$root//t", "$root//s"),
    };
    parse_query(&format!(
        "for $x in {x_src} return \
         if (some $y in {y_src} satisfies $x =atomic $y) then <hit/>"
    ))
    .expect("static query parses")
}

/// The T16 streaming workload: a token-throughput shape (outer `for`,
/// per-item subtree emission) rather than the cross-join — under the
/// buffered streaming engine the cross-join's per-item source overflows
/// the buffer cap and degenerates to quadratic lazy re-streaming, which
/// would measure the Theorem 4.5 recomputation discipline, not sharding.
pub fn stream_workload(family: DoublingFamily) -> Query {
    // Sources are kept under the buffered engine's token cap (the comb
    // spine `$root//s` would overflow it and degenerate the *sequential*
    // baseline the same way the cross-join does).
    let src = match family {
        DoublingFamily::Binary => "for $x in $root//a return <w>{ $x//b }</w>",
        DoublingFamily::Wide => "for $x in $root/a return <w>{ $x }</w>",
        DoublingFamily::Comb => "for $x in $root//t return <w>{ $x }</w>",
    };
    parse_query(src).expect("static query parses")
}

/// Depth of the deep-`for`-nest environment in the `Env::lookup` contrast
/// (T16 row and `par_scaling/env-lookup` bench).
pub const ENV_NEST_DEPTH: usize = 64;

/// T17/`par_scaling` planner-shape workloads: each exercises one shape
/// the `xq_core::plan` planner shards that the PR 4 `outer_for_split`
/// could not — a `Seq` of two loops, a nested `for` flattened to (node,
/// node) rows, and a loop whose body mentions `$root` (the shared
/// root-tree build). Returns `(name, query)` pairs.
pub fn planner_workloads(family: DoublingFamily) -> Vec<(&'static str, Query)> {
    let (x_src, y_src) = match family {
        DoublingFamily::Binary => ("$root//a", "$root//b"),
        DoublingFamily::Wide => ("$root/a", "$root/b"),
        DoublingFamily::Comb => ("$root//t", "$root//s"),
    };
    vec![
        (
            "seq-of-fors",
            parse_query(&format!(
                "(for $x in {x_src} return <w>{{ $x }}</w>, \
                  for $y in {y_src} return <v>{{ $y }}</v>)"
            ))
            .expect("static query parses"),
        ),
        (
            "nested-for",
            parse_query(&format!(
                "for $x in {x_src} return for $y in $x/* return <p>{{ $y }}</p>"
            ))
            .expect("static query parses"),
        ),
        (
            "root-share",
            parse_query(&format!(
                "for $x in {x_src} return if (some $y in $root/* satisfies \
                 $x =atomic $y) then <hit/>"
            ))
            .expect("static query parses"),
        ),
    ]
}

// ---------------------------------------------------------------------
// T17: a deterministic random-query corpus for the parallel-path
// coverage measurement. Mirrors the `par_diff.rs` proptest grammar, but
// drawn from a seeded splitmix64 stream so the harness (which has no
// proptest) regenerates the *same* corpus every run — coverage numbers
// are comparable across PRs.
// ---------------------------------------------------------------------

fn rand_var(g: &mut TreeGen, depth: usize) -> Var {
    let i = g.below(depth + 1);
    if i == 0 {
        Var::root()
    } else {
        Var::new(format!("v{}", i - 1))
    }
}

fn rand_axis(g: &mut TreeGen) -> Axis {
    *g.choose(&[
        Axis::Child,
        Axis::Child,
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::SelfAxis,
    ])
}

fn rand_test(g: &mut TreeGen) -> NodeTest {
    match g.below(3) {
        0 => NodeTest::Wildcard,
        1 => NodeTest::tag("a"),
        _ => NodeTest::tag("b"),
    }
}

fn rand_var_step(g: &mut TreeGen, depth: usize) -> Query {
    Query::step(Query::Var(rand_var(g, depth)), rand_axis(g), rand_test(g))
}

fn rand_root_chain(g: &mut TreeGen) -> Query {
    let steps = 1 + g.below(3);
    (0..steps).fold(Query::Var(Var::root()), |q, _| {
        Query::step(q, rand_axis(g), rand_test(g))
    })
}

fn rand_cond(g: &mut TreeGen, depth: usize, size: u32) -> Cond {
    if size > 0 && g.chance(1, 5) {
        return rand_cond(g, depth, size - 1).negate();
    }
    if size > 0 && g.chance(2, 5) {
        return Cond::query(rand_xq(g, depth, 1));
    }
    if g.chance(1, 2) {
        let mode = if g.chance(1, 2) {
            EqMode::Deep
        } else {
            EqMode::Atomic
        };
        Cond::VarEq(rand_var(g, depth), rand_var(g, depth), mode)
    } else {
        let tag = if g.chance(1, 2) { "a" } else { "k" };
        Cond::ConstEq(rand_var(g, depth), tag.into(), EqMode::Atomic)
    }
}

fn rand_xq(g: &mut TreeGen, depth: usize, size: u32) -> Query {
    if size == 0 {
        return match g.below(4) {
            0 => Query::Empty,
            1 => Query::leaf("k"),
            2 => Query::Var(rand_var(g, depth)),
            _ => rand_var_step(g, depth),
        };
    }
    match g.below(12) {
        0 | 1 => rand_var_step(g, depth),
        2 | 3 => {
            let tag = if g.chance(1, 2) { "w" } else { "x" };
            Query::elem(tag, rand_xq(g, depth, size - 1))
        }
        4 | 5 => Query::seq([rand_xq(g, depth, size - 1), rand_xq(g, depth, size - 1)]),
        6..=8 => {
            let s = rand_var_step(g, depth);
            let b = rand_xq(g, depth + 1, size - 1);
            Query::for_in(format!("v{depth}").as_str(), s, b)
        }
        9 | 10 => Query::if_then(rand_cond(g, depth, size - 1), rand_xq(g, depth, size - 1)),
        _ => Query::Var(rand_var(g, depth)),
    }
}

/// One random query of the T17 coverage corpus, mirroring the `par_diff`
/// distribution: mostly planner-shardable shapes (outer `for`s, `Seq`s of
/// loops, nested `for`s, `let`-hoisted sources, `where`-filtered sources)
/// plus raw XQ∼ queries for the fallback share.
fn rand_coverage_query(g: &mut TreeGen) -> Query {
    match g.below(14) {
        0..=2 => Query::for_in("v0", rand_root_chain(g), rand_xq(g, 1, 2)),
        3 | 4 => Query::elem(
            "out",
            Query::for_in("v0", rand_root_chain(g), rand_xq(g, 1, 2)),
        ),
        5 | 6 => {
            // Nested for: inner grounded at $root or at the outer var.
            let inner = if g.chance(1, 2) {
                rand_root_chain(g)
            } else {
                Query::step(Query::var("v0"), rand_axis(g), rand_test(g))
            };
            Query::for_in(
                "v0",
                rand_root_chain(g),
                Query::for_in("v1", inner, rand_xq(g, 2, 1)),
            )
        }
        7 | 8 => Query::seq([
            Query::for_in("v0", rand_root_chain(g), rand_xq(g, 1, 1)),
            rand_xq(g, 0, 1),
            Query::for_in("v0", rand_root_chain(g), rand_xq(g, 1, 1)),
        ]),
        9 => Query::let_in(
            "v0",
            Query::Var(Var::root()),
            Query::for_in(
                "v1",
                Query::step(Query::var("v0"), rand_axis(g), rand_test(g)),
                rand_xq(g, 2, 1),
            ),
        ),
        10 | 11 => {
            // where-filtered source.
            let filtered = Query::for_in(
                "v0",
                rand_root_chain(g),
                Query::if_then(rand_cond(g, 1, 1), Query::var("v0")),
            );
            Query::for_in("v0", filtered, rand_xq(g, 1, 1))
        }
        _ => rand_xq(g, 0, 3),
    }
}

/// The T17 coverage corpus: `cases` deterministic random queries (fixed
/// seed stream, comparable across runs and PRs).
pub fn coverage_corpus(cases: usize) -> Vec<Query> {
    let mut g = TreeGen::new(2005);
    (0..cases).map(|_| rand_coverage_query(&mut g)).collect()
}

/// The `let`-chain family for the composition-elimination blowup (E10).
pub fn let_chain_query(depth: usize) -> Query {
    let mut bindings = String::from("let $x0 := <a>{ $root/* }</a> return ");
    for i in 1..=depth {
        bindings.push_str(&format!(
            "let $x{i} := <a>{{ $x{prev}/* , $x{prev}/* }}</a> return ",
            prev = i - 1
        ));
    }
    parse_query(&format!("<out>{{ {bindings} $x{depth}/* }}</out>")).expect("static query parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_well_formed() {
        let doc = bib_document(10);
        assert!(doc.size() > 30);
        let out = xq_core::eval_query(&books_query(), &doc).unwrap();
        assert_eq!(out.len(), 1);
        assert!(xq_core::is_composition_free(&books_query()));
        assert!(doubling_query(3).size() > 0);
        assert!(!xq_core::is_composition_free(&let_chain_query(2)));
    }

    #[test]
    fn coverage_corpus_is_deterministic_and_evaluable() {
        let a = coverage_corpus(32);
        let b = coverage_corpus(32);
        assert_eq!(a, b, "same seed stream, same corpus");
        // Every corpus query evaluates (or budget-errors) on a small doc;
        // no unbound variables by construction.
        let mut g = TreeGen::new(0);
        let t = cv_xtree::random_tree(&mut g, 10, &["a", "b", "k"]);
        for q in &a {
            if let Err(e) = xq_core::eval_query(q, &t) {
                assert!(
                    matches!(e, xq_core::XqError::Budget { .. }),
                    "{q} failed with {e}"
                );
            }
        }
    }

    #[test]
    fn planner_workloads_shard() {
        use cv_xtree::DoublingFamily;
        let doc = DoublingFamily::Binary.arena(6);
        for (name, q) in planner_workloads(DoublingFamily::Binary) {
            let plan = xq_core::ParPlan::of(&q, &doc, xq_core::Budget::default());
            assert!(plan.engages(), "{name} must engage the planner");
        }
    }
}
