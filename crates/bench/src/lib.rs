//! Shared workloads for the benchmark harness (see `benches/` for the
//! per-experiment Criterion targets and `src/bin/harness.rs` for the
//! EXPERIMENTS.md table generator).

use cv_xtree::{DoublingFamily, Tree, TreeGen};
use xq_core::{parse_query, Query};

/// A fixed bibliography-style document generator: `n` books with years,
/// titles, and authors — the workload shape of the paper's introduction.
pub fn bib_document(books: usize) -> Tree {
    let mut gen = TreeGen::new(books as u64);
    let book_nodes: Vec<Tree> = (0..books)
        .map(|i| {
            let year = if gen.chance(1, 3) { "y2004" } else { "y1999" };
            let authors = (0..1 + gen.below(3)).map(|a| {
                Tree::node(
                    "author",
                    [Tree::node(
                        "lastname",
                        [Tree::leaf(format!("name{}", (i + a) % 7))],
                    )],
                )
            });
            let mut children = vec![
                Tree::node("year", [Tree::leaf(year)]),
                Tree::node("title", [Tree::leaf(format!("t{i}"))]),
            ];
            children.extend(authors);
            Tree::node("book", children)
        })
        .collect();
    Tree::node("doc", [Tree::node("bib", book_nodes)])
}

/// The intro's `books_2004` query (composition-free).
pub fn books_query() -> Query {
    // The intro's query, written in strict XQ⁻ form: every `for`/`some`
    // ranges over a single step on a variable (`/bib/book` becomes two
    // nested `for`s; the year test becomes a `some`-chain).
    parse_query(
        r#"<books_2004>
          { for $b in $root/bib return
            for $x in $b/book
            where some $w in $x/year satisfies
                  some $u in $w/y2004 satisfies true
            return <book>{ $x/title }
              <authors>{ for $y in $x/author return
                         <author>{ $y/lastname }</author> }</authors>
            </book> }
          </books_2004>"#,
    )
    .expect("static query parses")
}

/// The doubling query family for the streaming experiment (output size
/// `2^n` from a query of size `O(n)`).
pub fn doubling_query(n: usize) -> Query {
    let mut q = String::from("<z/>");
    for i in 0..n {
        q = format!("for $v{i} in ({q}, {q}) return <z/>");
    }
    parse_query(&q).expect("static query parses")
}

/// The T11/T14/`opt_vs_naive` derived-difference workload: the Example 2.4
/// construction, its built-in counterpart, and a `⟨R, S⟩` input with
/// |R| = 60, |S| = 30 (every second member shared). Returns
/// `(derived, builtin, input)`.
pub fn diff_workload() -> (cv_monad::Expr, cv_monad::Expr, cv_value::Value) {
    use cv_monad::Expr;
    use cv_value::Value;
    let r: Vec<Value> = (0..60).map(|i| Value::atom(format!("r{i}"))).collect();
    let s: Vec<Value> = (0..60)
        .filter(|i| i % 2 == 0)
        .map(|i| Value::atom(format!("r{i}")))
        .collect();
    let input = Value::tuple([("R", Value::set(r)), ("S", Value::set(s))]);
    let derived = cv_monad::derived::derived_diff();
    let builtin = Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into());
    (derived, builtin, input)
}

/// The T16/`par_scaling` cross-join workload for a doubling family: an
/// outer `for` over one tag class joined (by always-false atomic
/// equality, so `some` never short-circuits) against a full re-scan of
/// the other class. Work is `Θ(|x-items| · |doc|)` — the large-`for`-nest
/// shape of the paper's combined-complexity results — and the outer loop
/// is exactly what `xq_core::par` distributes across threads.
pub fn par_workload(family: DoublingFamily) -> Query {
    let (x_src, y_src) = match family {
        // Binary: `a` at even depths, `b` at odd depths.
        DoublingFamily::Binary => ("$root//a", "$root//b"),
        // Wide: leaf children cycling a/b/c.
        DoublingFamily::Wide => ("$root/a", "$root/b"),
        // Comb: an `s` spine carrying `t` leaves.
        DoublingFamily::Comb => ("$root//t", "$root//s"),
    };
    parse_query(&format!(
        "for $x in {x_src} return \
         if (some $y in {y_src} satisfies $x =atomic $y) then <hit/>"
    ))
    .expect("static query parses")
}

/// The T16 streaming workload: a token-throughput shape (outer `for`,
/// per-item subtree emission) rather than the cross-join — under the
/// buffered streaming engine the cross-join's per-item source overflows
/// the buffer cap and degenerates to quadratic lazy re-streaming, which
/// would measure the Theorem 4.5 recomputation discipline, not sharding.
pub fn stream_workload(family: DoublingFamily) -> Query {
    // Sources are kept under the buffered engine's token cap (the comb
    // spine `$root//s` would overflow it and degenerate the *sequential*
    // baseline the same way the cross-join does).
    let src = match family {
        DoublingFamily::Binary => "for $x in $root//a return <w>{ $x//b }</w>",
        DoublingFamily::Wide => "for $x in $root/a return <w>{ $x }</w>",
        DoublingFamily::Comb => "for $x in $root//t return <w>{ $x }</w>",
    };
    parse_query(src).expect("static query parses")
}

/// Depth of the deep-`for`-nest environment in the `Env::lookup` contrast
/// (T16 row and `par_scaling/env-lookup` bench).
pub const ENV_NEST_DEPTH: usize = 64;

/// The `let`-chain family for the composition-elimination blowup (E10).
pub fn let_chain_query(depth: usize) -> Query {
    let mut bindings = String::from("let $x0 := <a>{ $root/* }</a> return ");
    for i in 1..=depth {
        bindings.push_str(&format!(
            "let $x{i} := <a>{{ $x{prev}/* , $x{prev}/* }}</a> return ",
            prev = i - 1
        ));
    }
    parse_query(&format!("<out>{{ {bindings} $x{depth}/* }}</out>")).expect("static query parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_well_formed() {
        let doc = bib_document(10);
        assert!(doc.size() > 30);
        let out = xq_core::eval_query(&books_query(), &doc).unwrap();
        assert_eq!(out.len(), 1);
        assert!(xq_core::is_composition_free(&books_query()));
        assert!(doubling_query(3).size() > 0);
        assert!(!xq_core::is_composition_free(&let_chain_query(2)));
    }
}
