//! Test configuration, the per-test RNG, and case outcomes.

/// Configuration for a `proptest!` block. Only `cases` is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; the stub keeps CI fast while
        // still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; the runner draws another.
    Reject(String),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic xorshift64* RNG, seeded from the test name so every test
/// gets an independent but reproducible stream. Set `PROPTEST_SEED` to an
/// integer to override the seed for all tests (e.g. to probe other regions
/// of the input space).
pub struct TestRng {
    seed: u64,
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| Self::hash(name)),
            Err(_) => Self::hash(name),
        };
        TestRng {
            seed,
            state: seed | 1,
        }
    }

    fn hash(name: &str) -> u64 {
        // FNV-1a, good enough to decorrelate test names.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The seed this RNG started from (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* — fast, full-period, plenty for test generation.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation scale.
        self.next_u64() % n
    }
}
