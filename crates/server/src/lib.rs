//! Network front door for the query engines: a line-delimited JSON
//! TCP service over the [`xq_core::QueryService`] worker pool.
//!
//! This is the serving layer of the ROADMAP's north star — the paper's
//! complexity-calibrated engines behind a socket. One frame per line:
//!
//! ```text
//! → {"op":"hello","tenant":"acme"}
//! ← {"ok":true,"op":"hello","tenant":"acme"}
//! → {"op":"query","id":1,"doc":"d0","query":"$root/*","deadline_ms":50}
//! ← {"ok":true,"id":1,"result":"<a/><b/>"}
//! → {"op":"cancel","id":2}
//! ← {"ok":true,"op":"cancel","id":2}
//! ```
//!
//! Failures answer with a `code` — `parse`, `eval`, `cancelled`,
//! `deadline`, `overloaded`, `rate_limited`, `shutting_down`,
//! `unknown_doc`, `bad_request`, `internal_error` — pinned byte-for-byte
//! by the golden suite (`tests/proto.rs`). `rate_limited` and
//! `overloaded` refusals carry a `retry_after_ms` hint (token-refill
//! time and smoothed per-request latency, respectively). The pieces:
//!
//! * [`protocol`] — the hand-rolled flat-JSON codec (the registry is
//!   offline; no serde). Total: fuzzing may not panic it.
//! * [`reactor`] — a `std`-only epoll + eventfd binding (raw syscalls,
//!   no `libc`): the readiness layer the front door multiplexes on.
//! * [`server`] — the readiness-driven front door: one reactor thread
//!   owns the listener and every connection's nonblocking socket and
//!   line buffers, hands parsed queries to the [`xq_core::QueryService`]
//!   pool, and collects completions through a wakeable queue — a fixed
//!   `1 + workers` threads regardless of connection count. Cooperative
//!   cancellation ([`xq_core::CancelFlag`] tripped by `cancel` frames
//!   and disconnects), per-frame deadlines, load-shedding through the
//!   pool's bounded admission gauge, per-tenant request-rate token
//!   buckets, and graceful drain on shutdown. Fault containment rides
//!   the same loop: the pool survives panicking queries (answered
//!   `internal_error`; crashed workers respawn under a supervisor),
//!   write-side backpressure corks connections whose write buffer
//!   passes a high-water mark, and a timer wheel closes idle
//!   connections.
//!
//! The behavioral contracts live in this crate's test layer:
//! `tests/proto.rs` (golden frames + malformed-frame fuzz + the
//! duplicate-id regression), `tests/load_shed.rs` (client swarm:
//! bounded queue, exact shed counts, zero lost or duplicated
//! responses), `tests/rate_limit.rs` (token-bucket refusal and refill),
//! `tests/drain.rs` (prompt drop with idle clients, drain semantics),
//! `tests/chaos.rs` (seeded fault soak: worker panics, dropped
//! completions, injected sheds — zero lost or duplicated responses,
//! pool self-healing, gauges back to zero), `tests/pressure.rs`
//! (backpressure bounds buffering; idle timeouts reap quiet
//! connections), and `crates/core/tests/cancel_diff.rs` (cancellation
//! is deterministic and engine-agnostic). T19/T20 in the bench harness
//! close the loop with offered-load and connection-scaling curves;
//! T21 is the chaos soak under a pinned seed.

pub mod protocol;
pub mod reactor;
pub mod server;

pub use protocol::{Frame, Value};
pub use server::{RateLimit, Server, ServerConfig, ServerStats};
