//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
