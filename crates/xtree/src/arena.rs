//! The arena-backed, label-interned document store.
//!
//! Koch's complexity bounds (PODS 2005) are stated over data trees whose
//! *size* dominates everything; the [`Tree`] representation spends that
//! budget on one `Rc<TreeNode>` allocation per node and one `Rc<str>` per
//! label. This module provides the flat alternative suggested by the §5.1
//! path-set encoding (and the flat-value encoding of Prop 6.1): all node
//! data lives in contiguous, [`NodeId`]-indexed parallel vectors, and
//! labels are interned once per thread into `u32` [`LabelId`]s, making
//! label equality a single integer compare.
//!
//! Layout of an [`ArenaDoc`] (ids are assigned in preorder, so comparing
//! ids compares document order, exactly as in [`Document`](crate::Document)):
//!
//! ```text
//! labels:       Vec<LabelId>     one per node, resolved via the interner
//! parents:      Vec<u32>         parent id (root stores NO_PARENT)
//! child_spans:  Vec<Range<u32>>  per-node contiguous span into child_ids
//! child_ids:    Vec<NodeId>      all child lists, concatenated
//! subtree_ends: Vec<u32>         preorder end of each node's subtree
//! ```
//!
//! The descendants of `v` are exactly the id range
//! `v+1 .. subtree_ends[v]`, so a descendant axis scan is a linear walk
//! over a `u32` range with no pointer chasing and no `Rc` refcount
//! traffic — the core of the T15 speedup over [`Tree::axis`].
//!
//! **Thread affinity.** [`LabelId`]s are only meaningful on the thread
//! that interned them, so `ArenaDoc` is deliberately `!Send`/`!Sync`
//! (like [`Tree`], whose `Rc`s already are).

use crate::{Axis, Label, NodeId, NodeTest, Token, Tree, XmlError};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// An interned label: a `u32` handle into the thread-local
/// [`LabelInterner`]. Equality and hashing are O(1) integer operations;
/// *ordering* is intentionally not derived, because ids are assigned in
/// interning order, not lexicographic order — compare via [`LabelId::label`].
///
/// Like [`ArenaDoc`], a `LabelId` is only meaningful on the thread that
/// interned it, so it is deliberately `!Send`/`!Sync` (the marker field;
/// `PhantomData` keeps it `Copy`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(u32, PhantomData<Rc<()>>);

impl LabelId {
    fn from_raw(id: u32) -> LabelId {
        LabelId(id, PhantomData)
    }

    /// Interns `s` in this thread's interner and returns its id. The same
    /// string always receives the same id within a thread.
    pub fn intern(s: impl AsRef<str>) -> LabelId {
        INTERNER.with(|i| i.borrow_mut().intern(s.as_ref()))
    }

    /// Resolves the id back to its [`Label`] (a cheap `Rc` clone).
    pub fn label(self) -> Label {
        INTERNER.with(|i| i.borrow().resolve(self))
    }

    /// The id `s` was interned under, if any — a lookup that, unlike
    /// [`LabelId::intern`], never grows the table. Queries use this: a
    /// never-interned label cannot occur in any document on this thread.
    pub fn lookup(s: &str) -> Option<LabelId> {
        INTERNER.with(|i| i.borrow().ids.get(s).copied().map(LabelId::from_raw))
    }

    /// The raw handle (useful for dense per-label side tables).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LabelId({} = {:?})", self.0, self.label().as_str())
    }
}

impl From<&str> for LabelId {
    fn from(s: &str) -> LabelId {
        LabelId::intern(s)
    }
}

impl From<&Label> for LabelId {
    fn from(l: &Label) -> LabelId {
        LabelId::intern(l.as_str())
    }
}

/// The string ⇄ id table behind [`LabelId`]. One instance lives per
/// thread; use the [`LabelId`] associated functions rather than holding an
/// interner directly.
#[derive(Default)]
pub struct LabelInterner {
    labels: Vec<Label>,
    ids: HashMap<Label, u32>,
}

impl LabelInterner {
    fn intern(&mut self, s: &str) -> LabelId {
        if let Some(&id) = self.ids.get(s) {
            return LabelId::from_raw(id);
        }
        let id = u32::try_from(self.labels.len()).expect("more than u32::MAX distinct labels");
        let label = Label::new(s);
        self.labels.push(label.clone());
        self.ids.insert(label, id);
        LabelId::from_raw(id)
    }

    fn resolve(&self, id: LabelId) -> Label {
        self.labels[id.0 as usize].clone()
    }
}

thread_local! {
    static INTERNER: RefCell<LabelInterner> = RefCell::new(LabelInterner::default());
}

/// Number of distinct labels interned on this thread so far (test aid).
pub fn interned_labels() -> usize {
    INTERNER.with(|i| i.borrow().labels.len())
}

const NO_PARENT: u32 = u32::MAX;

/// An arena-backed document: one tree stored as [`NodeId`]-indexed
/// parallel vectors with interned labels. See the module docs for the
/// layout and the [`Document`](crate::Document) comparison.
pub struct ArenaDoc {
    labels: Vec<LabelId>,
    parents: Vec<u32>,
    child_spans: Vec<Range<u32>>,
    child_ids: Vec<NodeId>,
    subtree_ends: Vec<u32>,
    // No marker field needed: `labels` holds `LabelId`s, whose own
    // thread-affinity marker already makes the arena `!Send`/`!Sync`.
}

/// Incremental preorder construction of an [`ArenaDoc`]: call
/// [`open`](ArenaBuilder::open)/[`close`](ArenaBuilder::close) in tag-string
/// order (or [`leaf`](ArenaBuilder::leaf)), then [`finish`](ArenaBuilder::finish).
/// Generators use this to build documents arena-natively, with no `Rc`
/// tree ever materialized.
pub struct ArenaBuilder {
    doc: ArenaDoc,
    /// Open nodes: (node, offset into `scratch` where its child list
    /// starts). Completed-but-unflushed sibling ids accumulate in the one
    /// shared `scratch` stack, so building performs no per-node
    /// allocation (a fresh `Vec` per open node would).
    stack: Vec<(u32, usize)>,
    scratch: Vec<NodeId>,
    roots: usize,
}

impl Default for ArenaBuilder {
    fn default() -> ArenaBuilder {
        ArenaBuilder::new()
    }
}

impl ArenaBuilder {
    /// An empty builder.
    pub fn new() -> ArenaBuilder {
        ArenaBuilder::with_capacity(0)
    }

    /// An empty builder with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> ArenaBuilder {
        ArenaBuilder {
            doc: ArenaDoc {
                labels: Vec::with_capacity(nodes),
                parents: Vec::with_capacity(nodes),
                child_spans: Vec::with_capacity(nodes),
                child_ids: Vec::with_capacity(nodes.saturating_sub(1)),
                subtree_ends: Vec::with_capacity(nodes),
            },
            stack: Vec::new(),
            scratch: Vec::new(),
            roots: 0,
        }
    }

    /// Opens a node (`<a>`): assigns the next preorder id.
    pub fn open(&mut self, label: impl Into<LabelId>) -> NodeId {
        let id = u32::try_from(self.doc.labels.len()).expect("more than u32::MAX nodes");
        self.doc.labels.push(label.into());
        self.doc
            .parents
            .push(self.stack.last().map_or(NO_PARENT, |(p, _)| *p));
        self.doc.child_spans.push(0..0);
        self.doc.subtree_ends.push(0);
        if self.stack.is_empty() {
            self.roots += 1;
        }
        self.stack.push((id, self.scratch.len()));
        NodeId(id)
    }

    /// Closes the innermost open node (`</a>`), flushing its child list —
    /// the top `scratch` segment — into the contiguous `child_ids` vector.
    pub fn close(&mut self) {
        let (id, kids_from) = self.stack.pop().expect("close without a matching open");
        let start = self.doc.child_ids.len() as u32;
        self.doc
            .child_ids
            .extend_from_slice(&self.scratch[kids_from..]);
        self.scratch.truncate(kids_from);
        self.doc.child_spans[id as usize] = start..self.doc.child_ids.len() as u32;
        self.doc.subtree_ends[id as usize] = self.doc.labels.len() as u32;
        // Register as a completed sibling for the enclosing node (if any).
        self.scratch.push(NodeId(id));
    }

    /// `open` + `close`: a leaf node (`<a/>`).
    pub fn leaf(&mut self, label: impl Into<LabelId>) -> NodeId {
        let id = self.open(label);
        self.close();
        id
    }

    /// Finishes construction. Panics unless exactly one root was built and
    /// every `open` was closed (malformed input should be rejected earlier,
    /// by [`ArenaDoc::parse`]).
    pub fn finish(self) -> ArenaDoc {
        assert!(self.stack.is_empty(), "unclosed node in ArenaBuilder");
        assert_eq!(self.roots, 1, "ArenaDoc holds exactly one root");
        self.doc
    }
}

impl ArenaDoc {
    /// Builds the arena for `tree` (lossless; see [`ArenaDoc::to_tree`]).
    pub fn from_tree(tree: &Tree) -> ArenaDoc {
        let mut b = ArenaBuilder::with_capacity(tree.size() as usize);
        // Explicit stack: (subtree, next-child index); avoids deep recursion
        // on comb-shaped documents.
        let mut stack: Vec<(&Tree, usize)> = Vec::new();
        b.open(tree.label());
        stack.push((tree, 0));
        while let Some((t, next)) = stack.last_mut() {
            if let Some(c) = t.children().get(*next) {
                *next += 1;
                b.open(c.label());
                stack.push((c, 0));
            } else {
                b.close();
                stack.pop();
            }
        }
        b.finish()
    }

    /// Parses an XML document (the paper's tag-string dialect) directly
    /// into the arena — no intermediate [`Tree`] is built. Error messages
    /// are identical to [`parse_tree`](crate::parse_tree)'s on the same
    /// input, so the two representations are interchangeable in error
    /// paths too.
    pub fn parse(src: &str) -> Result<ArenaDoc, XmlError> {
        let tokens = crate::parse::tokenize(src)?;
        ArenaDoc::from_tokens(&tokens)
    }

    /// Rebuilds a single-rooted document from a token stream, with the
    /// same error messages as [`Tree::forest_from_tokens`] plus the
    /// [`parse_tree`](crate::parse_tree) single-root check.
    pub fn from_tokens(tokens: &[Token]) -> Result<ArenaDoc, XmlError> {
        let mut b = ArenaBuilder::with_capacity(tokens.len() / 2);
        // Open labels, for the mismatch/unclosed diagnostics.
        let mut open: Vec<Label> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            match tok {
                Token::Open(l) => {
                    b.open(l);
                    open.push(l.clone());
                }
                Token::Close(l) => {
                    let top = open.pop().ok_or_else(|| XmlError {
                        offset: i,
                        message: format!("unmatched closing tag </{l}>"),
                    })?;
                    if &top != l {
                        return Err(XmlError {
                            offset: i,
                            message: format!("mismatched tags: <{top}> closed by </{l}>"),
                        });
                    }
                    b.close();
                }
            }
        }
        if let Some(l) = open.last() {
            return Err(XmlError {
                offset: tokens.len(),
                message: format!("unclosed tag <{l}>"),
            });
        }
        if b.roots != 1 {
            return Err(XmlError {
                offset: 0,
                message: format!("expected exactly one root element, found {}", b.roots),
            });
        }
        Ok(b.finish())
    }

    /// The root node (always id 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the document has no nodes (never after a successful build).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The interned label of `id` — O(1) to compare against another node's.
    pub fn label_id(&self, id: NodeId) -> LabelId {
        self.labels[id.0 as usize]
    }

    /// The resolved label of `id`.
    pub fn label(&self, id: NodeId) -> Label {
        self.label_id(id).label()
    }

    /// The parent of `id`, if any.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        match self.parents[id.0 as usize] {
            NO_PARENT => None,
            p => Some(NodeId(p)),
        }
    }

    /// The children of `id` in document order, as a contiguous slice.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let span = self.child_spans[id.0 as usize].clone();
        &self.child_ids[span.start as usize..span.end as usize]
    }

    /// Whether `id` is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        let span = &self.child_spans[id.0 as usize];
        span.start == span.end
    }

    /// Proper descendants of `id` in document order — a pure id-range scan.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (id.0 + 1..self.subtree_ends[id.0 as usize]).map(NodeId)
    }

    /// Whether `desc` lies in the subtree rooted at `anc` (inclusive).
    pub fn is_in_subtree(&self, anc: NodeId, desc: NodeId) -> bool {
        anc.0 <= desc.0 && desc.0 < self.subtree_ends[anc.0 as usize]
    }

    /// Number of nodes in the subtree of `id` (inclusive).
    pub fn subtree_len(&self, id: NodeId) -> usize {
        (self.subtree_ends[id.0 as usize] - id.0) as usize
    }

    /// Height of the subtree of `id` (a leaf has height 1). Iterative:
    /// height(v) = 1 + max(height(children)), computed in reverse preorder.
    pub fn height(&self, id: NodeId) -> u64 {
        let start = id.0 as usize;
        let end = self.subtree_ends[start] as usize;
        let mut h = vec![1u64; end - start];
        for v in (start..end).rev() {
            for c in self.children(NodeId(v as u32)) {
                h[v - start] = h[v - start].max(1 + h[c.0 as usize - start]);
            }
        }
        h[0]
    }

    /// The nodes reached from `id` via `axis` whose labels pass `test`, in
    /// document order — mirrors [`Document::axis`](crate::Document::axis).
    pub fn axis(&self, id: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        // Node tests resolve to one interned-id compare (or none for `*`).
        // Lookup only — querying a foreign tag must not grow the interner,
        // and a never-interned tag matches nothing.
        let want: Option<LabelId> = match test {
            NodeTest::Tag(l) => match LabelId::lookup(l.as_str()) {
                Some(w) => Some(w),
                None => return Vec::new(),
            },
            NodeTest::Wildcard => None,
        };
        let pass = |n: NodeId| want.is_none_or(|w| self.label_id(n) == w);
        let mut out = Vec::new();
        match axis {
            Axis::Child => out.extend(self.children(id).iter().copied().filter(|&c| pass(c))),
            Axis::Descendant => out.extend(self.descendants(id).filter(|&c| pass(c))),
            Axis::SelfAxis => {
                if pass(id) {
                    out.push(id);
                }
            }
            Axis::DescendantOrSelf => {
                if pass(id) {
                    out.push(id);
                }
                out.extend(self.descendants(id).filter(|&c| pass(c)));
            }
        }
        out
    }

    /// Deep (value) equality of the subtrees at `a` and `b`. Interning
    /// makes the per-node label compare O(1); the shape compare walks the
    /// two preorder ranges in lockstep.
    pub fn deep_eq(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let n = self.subtree_len(a);
        if n != self.subtree_len(b) {
            return false;
        }
        // Equal-size preorder ranges are equal trees iff labels and child
        // counts agree position-wise.
        (0..n as u32).all(|i| {
            let (x, y) = (NodeId(a.0 + i), NodeId(b.0 + i));
            self.label_id(x) == self.label_id(y) && self.children(x).len() == self.children(y).len()
        })
    }

    /// Atomic equality: both nodes must be leaves; compares labels.
    /// `None` when either node is not a leaf (the comparison is undefined,
    /// matching `=atomic` being a partial operation).
    pub fn atomic_eq(&self, a: NodeId, b: NodeId) -> Option<bool> {
        if self.is_leaf(a) && self.is_leaf(b) {
            Some(self.label_id(a) == self.label_id(b))
        } else {
            None
        }
    }

    /// The tag string of the subtree at `id` (cf. [`Tree::tokens`]).
    pub fn tokens_of(&self, id: NodeId) -> Vec<Token> {
        let mut out = Vec::with_capacity(2 * self.subtree_len(id));
        self.walk(id, |doc, v, open| {
            let label = doc.label(v);
            out.push(if open {
                Token::Open(label)
            } else {
                Token::Close(label)
            })
        });
        out
    }

    /// The tag string of the whole document.
    pub fn tokens(&self) -> Vec<Token> {
        self.tokens_of(self.root())
    }

    /// Serializes the subtree at `id` to XML text, byte-identical to
    /// [`Tree::to_xml`] on the converted tree (leaves print as `<a/>`).
    pub fn xml_of(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.walk(id, |doc, v, open| {
            let leaf = doc.is_leaf(v);
            if open {
                out.push('<');
                out.push_str(doc.label(v).as_str());
                out.push_str(if leaf { "/>" } else { ">" });
            } else if !leaf {
                out.push_str("</");
                out.push_str(doc.label(v).as_str());
                out.push('>');
            }
        });
        out
    }

    /// Serializes the whole document to XML text.
    pub fn to_xml(&self) -> String {
        self.xml_of(self.root())
    }

    /// Materializes the subtree at `id` as a [`Tree`]. Iterative, in
    /// reverse preorder: by the time `v` is visited every child tree is
    /// already built.
    pub fn subtree(&self, id: NodeId) -> Tree {
        let start = id.0 as usize;
        let end = self.subtree_ends[start] as usize;
        let mut built: Vec<Option<Tree>> = vec![None; end - start];
        for v in (start..end).rev() {
            let children: Vec<Tree> = self
                .children(NodeId(v as u32))
                .iter()
                .map(|c| built[c.0 as usize - start].take().expect("child built"))
                .collect();
            built[v - start] = Some(Tree::node(self.label(NodeId(v as u32)), children));
        }
        built[0].take().expect("root built")
    }

    /// Converts the whole document back to a [`Tree`]
    /// (`ArenaDoc::from_tree` ∘ `to_tree` is the identity — tested).
    pub fn to_tree(&self) -> Tree {
        self.subtree(self.root())
    }

    /// Iterative preorder tag-string walk — the one traversal behind
    /// [`ArenaDoc::tokens_of`] and [`ArenaDoc::xml_of`]: calls
    /// `f(self, node, true)` at each opening tag and `f(self, node,
    /// false)` at the matching closing tag (leaves get both calls
    /// back-to-back; serializers may collapse them).
    fn walk(&self, id: NodeId, mut f: impl FnMut(&ArenaDoc, NodeId, bool)) {
        enum Ev {
            Open(NodeId),
            Close(NodeId),
        }
        let mut stack = vec![Ev::Open(id)];
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Open(v) => {
                    f(self, v, true);
                    stack.push(Ev::Close(v));
                    for &c in self.children(v).iter().rev() {
                        stack.push(Ev::Open(c));
                    }
                }
                Ev::Close(v) => f(self, v, false),
            }
        }
    }
}

impl fmt::Display for ArenaDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

impl fmt::Debug for ArenaDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArenaDoc[{} nodes] {}", self.len(), self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_tree;

    fn sample() -> Tree {
        // <r><a><b/><b/></a><a/><c><a><b/></a></c></r> — the Document
        // module's example, for cross-representation comparison.
        Tree::node(
            "r",
            [
                Tree::node("a", [Tree::leaf("b"), Tree::leaf("b")]),
                Tree::leaf("a"),
                Tree::node("c", [Tree::node("a", [Tree::leaf("b")])]),
            ],
        )
    }

    #[test]
    fn interning_is_idempotent_and_o1_equal() {
        let a1 = LabelId::intern("a");
        let before = interned_labels();
        let a2 = LabelId::intern("a");
        assert_eq!(before, interned_labels(), "re-interning must not grow");
        let b = LabelId::intern("b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.label().as_str(), "a");
        assert_eq!(b.label(), Label::from("b"));
        assert_eq!(LabelId::lookup("a"), Some(a1));
    }

    #[test]
    fn axis_queries_do_not_grow_the_interner() {
        let doc = ArenaDoc::from_tree(&sample());
        let before = interned_labels();
        let hits = doc.axis(
            doc.root(),
            Axis::Descendant,
            &NodeTest::tag("never-interned-tag"),
        );
        assert!(hits.is_empty());
        assert_eq!(
            interned_labels(),
            before,
            "querying a foreign tag must not intern it"
        );
    }

    #[test]
    fn ids_are_preorder_and_links_match_document() {
        let t = sample();
        let a = ArenaDoc::from_tree(&t);
        let d = crate::Document::new(&t);
        assert_eq!(a.len(), d.len());
        for i in 0..a.len() as u32 {
            let id = NodeId(i);
            assert_eq!(a.label(id), *d.label(id), "label of {i}");
            assert_eq!(a.parent(id), d.parent(id), "parent of {i}");
            assert_eq!(a.children(id), d.children(id), "children of {i}");
            assert_eq!(a.is_leaf(id), d.is_leaf(id), "leafness of {i}");
            assert_eq!(
                a.descendants(id).collect::<Vec<_>>(),
                d.descendants(id).collect::<Vec<_>>(),
                "descendants of {i}"
            );
        }
    }

    #[test]
    fn axes_match_document_on_every_node_and_test() {
        let t = sample();
        let a = ArenaDoc::from_tree(&t);
        let d = crate::Document::new(&t);
        let tests = [
            NodeTest::Wildcard,
            NodeTest::tag("a"),
            NodeTest::tag("b"),
            NodeTest::tag("zzz"),
        ];
        for i in 0..a.len() as u32 {
            for axis in [
                Axis::Child,
                Axis::Descendant,
                Axis::SelfAxis,
                Axis::DescendantOrSelf,
            ] {
                for test in &tests {
                    assert_eq!(
                        a.axis(NodeId(i), axis, test),
                        d.axis(NodeId(i), axis, test),
                        "axis {axis} test {test} at node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_round_trip_is_identity() {
        let t = sample();
        let a = ArenaDoc::from_tree(&t);
        assert_eq!(a.to_tree(), t);
        assert_eq!(a.subtree(NodeId(6)), Tree::node("a", [Tree::leaf("b")]));
    }

    #[test]
    fn parse_and_serialize_directly() {
        let src = "<c><d/><a/><a><c/></a></c>";
        let a = ArenaDoc::parse(src).unwrap();
        assert_eq!(a.to_xml(), src);
        assert_eq!(a.tokens(), parse_tree(src).unwrap().tokens());
        assert_eq!(a.to_tree(), parse_tree(src).unwrap());
    }

    #[test]
    fn parse_rejects_with_tree_identical_messages() {
        for bad in ["<a>", "</a>", "<a></b>", "<a>text</a>", "<a/><b/>", "<a"] {
            let via_tree = parse_tree(bad).unwrap_err();
            let via_arena = ArenaDoc::parse(bad).unwrap_err();
            assert_eq!(via_arena, via_tree, "error for {bad:?}");
        }
    }

    #[test]
    fn equalities_match_document() {
        let t = sample();
        let a = ArenaDoc::from_tree(&t);
        let d = crate::Document::new(&t);
        for x in 0..a.len() as u32 {
            for y in 0..a.len() as u32 {
                let (x, y) = (NodeId(x), NodeId(y));
                assert_eq!(a.deep_eq(x, y), d.deep_eq(x, y), "deep_eq {x:?} {y:?}");
                assert_eq!(
                    a.atomic_eq(x, y),
                    d.atomic_eq(x, y),
                    "atomic_eq {x:?} {y:?}"
                );
            }
        }
    }

    #[test]
    fn metrics() {
        let a = ArenaDoc::from_tree(&sample());
        assert_eq!(a.len(), 8);
        assert_eq!(a.subtree_len(a.root()), 8);
        assert_eq!(a.subtree_len(NodeId(5)), 3);
        assert_eq!(a.height(a.root()), 4);
        assert_eq!(a.height(NodeId(4)), 1);
        assert!(a.is_in_subtree(NodeId(5), NodeId(7)));
        assert!(!a.is_in_subtree(NodeId(1), NodeId(4)));
    }

    #[test]
    fn builder_builds_the_remark_6_7_document() {
        // <c><d/><a/><a><c/></a></c>, built by hand.
        let mut b = ArenaBuilder::new();
        b.open("c");
        b.leaf("d");
        b.leaf("a");
        b.open("a");
        b.leaf("c");
        b.close();
        b.close();
        let a = b.finish();
        assert_eq!(a.to_xml(), "<c><d/><a/><a><c/></a></c>");
    }
}
