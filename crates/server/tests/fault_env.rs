//! The environment side door for fault injection (`XQ_FAULT_SPEC` /
//! `XQ_FAULT_SEED`), which [`Server::start`] consults when the config
//! carries no explicit registry. Lives in its own integration-test
//! binary because the environment is process-global: these are the only
//! tests in this process, so mutating it races nothing.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::Arc;

use cv_xtree::{parse_tree, ArenaDoc};
use xq_server::{Server, ServerConfig};

fn docs() -> HashMap<String, Arc<ArenaDoc>> {
    let tree = parse_tree("<r><a/></r>").unwrap();
    let mut m = HashMap::new();
    m.insert("d0".to_string(), Arc::new(ArenaDoc::from_tree(&tree)));
    m
}

#[test]
fn env_spec_is_honored_and_a_malformed_one_refuses_startup() {
    // Malformed spec: starting the server must fail loudly — a chaos
    // run with a typo'd spec silently injecting nothing is worse than
    // no chaos run at all.
    std::env::set_var("XQ_FAULT_SPEC", "worker-panic=not-a-number");
    let err = match Server::start(ServerConfig {
        docs: docs(),
        ..ServerConfig::default()
    }) {
        Err(e) => e,
        Ok(_) => panic!("malformed XQ_FAULT_SPEC must refuse startup"),
    };
    assert_eq!(err.kind(), ErrorKind::InvalidInput);
    assert!(err.to_string().contains("bad fault spec"), "{err}");

    // Well-formed spec: picked up from the environment and live — every
    // query answers `internal_error` under `worker-panic=1`.
    std::env::set_var("XQ_FAULT_SPEC", "worker-panic=1");
    std::env::set_var("XQ_FAULT_SEED", "42");
    let mut server = Server::start(ServerConfig {
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut w = &stream;
    w.write_all(br#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#)
        .unwrap();
    w.write_all(b"\n").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).unwrap();
    let frame = xq_server::Frame::parse(line.trim_end()).unwrap();
    assert_eq!(frame.get_str("code"), Some("internal_error"), "{line:?}");
    drop(stream);
    server.shutdown();

    // Unset: injection off (the default path every other test relies
    // on); queries succeed.
    std::env::remove_var("XQ_FAULT_SPEC");
    std::env::remove_var("XQ_FAULT_SEED");
    let mut server = Server::start(ServerConfig {
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut w = &stream;
    w.write_all(br#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#)
        .unwrap();
    w.write_all(b"\n").unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).unwrap();
    let frame = xq_server::Frame::parse(line.trim_end()).unwrap();
    assert_eq!(frame.get_bool("ok"), Some(true), "{line:?}");
    drop(stream);
    server.shutdown();
}
