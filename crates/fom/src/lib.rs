//! Data complexity machinery (Koch PODS 2005, §6): FO(Majority) over tag
//! strings and the positional string semantics of Remark 6.7 — the
//! substance of the TC⁰ upper bound (Theorem 6.6).
//!
//! Barrington–Immerman–Straubing: TC⁰ = FOM, first-order logic with
//! majority quantifiers over string positions. Theorem 6.6 encodes Core
//! XQuery evaluation as FOM formulas `size[[α]]` / `pos_l[[α]]`; the two
//! ingredients reproduced here are
//!
//! * formula-style predicates over tag strings — `node(i, j)`
//!   (matching tags), `axis_child`, `axis_descendant`, `item` — written
//!   with counting exactly as in the proof ("the number of opening tags
//!   between i and j equals the number of closing tags"), evaluated over
//!   concrete strings and validated against the tree library;
//! * [`eval_positional`] — the Remark 6.7 evaluator in which an XQuery
//!   variable is bound to an *integer position* into the string value of
//!   its defining expression (`expr($x)`), not to a tree. Variables are
//!   `O(log n)` bits of state; everything else is recomputation — the
//!   LOGSPACE/TC⁰ story made executable.

use cv_xtree::{Label, Token, Tree};
use std::rc::Rc;
use xq_core::ast::{Cond, EqMode, Query, Var};

// ---------------------------------------------------------------------------
// FOM-style predicates over tag strings (Theorem 6.6 proof)
// ---------------------------------------------------------------------------

/// A tag string: the sequence of opening/closing tags of a document.
pub type TagString = Vec<Token>;

/// `node(i, j)`: positions `i` and `j` (0-based here) hold an opening tag
/// and *its matching* closing tag. Written exactly as in the proof: same
/// label, `i < j`, and the number of opening tags with that label strictly
/// between them equals the number of closing ones.
pub fn node(s: &TagString, i: usize, j: usize) -> bool {
    if i >= j || j >= s.len() {
        return false;
    }
    let (Token::Open(a), Token::Close(b)) = (&s[i], &s[j]) else {
        return false;
    };
    if a != b {
        return false;
    }
    let opens = s[i + 1..j]
        .iter()
        .filter(|t| matches!(t, Token::Open(x) if x == a))
        .count();
    let closes = s[i + 1..j]
        .iter()
        .filter(|t| matches!(t, Token::Close(x) if x == a))
        .count();
    opens == closes
}

/// The matching close position for the open tag at `i`, if well-formed.
pub fn close_of(s: &TagString, i: usize) -> Option<usize> {
    (i + 1..s.len()).find(|&j| node(s, i, j))
}

/// `axis_descendant(i, j)`: node `j` is a proper descendant of node `i`
/// (both given by their opening-tag positions) — `i < j ∧ j′ < i′`.
pub fn axis_descendant(s: &TagString, i: usize, j: usize) -> bool {
    match (close_of(s, i), close_of(s, j)) {
        (Some(ip), Some(jp)) => i < j && jp < ip,
        _ => false,
    }
}

/// `axis_child(i, j)`: `j` is a child of `i`: a descendant with no node
/// strictly between them.
pub fn axis_child(s: &TagString, i: usize, j: usize) -> bool {
    if !axis_descendant(s, i, j) {
        return false;
    }
    let (ip, jp) = (close_of(s, i).unwrap(), close_of(s, j).unwrap());
    !(0..s.len()).any(|l| close_of(s, l).is_some_and(|lp| i < l && l < j && jp < lp && lp < ip))
}

/// `item(i)`: position `i` opens a top-level tree of the (forest-valued)
/// string — a node not enclosed by any other node.
pub fn item(s: &TagString, i: usize) -> bool {
    close_of(s, i).is_some() && !(0..i).any(|j| axis_descendant(s, j, i))
}

// ---------------------------------------------------------------------------
// Remark 6.7: the positional semantics
// ---------------------------------------------------------------------------

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosError {
    /// Unbound variable.
    UnboundVariable(String),
    /// Budget exhausted (positional evaluation recomputes heavily).
    Budget,
    /// `=mon` is not an XQuery equality.
    BadEqualityMode,
}

impl std::fmt::Display for PosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PosError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            PosError::Budget => f.write_str("positional evaluation budget exhausted"),
            PosError::BadEqualityMode => f.write_str("=mon is not an XQuery equality"),
        }
    }
}

impl std::error::Error for PosError {}

/// A binding in the positional semantics: the variable's *defining
/// expression* (Remark 6.7's `expr($x)`), the environment prefix it was
/// bound under, and the position of its opening tag in
/// `[[expr($x)]](prefix)`. The root variable is position 0 of the input.
#[derive(Clone)]
enum PosBinding<'q> {
    Input,
    Defined {
        expr: &'q Query,
        env: PosEnv<'q>,
        pos: usize,
    },
}

type PosEnv<'q> = Option<Rc<PosEnvNode<'q>>>;

struct PosEnvNode<'q> {
    var: Var,
    binding: PosBinding<'q>,
    parent: PosEnv<'q>,
}

struct PosInterp<'q> {
    input: TagString,
    fuel: std::cell::Cell<u64>,
    _marker: std::marker::PhantomData<&'q ()>,
}

impl<'q> PosInterp<'q> {
    fn tick(&self) -> Result<(), PosError> {
        let f = self.fuel.get();
        if f == 0 {
            return Err(PosError::Budget);
        }
        self.fuel.set(f - 1);
        Ok(())
    }

    fn lookup(&self, env: &PosEnv<'q>, v: &Var) -> Result<PosBinding<'q>, PosError> {
        let mut cur = env;
        while let Some(n) = cur {
            if &n.var == v {
                return Ok(match &n.binding {
                    PosBinding::Input => PosBinding::Input,
                    PosBinding::Defined { expr, env, pos } => PosBinding::Defined {
                        expr,
                        env: env.clone(),
                        pos: *pos,
                    },
                });
            }
            cur = &n.parent;
        }
        Err(PosError::UnboundVariable(v.name().to_string()))
    }

    /// The tag (sub)string a variable denotes: recompute `[[expr($x)]]`
    /// and slice out the node at the stored position (Remark 6.7's
    /// re-evaluation of `[[expr($xi)]]_{i−1}`).
    fn var_string(&self, b: &PosBinding<'q>) -> Result<TagString, PosError> {
        match b {
            PosBinding::Input => Ok(self.input.clone()),
            PosBinding::Defined { expr, env, pos } => {
                let s = self.eval(expr, env)?;
                let end = close_of(&s, *pos).ok_or(PosError::Budget)?;
                Ok(s[*pos..=end].to_vec())
            }
        }
    }

    fn eval(&self, q: &'q Query, env: &PosEnv<'q>) -> Result<TagString, PosError> {
        self.tick()?;
        match q {
            Query::Empty => Ok(Vec::new()),
            Query::Elem(a, body) => {
                let mut out = vec![Token::Open(a.clone())];
                out.extend(self.eval(body, env)?);
                out.push(Token::Close(a.clone()));
                Ok(out)
            }
            Query::Seq(x, y) => {
                let mut out = self.eval(x, env)?;
                out.extend(self.eval(y, env)?);
                Ok(out)
            }
            Query::Var(v) => self.var_string(&self.lookup(env, v)?),
            Query::Step(base, axis, nt) => {
                let s = self.eval(base, env)?;
                let mut out = Vec::new();
                // Enumerate item roots, then axis positions within.
                for i in 0..s.len() {
                    if !item(&s, i) {
                        continue;
                    }
                    for j in i..s.len() {
                        let selected = match axis {
                            cv_xtree::Axis::SelfAxis => j == i,
                            cv_xtree::Axis::Child => axis_child(&s, i, j),
                            cv_xtree::Axis::Descendant => axis_descendant(&s, i, j),
                            cv_xtree::Axis::DescendantOrSelf => j == i || axis_descendant(&s, i, j),
                        };
                        if !selected {
                            continue;
                        }
                        if let Token::Open(l) = &s[j] {
                            if nt.matches(l) {
                                let end = close_of(&s, j).ok_or(PosError::Budget)?;
                                out.extend_from_slice(&s[j..=end]);
                            }
                        }
                    }
                }
                Ok(out)
            }
            Query::For(v, source, body) | Query::Let(v, source, body) => {
                let s = self.eval(source, env)?;
                let mut out = Vec::new();
                for i in 0..s.len() {
                    if item(&s, i) {
                        let new_env = Some(Rc::new(PosEnvNode {
                            var: v.clone(),
                            binding: PosBinding::Defined {
                                expr: source,
                                env: env.clone(),
                                pos: i,
                            },
                            parent: env.clone(),
                        }));
                        out.extend(self.eval(body, &new_env)?);
                    }
                }
                Ok(out)
            }
            Query::If(c, body) => {
                if self.cond(c, env)? {
                    self.eval(body, env)
                } else {
                    Ok(Vec::new())
                }
            }
        }
    }

    fn first_label(&self, b: &PosBinding<'q>) -> Result<Option<Label>, PosError> {
        let s = self.var_string(b)?;
        Ok(match s.first() {
            Some(Token::Open(l)) => Some(l.clone()),
            _ => None,
        })
    }

    fn cond(&self, c: &'q Cond, env: &PosEnv<'q>) -> Result<bool, PosError> {
        self.tick()?;
        match c {
            Cond::True => Ok(true),
            // The FOM encoding of $xi =deep $xj: equal sizes and equal
            // symbols at every position (Fig 8's cond[[·]]).
            Cond::VarEq(x, y, mode) => {
                let bx = self.lookup(env, x)?;
                let by = self.lookup(env, y)?;
                match mode {
                    EqMode::Deep => Ok(self.var_string(&bx)? == self.var_string(&by)?),
                    EqMode::Atomic => Ok(self.first_label(&bx)? == self.first_label(&by)?),
                    EqMode::Mon => Err(PosError::BadEqualityMode),
                }
            }
            Cond::ConstEq(x, a, mode) => {
                let bx = self.lookup(env, x)?;
                match mode {
                    EqMode::Deep => Ok(self.var_string(&bx)?
                        == vec![Token::Open(a.clone()), Token::Close(a.clone())]),
                    _ => Ok(self.first_label(&bx)?.as_ref() == Some(a)),
                }
            }
            Cond::Query(q) => Ok(!self.eval(q, env)?.is_empty()),
            Cond::Some(v, source, sat) | Cond::Every(v, source, sat) => {
                let every = matches!(c, Cond::Every(_, _, _));
                let s = self.eval(source, env)?;
                for i in 0..s.len() {
                    if item(&s, i) {
                        let new_env = Some(Rc::new(PosEnvNode {
                            var: v.clone(),
                            binding: PosBinding::Defined {
                                expr: source,
                                env: env.clone(),
                                pos: i,
                            },
                            parent: env.clone(),
                        }));
                        let r = self.cond(sat, &new_env)?;
                        if every && !r {
                            return Ok(false);
                        }
                        if !every && r {
                            return Ok(true);
                        }
                    }
                }
                Ok(every)
            }
            Cond::And(a, b) => Ok(self.cond(a, env)? && self.cond(b, env)?),
            Cond::Or(a, b) => Ok(self.cond(a, env)? || self.cond(b, env)?),
            Cond::Not(a) => Ok(!self.cond(a, env)?),
        }
    }
}

/// Evaluates `q` on `input` under the Remark 6.7 positional semantics,
/// returning the output tag string. `fuel` bounds total work.
pub fn eval_positional(q: &Query, input: &Tree, fuel: u64) -> Result<TagString, PosError> {
    let interp = PosInterp {
        input: input.tokens(),
        fuel: std::cell::Cell::new(fuel),
        _marker: std::marker::PhantomData,
    };
    let env = Some(Rc::new(PosEnvNode {
        var: Var::root(),
        binding: PosBinding::Input,
        parent: None,
    }));
    interp.eval(q, &env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_xtree::{parse_tree, Document, NodeId};
    use xq_core::parse_query;

    const FUEL: u64 = 5_000_000;

    fn ts(src: &str) -> TagString {
        parse_tree(src).unwrap().tokens()
    }

    #[test]
    fn node_matches_tag_pairs() {
        // <c><d/><a/><a><c/></a></c>
        let s = ts("<c><d/><a/><a><c/></a></c>");
        assert!(node(&s, 0, 9), "outer c at positions 0..9");
        assert!(node(&s, 1, 2), "d");
        assert!(node(&s, 5, 8), "second a wraps inner c");
        assert!(!node(&s, 0, 2));
        assert!(!node(&s, 5, 6), "open a vs open c");
    }

    #[test]
    fn axes_agree_with_the_tree_library() {
        let tree = parse_tree("<r><a><b/><b/></a><c><a/></c></r>").unwrap();
        let s = tree.tokens();
        let doc = Document::new(&tree);
        // Opening-tag positions in document order correspond to preorder
        // node ids.
        let opens: Vec<usize> = (0..s.len())
            .filter(|&i| matches!(s[i], Token::Open(_)))
            .collect();
        for (ni, &i) in opens.iter().enumerate() {
            for (nj, &j) in opens.iter().enumerate() {
                let (ni, nj) = (NodeId(ni as u32), NodeId(nj as u32));
                assert_eq!(
                    axis_descendant(&s, i, j),
                    ni != nj && doc.is_in_subtree(ni, nj),
                    "desc {i} {j}"
                );
                assert_eq!(
                    axis_child(&s, i, j),
                    doc.parent(nj) == Some(ni),
                    "child {i} {j}"
                );
            }
        }
    }

    #[test]
    fn item_finds_forest_roots() {
        let mut s = ts("<a><b/></a>");
        s.extend(ts("<c/>"));
        let items: Vec<usize> = (0..s.len()).filter(|&i| item(&s, i)).collect();
        assert_eq!(items, vec![0, 4]);
    }

    fn agree(src: &str, doc: &str) {
        let q = parse_query(src).unwrap();
        let t = parse_tree(doc).unwrap();
        let got = eval_positional(&q, &t, FUEL)
            .unwrap_or_else(|e| panic!("positional failed for {src}: {e}"));
        let want: TagString = xq_core::eval_query(&q, &t)
            .unwrap()
            .iter()
            .flat_map(Tree::tokens)
            .collect();
        assert_eq!(got, want, "query {src} on {doc}");
    }

    #[test]
    fn positional_agrees_on_remark_6_7_example() {
        // "for $x in $root/a return $x" on ⟨c⟩⟨d/⟩⟨a/⟩⟨a⟩⟨c/⟩⟨/a⟩⟨/c⟩
        agree("for $x in $root/a return $x", "<c><d/><a/><a><c/></a></c>");
    }

    #[test]
    fn positional_agrees_on_core_forms() {
        let doc = "<r><a><b/></a><a><c/></a><b/></r>";
        for src in [
            "()",
            "<out/>",
            "$root",
            "$root/a",
            "$root//b",
            "for $x in $root/a return <w>{ $x/* }</w>",
            "for $x in $root/a return for $y in $x/* return $y",
            "if ($root/b) then <yes/>",
            "for $x in $root/* return if ($x = $x) then <eq/>",
            "for $x in $root/* return for $y in $root/* return \
             if ($x =atomic $y) then <at/>",
            "if (not($root/zzz)) then <none/>",
            "if (some $x in $root/a satisfies $x/b) then <has/>",
            "if (every $x in $root/a satisfies $x/b) then <all/>",
        ] {
            agree(src, doc);
        }
    }

    #[test]
    fn positional_handles_composition() {
        // Variables over constructed values: positions point into the
        // recomputed string of the defining expression.
        agree(
            "for $y in (for $w in $root/a return <b>{$w}</b>) return $y/*",
            "<r><a><p/></a><a><q/></a></r>",
        );
        agree("let $x := <a><b/></a> return $x/b", "<r/>");
    }

    #[test]
    fn data_scaling_is_polynomial() {
        // Fixed query, growing data (the data-complexity regime): the
        // positional evaluator completes with fuel linear-ish in |t|.
        // The predicates node/axis are evaluated naively (each is a
        // linear scan, as in the circuit picture), so sizes stay small
        // here; the criterion bench sweeps further in release mode.
        let q = parse_query("for $x in $root/a return <hit/>").unwrap();
        for size in [8usize, 16, 32] {
            let mut g = cv_xtree::TreeGen::new(size as u64);
            let t = cv_xtree::random_tree(&mut g, size, &["a", "b"]);
            let r = eval_positional(&q, &t, 200_000_000);
            assert!(r.is_ok(), "size {size}");
        }
    }

    #[test]
    fn budget_guard() {
        let q = parse_query("for $a in $root//* return for $b in $root//* return <t/>").unwrap();
        let mut g = cv_xtree::TreeGen::new(3);
        let t = cv_xtree::random_tree(&mut g, 60, &["a"]);
        assert_eq!(eval_positional(&q, &t, 1000), Err(PosError::Budget));
    }
}
