//! Concurrency smoke tests for the lock-striped [`PlanCache`]: the
//! invariants that make a process-wide plan store safe — same text ⇒
//! same plan `Arc` on every thread, distinct texts ⇒ distinct plans,
//! each text compiled **exactly once** no matter how many threads race
//! for it — asserted while 8 threads hammer the same query set
//! simultaneously in rotated orders (so shard-lock acquisition
//! interleaves, as in the label-interner smoke test this mirrors).

use std::collections::HashMap;
use std::sync::Arc;
use xq_core::{CompiledPlan, PlanCache};

const WORKERS: usize = 8;

/// A query set large enough to spread over every shard, with per-index
/// tags so every text is distinct and recognisably its own plan.
fn query_set() -> Vec<String> {
    (0..64)
        .map(|i| format!("for $x in $root/t{i} return <r{i}>{{ $x/* }}</r{i}>"))
        .collect()
}

#[test]
fn concurrent_lookups_share_plans_and_compile_exactly_once() {
    let cache = PlanCache::new();
    let queries = query_set();

    let per_thread: Vec<Vec<(String, Arc<CompiledPlan>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let cache = &cache;
                let queries = &queries;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..4 {
                        for i in 0..queries.len() {
                            let src = &queries[(i + w * 7 + round) % queries.len()];
                            let plan = cache.get_or_compile(src).expect("query parses");
                            seen.push((src.clone(), plan));
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Sharing invariant: every thread got the *same* Arc for a given
    // text (pointer equality, not just structural), and the plan really
    // is that text's compilation.
    let mut canon: HashMap<String, Arc<CompiledPlan>> = HashMap::new();
    for thread in &per_thread {
        for (src, plan) in thread {
            let entry = canon.entry(src.clone()).or_insert_with(|| plan.clone());
            assert!(
                Arc::ptr_eq(entry, plan),
                "text {src} resolved to two different plans"
            );
            assert_eq!(plan.source(), Some(src.as_str()));
        }
    }
    // Distinctness: different texts never alias a plan.
    for (i, a) in queries.iter().enumerate() {
        for b in &queries[i + 1..] {
            assert!(
                !Arc::ptr_eq(&canon[a], &canon[b]),
                "distinct texts {a} / {b} must get distinct plans"
            );
        }
    }
    // Exactly-once compilation: however the 8 threads interleaved, each
    // text was compiled a single time (the compile runs inside the shard
    // write lock after a re-check, so racing threads wait, then hit).
    for src in &queries {
        assert_eq!(cache.compile_count(src), 1, "duplicate compile of {src}");
    }
    assert_eq!(cache.len(), queries.len());
}

#[test]
fn concurrent_parse_errors_stay_uncached_and_plans_stay_executable() {
    let cache = PlanCache::new();
    // Threads alternate between a broken text and a good one; errors must
    // never poison the cache, and the good plan must stay shared and
    // runnable from every thread.
    let doc = cv_xtree::Tree::leaf("r");
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let cache = &cache;
            let doc = &doc;
            scope.spawn(move || {
                for _ in 0..8 {
                    assert!(cache.get_or_compile("for $x in").is_err());
                    let plan = cache.get_or_compile("<ok/>").expect("parses");
                    let out = xq_core::vm::exec_query(&plan, doc).expect("evaluates");
                    assert_eq!(out.len(), 1);
                }
            });
        }
    });
    assert_eq!(cache.len(), 1, "only the good text is cached");
    assert_eq!(cache.compile_count("<ok/>"), 1);
    assert_eq!(cache.compile_count("for $x in"), 0);
}
