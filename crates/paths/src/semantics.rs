//! The Figure 4 path-based semantics of monad algebra.
//!
//! Every complex value is viewed as a *deterministic tree*: each node is
//! uniquely identified by its root-to-node label path, so the whole value
//! is a finite set of root-to-leaf paths ([`Term`]s). Each monad algebra
//! operation becomes a transformation of path sets; crucially, every rule
//! inspects only a bounded prefix of each path, which is what bounds proof
//! trees (Theorem 5.2) and makes guess-and-check evaluation possible in
//! NEXPTIME.
//!
//! The evaluator here *materializes* the path sets (it is the deterministic
//! companion of the paper's nondeterministic algorithm): the sets can be
//! singly exponential, so a budget guards against runaway queries.
//!
//! Not all of `Expr` fits this semantics: negation and `=deep` need the
//! alternation of Theorem 5.3, and empty collections have no paths, so the
//! supported fragment is the Theorem 5.2 language `M∪[=atomic]` (with
//! selections over atomic conditions, which the paper derives in
//! Example 2.3).

use crate::Term;
use cv_monad::{Cond, EqMode, Expr, Operand};
use cv_value::{Value, ValueKind};
use std::collections::BTreeSet;

/// A deterministic tree: the set of its root-to-leaf paths.
pub type PathSet = BTreeSet<Term>;

/// Failures of the path semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The expression uses an operation outside the Figure 4 fragment.
    Unsupported(String),
    /// A path had too few segments for the operation.
    Malformed {
        /// The operation.
        op: String,
        /// The offending path.
        path: String,
    },
    /// The path-set budget was exhausted.
    Budget(usize),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Unsupported(op) => {
                write!(f, "{op} is outside the Figure 4 path semantics")
            }
            PathError::Malformed { op, path } => write!(f, "{op}: malformed path {path}"),
            PathError::Budget(n) => write!(f, "path-set budget exhausted ({n} paths)"),
        }
    }
}

impl std::error::Error for PathError {}

/// Encodes a complex value as the path set of its deterministic tree.
/// Set/list members receive 1-based index labels (we are considering
/// query complexity and construct every value from scratch, so indexes
/// can be assigned canonically — Thm 5.2 proof).
pub fn value_paths(v: &Value) -> PathSet {
    let mut out = BTreeSet::new();
    collect(v, &mut Vec::new(), &mut out);
    out
}

fn collect(v: &Value, prefix: &mut Vec<Term>, out: &mut PathSet) {
    match v.kind() {
        ValueKind::Atom(a) => {
            let mut segs = prefix.clone();
            segs.push(Term::sym(a.as_str()));
            out.insert(Term::from_segments(segs));
        }
        ValueKind::Tuple(fields) => {
            if fields.is_empty() {
                let mut segs = prefix.clone();
                segs.push(Term::unit());
                out.insert(Term::from_segments(segs));
            } else {
                for (name, fv) in fields {
                    prefix.push(Term::sym(name.as_str()));
                    collect(fv, prefix, out);
                    prefix.pop();
                }
            }
        }
        ValueKind::Set(items) | ValueKind::List(items) | ValueKind::Bag(items) => {
            for (i, item) in items.iter().enumerate() {
                prefix.push(Term::sym((i + 1).to_string()));
                collect(item, prefix, out);
                prefix.pop();
            }
        }
    }
}

/// Decodes a path set back into a complex value of type `ty` — the mapping
/// `U^τ` of the Theorem 5.2 proof. Collections decode as the evaluator's
/// set semantics (duplicates merge).
pub fn decode(paths: &PathSet, ty: &cv_value::Type) -> Option<Value> {
    use cv_value::Type;
    if paths.is_empty() {
        // Only collections can be empty.
        return match ty {
            Type::Set(_) => Some(Value::set([])),
            Type::List(_) => Some(Value::list([])),
            Type::Bag(_) => Some(Value::bag([])),
            _ => None,
        };
    }
    match ty {
        Type::Dom => {
            if paths.len() != 1 {
                return None;
            }
            let t = paths.iter().next().expect("nonempty");
            match t {
                Term::Sym(s) => Some(Value::atom(&**s)),
                _ => None,
            }
        }
        Type::Tuple(fields) if fields.is_empty() => {
            let t = paths.iter().next().expect("nonempty");
            (paths.len() == 1 && t.is_sym("<>")).then(Value::unit)
        }
        Type::Tuple(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (name, fty) in fields.iter() {
                let sub: PathSet = paths
                    .iter()
                    .filter_map(|p| {
                        let (h, rest) = p.split_first();
                        (h.is_sym(name)).then(|| rest.cloned()).flatten()
                    })
                    .collect();
                out.push((name.clone(), decode(&sub, fty)?));
            }
            Some(Value::tuple(out))
        }
        Type::Set(elem) | Type::List(elem) | Type::Bag(elem) => {
            // Group by first segment (member index), in index order.
            let mut groups: Vec<(Term, PathSet)> = Vec::new();
            for p in paths {
                let (h, rest) = p.split_first();
                let rest = rest?.clone();
                match groups.iter_mut().find(|(g, _)| g == h) {
                    Some((_, set)) => {
                        set.insert(rest);
                    }
                    None => {
                        let mut s = BTreeSet::new();
                        s.insert(rest);
                        groups.push((h.clone(), s));
                    }
                }
            }
            let members = groups
                .into_iter()
                .map(|(_, sub)| decode(&sub, elem))
                .collect::<Option<Vec<_>>>()?;
            match ty {
                Type::Set(_) => Some(Value::set(members)),
                Type::List(_) => Some(Value::list(members)),
                _ => Some(Value::bag(members)),
            }
        }
        Type::Any => None,
    }
}

/// Evaluation limits.
#[derive(Clone, Copy, Debug)]
pub struct PathBudget {
    /// Maximum number of paths in any intermediate set.
    pub max_paths: usize,
}

impl Default for PathBudget {
    fn default() -> PathBudget {
        PathBudget { max_paths: 500_000 }
    }
}

/// Evaluates `expr` on a path set under the Figure 4 rules.
pub fn eval_paths(expr: &Expr, input: &PathSet) -> Result<PathSet, PathError> {
    eval_paths_with(expr, input, PathBudget::default())
}

/// Evaluates with an explicit budget.
pub fn eval_paths_with(
    expr: &Expr,
    input: &PathSet,
    budget: PathBudget,
) -> Result<PathSet, PathError> {
    let out = step(expr, input, &budget)?;
    Ok(out)
}

fn check(set: PathSet, budget: &PathBudget) -> Result<PathSet, PathError> {
    if set.len() > budget.max_paths {
        Err(PathError::Budget(budget.max_paths))
    } else {
        Ok(set)
    }
}

fn malformed(op: &str, p: &Term) -> PathError {
    PathError::Malformed {
        op: op.to_string(),
        path: p.to_string(),
    }
}

pub(crate) fn step(
    expr: &Expr,
    input: &PathSet,
    budget: &PathBudget,
) -> Result<PathSet, PathError> {
    match expr {
        Expr::Id => Ok(input.clone()),
        Expr::Compose(f, g) => {
            let mid = step(f, input, budget)?;
            step(g, &mid, budget)
        }
        // [[c]](P) := {m.c | m.p ∈ P} — generalized to arbitrary constant
        // values by splicing the value's own path set below m.
        Expr::Const(v) => {
            let vp = value_paths(v);
            let mut out = BTreeSet::new();
            for t in input {
                let (m, _) = t.split_first();
                for p in &vp {
                    out.insert(Term::cons(m.clone(), p.clone()));
                }
            }
            check(out, budget)
        }
        // ∅ has no paths at all.
        Expr::EmptyColl => Ok(BTreeSet::new()),
        // [[sng]](P) := {m.1.p | m.p ∈ P}
        Expr::Sng => {
            let mut out = BTreeSet::new();
            for t in input {
                let (m, rest) = t.split_first();
                out.insert(Term::cons(
                    m.clone(),
                    Term::cons_opt(Term::sym("1"), rest.cloned()),
                ));
            }
            check(out, budget)
        }
        // [[map(f)]] := map_e ∘ [[f]] ∘ map_b
        Expr::Map(f) => {
            let grouped = map_b(input)?;
            let mapped = step(f, &grouped, budget)?;
            let out = map_e(&mapped)?;
            check(out, budget)
        }
        // [[flatten]](P) := {m.(i.j).p | m.i.j.p ∈ P}
        Expr::Flatten => {
            let mut out = BTreeSet::new();
            for t in input {
                let (m, i, j, p) = t.split_three().ok_or_else(|| malformed("flatten", t))?;
                out.insert(Term::cons(
                    m.clone(),
                    Term::cons_opt(Term::cons(i.clone(), j.clone()), p.cloned()),
                ));
            }
            check(out, budget)
        }
        // [[pairwith_Aj]](P) := {m.i.Aj.p | m.Aj.i.p ∈ P}
        //                     ∪ {m.i.Ak.p′ | m.Aj.i.p, m.Ak.p′ ∈ P, k ≠ j}
        Expr::PairWith(attr) => {
            let aj = attr.as_str();
            let mut out = BTreeSet::new();
            // Collect, per member m, the indexes i under attribute Aj and
            // the other-attribute paths.
            for t in input {
                let (m, a, i_or_p) = match t.split_two() {
                    Some((m, a, _)) => (m, a, t),
                    None => return Err(malformed("pairwith", t)),
                };
                let _ = i_or_p;
                if a.is_sym(aj) {
                    let (_, _, rest) = t.split_two().expect("checked");
                    let (i, p) = rest.ok_or_else(|| malformed("pairwith", t))?.split_first();
                    out.insert(Term::cons(
                        m.clone(),
                        Term::cons(i.clone(), Term::cons_opt(Term::sym(aj), p.cloned())),
                    ));
                    // Copies of the other attributes for this i.
                    for t2 in input {
                        if let Some((m2, a2, p2)) = t2.split_two() {
                            if m2 == m && !a2.is_sym(aj) {
                                out.insert(Term::cons(
                                    m.clone(),
                                    Term::cons(i.clone(), Term::cons_opt(a2.clone(), p2.cloned())),
                                ));
                            }
                        }
                    }
                }
            }
            check(out, budget)
        }
        // [[⟨A1: f1, …, Ak: fk⟩]](P) := ∪_l {m.Al.p | m.p ∈ [[fl]](P)}
        Expr::MkTuple(fields) => {
            let mut out = BTreeSet::new();
            if fields.is_empty() {
                // ⟨⟩ is a constant: {m.⟨⟩ | m.p ∈ P}.
                for t in input {
                    let (m, _) = t.split_first();
                    out.insert(Term::cons(m.clone(), Term::unit()));
                }
                return check(out, budget);
            }
            for (name, f) in fields {
                let sub = step(f, input, budget)?;
                for t in &sub {
                    let (m, rest) = t.split_first();
                    out.insert(Term::cons(
                        m.clone(),
                        Term::cons_opt(Term::sym(name.as_str()), rest.cloned()),
                    ));
                }
            }
            check(out, budget)
        }
        // [[πA]](P) := {m.p | m.A.p ∈ P}
        Expr::Proj(a) => {
            let mut out = BTreeSet::new();
            for t in input {
                if let Some((m, attr, p)) = t.split_two() {
                    if attr.is_sym(a.as_str()) {
                        match p {
                            Some(p) => out.insert(Term::cons(m.clone(), p.clone())),
                            None => out.insert(m.clone()),
                        };
                    }
                }
            }
            check(out, budget)
        }
        // [[f ∪ g]](P) := {m.(1.i).p | m.i.p ∈ [[f]](P)}
        //              ∪ {m.(2.i).p | m.i.p ∈ [[g]](P)}
        Expr::Union(f, g) => {
            let mut out = BTreeSet::new();
            for (tag, branch) in [("1", f), ("2", g)] {
                let sub = step(branch, input, budget)?;
                for t in &sub {
                    let (m, i, p) = t.split_two().ok_or_else(|| malformed("union", t))?;
                    out.insert(Term::cons(
                        m.clone(),
                        Term::cons_opt(Term::cons(Term::sym(tag), i.clone()), p.cloned()),
                    ));
                }
            }
            check(out, budget)
        }
        // [[A =atomic B]](P) := {m.1.⟨⟩ | m.A.p, m.B.p ∈ P}
        Expr::Pred(Cond::Eq(Operand::Path(pa), Operand::Path(pb), EqMode::Atomic))
            if pa.len() == 1 && pb.len() == 1 =>
        {
            let mut out = BTreeSet::new();
            for t in input {
                if let Some((m, attr, p)) = t.split_two() {
                    if attr.is_sym(pa[0].as_str()) {
                        // Seek m.B.p in P.
                        let wanted = Term::cons(
                            m.clone(),
                            Term::cons_opt(Term::sym(pb[0].as_str()), p.cloned()),
                        );
                        if input.contains(&wanted) {
                            out.insert(Term::cons(
                                m.clone(),
                                Term::cons(Term::sym("1"), Term::unit()),
                            ));
                        }
                    }
                }
            }
            check(out, budget)
        }
        // σ over atomic conditions (derived in Example 2.3; supported
        // directly so the Fig 2 translation images stay in the fragment).
        // Under the map-convention of [[·]], the first segment is the
        // *outer* member and the filtered set's members are the second
        // segment, so conditions are evaluated per (m, i) prefix.
        Expr::Select(cond) => {
            let mut out = BTreeSet::new();
            let mut members: Vec<(&Term, &Term)> = Vec::new();
            for t in input {
                if let Some((m, i, _)) = t.split_two() {
                    if !members.contains(&(m, i)) {
                        members.push((m, i));
                    }
                }
            }
            for (m, i) in members {
                if eval_select_cond(cond, m, i, input)? {
                    for t in input {
                        if let Some((tm, ti, _)) = t.split_two() {
                            if tm == m && ti == i {
                                out.insert(t.clone());
                            }
                        }
                    }
                }
            }
            check(out, budget)
        }
        other => Err(PathError::Unsupported(other.to_string())),
    }
}

/// `map_b`: `{(m.i).p | m.i.p ∈ P}`.
pub fn map_b(input: &PathSet) -> Result<PathSet, PathError> {
    let mut out = BTreeSet::new();
    for t in input {
        let (m, i, p) = t.split_two().ok_or_else(|| malformed("map_b", t))?;
        out.insert(Term::cons_opt(Term::cons(m.clone(), i.clone()), p.cloned()));
    }
    Ok(out)
}

/// `map_e`: `{m.i.p | (m.i).p ∈ P}`.
pub fn map_e(input: &PathSet) -> Result<PathSet, PathError> {
    let mut out = BTreeSet::new();
    for t in input {
        let (head, p) = t.split_first();
        let Term::Pair(m, i) = head else {
            return Err(malformed("map_e", t));
        };
        out.insert(Term::cons(
            (**m).clone(),
            Term::cons_opt((**i).clone(), p.cloned()),
        ));
    }
    Ok(out)
}

/// Resolves an atomic condition for the set member at prefix `m.i`: an
/// operand path `π` resolves to the atom `c` with `m.i.π.c ∈ P`.
fn eval_select_cond(cond: &Cond, m: &Term, i: &Term, input: &PathSet) -> Result<bool, PathError> {
    match cond {
        Cond::True => Ok(true),
        Cond::And(a, b) => {
            Ok(eval_select_cond(a, m, i, input)? && eval_select_cond(b, m, i, input)?)
        }
        Cond::Or(a, b) => {
            Ok(eval_select_cond(a, m, i, input)? || eval_select_cond(b, m, i, input)?)
        }
        Cond::Eq(a, b, EqMode::Atomic) => {
            let va = resolve_atom(a, m, i, input)?;
            let vb = resolve_atom(b, m, i, input)?;
            Ok(match (va, vb) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            })
        }
        other => Err(PathError::Unsupported(format!(
            "selection condition {other}"
        ))),
    }
}

fn resolve_atom(
    op: &Operand,
    m: &Term,
    i: &Term,
    input: &PathSet,
) -> Result<Option<String>, PathError> {
    match op {
        Operand::Const(v) => match v.kind() {
            ValueKind::Atom(a) => Ok(Some(a.as_str().to_string())),
            _ => Err(PathError::Unsupported(format!(
                "non-atomic constant {v} in a path-selection"
            ))),
        },
        Operand::Path(attrs) => {
            'outer: for t in input {
                let segs = t.segments();
                if segs.len() != attrs.len() + 3 || segs[0] != m || segs[1] != i {
                    continue;
                }
                for (k, a) in attrs.iter().enumerate() {
                    if !segs[k + 2].is_sym(a.as_str()) {
                        continue 'outer;
                    }
                }
                if let Term::Sym(c) = segs[segs.len() - 1] {
                    return Ok(Some(c.to_string()));
                }
            }
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_term;
    use cv_value::{parse_type, parse_value};

    fn ps(paths: &[&str]) -> PathSet {
        paths
            .iter()
            .map(|s| parse_term(s).unwrap_or_else(|| panic!("bad path {s}")))
            .collect()
    }

    #[test]
    fn value_paths_of_scalars_and_tuples() {
        let v = parse_value("<A: x, B: <C: y, D: z>>").unwrap();
        assert_eq!(value_paths(&v), ps(&["A.x", "B.C.y", "B.D.z"]));
        assert_eq!(value_paths(&Value::unit()), ps(&["<>"]));
        let v = parse_value("{a, b}").unwrap();
        assert_eq!(value_paths(&v), ps(&["1.a", "2.b"]));
        let v = parse_value("{{a}, {b, c}}").unwrap();
        assert_eq!(value_paths(&v), ps(&["1.1.a", "2.1.b", "2.2.c"]));
    }

    #[test]
    fn decode_inverts_value_paths() {
        for (src, ty) in [
            ("{a, b}", "{Dom}"),
            ("{<A: x, B: y>, <A: z, B: w>}", "{<A: Dom, B: Dom>}"),
            ("{{a}, {b, c}}", "{{Dom}}"),
            ("<>", "<>"),
            ("{<>}", "{<>}"),
        ] {
            let v = parse_value(src).unwrap();
            let t = parse_type(ty).unwrap();
            assert_eq!(decode(&value_paths(&v), &t), Some(v), "src {src}");
        }
        // Empty set decodes from the empty path set.
        assert_eq!(
            decode(&BTreeSet::new(), &parse_type("{Dom}").unwrap()),
            Some(Value::set([]))
        );
    }

    #[test]
    fn singleton_and_projection_rules() {
        // [[sng]] on {1.<>} (the encoding of {⟨⟩}).
        let p0 = ps(&["1.<>"]);
        let got = eval_paths(&Expr::Sng, &p0).unwrap();
        assert_eq!(got, ps(&["1.1.<>"]));
        // π_A : {m.A.p} → {m.p}
        let p = ps(&["1.A.x", "1.B.y"]);
        let got = eval_paths(&Expr::proj("A"), &p).unwrap();
        assert_eq!(got, ps(&["1.x"]));
    }

    #[test]
    fn flatten_groups_indices() {
        let p = ps(&["1.1.1.a", "1.1.2.b", "1.2.1.c"]);
        let got = eval_paths(&Expr::Flatten, &p).unwrap();
        assert_eq!(got, ps(&["1.(1.1).a", "1.(1.2).b", "1.(2.1).c"]));
    }

    #[test]
    fn union_tags_branches() {
        let one = Expr::atom("1").then(Expr::Sng);
        let two = Expr::atom("2").then(Expr::Sng);
        let got = eval_paths(&one.union(two), &ps(&["1.<>"])).unwrap();
        assert_eq!(got, ps(&["1.(1.1).1", "1.(2.1).2"]));
    }

    #[test]
    fn agreement_with_direct_evaluator() {
        // U^{τ′}([[f]](P)) = map(f)(U^{τ}(P)) — the Theorem 5.2 claim,
        // spot-checked on concrete values and queries.
        use cv_monad::{eval, CollectionKind};
        let cases: Vec<(&str, &str, &str, Expr)> = vec![
            ("{a, b}", "{Dom}", "{{Dom}}", Expr::Sng),
            (
                "{<A: x, B: y>}",
                "{<A: Dom, B: Dom>}",
                "{Dom}",
                Expr::proj("A"),
            ),
            (
                "{<A: {1, 2}, B: z>}",
                "{<A: {Dom}, B: Dom>}",
                "{{<A: Dom, B: Dom>}}",
                Expr::pairwith("A"),
            ),
            ("{{a, b}}", "{{Dom}}", "{{{Dom}}}", Expr::Sng.mapped()),
            // σ filters the members of each set member (the input is a
            // set of sets of tuples under the map convention).
            (
                "{{<A: x, B: x>, <A: x, B: y>}}",
                "{{<A: Dom, B: Dom>}}",
                "{{<A: Dom, B: Dom>}}",
                Expr::Select(Cond::eq_atomic(Operand::path("A"), Operand::path("B"))),
            ),
            // NB: members where the predicate fails would decode as
            // *missing* rather than as ∅ — empty collections have no paths
            // (see the module docs) — so the spot-check uses all-true rows.
            (
                "{<A: x, B: x>, <A: y, B: y>}",
                "{<A: Dom, B: Dom>}",
                "{{<>}}",
                Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B"))),
            ),
        ];
        for (input, in_ty, out_ty, f) in cases {
            let v = parse_value(input).unwrap();
            let in_ty = parse_type(in_ty).unwrap();
            let out_ty = parse_type(out_ty).unwrap();
            let p = value_paths(&v);
            let got_paths =
                eval_paths(&f, &p).unwrap_or_else(|e| panic!("path eval failed for {f}: {e}"));
            let got =
                decode(&got_paths, &out_ty).unwrap_or_else(|| panic!("decode failed for {f}"));
            let want = eval(&f.clone().mapped(), CollectionKind::Set, &v).unwrap();
            assert_eq!(got, want, "query {f} on {input}; in_ty {in_ty}");
        }
    }

    #[test]
    fn unsupported_operations_error() {
        let p = ps(&["1.<>"]);
        assert!(matches!(
            eval_paths(&Expr::Not, &p),
            Err(PathError::Unsupported(_))
        ));
        assert!(matches!(
            eval_paths(&Expr::Unique, &p),
            Err(PathError::Unsupported(_))
        ));
    }

    #[test]
    fn budget_guards_blowup() {
        // id × id iterated at tiny budget.
        let two = Expr::konst(parse_value("{0, 1}").unwrap());
        let product = cv_monad::derived::product(Expr::Id, Expr::Id);
        let mut q = two;
        for _ in 0..6 {
            q = q.then(product.clone());
        }
        let r = eval_paths_with(&q, &ps(&["1.<>"]), PathBudget { max_paths: 1000 });
        assert!(matches!(r, Err(PathError::Budget(_))));
    }
}
