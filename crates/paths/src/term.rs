//! Nested paths — terms over a single binary function symbol `f` and
//! constants, written in the paper's dot notation (proof of Theorem 5.2):
//!
//! > A constant `c` is written as `c` as a path. Inductively, if `t, t′`
//! > are terms and `p, p′` are their respective representations as paths,
//! > then the term `f(t, t′)` is represented as a path as `p.p′` if `t` is
//! > atomic and as `(p).p′` otherwise.
//!
//! So `f(f(x,y), f(z, f(u,v)))` prints as `(x.y).z.u.v`: a *path* is a
//! right-nested sequence of *segments*, each segment a constant or a
//! parenthesized sub-path ("left `f`-term children are Skolem functions
//! generating new path labels").

use std::fmt;
use std::rc::Rc;

/// A term over the binary symbol `f` and string constants. [`Term::Pair`]
/// is `f(head, tail)`; viewed as a path, `head` is the first segment and
/// `tail` the rest.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A constant (a set-member index, attribute name, atom, or `⟨⟩`).
    Sym(Rc<str>),
    /// `f(head, tail)`.
    Pair(Rc<Term>, Rc<Term>),
}

impl Term {
    /// A constant segment.
    pub fn sym(s: impl AsRef<str>) -> Term {
        Term::Sym(Rc::from(s.as_ref()))
    }

    /// The unit-tuple constant `⟨⟩`, a path of length one (Thm 5.2 proof).
    pub fn unit() -> Term {
        Term::sym("<>")
    }

    /// `f(head, tail)` — prepends a segment to a path.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::Pair(Rc::new(head), Rc::new(tail))
    }

    /// Prepends `head` to an optional rest (absent rest gives `head`).
    pub fn cons_opt(head: Term, tail: Option<Term>) -> Term {
        match tail {
            Some(t) => Term::cons(head, t),
            None => head,
        }
    }

    /// Splits off the first segment: `m.p ↦ (m, Some(p))`, `m ↦ (m, None)`.
    pub fn split_first(&self) -> (&Term, Option<&Term>) {
        match self {
            Term::Pair(h, t) => (h, Some(t)),
            s => (s, None),
        }
    }

    /// Splits off the first two segments `m.i.p ↦ (m, i, p?)`, if present.
    pub fn split_two(&self) -> Option<(&Term, &Term, Option<&Term>)> {
        let (m, rest) = self.split_first();
        let (i, p) = rest?.split_first();
        Some((m, i, p))
    }

    /// Splits off the first three segments `m.i.j.p ↦ (m, i, j, p?)`.
    pub fn split_three(&self) -> Option<(&Term, &Term, &Term, Option<&Term>)> {
        let (m, i, rest) = self.split_two()?;
        let (j, p) = rest?.split_first();
        Some((m, i, j, p))
    }

    /// The segments of the path, in order.
    pub fn segments(&self) -> Vec<&Term> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::Pair(h, t) => {
                    out.push(&**h);
                    cur = t;
                }
                s => {
                    out.push(s);
                    return out;
                }
            }
        }
    }

    /// Builds a path from a nonempty segment sequence.
    pub fn from_segments(segs: Vec<Term>) -> Term {
        let mut it = segs.into_iter().rev();
        let last = it.next().expect("a path has at least one segment");
        it.fold(last, |acc, s| Term::cons(s, acc))
    }

    /// Whether `self` is a constant segment with this symbol.
    pub fn is_sym(&self, s: &str) -> bool {
        matches!(self, Term::Sym(x) if &**x == s)
    }

    /// Number of symbols in the term — the "path size" of the Theorem 5.2
    /// polynomial-size argument.
    pub fn size(&self) -> u64 {
        match self {
            Term::Sym(_) => 1,
            Term::Pair(a, b) => a.size() + b.size(),
        }
    }

    /// Number of segments in the path view.
    pub fn len(&self) -> usize {
        self.segments().len()
    }

    /// Always false — terms are nonempty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Sym(s) => f.write_str(s),
            Term::Pair(h, t) => {
                match &**h {
                    Term::Sym(s) => f.write_str(s)?,
                    composite => write!(f, "({composite})")?,
                }
                write!(f, ".{t}")
            }
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Parses a path in dot notation (inverse of `Display`), for golden tests:
/// `(x.y).z.u.v`.
pub fn parse_term(src: &str) -> Option<Term> {
    let mut pos = 0;
    let t = parse_path(src.as_bytes(), &mut pos)?;
    (pos == src.len()).then_some(t)
}

fn parse_segment(b: &[u8], pos: &mut usize) -> Option<Term> {
    if *pos < b.len() && b[*pos] == b'(' {
        *pos += 1;
        let inner = parse_path(b, pos)?;
        if *pos < b.len() && b[*pos] == b')' {
            *pos += 1;
            Some(inner)
        } else {
            None
        }
    } else {
        let start = *pos;
        while *pos < b.len() {
            let c = b[*pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '<' || c == '>' || c == '$' {
                *pos += 1;
            } else {
                break;
            }
        }
        (*pos > start).then(|| Term::sym(std::str::from_utf8(&b[start..*pos]).ok().unwrap()))
    }
}

fn parse_path(b: &[u8], pos: &mut usize) -> Option<Term> {
    let mut segs = vec![parse_segment(b, pos)?];
    while *pos < b.len() && b[*pos] == b'.' {
        *pos += 1;
        segs.push(parse_segment(b, pos)?);
    }
    Some(Term::from_segments(segs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_example() {
        // f(f(x,y), f(z, f(u,v))) = (x.y).z.u.v
        let t = Term::cons(
            Term::cons(Term::sym("x"), Term::sym("y")),
            Term::from_segments(vec![Term::sym("z"), Term::sym("u"), Term::sym("v")]),
        );
        assert_eq!(t.to_string(), "(x.y).z.u.v");
    }

    #[test]
    fn parse_round_trips() {
        // Display is canonical: parentheses appear only on composite
        // *left* children (the paper's rule); the figures' extra
        // parentheses on right-nested groups like `1.(1.1)` are redundant
        // (`f(1, f(1,1))` *is* `1.1.1`).
        for src in ["c", "1.<>", "(x.y).z.u.v", "(a.b.c).d", "((a.b).c).d"] {
            let t = parse_term(src).unwrap_or_else(|| panic!("parse {src}"));
            assert_eq!(t.to_string(), src);
        }
        // Parentheses on a *final* segment are redundant — the group is
        // just the tail term — while mid-path parentheses are significant.
        assert_eq!(parse_term("1.(1.1)").unwrap(), parse_term("1.1.1").unwrap());
        assert_eq!(
            parse_term("((1.(2.1)).1.1).1.<>").unwrap(),
            parse_term("((1.2.1).1.1).1.<>").unwrap()
        );
        assert_ne!(
            parse_term("1.(1.1).1").unwrap(),
            parse_term("1.1.1.1").unwrap(),
            "mid-path groups are left children, not tails"
        );
        // Canonical display round-trips through parse.
        for src in ["((1.(2.1)).1.1).1.<>", "1.A.(2.1).2"] {
            let t = parse_term(src).unwrap();
            assert_eq!(parse_term(&t.to_string()).unwrap(), t);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_term("").is_none());
        assert!(parse_term("(a.b").is_none());
        assert!(parse_term("a..b").is_none());
        assert!(parse_term("a.b)").is_none());
    }

    #[test]
    fn segment_views() {
        let t = parse_term("(x.y).z.u").unwrap();
        let segs = t.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].to_string(), "x.y");
        assert_eq!(segs[1].to_string(), "z");
        let (m, rest) = t.split_first();
        assert_eq!(m.to_string(), "x.y");
        assert_eq!(rest.unwrap().to_string(), "z.u");
        let (m, i, p) = t.split_two().unwrap();
        assert_eq!(m.to_string(), "x.y");
        assert_eq!(i.to_string(), "z");
        assert_eq!(p.unwrap().to_string(), "u");
        assert!(Term::sym("q").split_two().is_none());
    }

    #[test]
    fn from_segments_round_trip() {
        let t = parse_term("(x.y).z.u.v").unwrap();
        let rebuilt = Term::from_segments(t.segments().into_iter().cloned().collect());
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn size_counts_symbols() {
        assert_eq!(parse_term("c").unwrap().size(), 1);
        assert_eq!(parse_term("(x.y).z").unwrap().size(), 3);
        assert_eq!(parse_term("((1.(2.1)).1.1).1.<>").unwrap().size(), 7);
    }
}
