//! Complexity reductions of Koch (PODS 2005) §4.1, §5.2, and §7.1, each
//! validated against an independent oracle:
//!
//! * [`blowup`] — the Prop 4.2 doubly-exponential value family and the
//!   Prop 4.3 size bound `C_f`;
//! * [`ntm`] / [`ntm_to_ma`] — NTMs and the Theorem 5.6 reduction to
//!   `M∪[=atomic]` (NEXPTIME-hardness), with both Lemma 5.7 equality
//!   flavors;
//! * [`atm`] / [`atm_to_ma`] — alternating TMs and the Theorem 5.9/5.11
//!   reduction to `M∪[=mon, not]` (TA[2^O(n), O(n)]-hardness);
//! * [`qbf`] — QBF and the Prop 7.4 reduction to `XQ⁻[not]`
//!   (PSPACE-hardness);
//! * [`three_col`] — 3-colorability and the Prop 7.7 reduction to
//!   negation-free `XQ⁻` (NP-hardness).

pub mod atm;
pub mod atm_to_ma;
pub mod blowup;
pub mod ntm;
pub mod ntm_to_ma;
pub mod qbf;
pub mod three_col;

pub use atm::Atm;
pub use atm_to_ma::AtmReduction;
pub use blowup::{blowup_cardinality, blowup_query, measure_blowup, size_bound, BlowupPoint};
pub use ntm::{Config, Move, Ntm, Transition};
pub use ntm_to_ma::{defined_mon_eq, EqFlavor, NtmReduction};
pub use qbf::{qbf_query, qbf_tree, random_qbf, Formula, Qbf, Quantifier};
pub use three_col::{color_tree, random_graph, three_col_query, Graph};
