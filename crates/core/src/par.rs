//! Data-parallel evaluation over the arena document store.
//!
//! The paper's combined-complexity results hinge on large `for`-nests over
//! documents: loops range over thousands of input nodes, and the body's
//! work per node is independent of every other node's. With the label
//! interner global and sharded, [`ArenaDoc`] is `Send + Sync`, so those
//! loops split across threads: [`eval_query_par`] asks the planner
//! ([`ParPlan`], see [`crate::plan`]) which parts of the query shard —
//! `Seq` branches, flattened `for`-nests, hoisted `let` sources,
//! predicate-filtered loops — carves each shardable work-list into one
//! contiguous chunk per worker, and evaluates the loop body on each chunk
//! under [`std::thread::scope`] (no thread pool, no external runtime — the
//! registry is offline).
//!
//! **Determinism is the contract.** Workers return their chunk's result as
//! interned token buffers ([`IToken`], `Copy + Send`); the merging thread
//! splices the per-worker buffers *in chunk order* and rebuilds trees in
//! one pass with [`forest_from_itokens`] — no intermediate
//! [`Token`](cv_xtree::Token) list, no per-chunk rebuild. Because each
//! body evaluation is exactly the Figure 1 sequential semantics on the
//! same subtree values, and every plan node concatenates partial results
//! in iteration/branch order, the merged result is byte-identical to
//! [`eval_query`](crate::eval_query) — the `par_diff` differential suite
//! asserts this at 1/2/4/8 threads over the random-query corpus.
//!
//! **Shared values are built once.** If any shard body or opaque leaf
//! mentions `$root`, the root tree is materialized **once** before the
//! thread split and shared with every worker by an `Arc` pointer bump
//! (`Tree` is `Arc`-backed) — not once per worker, which at `N` workers
//! cost `N` full-tree materializations per query. Hoisted `let` bindings
//! are shared the same way.
//!
//! **Budget semantics.** Each worker draws on the step/item caps of the
//! [`Budget`] independently for its chunk (a shared atomic counter would
//! put a contended cache line in the innermost loop). Work per chunk is a
//! subset of the sequential work, so any query that fits the budget
//! sequentially also fits it in parallel; the converse may not hold, which
//! only ever turns an error into a result. A worker that *exactly*
//! exhausts its step or item cap mid-chunk continues with a cap of 0 —
//! and 0 means "nothing further allowed", never "unlimited" (see
//! [`Budget::max_steps`]), so the next item fails deterministically.
//!
//! Queries with no shardable loop of at least two items (or `threads <=
//! 1`) fall back to the sequential evaluator on the materialized tree —
//! [`ParStats::parallelized`] reports which path ran.

use crate::ast::{Query, Var};
use crate::plan::{ParPlan, ShardPlan};
use crate::semantics::{eval_with, Budget, Env, EvalStats, XqError};
use cv_xtree::{forest_from_itokens, intern_tokens, ArenaDoc, IToken, Label, NodeId, Tree};

/// Counters reported by [`eval_query_par`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ParStats {
    /// Worker threads the budget's [`Threads`](crate::Threads) knob
    /// resolved to (the *requested* parallelism).
    pub threads: usize,
    /// Workers actually spawned — the maximum over the plan's shard
    /// executions, each of which spawns one worker per chunk. Less than
    /// [`ParStats::threads`] when a work-list has fewer items than
    /// threads; 0 on the sequential fallback.
    pub workers: usize,
    /// Sharded work items across all plan loops (0 when the query fell
    /// back to the sequential path).
    pub outer_items: usize,
    /// Whether the data-parallel path ran (false: sequential fallback).
    pub parallelized: bool,
    /// Evaluation steps summed over all workers and opaque (sequential)
    /// plan leaves. Excludes source resolution, which is pure arena axis
    /// scans plus any filter predicates.
    pub steps: u64,
    /// Result-list items summed over all workers and opaque leaves.
    pub items: u64,
}

/// Splits `q` into its element-constructor wrappers and the outermost
/// `for`, if that is its shape: `⟨a⟩…⟨b⟩ for $v in σ return β ⟨/b⟩…⟨/a⟩`
/// returns `([a, …, b], $v, σ, β)`.
///
/// This was the *entire* analysis of the PR 4 parallel layer; the planner
/// ([`ParPlan`]) subsumes it. It remains public as the baseline the T17
/// coverage harness measures the planner against.
pub fn outer_for_split(q: &Query) -> Option<(Vec<Label>, &Var, &Query, &Query)> {
    let mut wrappers = Vec::new();
    let mut cur = q;
    loop {
        match cur {
            Query::Elem(a, body) => {
                wrappers.push(a.clone());
                cur = body;
            }
            Query::For(v, source, body) => return Some((wrappers, v, source, body)),
            _ => return None,
        }
    }
}

/// Resolves a `for`-source that is a chain of axis steps grounded at
/// `$root` to the arena nodes it selects, in document order with
/// multiplicity. Returns `None` for any other source shape.
///
/// The planner's source resolution (which additionally handles pinned
/// variables and filter predicates) supersedes this; like
/// [`outer_for_split`] it is kept as the T17 baseline.
pub fn resolve_node_source(doc: &ArenaDoc, source: &Query) -> Option<Vec<NodeId>> {
    match source {
        Query::Var(v) if *v == Var::root() => Some(vec![doc.root()]),
        Query::Step(base, axis, test) => {
            let bases = resolve_node_source(doc, base)?;
            let mut out = Vec::new();
            for b in bases {
                out.extend(doc.axis(b, *axis, test));
            }
            Some(out)
        }
        _ => None,
    }
}

/// Carves `items` into at most `parts` contiguous chunks of near-equal
/// length (never empty; fewer chunks than `parts` when items are scarce).
/// Public so every parallel engine shards identically
/// (`xq_stream::stream_query_arena_par` uses it too).
pub fn chunks<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.clamp(1, items.len().max(1));
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

/// The row loop shared by the worker and inline shard paths: evaluates
/// `body` with the loop variables bound row-wise to the rows' subtrees
/// (plus the shared `$root` tree and hoisted bindings when present),
/// under one draining slice of the budget, feeding every result tree to
/// `emit` in iteration order.
#[allow(clippy::too_many_arguments)]
fn eval_rows(
    doc: &ArenaDoc,
    vars: &[Var],
    body: &Query,
    rows: &[&[NodeId]],
    budget: Budget,
    root: Option<&Tree>,
    hoisted: &[(Var, Tree)],
    mut emit: impl FnMut(Tree),
) -> Result<EvalStats, XqError> {
    let mut env = Env::new();
    if let Some(rt) = root {
        // One shared build: binding is an Arc pointer bump per worker.
        env.bind(Var::root(), rt.clone());
    }
    for (v, t) in hoisted {
        env.bind(v.clone(), t.clone());
    }
    let mut remaining = budget;
    let mut total = EvalStats::default();
    for &row in rows {
        // One env reused across the loop: bind/pop around each row
        // (eval_with clones internally, so the bindings stay per-item).
        for (v, &n) in vars.iter().zip(row) {
            env.bind(v.clone(), doc.subtree(n));
        }
        let result = eval_with(body, &env, remaining.clone());
        for _ in vars {
            env.pop();
        }
        let (out, stats) = result?;
        total.steps += stats.steps;
        total.items += stats.items;
        total.max_env_depth = total.max_env_depth.max(stats.max_env_depth);
        remaining.max_steps = remaining.max_steps.saturating_sub(stats.steps);
        remaining.max_items = remaining.max_items.saturating_sub(stats.items);
        for t in out {
            emit(t);
        }
    }
    Ok(total)
}

/// One worker's share of a sharded loop ([`eval_rows`] with the result
/// crossing back to the merger as an interned token buffer).
#[allow(clippy::too_many_arguments)]
fn eval_chunk(
    doc: &ArenaDoc,
    vars: &[Var],
    body: &Query,
    rows: &[&[NodeId]],
    budget: Budget,
    root: Option<&Tree>,
    hoisted: &[(Var, Tree)],
) -> Result<(Vec<IToken>, EvalStats), XqError> {
    let mut itokens = Vec::new();
    let stats = eval_rows(doc, vars, body, rows, budget, root, hoisted, |t| {
        itokens.extend(intern_tokens(&t.tokens()))
    })?;
    Ok((itokens, stats))
}

/// Plan executor state shared down the plan walk.
struct Exec<'d> {
    doc: &'d ArenaDoc,
    budget: Budget,
    threads: usize,
    /// The root tree, materialized once iff the plan needs it.
    root: Option<Tree>,
    /// Hoisted `let` bindings in scope (each subtree built once, shared
    /// with workers by clone).
    hoisted: Vec<(Var, Tree)>,
    stats: ParStats,
}

impl Exec<'_> {
    fn run(&mut self, plan: &ParPlan<'_>) -> Result<Vec<Tree>, XqError> {
        match plan {
            ParPlan::Wrap(a, inner) => {
                let children = self.run(inner)?;
                Ok(vec![Tree::node(a.clone(), children)])
            }
            ParPlan::Seq(branches) => {
                // Branch order is concatenation order; the first error in
                // branch order wins, as in sequential evaluation.
                let mut out = Vec::new();
                for b in branches {
                    out.extend(self.run(b)?);
                }
                Ok(out)
            }
            ParPlan::Hoist(v, node, inner) => {
                // `let $z := $root` is the common hoist; when the shared
                // root tree already exists, rebinding it is a pointer
                // bump, not a second full materialization.
                let t = match &self.root {
                    Some(rt) if *node == self.doc.root() => rt.clone(),
                    _ => self.doc.subtree(*node),
                };
                self.hoisted.push((v.clone(), t));
                let result = self.run(inner);
                self.hoisted.pop();
                result
            }
            ParPlan::Shard(sp) => self.run_shard(sp),
            ParPlan::Opaque(q) => {
                let mut env = Env::new();
                if let Some(rt) = &self.root {
                    env.bind(Var::root(), rt.clone());
                }
                for (v, t) in &self.hoisted {
                    env.bind(v.clone(), t.clone());
                }
                let (out, stats) = eval_with(q, &env, self.budget.clone())?;
                self.stats.steps += stats.steps;
                self.stats.items += stats.items;
                Ok(out)
            }
        }
    }

    fn run_shard(&mut self, sp: &ShardPlan<'_>) -> Result<Vec<Tree>, XqError> {
        let rows: Vec<&[NodeId]> = sp.rows().collect();
        let parts = chunks(&rows, self.threads);
        self.stats.workers = self.stats.workers.max(parts.len());
        let (doc, budget) = (self.doc, self.budget.clone());
        let (vars, body) = (sp.vars(), sp.body());
        let (root, hoisted) = (self.root.as_ref(), self.hoisted.as_slice());
        if parts.len() <= 1 {
            // One chunk: evaluate inline — no thread to pay for, and no
            // reason to round-trip the result trees through tokens.
            let chunk = parts.first().copied().unwrap_or(&[]);
            let mut out = Vec::new();
            let stats = eval_rows(doc, vars, body, chunk, budget, root, hoisted, |t| {
                out.push(t)
            })?;
            self.stats.steps += stats.steps;
            self.stats.items += stats.items;
            return Ok(out);
        }
        let results: Vec<Result<(Vec<IToken>, EvalStats), XqError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|chunk| {
                    // Clones share the cancel flag: one cancellation (or
                    // deadline) aborts every worker of this request.
                    let budget = budget.clone();
                    scope.spawn(move || eval_chunk(doc, vars, body, chunk, budget, root, hoisted))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluation worker panicked"))
                .collect()
        });
        // Chunk order is iteration order, so splicing the per-worker
        // buffers in order preserves it; the first error in chunk order
        // wins, making failures deterministic for a fixed thread count.
        let mut spliced: Vec<IToken> = Vec::new();
        for r in results {
            let (itokens, chunk_stats) = r?;
            self.stats.steps += chunk_stats.steps;
            self.stats.items += chunk_stats.items;
            spliced.extend_from_slice(&itokens);
        }
        Ok(forest_from_itokens(&spliced).expect("workers emit well-formed tag strings"))
    }
}

/// Evaluates `q` over an arena-backed document, sharding every loop the
/// planner proves splittable across `budget.threads` workers. Results are
/// byte-identical to [`eval_query`](crate::eval_query) on `doc.to_tree()`;
/// see the module docs for the merge and budget contracts.
pub fn eval_query_par(
    q: &Query,
    doc: &ArenaDoc,
    budget: Budget,
) -> Result<(Vec<Tree>, ParStats), XqError> {
    let threads = budget.threads.count();
    if threads <= 1 {
        return eval_seq(q, doc, budget, threads, None);
    }
    // Reuse whatever root build the planner's filter predicates already
    // made — on both the parallel and the fallback path.
    let (plan, planner_root) = ParPlan::of_with_root_cache(q, doc, budget.clone(), None);
    if !plan.engages() {
        return eval_seq(q, doc, budget, threads, planner_root);
    }
    eval_plan(&plan, doc, budget, threads, planner_root)
}

/// [`eval_query_par`] for a compiled plan: the data-parallel entry point
/// of the bytecode VM. The baked [`par_hint`](crate::vm::CompiledPlan::par_hint)
/// short-circuits planning for queries that can never shard (hint `false`
/// proves `ParPlan` would not engage on any document), and both the
/// non-engaging and single-thread routes run on the VM executor instead
/// of the tree-walking interpreter. Output is byte-identical to
/// [`eval_query_par`] — the compiled-vs-interpreted differential suite
/// (`vm_diff`) pins this across the corpus at 1/2/4 threads.
pub fn eval_compiled_par(
    plan: &crate::vm::CompiledPlan,
    doc: &ArenaDoc,
    budget: Budget,
) -> Result<(Vec<Tree>, ParStats), XqError> {
    let threads = budget.threads.count();
    if threads <= 1 || !plan.par_hint() {
        return exec_seq(plan, doc, budget, threads, None);
    }
    let (par_plan, planner_root) =
        ParPlan::of_with_root_cache(plan.query(), doc, budget.clone(), None);
    if !par_plan.engages() {
        return exec_seq(plan, doc, budget, threads, planner_root);
    }
    eval_plan(&par_plan, doc, budget, threads, planner_root)
}

/// The compiled sequential fallback: materialize the tree once (reusing
/// any build the planner already made) and run the VM executor.
fn exec_seq(
    plan: &crate::vm::CompiledPlan,
    doc: &ArenaDoc,
    budget: Budget,
    threads: usize,
    root_cache: Option<Tree>,
) -> Result<(Vec<Tree>, ParStats), XqError> {
    let root = root_cache.unwrap_or_else(|| doc.to_tree());
    let (out, stats) = crate::vm::exec_with(plan, &Env::with_root(root), budget)?;
    Ok((
        out,
        ParStats {
            threads,
            workers: 0,
            outer_items: 0,
            parallelized: false,
            steps: stats.steps,
            items: stats.items,
        },
    ))
}

/// Executes an already-built, engaging plan. Callers that need the
/// engagement decision before committing to this path (`QueryService`
/// keeps non-engaging threaded requests on its cached-tree route) plan
/// once and pass the plan here instead of re-planning via
/// [`eval_query_par`]. `root_cache` is an already-materialized root tree
/// (the planner's predicate build, or a service cache hit) — reused so
/// the "root built once per query" contract holds across planner and
/// executor.
pub(crate) fn eval_plan(
    plan: &ParPlan<'_>,
    doc: &ArenaDoc,
    budget: Budget,
    threads: usize,
    root_cache: Option<Tree>,
) -> Result<(Vec<Tree>, ParStats), XqError> {
    // Build shared values once, before any thread split (satellite fix:
    // this used to happen once per worker).
    let root = if plan.needs_root() {
        Some(root_cache.unwrap_or_else(|| doc.to_tree()))
    } else {
        None
    };
    let mut exec = Exec {
        doc,
        budget,
        threads,
        root,
        hoisted: Vec::new(),
        stats: ParStats {
            threads,
            outer_items: plan.sharded_items(),
            parallelized: true,
            ..ParStats::default()
        },
    };
    let out = exec.run(plan)?;
    Ok((out, exec.stats))
}

/// The sequential fallback: materialize the tree once (reusing any build
/// the planner already made) and run Figure 1.
fn eval_seq(
    q: &Query,
    doc: &ArenaDoc,
    budget: Budget,
    threads: usize,
    root_cache: Option<Tree>,
) -> Result<(Vec<Tree>, ParStats), XqError> {
    let root = root_cache.unwrap_or_else(|| doc.to_tree());
    let (out, stats) = eval_with(q, &Env::with_root(root), budget)?;
    Ok((
        out,
        ParStats {
            threads,
            workers: 0,
            outer_items: 0,
            parallelized: false,
            steps: stats.steps,
            items: stats.items,
        },
    ))
}

// ---------------------------------------------------------------------
// Incremental merge plumbing: bounded token-run queues + a shared
// high-water gauge. The streaming engine's parallel path (xq_stream)
// uses these so workers hand their output to the merger in small runs
// instead of one fully-materialized per-chunk buffer — peak queued
// tokens is bounded by `parts × cap` regardless of result size. The
// eval-side merge above stays materialized on purpose:
// `forest_from_itokens` needs each chunk's full token slice to rebuild
// trees in one pass, and its output is materialized trees anyway, so an
// incremental hand-off would bound nothing.
// ---------------------------------------------------------------------

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// High-water gauge over everything queued in one merge: all
/// [`run_queue`]s of a merge share one gauge, so `peak()` is the maximum
/// number of tokens simultaneously in flight between the workers and the
/// merger — the number that proves the merge incremental.
#[derive(Debug, Default)]
pub struct MergeGauge {
    cur: AtomicU64,
    peak: AtomicU64,
}

impl MergeGauge {
    pub fn new() -> MergeGauge {
        MergeGauge::default()
    }

    fn add(&self, n: u64) {
        let now = self.cur.fetch_add(n, Ordering::SeqCst) + n;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    fn sub(&self, n: u64) {
        self.cur.fetch_sub(n, Ordering::SeqCst);
    }

    /// Peak tokens simultaneously queued across every attached queue.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::SeqCst)
    }
}

/// One message out of a [`run_queue`].
pub enum RunMsg<T, F> {
    /// A run of tokens, in stream order.
    Run(Vec<T>),
    /// The producer finished; carries its final result. Always the last
    /// message.
    Done(F),
}

struct RunInner<T, F> {
    runs: VecDeque<Vec<T>>,
    queued: usize,
    done: Option<F>,
    finished: bool,
    rx_alive: bool,
}

struct RunShared<T, F> {
    inner: Mutex<RunInner<T, F>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
    gauge: Arc<MergeGauge>,
}

/// Sending half of a [`run_queue`]. Dropping it without
/// [`finish`](RunTx::finish) (a panicking producer) marks the queue
/// finished with no result; the receiver panics on that queue, which the
/// join of the producer's thread turns into the producer's own panic.
pub struct RunTx<T, F> {
    shared: Arc<RunShared<T, F>>,
}

/// Receiving half of a [`run_queue`]. Dropping it (an aborted merge)
/// disconnects the producer: pending runs are discarded and every
/// subsequent send is a no-op, so producers never block on a merger that
/// went away.
pub struct RunRx<T, F> {
    shared: Arc<RunShared<T, F>>,
}

/// A bounded single-producer single-consumer queue of token *runs*,
/// capped by total queued tokens (not run count). The producer blocks in
/// [`RunTx::send`] while the consumer is `cap` or more tokens behind;
/// [`RunTx::finish`] always goes through (the final result is not a
/// token). All queues of one merge share a [`MergeGauge`], whose peak
/// bounds the merge's in-flight memory.
pub fn run_queue<T, F>(cap: usize, gauge: Arc<MergeGauge>) -> (RunTx<T, F>, RunRx<T, F>) {
    let shared = Arc::new(RunShared {
        inner: Mutex::new(RunInner {
            runs: VecDeque::new(),
            queued: 0,
            done: None,
            finished: false,
            rx_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        cap,
        gauge,
    });
    (
        RunTx {
            shared: shared.clone(),
        },
        RunRx { shared },
    )
}

impl<T, F> RunTx<T, F> {
    /// Queues one run, blocking while the queue is at capacity. Empty
    /// runs and sends after the receiver dropped are no-ops.
    pub fn send(&self, run: Vec<T>) {
        if run.is_empty() {
            return;
        }
        let mut inner = self.shared.inner.lock().expect("run queue poisoned");
        while inner.rx_alive && inner.queued >= self.shared.cap && !inner.runs.is_empty() {
            inner = self
                .shared
                .not_full
                .wait(inner)
                .expect("run queue poisoned");
        }
        if !inner.rx_alive {
            return; // merger gone: discard, never block
        }
        inner.queued += run.len();
        self.shared.gauge.add(run.len() as u64);
        inner.runs.push_back(run);
        drop(inner);
        self.shared.not_empty.notify_one();
    }

    /// Marks the stream complete with its final result. Bypasses the
    /// capacity bound (a result is not queued tokens).
    pub fn finish(self, result: F) {
        let mut inner = self.shared.inner.lock().expect("run queue poisoned");
        inner.done = Some(result);
        inner.finished = true;
        drop(inner);
        self.shared.not_empty.notify_one();
    }
}

impl<T, F> Drop for RunTx<T, F> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("run queue poisoned");
        // Runs after `finish` too (it takes self by value); setting the
        // flag twice is harmless, and a producer that never called
        // `finish` (a panic) leaves `done` empty for recv to detect.
        inner.finished = true;
        drop(inner);
        self.shared.not_empty.notify_one();
    }
}

impl<T, F> RunRx<T, F> {
    /// The next message, blocking until one is available. Runs drain in
    /// send order; [`RunMsg::Done`] is returned exactly once, after the
    /// last run.
    ///
    /// # Panics
    ///
    /// If called again after `Done`, or if the producer dropped without
    /// calling [`RunTx::finish`] (i.e. it panicked).
    pub fn recv(&mut self) -> RunMsg<T, F> {
        let mut inner = self.shared.inner.lock().expect("run queue poisoned");
        loop {
            if let Some(run) = inner.runs.pop_front() {
                inner.queued -= run.len();
                self.shared.gauge.sub(run.len() as u64);
                drop(inner);
                self.shared.not_full.notify_one();
                return RunMsg::Run(run);
            }
            if inner.finished {
                let result = inner
                    .done
                    .take()
                    .expect("producer dropped without finishing (or recv after Done)");
                return RunMsg::Done(result);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .expect("run queue poisoned");
        }
    }
}

impl<T, F> Drop for RunRx<T, F> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("run queue poisoned");
        inner.rx_alive = false;
        for run in inner.runs.drain(..) {
            self.shared.gauge.sub(run.len() as u64);
        }
        inner.queued = 0;
        drop(inner);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::Threads;
    use crate::{eval_query, parse_query};
    use cv_xtree::{random_tree, TreeGen};

    fn arena(src: &str) -> ArenaDoc {
        ArenaDoc::parse(src).unwrap()
    }

    fn xml(trees: &[Tree]) -> String {
        trees.iter().map(Tree::to_xml).collect()
    }

    #[test]
    fn outer_for_split_recognizes_wrapped_loops() {
        let q = parse_query("<out>{ for $x in $root/a return $x }</out>").unwrap();
        let (wrappers, v, _, _) = outer_for_split(&q).unwrap();
        assert_eq!(wrappers, vec![Label::from("out")]);
        assert_eq!(v.name(), "x");
        assert!(outer_for_split(&parse_query("$root/a").unwrap()).is_none());
    }

    #[test]
    fn node_source_matches_sequential_step_semantics() {
        let doc = arena("<r><a><b/><a/></a><c/><a/></r>");
        let q = parse_query("$root//a").unwrap();
        let nodes = resolve_node_source(&doc, &q).unwrap();
        let seq = eval_query(&q, &doc.to_tree()).unwrap();
        assert_eq!(nodes.len(), seq.len());
        for (n, t) in nodes.iter().zip(&seq) {
            assert_eq!(&doc.subtree(*n), t);
        }
        // Constructed sources are not node sources.
        let q = parse_query("(<w><a/></w>)/a").unwrap();
        assert!(resolve_node_source(&doc, &q).is_none());
    }

    #[test]
    fn chunking_covers_everything_in_order() {
        let items: Vec<u32> = (0..10).collect();
        for parts in 1..=12 {
            let cs = chunks(&items, parts);
            let flat: Vec<u32> = cs.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, items, "parts = {parts}");
            assert!(cs.iter().all(|c| !c.is_empty()));
        }
    }

    #[test]
    fn parallel_agrees_with_sequential_on_fixed_queries() {
        let queries = [
            "for $x in $root/* return <w>{ $x }</w>",
            "<out>{ for $x in $root//a return $x/b }</out>",
            "for $x in $root//* return if ($x =atomic <a/>) then <hit/>",
            "for $x in $root/a return for $y in $root/a return \
             if ($x = $y) then <same/>",
            // Planner shapes: Seq branches, nested fors, let hoist, filter.
            "(for $x in $root/a return <w>{ $x }</w>, \
              for $y in $root/b return <v>{ $y }</v>)",
            "for $x in $root/* return for $y in $x/* return <p>{ $y }</p>",
            "let $z := $root return for $x in $z/* return <w>{ $x }</w>",
            "for $x in (for $w in $root/* where $w/b return $w) return <f>{ $x }</f>",
            "$root/a", // no shardable loop: fallback
            "<solo/>", // constant: fallback
        ];
        for seed in 0..4u64 {
            let mut g = TreeGen::new(seed);
            let t = random_tree(&mut g, 30, &["a", "b", "c"]);
            let doc = ArenaDoc::from_tree(&t);
            for src in queries {
                let q = parse_query(src).unwrap();
                let want = xml(&eval_query(&q, &t).unwrap());
                for threads in [1usize, 2, 4] {
                    let budget = Budget::default().with_threads(Threads::N(threads));
                    let (got, _) = eval_query_par(&q, &doc, budget).unwrap();
                    assert_eq!(xml(&got), want, "{src} at {threads} threads, seed {seed}");
                }
            }
        }
    }

    #[test]
    fn parallel_path_actually_engages() {
        let doc = arena("<r><a/><a/><a/><a/><a/><a/></r>");
        let q = parse_query("for $x in $root/a return <w>{ $x }</w>").unwrap();
        let budget = Budget::default().with_threads(Threads::N(3));
        let (_, stats) = eval_query_par(&q, &doc, budget).unwrap();
        assert!(stats.parallelized);
        assert_eq!(stats.outer_items, 6);
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.workers, 3);
        // Threads::One falls back by construction.
        let (_, stats) = eval_query_par(&q, &doc, Budget::default()).unwrap();
        assert!(!stats.parallelized);
        assert_eq!(stats.workers, 0);
    }

    #[test]
    fn workers_report_actual_spawned_not_requested() {
        // Regression (satellite): with fewer outer items than threads,
        // `chunks` produces fewer parts — the stats must say so.
        let doc = arena("<r><a/><a/></r>");
        let q = parse_query("for $x in $root/a return <w>{ $x }</w>").unwrap();
        let budget = Budget::default().with_threads(Threads::N(8));
        let (_, stats) = eval_query_par(&q, &doc, budget).unwrap();
        assert!(stats.parallelized);
        assert_eq!(stats.threads, 8, "requested parallelism");
        assert_eq!(stats.workers, 2, "actual workers = chunks = items");
    }

    #[test]
    fn errors_are_deterministic_and_budget_is_monotone() {
        let doc = arena("<r><a/><a/><a/><a/></r>");
        // Unbound variable in the body: every worker fails identically.
        let q = parse_query("for $x in $root/a return $nope").unwrap();
        for threads in [1usize, 2, 4] {
            let budget = Budget::default().with_threads(Threads::N(threads));
            let got = eval_query_par(&q, &doc, budget);
            assert!(
                matches!(got, Err(XqError::UnboundVariable(ref v)) if v == "nope"),
                "{got:?} at {threads} threads"
            );
        }
        // A budget ample for the sequential run stays ample in parallel.
        let q = parse_query("for $x in $root/a return ($x, $x)").unwrap();
        let tight = Budget {
            max_steps: 10_000,
            max_items: 10_000,
            ..Budget::default()
        };
        assert!(eval_with(&q, &Env::with_root(doc.to_tree()), tight.clone()).is_ok());
        for threads in [2usize, 4] {
            let b = tight.clone().with_threads(Threads::N(threads));
            assert!(eval_query_par(&q, &doc, b).is_ok());
        }
    }

    #[test]
    fn exact_budget_exhaustion_mid_chunk_errors_deterministically() {
        // Regression (satellite): a worker whose first item consumes
        // *exactly* the remaining step cap continues with max_steps = 0,
        // which must mean "no further steps" — never "unlimited". If 0
        // were treated as unlimited anywhere, the second item of each
        // chunk would silently evaluate with no cap instead of erroring.
        let doc = arena("<r><a/><a/><a/><a/></r>");
        let q = parse_query("for $x in $root/a return <w>{ $x }</w>").unwrap();
        let body = parse_query("<w>{ $x }</w>").unwrap();
        let mut env = Env::new();
        env.bind(Var::new("x"), Tree::leaf("a"));
        let (_, per_item) = eval_with(&body, &env, Budget::default()).unwrap();
        // Two items per chunk at 2 threads; cap = exactly one item's steps.
        let exact = Budget {
            max_steps: per_item.steps,
            max_items: u64::MAX,
            threads: Threads::N(2),
            ..Budget::default()
        };
        for _ in 0..3 {
            let got = eval_query_par(&q, &doc, exact.clone());
            assert!(
                matches!(got, Err(XqError::Budget { which: "steps" })),
                "exact exhaustion must error deterministically, got {got:?}"
            );
        }
    }

    #[test]
    fn threads_knob_resolves() {
        assert_eq!(Threads::One.count(), 1);
        assert_eq!(Threads::N(0).count(), 1);
        assert_eq!(Threads::N(7).count(), 7);
        assert!(Threads::Auto.count() >= 1);
    }
}
