//! Types of complex values, per the grammar of Section 2.2:
//!
//! ```text
//! τ ::= Dom | {τ} | [τ] | {|τ|} | ⟨A1: τ1, ..., Ak: τk⟩
//! ```
//!
//! The paper's set-based grammar only has `{τ}`; §2.3 extends the language
//! to lists and bags with the same operation names, so the type language
//! here carries all three collection constructors.

use crate::{Value, ValueKind};
use std::fmt;
use std::rc::Rc;

/// A complex-value type.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Type {
    /// An unknown type. Not part of the paper's type grammar; used by the
    /// monad-algebra type checker as the element type of the polymorphic
    /// empty-collection constant `∅`. `Any` admits every value and joins
    /// with every type.
    Any,
    /// The atomic domain `Dom`.
    Dom,
    /// A set type `{τ}`.
    Set(Rc<Type>),
    /// A list type `[τ]`.
    List(Rc<Type>),
    /// A bag type `{|τ|}`.
    Bag(Rc<Type>),
    /// A tuple type `⟨A1: τ1, ..., Ak: τk⟩` (k ≥ 0; `⟨⟩` is the unit type).
    Tuple(Rc<[(String, Type)]>),
}

impl Type {
    /// Builds a set type.
    pub fn set(inner: Type) -> Type {
        Type::Set(Rc::new(inner))
    }

    /// Builds a list type.
    pub fn list(inner: Type) -> Type {
        Type::List(Rc::new(inner))
    }

    /// Builds a bag type.
    pub fn bag(inner: Type) -> Type {
        Type::Bag(Rc::new(inner))
    }

    /// Builds a tuple type from attribute/type pairs.
    pub fn tuple<I, S>(fields: I) -> Type
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        Type::Tuple(
            fields
                .into_iter()
                .map(|(n, t)| (n.into(), t))
                .collect::<Vec<_>>()
                .into(),
        )
    }

    /// The unit tuple type `⟨⟩`.
    pub fn unit() -> Type {
        Type::tuple(std::iter::empty::<(String, Type)>())
    }

    /// The Boolean type of the paper: predicates have type `{⟨⟩}`
    /// (or `[⟨⟩]` / `{|⟨⟩|}` on lists and bags).
    pub fn boolean() -> Type {
        Type::set(Type::unit())
    }

    /// True if this is a collection type (set, list, or bag).
    pub fn is_collection(&self) -> bool {
        matches!(self, Type::Set(_) | Type::List(_) | Type::Bag(_))
    }

    /// The element type, if this is a collection type.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Set(t) | Type::List(t) | Type::Bag(t) => Some(t),
            _ => None,
        }
    }

    /// The attribute list, if this is a tuple type.
    pub fn attributes(&self) -> Option<&[(String, Type)]> {
        match self {
            Type::Tuple(fs) => Some(fs),
            _ => None,
        }
    }

    /// Looks up the type of attribute `name`, if this is a tuple type.
    pub fn attribute(&self, name: &str) -> Option<&Type> {
        self.attributes()?
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// True if the type contains no collection constructor. Only such types
    /// support the monotone equality `=mon` (Proposition 5.1).
    pub fn is_collection_free(&self) -> bool {
        match self {
            Type::Dom => true,
            Type::Any | Type::Set(_) | Type::List(_) | Type::Bag(_) => false,
            Type::Tuple(fs) => fs.iter().all(|(_, t)| t.is_collection_free()),
        }
    }

    /// The least upper bound of two types under the "`Any` is unknown"
    /// ordering, if one exists. Used by the type checker to join the two
    /// branches of a union.
    pub fn join(&self, other: &Type) -> Option<Type> {
        match (self, other) {
            (Type::Any, t) | (t, Type::Any) => Some(t.clone()),
            (Type::Dom, Type::Dom) => Some(Type::Dom),
            (Type::Set(a), Type::Set(b)) => Some(Type::set(a.join(b)?)),
            (Type::List(a), Type::List(b)) => Some(Type::list(a.join(b)?)),
            (Type::Bag(a), Type::Bag(b)) => Some(Type::bag(a.join(b)?)),
            (Type::Tuple(xs), Type::Tuple(ys)) => {
                if xs.len() != ys.len() {
                    return None;
                }
                let fields = xs
                    .iter()
                    .zip(ys.iter())
                    .map(|((an, at), (bn, bt))| {
                        if an == bn {
                            Some((an.clone(), at.join(bt)?))
                        } else {
                            None
                        }
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Type::tuple(fields))
            }
            _ => None,
        }
    }

    /// The number of constructors in the type term (used by the Lemma 5.7
    /// size accounting for the defined `=mon`).
    pub fn size(&self) -> usize {
        match self {
            Type::Any | Type::Dom => 1,
            Type::Set(t) | Type::List(t) | Type::Bag(t) => 1 + t.size(),
            Type::Tuple(fs) => 1 + fs.iter().map(|(_, t)| t.size()).sum::<usize>(),
        }
    }

    /// All root-to-leaf attribute paths of a collection-free type, in order.
    /// These are the paths π for which Proposition 5.1 emits an `=atomic`
    /// conjunct when expanding `=mon`.
    pub fn leaf_paths(&self) -> Vec<Vec<String>> {
        fn walk(t: &Type, prefix: &mut Vec<String>, out: &mut Vec<Vec<String>>) {
            match t {
                Type::Dom => out.push(prefix.clone()),
                Type::Tuple(fs) => {
                    for (n, ft) in fs.iter() {
                        prefix.push(n.clone());
                        walk(ft, prefix, out);
                        prefix.pop();
                    }
                }
                // Collection types (and Any) have no =mon leaf paths.
                Type::Any | Type::Set(_) | Type::List(_) | Type::Bag(_) => {}
            }
        }
        let mut out = Vec::new();
        walk(self, &mut Vec::new(), &mut out);
        out
    }

    /// Checks whether `v` conforms to this type.
    ///
    /// Empty collections conform to any collection type of the right kind;
    /// that is the usual treatment for a language whose constants include
    /// the polymorphic `∅`.
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v.kind()) {
            (Type::Any, _) => true,
            (Type::Dom, ValueKind::Atom(_)) => true,
            (Type::Set(t), ValueKind::Set(items)) => items.iter().all(|x| t.admits(x)),
            (Type::List(t), ValueKind::List(items)) => items.iter().all(|x| t.admits(x)),
            (Type::Bag(t), ValueKind::Bag(items)) => items.iter().all(|x| t.admits(x)),
            (Type::Tuple(fs), ValueKind::Tuple(vs)) => {
                fs.len() == vs.len()
                    && fs
                        .iter()
                        .zip(vs.iter())
                        .all(|((fn_, ft), (vn, vv))| fn_ == vn.as_str() && ft.admits(vv))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Any => f.write_str("?"),
            Type::Dom => f.write_str("Dom"),
            Type::Set(t) => write!(f, "{{{t}}}"),
            Type::List(t) => write!(f, "[{t}]"),
            Type::Bag(t) => write!(f, "{{|{t}|}}"),
            Type::Tuple(fs) => {
                f.write_str("<")?;
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                f.write_str(">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn example_type() -> Type {
        // ⟨C: ⟨D: Dom, E: ⟨F: Dom, G: Dom⟩⟩, H: Dom⟩ from Proposition 5.1.
        Type::tuple([
            (
                "C",
                Type::tuple([
                    ("D", Type::Dom),
                    ("E", Type::tuple([("F", Type::Dom), ("G", Type::Dom)])),
                ]),
            ),
            ("H", Type::Dom),
        ])
    }

    #[test]
    fn display_round_trips_through_text() {
        let t = Type::set(Type::tuple([
            ("A", Type::Dom),
            ("B", Type::list(Type::Dom)),
        ]));
        assert_eq!(t.to_string(), "{<A: Dom, B: [Dom]>}");
    }

    #[test]
    fn leaf_paths_match_proposition_5_1_example() {
        // Paper: (A.C.D), (A.C.E.F), (A.C.E.G), (A.H) — relative to the
        // tuple, the paths are C.D, C.E.F, C.E.G, H.
        let paths = example_type().leaf_paths();
        assert_eq!(
            paths,
            vec![
                vec!["C".to_string(), "D".to_string()],
                vec!["C".to_string(), "E".to_string(), "F".to_string()],
                vec!["C".to_string(), "E".to_string(), "G".to_string()],
                vec!["H".to_string()],
            ]
        );
    }

    #[test]
    fn collection_freedom() {
        assert!(example_type().is_collection_free());
        assert!(!Type::set(Type::Dom).is_collection_free());
        assert!(!Type::tuple([("A", Type::bag(Type::Dom))]).is_collection_free());
    }

    #[test]
    fn admits_checks_structure() {
        let t = Type::set(Type::tuple([("A", Type::Dom)]));
        let good = Value::set([Value::tuple([("A", Value::atom("x"))])]);
        let bad = Value::set([Value::atom("x")]);
        assert!(t.admits(&good));
        assert!(!t.admits(&bad));
        // Empty set conforms to any set type.
        assert!(t.admits(&Value::set::<[Value; 0]>([])));
        assert!(!Type::list(Type::Dom).admits(&Value::set::<[Value; 0]>([])));
    }

    #[test]
    fn boolean_is_set_of_unit() {
        assert_eq!(Type::boolean().to_string(), "{<>}");
    }

    #[test]
    fn attribute_lookup() {
        let t = example_type();
        assert_eq!(t.attribute("H"), Some(&Type::Dom));
        assert!(t.attribute("Z").is_none());
        assert!(Type::Dom.attribute("A").is_none());
    }

    #[test]
    fn element_lookup() {
        assert_eq!(Type::set(Type::Dom).element(), Some(&Type::Dom));
        assert_eq!(Type::bag(Type::Dom).element(), Some(&Type::Dom));
        assert!(Type::Dom.element().is_none());
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(Type::Dom.size(), 1);
        assert_eq!(Type::set(Type::Dom).size(), 2);
        // outer tuple + C-tuple + D + E-tuple + F + G + H = 7 constructors
        assert_eq!(example_type().size(), 7);
    }
}
