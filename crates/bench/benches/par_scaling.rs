//! T16/T17 — data-parallel evaluation over the arena store
//! (`xq_core::par`, `xq_stream::stream_query_arena_par`): the cross-join
//! `for`-nests of the doubling families evaluated at 1/2/4 worker
//! threads, the planner shapes (`Seq`-of-`for`s, nested `for`s, and a
//! `$root`-sharing body exercising the build-once root materialization),
//! the two merge disciplines (retired resolve+reparse vs `IToken`
//! splice), plus the indexed-vs-linear `Env::lookup` contrast on a deep
//! `for`-nest environment. The harness binary prints the corresponding
//! tables (and `--json` emits them machine-readably); this target keeps
//! the workloads compiling and timeable under `cargo bench`.
//!
//! Note: wall-clock *speedup* from the threaded rows needs actual cores —
//! on a single-core container the 2/4-thread rows measure overhead only.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cv_xtree::{DoublingFamily, Tree};
use xq_bench::{par_workload, planner_workloads, stream_workload, ENV_NEST_DEPTH};
use xq_core::{eval_query_par, Budget, Env, Threads, Var};

/// Bench-sized instances (the harness sweeps larger ones).
const FAMILIES: [(DoublingFamily, u32); 3] = [
    (DoublingFamily::Binary, 9),
    (DoublingFamily::Wide, 10),
    (DoublingFamily::Comb, 8),
];

fn bench_eval_par(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/eval");
    for (family, n) in FAMILIES {
        let doc = family.arena(n);
        let q = par_workload(family);
        for threads in [1usize, 2, 4] {
            let budget = Budget::default().with_threads(Threads::N(threads));
            g.bench_function(format!("{family}-n{n}-t{threads}"), |b| {
                b.iter(|| black_box(eval_query_par(&q, &doc, budget.clone()).unwrap()))
            });
        }
    }
    g.finish();
}

fn bench_stream_par(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/stream");
    let (family, n) = FAMILIES[0];
    let doc = family.arena(n);
    let q = stream_workload(family);
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("{family}-n{n}-t{threads}"), |b| {
            b.iter(|| {
                black_box(
                    xq_stream::stream_query_arena_par(
                        &q,
                        &doc,
                        u64::MAX,
                        xq_stream::DEFAULT_BUFFER_LIMIT,
                        threads,
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// The T17 planner shapes at 1/4 threads: `seq-of-fors` and `nested-for`
/// are coverage the PR 4 `outer_for_split` path ran sequentially;
/// `root-share` has a `$root`-referencing body, so its 4-thread row
/// exercises the build-once root materialization (the satellite fix —
/// previously each of the 4 workers rebuilt the full tree; the 1-thread
/// row, which pays one build either way, is the baseline for that win).
fn bench_planner_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/planner");
    let (family, n) = FAMILIES[0];
    let doc = family.arena(n);
    for (name, q) in planner_workloads(family) {
        for threads in [1usize, 4] {
            let budget = Budget::default().with_threads(Threads::N(threads));
            g.bench_function(format!("{name}-{family}-n{n}-t{threads}"), |b| {
                b.iter(|| black_box(eval_query_par(&q, &doc, budget.clone()).unwrap()))
            });
        }
    }
    g.finish();
}

/// The root-tree materialization a worker used to repeat: at `t4` the old
/// code paid this 4×, the new code once — this row prices the saving.
fn bench_root_materialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/root-share");
    let (family, n) = FAMILIES[0];
    let doc = family.arena(n);
    g.bench_function(format!("to_tree-{family}-n{n}"), |b| {
        b.iter(|| black_box(doc.to_tree()))
    });
    g.finish();
}

/// The merge disciplines: the retired `resolve_tokens` →
/// `forest_from_tokens` rebuild vs the `forest_from_itokens` splice, on a
/// 4-worker-shaped result buffer.
fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/merge");
    let doc = DoublingFamily::Wide.arena(10);
    let one = cv_xtree::intern_tokens(&doc.tokens());
    let mut itokens = Vec::with_capacity(4 * one.len());
    for _ in 0..4 {
        itokens.extend_from_slice(&one);
    }
    g.bench_function(format!("resolve-reparse-{}tok", itokens.len()), |b| {
        b.iter(|| {
            let tokens = cv_xtree::resolve_tokens(&itokens);
            black_box(Tree::forest_from_tokens(&tokens).unwrap())
        })
    });
    g.bench_function(format!("itoken-splice-{}tok", itokens.len()), |b| {
        b.iter(|| black_box(cv_xtree::forest_from_itokens(&itokens).unwrap()))
    });
    g.finish();
}

/// The deep-`for`-nest environment: `ENV_NEST_DEPTH` live bindings, the
/// referenced variable bound outermost (the linear scan's worst case).
fn bench_env_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_scaling/env-lookup");
    let mut env = Env::new();
    env.bind(Var::root(), Tree::leaf("doc"));
    for i in 0..ENV_NEST_DEPTH {
        env.bind(Var::new(format!("v{i}")), Tree::leaf("x"));
    }
    let root = Var::root();
    g.bench_function(format!("indexed-depth{ENV_NEST_DEPTH}"), |b| {
        b.iter(|| black_box(env.lookup(&root).is_some()))
    });
    g.bench_function(format!("linear-depth{ENV_NEST_DEPTH}"), |b| {
        b.iter(|| black_box(env.lookup_linear(&root).is_some()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_eval_par,
    bench_stream_par,
    bench_planner_shapes,
    bench_root_materialization,
    bench_merge,
    bench_env_lookup
);
criterion_main!(benches);
