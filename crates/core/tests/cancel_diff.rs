//! The cancellation differential suite — `vm_diff`'s counterpart for the
//! serving layer's abort paths.
//!
//! Cooperative cancellation is only trustworthy if it is *deterministic*:
//! a request aborted at budget tick `k` must stop at the same evaluation
//! point every time, on every engine. The witness is the
//! [`CancelFlag`] poll counter: `charge_step` polls the flag exactly
//! once per tick (before the deadline and the step cap), so `polls()`
//! after a run names the tick where evaluation stopped. Over the seeded
//! `coverage_corpus` this suite pins, for interpreter and VM alike:
//!
//! * **Cap/trip equivalence** — a run with step cap `k` fails
//!   `Budget{steps}` at tick `k+1`, and a run with a flag fused to trip
//!   at poll `k+1` fails `Cancelled` at the *same* tick: same poll
//!   count, engines agree with each other on both.
//! * **Passivity** — a cancel flag that never trips changes nothing:
//!   byte-identical output, identical `EvalStats`, and exactly one poll
//!   per step (the flag is checked at every tick, no more, no fewer).
//!
//! `XQ_RANDOM_CASES` scales the corpus (CI pins 16; local default 64);
//! the `#[ignore]`d full-size variant (weekly `scheduled.yml` run)
//! sweeps a 256-query corpus over bigger documents.

use cv_xtree::{random_tree, Tree, TreeGen};
use xq_core::ast::Query;
use xq_core::vm::{compile_query, exec_with};
use xq_core::{eval_with, Budget, CancelFlag, Env, XqError};

/// Cases per property: `XQ_RANDOM_CASES` if set (CI uses 16), else 64.
fn cases() -> usize {
    std::env::var("XQ_RANDOM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

fn corpus() -> Vec<Query> {
    xq_bench::coverage_corpus(cases())
}

fn docs() -> Vec<Tree> {
    let repr = xq_core::DocRepr::from_env();
    (0..2u64)
        .map(|seed| {
            let mut g = TreeGen::new(seed);
            repr.roundtrip(&random_tree(&mut g, 10, &["a", "b", "k"]))
        })
        .collect()
}

fn bytes(trees: &[Tree]) -> Vec<u8> {
    trees
        .iter()
        .map(Tree::to_xml)
        .collect::<String>()
        .into_bytes()
}

/// Runs `q` on the given engine with a counting (never-tripping) flag,
/// returning the outcome and the number of ticks the run polled.
fn run_counted(
    q: &Query,
    env: &Env,
    budget: Budget,
    vm: bool,
) -> (Result<(Vec<u8>, u64, u64), XqError>, u64) {
    let flag = CancelFlag::counting();
    let budget = budget.with_cancel(flag.clone());
    let r = if vm {
        exec_with(&compile_query(q), env, budget)
    } else {
        eval_with(q, env, budget)
    };
    (
        r.map(|(out, stats)| (bytes(&out), stats.steps, stats.items)),
        flag.polls(),
    )
}

/// Runs `q` with a flag fused to trip at poll `n`, returning the outcome
/// and the polls actually taken.
fn run_tripping(
    q: &Query,
    env: &Env,
    budget: Budget,
    n: u64,
    vm: bool,
) -> (Result<(), XqError>, u64) {
    let flag = CancelFlag::tripping_at(n);
    let budget = budget.with_cancel(flag.clone());
    let r = if vm {
        exec_with(&compile_query(q), env, budget)
    } else {
        eval_with(q, env, budget)
    };
    (r.map(|_| ()), flag.polls())
}

/// The differential body: cap-k and trip-at-(k+1) runs abort at the same
/// tick with their distinct errors, identically across engines.
fn assert_cancel_point_is_deterministic(q: &Query, doc: &Tree) {
    let env = Env::with_root(doc.clone());
    let Ok((_, full_steps, _)) =
        eval_with(q, &env, Budget::default()).map(|(out, s)| (out, s.steps, s.items))
    else {
        return; // corpus queries that exceed even the default budget
    };
    let caps = [0, 1, full_steps / 2, full_steps.saturating_sub(1)];
    for cap in caps {
        if cap >= full_steps {
            continue; // a cap that never bites has no abort point
        }
        let tight = Budget {
            max_steps: cap,
            ..Budget::default()
        };
        for vm in [false, true] {
            let engine = if vm { "vm" } else { "interp" };
            // The step cap fails at tick cap+1, having polled cap+1 times.
            let (capped, cap_polls) = run_counted(q, &env, tight.clone(), vm);
            assert_eq!(
                capped.clone().err(),
                Some(XqError::Budget { which: "steps" }),
                "{engine}: cap {cap} must exhaust on {q}"
            );
            assert_eq!(
                cap_polls,
                cap + 1,
                "{engine}: cap {cap} run must stop at tick {} on {q}",
                cap + 1
            );
            // A flag tripping at that same tick cancels at the same
            // point — the same number of polls — with the distinct error.
            let (cancelled, trip_polls) = run_tripping(q, &env, Budget::default(), cap + 1, vm);
            assert_eq!(
                cancelled.err(),
                Some(XqError::Cancelled),
                "{engine}: trip at {} must cancel on {q}",
                cap + 1
            );
            assert_eq!(
                trip_polls, cap_polls,
                "{engine}: cancel and cap must abort at the same tick on {q}"
            );
        }
        // Cross-engine: the abort tick is an engine-independent quantity
        // (both engines share one charge path and one tick placement).
        let (_, interp_polls) = run_tripping(q, &env, Budget::default(), cap + 1, false);
        let (_, vm_polls) = run_tripping(q, &env, Budget::default(), cap + 1, true);
        assert_eq!(
            interp_polls, vm_polls,
            "engines disagree on the abort tick for cap {cap} on {q}"
        );
    }
}

/// The passivity body: carrying a never-tripping flag is invisible —
/// same bytes, same counters as the flagless run — and polls once per
/// step.
fn assert_untripped_flag_is_invisible(q: &Query, doc: &Tree) {
    let env = Env::with_root(doc.clone());
    for vm in [false, true] {
        let engine = if vm { "vm" } else { "interp" };
        let plain = if vm {
            exec_with(&compile_query(q), &env, Budget::default())
        } else {
            eval_with(q, &env, Budget::default())
        }
        .map(|(out, stats)| (bytes(&out), stats.steps, stats.items));
        let (flagged, polls) = run_counted(q, &env, Budget::default(), vm);
        assert_eq!(
            flagged, plain,
            "{engine}: an untripped flag changed the run of {q}"
        );
        if let Ok((_, steps, _)) = plain {
            assert_eq!(polls, steps, "{engine}: one poll per tick on {q}");
        }
    }
}

#[test]
fn cancel_at_tick_k_matches_budget_cap_k_across_engines() {
    for doc in &docs() {
        for q in corpus() {
            assert_cancel_point_is_deterministic(&q, doc);
        }
    }
}

#[test]
fn unset_cancel_flag_is_byte_identical_to_seed_behavior() {
    for doc in &docs() {
        for q in corpus() {
            assert_untripped_flag_is_invisible(&q, doc);
        }
    }
}

/// Deadlines share the abort discipline: an already-expired deadline
/// rejects at the very first tick on both engines, and a generous one is
/// invisible.
#[test]
fn deadlines_abort_deterministically_at_the_first_tick() {
    use std::time::{Duration, Instant};
    let doc = &docs()[0];
    let env = Env::with_root(doc.clone());
    for q in corpus().into_iter().take(8) {
        let expired = Budget::default().with_deadline(Instant::now() - Duration::from_secs(1));
        let want = eval_with(&q, &env, expired.clone());
        let got = exec_with(&compile_query(&q), &env, expired);
        assert_eq!(want.clone().err(), Some(XqError::DeadlineExceeded), "{q}");
        assert_eq!(
            got.err(),
            Some(XqError::DeadlineExceeded),
            "engines disagree on expired deadline for {q}"
        );
        let generous = Budget::default().with_deadline_in(Duration::from_secs(3600));
        let plain = eval_with(&q, &env, Budget::default()).map(|(o, _)| bytes(&o));
        let dl = eval_with(&q, &env, generous).map(|(o, _)| bytes(&o));
        assert_eq!(dl, plain, "a distant deadline changed the run of {q}");
    }
}

/// The weekly full-size pass: a 256-query corpus against bigger random
/// documents. Run explicitly with `cargo test --release -p xq_core --
/// --ignored` (scheduled.yml does).
#[test]
#[ignore = "full-size cancellation differential; runs in the weekly scheduled workflow"]
fn cancel_diff_full_size() {
    let repr = xq_core::DocRepr::from_env();
    let full: Vec<Tree> = (0..2u64)
        .map(|seed| {
            let mut g = TreeGen::new(seed);
            repr.roundtrip(&random_tree(&mut g, 48, &["a", "b", "k"]))
        })
        .collect();
    for doc in &full {
        for q in xq_bench::coverage_corpus(256) {
            assert_cancel_point_is_deterministic(&q, doc);
            assert_untripped_flag_is_invisible(&q, doc);
        }
    }
}
