//! The VM differential suite: every query of the seeded T17 coverage
//! corpus (`xq_bench::coverage_corpus`, the `par_diff.rs` grammar drawn
//! from a fixed splitmix64 stream) must evaluate **identically** on
//!
//! * the Figure 1 interpreter (`eval_with`),
//! * a freshly compiled plan on the bytecode VM (`exec_with`), and
//! * a warm [`PlanCache`] hit (same plan `Arc`, re-executed),
//!
//! down to the bytes of the result, the `EvalStats` counters (`steps`,
//! `items`, `max_env_depth`), and — under tightened budgets — the exact
//! error at the exact point. Counter equality is the strong form of the
//! contract: the VM does not merely agree on answers, it charges the
//! budget at the same instants, so budget-exhaustion behaviour is
//! engine-independent.
//!
//! The suite also pins the compile layer itself: `Display` output
//! round-trips through the parser (so text-keyed caching is faithful),
//! compilation is deterministic, and the baked `par_hint` is sound with
//! respect to the planner (`ParPlan::engages ⟹ par_hint`). The parallel
//! entry points (`eval_compiled_par` vs `eval_query_par`) are compared at
//! 1/2/4/8 threads on arena documents.
//!
//! The corpus documents route through `DocRepr`, so CI's `XQ_ARENA=1`
//! pass covers the arena store; `XQ_RANDOM_CASES` scales the corpus
//! (CI pins 16; local default 64). The `#[ignore]`d full-size variant
//! (weekly `scheduled.yml` run) sweeps bigger documents plus the
//! doubling families over a 256-query corpus.

use std::sync::Arc;

use cv_xtree::{random_tree, ArenaDoc, DoublingFamily, Tree, TreeGen};
use xq_core::ast::Query;
use xq_core::vm::{compile_query, exec_with, par_hint, PlanCache};
use xq_core::{
    eval_compiled_par, eval_query_par, eval_with, parse_query, Budget, Env, ParPlan, Threads,
    XqError,
};

/// Cases per property: `XQ_RANDOM_CASES` if set (CI uses 16), else 64.
fn cases() -> usize {
    std::env::var("XQ_RANDOM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// The seeded coverage corpus (deterministic across runs and PRs).
fn corpus() -> Vec<Query> {
    xq_bench::coverage_corpus(cases())
}

/// The cached per-thread documents — the `par_diff.rs` corpus. With
/// `XQ_ARENA=1` each document round-trips through the arena store, so
/// CI's arena pass covers the VM on arena-loaded documents too.
fn docs() -> Vec<Tree> {
    thread_local! {
        static DOCS: Vec<Tree> = {
            let repr = xq_core::DocRepr::from_env();
            (0..3u64)
                .map(|seed| {
                    let mut g = TreeGen::new(seed);
                    repr.roundtrip(&random_tree(&mut g, 10, &["a", "b", "k"]))
                })
                .collect()
        };
    }
    DOCS.with(|d| d.clone())
}

/// Serializes a result list to bytes.
fn bytes(trees: &[Tree]) -> Vec<u8> {
    trees
        .iter()
        .map(Tree::to_xml)
        .collect::<String>()
        .into_bytes()
}

/// Runs both engines under `budget` and demands *identical* outcomes:
/// same bytes, same counters, or the same error.
fn assert_engines_identical(q: &Query, env: &Env, budget: Budget, ctx: &str) {
    let want = eval_with(q, env, budget.clone());
    let plan = compile_query(q);
    let got = exec_with(&plan, env, budget);
    match (&want, &got) {
        (Ok((wt, ws)), Ok((gt, gs))) => {
            assert_eq!(bytes(gt), bytes(wt), "{ctx}: result bytes for {q}");
            assert_eq!(gs.steps, ws.steps, "{ctx}: steps for {q}");
            assert_eq!(gs.items, ws.items, "{ctx}: items for {q}");
            assert_eq!(
                gs.max_env_depth, ws.max_env_depth,
                "{ctx}: max_env_depth for {q}"
            );
        }
        (Err(we), Err(ge)) => assert_eq!(ge, we, "{ctx}: error for {q}"),
        _ => panic!("{ctx}: engines disagree on {q}: interp {want:?} vs vm {got:?}"),
    }
}

/// The differential body shared by the quick and full-size suites: for
/// each (query, document) pair, interpreter vs fresh VM plan vs a warm
/// cache hit, at the default budget and at budgets tightened to bite
/// mid-evaluation.
fn assert_vm_agrees(q: &Query, doc: &Tree, cache: &PlanCache) {
    let env = Env::with_root(doc.clone());
    let budget = Budget::default();

    // Cold plan, full budget.
    assert_engines_identical(q, &env, budget.clone(), "cold");

    // Warm cache hit: keyed by the query's surface text (the round-trip
    // test below guarantees this is faithful); the second probe must be
    // the *same* plan, and executing it must still match the interpreter.
    let src = q.to_string();
    let p1 = cache.get_or_compile(&src).expect("corpus text parses");
    let p2 = cache.get_or_compile(&src).expect("corpus text parses");
    assert!(Arc::ptr_eq(&p1, &p2), "warm hit must reuse the plan: {src}");
    assert_eq!(p1.query(), q, "cached plan compiles the same query: {src}");
    let want = eval_with(q, &env, budget.clone());
    let got = exec_with(&p1, &env, budget.clone());
    match (&want, &got) {
        (Ok((wt, ws)), Ok((gt, gs))) => {
            assert_eq!(bytes(gt), bytes(wt), "warm: result bytes for {q}");
            assert_eq!(
                (gs.steps, gs.items, gs.max_env_depth),
                (ws.steps, ws.items, ws.max_env_depth),
                "warm: counters for {q}"
            );
        }
        (Err(we), Err(ge)) => assert_eq!(ge, we, "warm: error for {q}"),
        _ => panic!("warm: engines disagree on {q}: {want:?} vs {got:?}"),
    }

    // Budget exhaustion at the same point: tighten each cap to fractions
    // of the full run's spend (plus the 0 and 1 edges) and demand the
    // identical Err(Budget)/Ok outcome from both engines.
    if let Ok((_, full)) = eval_with(q, &env, budget.clone()) {
        let step_caps = [0, 1, full.steps / 2, full.steps.saturating_sub(1)];
        for cap in step_caps {
            let b = Budget {
                max_steps: cap,
                ..budget.clone()
            };
            assert_engines_identical(q, &env, b, "step-cap");
        }
        let item_caps = [0, 1, full.items / 2, full.items.saturating_sub(1)];
        for cap in item_caps {
            let b = Budget {
                max_items: cap,
                ..budget.clone()
            };
            assert_engines_identical(q, &env, b, "item-cap");
        }
    }
}

/// `Display` is a faithful serialization: every corpus query parses back
/// to the identical AST. This is what licenses keying the plan cache by
/// query text.
#[test]
fn corpus_display_round_trips_through_the_parser() {
    for q in corpus() {
        let src = q.to_string();
        let back = parse_query(&src)
            .unwrap_or_else(|e| panic!("corpus query failed to re-parse: {src}: {e}"));
        assert_eq!(back, q, "round-trip changed the query: {src}");
    }
}

/// Compilation is a pure function of the query: two independent compiles
/// produce identical instruction sequences, slot counts, and hints.
#[test]
fn compilation_is_deterministic() {
    for q in corpus() {
        let a = compile_query(&q);
        let b = compile_query(&q);
        assert_eq!(a.instrs(), b.instrs(), "instrs for {q}");
        assert_eq!(a.slots(), b.slots(), "slots for {q}");
        assert_eq!(a.par_hint(), b.par_hint(), "par_hint for {q}");
        assert_eq!(a.disasm(), b.disasm(), "disasm for {q}");
    }
}

/// The baked `par_hint` is sound: whenever the planner engages on a
/// document, the document-independent hint said so at compile time.
#[test]
fn par_hint_is_sound_for_the_planner() {
    let budget = Budget::default().with_threads(Threads::N(4));
    for doc in &docs() {
        let arena = ArenaDoc::from_tree(doc);
        for q in corpus() {
            let plan = ParPlan::of(&q, &arena, budget.clone());
            if plan.engages() {
                assert!(
                    par_hint(&q),
                    "planner engaged but par_hint said sequential: {q}"
                );
            }
        }
    }
}

/// The quick differential pass: interpreter vs VM vs warm cache on the
/// full seeded corpus, all documents, exact counters and errors.
#[test]
fn vm_matches_interpreter_on_the_coverage_corpus() {
    let cache = PlanCache::new();
    for doc in &docs() {
        for q in corpus() {
            assert_vm_agrees(&q, doc, &cache);
        }
    }
}

/// The parallel entry points agree: `eval_compiled_par` (VM sequential
/// leg, shared planner) is byte- and error-identical to `eval_query_par`
/// at every thread count.
#[test]
fn compiled_parallel_matches_interpreted_parallel() {
    for doc in &docs() {
        let arena = ArenaDoc::from_tree(doc);
        for q in corpus() {
            let plan = compile_query(&q);
            for threads in [1usize, 2, 4, 8] {
                let budget = Budget::default().with_threads(Threads::N(threads));
                let want = eval_query_par(&q, &arena, budget.clone()).map(|(out, _)| bytes(&out));
                let got = eval_compiled_par(&plan, &arena, budget).map(|(out, _)| bytes(&out));
                assert_eq!(got, want, "{q} at {threads} threads");
            }
        }
    }
}

/// Zero-budget edge: with `max_steps = 0` or `max_items = 0`, both
/// engines refuse identically — nothing runs, ever.
#[test]
fn zero_budgets_refuse_identically() {
    let doc = &docs()[0];
    let env = Env::with_root(doc.clone());
    for q in corpus().into_iter().take(16) {
        for b in [
            Budget {
                max_steps: 0,
                ..Budget::default()
            },
            Budget {
                max_items: 0,
                ..Budget::default()
            },
        ] {
            let want = eval_with(&q, &env, b.clone());
            let got = exec_with(&compile_query(&q), &env, b);
            match (&want, &got) {
                (Err(we), Err(ge)) => assert_eq!(ge, we, "{q}"),
                (Ok((wt, _)), Ok((gt, _))) => assert_eq!(bytes(gt), bytes(wt), "{q}"),
                _ => panic!("engines disagree on {q}: {want:?} vs {got:?}"),
            }
            if let Err(e) = &want {
                assert!(
                    matches!(e, XqError::Budget { .. }),
                    "zero budget must fail on Budget, got {e:?} for {q}"
                );
            }
        }
    }
}

/// The weekly full-size pass: a 256-query corpus against bigger random
/// documents plus the three doubling families at n = 6. Run explicitly
/// with `cargo test --release -p xq_core -- --ignored` (scheduled.yml
/// does).
#[test]
#[ignore = "full-size VM differential pass; runs in the weekly scheduled workflow"]
fn vm_matches_interpreter_full_size() {
    let repr = xq_core::DocRepr::from_env();
    let mut full: Vec<Tree> = (0..2u64)
        .map(|seed| {
            let mut g = TreeGen::new(seed);
            repr.roundtrip(&random_tree(&mut g, 64, &["a", "b", "k"]))
        })
        .collect();
    full.extend(DoublingFamily::ALL.iter().map(|f| f.tree(6)));
    let cache = PlanCache::new();
    for doc in &full {
        for q in xq_bench::coverage_corpus(256) {
            assert_vm_agrees(&q, doc, &cache);
        }
    }
}
