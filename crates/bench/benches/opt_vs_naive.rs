//! T14: the `cv_monad::opt` pass and the `xq_stream` buffered fast path
//! against their naive baselines.
//!
//! * Example 2.4 derived difference: naive derived evaluation vs the
//!   optimized (rewritten-to-builtin) plan vs the built-in `Diff` — the
//!   acceptance bar is optimized within ≤3× of the built-in.
//! * The Theorem 4.5 doubling family at n = 4: lazy streaming vs the
//!   buffered fast path vs full materialization.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cv_monad::{eval, opt, CollectionKind};
use cv_xtree::parse_tree;
use xq_bench::{diff_workload, doubling_query};

fn bench_diff(c: &mut Criterion) {
    let (derived, builtin, input) = diff_workload();
    let (optimized, _) = opt::optimize(&derived, CollectionKind::Set);
    let mut g = c.benchmark_group("opt_vs_naive");
    g.sample_size(20);
    g.bench_function("diff_naive_derived", |b| {
        b.iter(|| eval(&derived, CollectionKind::Set, &input).unwrap())
    });
    g.bench_function("diff_optimized_plan", |b| {
        b.iter(|| eval(&optimized, CollectionKind::Set, &input).unwrap())
    });
    g.bench_function("diff_builtin", |b| {
        b.iter(|| eval(&builtin, CollectionKind::Set, &input).unwrap())
    });
    // The cost of running the pass itself (plan-once, run-many).
    g.bench_function("optimize_pass_on_derived_diff", |b| {
        b.iter(|| opt::optimize(&derived, CollectionKind::Set))
    });
    g.finish();
}

fn bench_stream(c: &mut Criterion) {
    let t = parse_tree("<r/>").unwrap();
    let mut g = c.benchmark_group("opt_vs_naive");
    g.sample_size(10);
    for n in [2usize, 4] {
        let q = doubling_query(n);
        g.bench_with_input(BenchmarkId::new("stream_lazy", n), &q, |b, q| {
            b.iter(|| xq_stream::stream_query(q, &t, u64::MAX).unwrap().1)
        });
        g.bench_with_input(BenchmarkId::new("stream_buffered", n), &q, |b, q| {
            b.iter(|| {
                xq_stream::stream_query_buffered(q, &t, u64::MAX, xq_stream::DEFAULT_BUFFER_LIMIT)
                    .unwrap()
                    .1
            })
        });
        g.bench_with_input(BenchmarkId::new("materializing", n), &q, |b, q| {
            b.iter(|| xq_core::eval_query(q, &t).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_diff, bench_stream);
criterion_main!(benches);
