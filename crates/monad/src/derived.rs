//! Derived operations of monad algebra — the constructions behind
//! Theorem 2.2's equivalences, reproduced exactly as in the paper and
//! testable against the built-in operations.
//!
//! * [`product`] — Cartesian product `f × g` (Example 2.1);
//! * [`pred_and`]/[`pred_or`]/[`pred_true`] — Boolean structure on
//!   predicates (`γ ∧ δ` as `γ × δ`, §2.2);
//! * [`sigma_gamma`] — selection from a Boolean predicate (Example 2.3);
//! * [`derived_intersect`] — `f ∩ g := (f × g) ∘ σ_{1=2} ∘ map(π1)`
//!   (Example 2.3);
//! * [`subset_pred`] — `(A ⊆ B)` via `∩` and `=deep` (Example 2.3);
//! * [`member_pred`] — `(A ∈ B)` as `{A} ⊆ B`;
//! * [`derived_diff`] — difference `R − S` in `M∪[σ]` (Example 2.4);
//! * [`derived_not`] — `not φ := (φ =deep ∅)` (§3, used for XQuery `not`);
//! * [`mon_eq_cond`] — the Proposition 5.1 expansion of `=mon` into a
//!   conjunction of `=atomic` tests along leaf paths;
//! * [`all_equal`] — the Theorem 5.11 bulk-equality predicate;
//! * [`derived_nest_binary`] — `nest_{C=(B)}` on binary relations from
//!   selection (footnote 5 / Theorem 2.2).
//!
//! Each derived form is the paper's *proof* that the operator is
//! redundant; evaluated literally it is asymptotically slower than the
//! built-in (the Example 2.4 difference pays for a full R × S pairing).
//! The [`crate::opt`] pass recognizes every construction in this module
//! and rewrites it back — the worked examples below show the round trips.

use crate::{Cond, EqMode, Expr, Operand};
use cv_value::Type;

/// Cartesian product `f × g` (Example 2.1):
/// `⟨1: f, 2: g⟩ ∘ pairwith_1 ∘ flatmap(pairwith_2)`.
///
/// On a Boolean reading, `f × g` is the conjunction of predicates `f`, `g`.
pub fn product(f: Expr, g: Expr) -> Expr {
    Expr::mk_tuple([("1", f), ("2", g)])
        .then(Expr::pairwith("1"))
        .then(Expr::flatmap(Expr::pairwith("2")))
}

/// Predicate conjunction `γ ∧ δ = γ × δ`, normalized back to type `{⟨⟩}`.
pub fn pred_and(f: Expr, g: Expr) -> Expr {
    product(f, g).then(Expr::mk_tuple::<_, &str>([]).mapped())
}

/// Predicate disjunction `γ ∨ δ = γ ∪ δ`.
pub fn pred_or(f: Expr, g: Expr) -> Expr {
    f.union(g)
}

/// The constantly-true predicate `x ↦ {⟨⟩}`.
pub fn pred_true() -> Expr {
    Expr::mk_tuple::<_, &str>([]).then(Expr::Sng)
}

/// Selection from a Boolean predicate expression (Example 2.3):
/// `σ_γ = flatmap(⟨1: id, 2: id ∘ γ⟩ ∘ pairwith_2 ∘ map(π1))`.
///
/// Unlike the built-in [`Expr::Select`], `γ` here is an arbitrary
/// monad-algebra expression of Boolean type.
///
/// # Example
///
/// When `γ` *is* a built-in predicate, the optimizer folds the whole
/// scaffolding back into [`Expr::Select`]:
///
/// ```
/// use cv_monad::{derived::sigma_gamma, opt, CollectionKind, Cond, Expr, Operand};
///
/// let gamma = Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B")));
/// let (rewritten, trace) = opt::optimize(&sigma_gamma(gamma), CollectionKind::List);
/// assert_eq!(
///     rewritten,
///     Expr::Select(Cond::eq_atomic(Operand::path("A"), Operand::path("B")))
/// );
/// assert!(trace.rules().contains(&"select-2.3"));
/// ```
pub fn sigma_gamma(gamma: Expr) -> Expr {
    Expr::flatmap(
        Expr::mk_tuple([("1", Expr::Id), ("2", Expr::Id.then(gamma))])
            .then(Expr::pairwith("2"))
            .then(Expr::proj("1").mapped()),
    )
}

/// Derived intersection (Example 2.3):
/// `f ∩ g := (f × g) ∘ σ_{1=2} ∘ map(π1)`.
///
/// # Example
///
/// The derived shape pairs every member of `f` with every member of `g`
/// (quadratic); [`crate::opt::optimize`] rewrites it to the built-in
/// [`Expr::Intersect`], and both agree:
///
/// ```
/// use cv_monad::{derived::derived_intersect, eval, opt, CollectionKind, Expr};
/// use cv_value::parse_value;
///
/// let derived = derived_intersect(Expr::proj("R"), Expr::proj("S"));
/// let (rewritten, trace) = opt::optimize(&derived, CollectionKind::Set);
/// assert_eq!(
///     rewritten,
///     Expr::Intersect(Expr::proj("R").into(), Expr::proj("S").into())
/// );
/// assert!(trace.rules().contains(&"intersect-2.3"));
///
/// let input = parse_value("<R: {1, 2, 3}, S: {2, 3, 4}>").unwrap();
/// assert_eq!(
///     eval(&rewritten, CollectionKind::Set, &input).unwrap(),
///     eval(&derived, CollectionKind::Set, &input).unwrap(),
/// );
/// ```
pub fn derived_intersect(f: Expr, g: Expr) -> Expr {
    product(f, g)
        .then(Expr::Select(Cond::eq_deep(
            Operand::path("1"),
            Operand::path("2"),
        )))
        .then(Expr::proj("1").mapped())
}

/// Derived containment predicate (Example 2.3):
/// `(A ⊆ B) := ⟨A: πA, A′: πA ∩ πB⟩ ∘ (A =deep A′)`.
///
/// # Example
///
/// Optimizing cascades: the inner derived intersection collapses first,
/// then the whole construction becomes the built-in `⊆` condition:
///
/// ```
/// use cv_monad::{derived::subset_pred, opt, CollectionKind, Cond, Expr, Operand};
///
/// let (rewritten, trace) = opt::optimize(&subset_pred("A", "B"), CollectionKind::Set);
/// assert_eq!(
///     rewritten,
///     Expr::Pred(Cond::Subset(Operand::path("A"), Operand::path("B")))
/// );
/// assert!(trace.rules().contains(&"intersect-2.3"));
/// assert!(trace.rules().contains(&"subset-2.3"));
/// ```
pub fn subset_pred(a: &str, b: &str) -> Expr {
    Expr::mk_tuple([
        ("A", Expr::proj(a)),
        ("Aprime", derived_intersect(Expr::proj(a), Expr::proj(b))),
    ])
    .then(Expr::Pred(Cond::eq_deep(
        Operand::path("A"),
        Operand::path("Aprime"),
    )))
}

/// Derived membership predicate: `(A ∈ B) ⇔ ({A} ⊆ B)`.
///
/// # Example
///
/// Three nested constructions (`∈` via `⊆` via `∩`) collapse to one
/// built-in condition:
///
/// ```
/// use cv_monad::{derived::member_pred, opt, CollectionKind, Cond, Expr, Operand};
///
/// let (rewritten, trace) = opt::optimize(&member_pred("A", "B"), CollectionKind::Set);
/// assert_eq!(
///     rewritten,
///     Expr::Pred(Cond::In(Operand::path("A"), Operand::path("B")))
/// );
/// for rule in ["intersect-2.3", "subset-2.3", "member-2.3"] {
///     assert!(trace.rules().contains(&rule), "missing {rule}");
/// }
/// ```
pub fn member_pred(a: &str, b: &str) -> Expr {
    Expr::mk_tuple([("A", Expr::proj(a).then(Expr::Sng)), ("B", Expr::proj(b))])
        .then(subset_pred("A", "B"))
}

/// Derived difference `R − S` in `M∪[σ]` on input `⟨R: {τ}, S: {τ}⟩`
/// (Example 2.4):
///
/// ```text
/// pairwith_R ∘ map(⟨R: πR, SR: ⟨R: πR, S: πS⟩ ∘ pairwith_S ∘ σ_{R=S}⟩)
///            ∘ σ_{SR=∅} ∘ map(πR)
/// ```
///
/// For each `r ∈ R` it computes the set `SR` of members of `S` equal to
/// `r`, then keeps the `r` whose `SR` is empty.
///
/// # Example
///
/// This is the construction behind the `opt_vs_naive` benchmark's ~30×
/// gap: the derived form pairs all of `R` with all of `S`. The optimizer
/// collapses it to the built-in linear-scan [`Expr::Diff`]:
///
/// ```
/// use cv_monad::{derived::derived_diff, eval, opt, CollectionKind, Expr};
/// use cv_value::parse_value;
///
/// let (rewritten, trace) = opt::optimize(&derived_diff(), CollectionKind::Set);
/// assert_eq!(
///     rewritten,
///     Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into())
/// );
/// assert_eq!(trace.rules(), vec!["diff-2.4"]);
///
/// let input = parse_value("<R: {1, 2, 3}, S: {2}>").unwrap();
/// assert_eq!(
///     eval(&rewritten, CollectionKind::Set, &input).unwrap(),
///     parse_value("{1, 3}").unwrap(),
/// );
/// ```
pub fn derived_diff() -> Expr {
    Expr::pairwith("R")
        .then(
            Expr::mk_tuple([
                ("R", Expr::proj("R")),
                (
                    "SR",
                    Expr::mk_tuple([("R", Expr::proj("R")), ("S", Expr::proj("S"))])
                        .then(Expr::pairwith("S"))
                        .then(Expr::Select(Cond::eq_deep(
                            Operand::path("R"),
                            Operand::path("S"),
                        ))),
                ),
            ])
            .mapped(),
        )
        .then(Expr::Select(Cond::eq_deep(
            Operand::path("SR"),
            Operand::konst(cv_value::Value::set([])),
        )))
        .then(Expr::proj("R").mapped())
}

/// Derived negation from deep equality: `not φ := (φ =deep ∅)`.
///
/// Demonstrates that negation is redundant in languages with deep equality
/// (§1 "Related work", §3).
///
/// # Example
///
/// For collection-valued `φ` the optimizer reads the comparison back as
/// the built-in [`Expr::Not`]:
///
/// ```
/// use cv_monad::{derived::{derived_not, pred_true}, opt, CollectionKind, Cond, Expr};
///
/// let (rewritten, trace) = opt::optimize(&derived_not(pred_true()), CollectionKind::Set);
/// assert_eq!(rewritten, Expr::Pred(Cond::True).then(Expr::Not));
/// assert!(trace.rules().contains(&"not-deep-eq"));
/// ```
pub fn derived_not(phi: Expr) -> Expr {
    Expr::mk_tuple([("1", phi), ("2", Expr::EmptyColl)]).then(Expr::Pred(Cond::eq_deep(
        Operand::path("1"),
        Operand::path("2"),
    )))
}

/// The Proposition 5.1 expansion of `(a =mon b)` at a collection-free type
/// `τ` into a conjunction of `=atomic` comparisons, one per leaf path of
/// `τ`. `a` and `b` are dotted path prefixes into the context tuple.
///
/// For `τ = ⟨C: ⟨D: Dom, E: ⟨F: Dom, G: Dom⟩⟩, H: Dom⟩` this produces
/// `A.C.D =atomic B.C.D ∧ A.C.E.F =atomic B.C.E.F ∧ ...` as in the paper.
///
/// # Panics
///
/// Panics if `τ` contains a collection type or has no leaf paths
/// (`=mon` is undefined there).
pub fn mon_eq_cond(ty: &Type, a_prefix: &str, b_prefix: &str) -> Cond {
    assert!(
        ty.is_collection_free(),
        "=mon expansion requires a collection-free type, got {ty}"
    );
    let paths = ty.leaf_paths();
    let mk = |prefix: &str, path: &[String]| {
        let mut full: Vec<cv_value::Atom> = Vec::new();
        if !prefix.is_empty() {
            full.extend(prefix.split('.').map(cv_value::Atom::new));
        }
        full.extend(path.iter().map(cv_value::Atom::new));
        Operand::Path(full)
    };
    Cond::all(
        paths
            .iter()
            .map(|p| Cond::Eq(mk(a_prefix, p), mk(b_prefix, p), EqMode::Atomic)),
    )
}

/// The Theorem 5.11 bulk-equality predicate on a collection of pairs
/// `⟨1: v, 2: w⟩`:
///
/// ```text
/// all-equal := map((1 = 2) ∘ [not]) ∘ flatten ∘ not
/// ```
///
/// True iff every pair's components are equal under `mode`. Postponing all
/// equality tests into one bulk check is what makes the Theorem 5.11
/// reduction linear-size.
pub fn all_equal(mode: EqMode) -> Expr {
    Expr::Pred(Cond::Eq(Operand::path("1"), Operand::path("2"), mode))
        .then(Expr::Not)
        .mapped()
        .then(Expr::Flatten)
        .then(Expr::Not)
}

/// Derived nesting `nest_{into=(collect)}` on a binary relation with
/// attributes `key` and `collect` (footnote 5), built from selection:
/// for each tuple `r`, group the `collect`-values of all tuples sharing
/// `r`'s key. Set semantics deduplicates the groups.
///
/// # Example
///
/// On sets the optimizer rewrites the quadratic per-tuple selection to a
/// binary projection feeding the built-in hash-grouping [`Expr::Nest`]:
///
/// ```
/// use cv_monad::{derived::derived_nest_binary, eval, opt, CollectionKind};
/// use cv_value::parse_value;
///
/// let derived = derived_nest_binary("A", "B", "C");
/// let (rewritten, trace) = opt::optimize(&derived, CollectionKind::Set);
/// assert!(trace.rules().contains(&"nest-fn.5"));
///
/// let rel = parse_value("{<A: 1, B: x>, <A: 1, B: y>, <A: 2, B: x>}").unwrap();
/// assert_eq!(
///     eval(&rewritten, CollectionKind::Set, &rel).unwrap(),
///     parse_value("{<A: 1, C: {<B: x>, <B: y>}>, <A: 2, C: {<B: x>}>}").unwrap(),
/// );
/// ```
pub fn derived_nest_binary(key: &str, collect: &str, into: &str) -> Expr {
    Expr::mk_tuple([("t", Expr::Id), ("rel", Expr::Id)])
        .then(Expr::pairwith("t"))
        .then(
            Expr::mk_tuple([
                (key, Expr::proj("t").then(Expr::proj(key))),
                (
                    into,
                    Expr::mk_tuple([
                        ("v", Expr::proj("t").then(Expr::proj(key))),
                        ("rel", Expr::proj("rel")),
                    ])
                    .then(Expr::pairwith("rel"))
                    .then(Expr::Select(Cond::eq_atomic(
                        Operand::Path(vec!["rel".into(), key.into()]),
                        Operand::path("v"),
                    )))
                    .then(
                        Expr::mk_tuple([(collect, Expr::proj("rel").then(Expr::proj(collect)))])
                            .mapped(),
                    ),
                ),
            ])
            .mapped(),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, CollectionKind, Evaluator};
    use cv_value::{parse_value, Value};

    const K: CollectionKind = CollectionKind::Set;

    fn run(e: &Expr, input: &str) -> Value {
        eval(e, K, &parse_value(input).unwrap()).unwrap()
    }

    #[test]
    fn product_on_pairs_differs_from_relational_product() {
        // Example 2.1's remark: id × id on a set of pairs nests, it does
        // not concatenate.
        let e = product(Expr::Id, Expr::Id);
        let got = run(&e, "{<1: a, 2: b>}");
        assert_eq!(
            got,
            parse_value("{<1: <1: a, 2: b>, 2: <1: a, 2: b>>}").unwrap()
        );
    }

    #[test]
    fn predicate_conjunction_via_product() {
        let t = pred_true();
        let f = Expr::EmptyColl;
        assert!(run(&pred_and(t.clone(), t.clone()), "<>").is_true());
        assert!(!run(&pred_and(t.clone(), f.clone()), "<>").is_true());
        assert!(!run(&pred_and(f.clone(), t.clone()), "<>").is_true());
        assert!(run(&pred_or(f.clone(), t.clone()), "<>").is_true());
        assert!(!run(&pred_or(f.clone(), f), "<>").is_true());
        // Conjunction output is a normalized Boolean.
        assert_eq!(run(&pred_and(t.clone(), t), "<>"), Value::truth(K));
    }

    #[test]
    fn sigma_gamma_matches_builtin_select() {
        // Filter tuples where A =atomic B, both ways.
        let gamma = Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B")));
        let derived = sigma_gamma(gamma);
        let builtin = Expr::Select(Cond::eq_atomic(Operand::path("A"), Operand::path("B")));
        let input = "{<A: 1, B: 1>, <A: 1, B: 2>, <A: 3, B: 3>}";
        assert_eq!(run(&derived, input), run(&builtin, input));
    }

    #[test]
    fn derived_intersect_matches_builtin() {
        let d = derived_intersect(Expr::proj("R"), Expr::proj("S"));
        let b = Expr::Intersect(Expr::proj("R").into(), Expr::proj("S").into());
        for input in [
            "<R: {1, 2, 3}, S: {2, 3, 4}>",
            "<R: {1}, S: {2}>",
            "<R: {}, S: {1}>",
            "<R: {{1, 2}}, S: {{2, 1}}>",
        ] {
            assert_eq!(run(&d, input), run(&b, input), "input {input}");
        }
    }

    #[test]
    fn subset_and_member_predicates() {
        assert!(run(&subset_pred("A", "B"), "<A: {1, 2}, B: {1, 2, 3}>").is_true());
        assert!(!run(&subset_pred("A", "B"), "<A: {1, 9}, B: {1, 2, 3}>").is_true());
        assert!(run(&subset_pred("A", "B"), "<A: {}, B: {}>").is_true());
        assert!(run(&member_pred("A", "B"), "<A: 1, B: {1, 2}>").is_true());
        assert!(!run(&member_pred("A", "B"), "<A: 9, B: {1, 2}>").is_true());
        // Membership of complex values works too (deep equality).
        assert!(run(&member_pred("A", "B"), "<A: {x}, B: {{x}, {y}}>").is_true());
    }

    #[test]
    fn derived_diff_matches_builtin() {
        let d = derived_diff();
        let b = Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into());
        for input in [
            "<R: {1, 2, 3}, S: {2}>",
            "<R: {1, 2}, S: {}>",
            "<R: {}, S: {1}>",
            "<R: {{1}, {2}}, S: {{2}}>",
        ] {
            assert_eq!(run(&d, input), run(&b, input), "input {input}");
        }
    }

    #[test]
    fn derived_not_flips_booleans() {
        assert!(!run(&derived_not(pred_true()), "<>").is_true());
        assert!(run(&derived_not(Expr::EmptyColl), "<>").is_true());
    }

    #[test]
    fn mon_eq_expansion_agrees_with_builtin() {
        let ty = cv_value::parse_type("<C: <D: Dom, E: <F: Dom, G: Dom>>, H: Dom>").unwrap();
        let cond = mon_eq_cond(&ty, "A", "B");
        let expanded = Expr::Pred(cond);
        let builtin = Expr::Pred(Cond::eq_mon(Operand::path("A"), Operand::path("B")));
        let eq = "<A: <C: <D: 1, E: <F: 2, G: 3>>, H: 4>, B: <C: <D: 1, E: <F: 2, G: 3>>, H: 4>>";
        let ne = "<A: <C: <D: 1, E: <F: 2, G: 3>>, H: 4>, B: <C: <D: 1, E: <F: 9, G: 3>>, H: 4>>";
        for input in [eq, ne] {
            assert_eq!(run(&expanded, input), run(&builtin, input), "input {input}");
        }
        // Expansion size is linear in the number of leaf paths (Lemma 5.7).
        assert_eq!(ty.leaf_paths().len(), 4);
    }

    #[test]
    #[should_panic(expected = "collection-free")]
    fn mon_eq_expansion_rejects_collections() {
        let ty = cv_value::parse_type("{Dom}").unwrap();
        let _ = mon_eq_cond(&ty, "A", "B");
    }

    #[test]
    fn all_equal_bulk_predicate() {
        let e = all_equal(EqMode::Atomic);
        assert!(run(&e, "{<1: a, 2: a>, <1: b, 2: b>}").is_true());
        assert!(!run(&e, "{<1: a, 2: a>, <1: b, 2: c>}").is_true());
        // Vacuously true on the empty set.
        assert!(run(&e, "{}").is_true());
    }

    #[test]
    fn derived_nest_matches_builtin_on_binary_relations() {
        let d = derived_nest_binary("A", "B", "C");
        let b = Expr::Nest {
            collect: vec!["B".into()],
            into: "C".into(),
        };
        for input in [
            "{<A: 1, B: x>, <A: 1, B: y>, <A: 2, B: x>}",
            "{<A: 1, B: x>}",
            "{}",
        ] {
            assert_eq!(run(&d, input), run(&b, input), "input {input}");
        }
    }

    #[test]
    fn derived_forms_typecheck() {
        use crate::typecheck;
        let rel = cv_value::parse_type("{<A: Dom, B: Dom>}").unwrap();
        let pair_of_sets = cv_value::parse_type("<R: {Dom}, S: {Dom}>").unwrap();
        assert!(typecheck(&derived_diff(), K, &pair_of_sets).is_ok());
        assert!(typecheck(&derived_nest_binary("A", "B", "C"), K, &rel).is_ok());
        assert!(typecheck(
            &derived_intersect(Expr::proj("R"), Expr::proj("S")),
            K,
            &pair_of_sets
        )
        .is_ok());
    }

    #[test]
    fn all_equal_postpones_tests_with_bounded_size() {
        // The point of Theorem 5.11: all_equal has constant size regardless
        // of how many pairs it checks.
        let e = all_equal(EqMode::Mon);
        assert!(e.size() < 20);
        let mut ev = Evaluator::new(K);
        let many: Vec<Value> = (0..100)
            .map(|i| {
                Value::tuple([
                    ("1", Value::atom(format!("v{i}"))),
                    ("2", Value::atom(format!("v{i}"))),
                ])
            })
            .collect();
        let got = ev.eval(&e, &Value::set(many)).unwrap();
        assert!(got.is_true());
    }
}
