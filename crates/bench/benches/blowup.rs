//! E3 (Prop 4.2/4.3): doubly exponential value sizes from linear queries.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xq_reductions::measure_blowup;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("blowup");
    g.sample_size(10);
    for m in 0..=3usize {
        g.bench_with_input(BenchmarkId::new("eval", m), &m, |b, &m| {
            b.iter(|| measure_blowup(m, cv_monad::Budget::large()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
