//! The one pipeline builder behind every `xq_stream` entry point: AST →
//! composed [`Cursor`] pipeline, plus the stream-level condition
//! evaluator.
//!
//! [`build_query`] maps each query node to exactly one node cursor from
//! [`crate::cursor`] (allocation order is part of the accounting contract:
//! children register in the live-cursor gauge before their parent, and a
//! lazy variable reference charges its re-streaming *before* the defining
//! expression is rebuilt — the same order as the pre-refactor engine, so
//! `peak_live_cursors` and `recomputations` carried over unchanged).
//! [`eval_cond`] evaluates conditions by probing freshly built pipelines
//! against the same shared budget.
//!
//! The public face is [`Pipeline`]: entry points configure one (pull
//! budget + [`BufferPolicy`]) and call [`Pipeline::build`]; external
//! consumers can also compose cursors by hand (see the example on
//! [`Pipeline`]).

use crate::buffer::{BufferPolicy, QuantLoopCursor};
use crate::cursor::{
    bind, lookup, AxisStepCursor, Binding, BoxCursor, ElemCursor, EmptyCursor, Env, ForLoopCursor,
    IfCursor, ItemCursor, SeqCursor, Shared, SliceCursor, StepBase,
};
use crate::{StreamError, StreamStats};
use cv_xtree::{Axis, Label, NodeTest, Token};
use std::rc::Rc;
use xq_core::ast::{Cond, EqMode, Query, Var};

/// Builds the cursor pipeline for `[[q]](env)`.
pub(crate) fn build_query<'q>(
    q: &'q Query,
    env: &Env<'q>,
    shared: &Shared,
) -> Result<BoxCursor<'q>, StreamError> {
    Ok(match q {
        Query::Empty => Box::new(EmptyCursor::new(shared)),
        Query::Elem(a, body) => {
            let body = build_query(body, env, shared)?;
            Box::new(ElemCursor::new(a.clone(), body, shared))
        }
        Query::Seq(a, b) => {
            let cur = build_query(a, env, shared)?;
            Box::new(SeqCursor::new(cur, (b, env.clone()), shared))
        }
        Query::Var(v) => build_binding(lookup(env, v)?, shared)?,
        Query::Step(base, axis, test) => Box::new(AxisStepCursor::new(
            StepBase::Query(base, env.clone()),
            *axis,
            test.clone(),
            shared,
        )),
        Query::For(v, s, b) | Query::Let(v, s, b) => {
            Box::new(ForLoopCursor::new(v.clone(), s, b, env.clone(), shared))
        }
        Query::If(c, body) => Box::new(IfCursor::new(c, body, env.clone(), shared)),
    })
}

/// Builds the cursor for a variable's binding: a [`SliceCursor`] over
/// materialized input, or (for a lazy handle) one charged re-streaming of
/// the defining expression behind an [`ItemCursor`].
pub(crate) fn build_binding<'q>(
    b: Binding<'q>,
    shared: &Shared,
) -> Result<BoxCursor<'q>, StreamError> {
    match b {
        Binding::Input(tokens) => Ok(Box::new(SliceCursor::new(tokens, shared))),
        Binding::Lazy { expr, env, index } => {
            shared.recompute();
            let inner = build_query(expr, &env, shared)?;
            Ok(Box::new(ItemCursor::new(inner, index, shared)))
        }
    }
}

fn first_label(b: Binding<'_>, shared: &Shared) -> Result<Option<Label>, StreamError> {
    let mut c = build_binding(b, shared)?;
    match c.pull()? {
        Some(Token::Open(l)) => Ok(Some(l)),
        _ => Ok(None),
    }
}

fn streams_equal<'q>(a: Binding<'q>, b: Binding<'q>, shared: &Shared) -> Result<bool, StreamError> {
    let mut ca = build_binding(a, shared)?;
    let mut cb = build_binding(b, shared)?;
    loop {
        match (ca.pull()?, cb.pull()?) {
            (None, None) => return Ok(true),
            (Some(x), Some(y)) if x == y => continue,
            _ => return Ok(false),
        }
    }
}

/// Evaluates a condition by streaming: equality compares token streams
/// (deep) or first labels (atomic), emptiness probes pull one token, and
/// quantifiers run a short-circuiting [`QuantLoopCursor`] over the same
/// buffered-or-lazy source bindings the `for`-loop would see.
pub(crate) fn eval_cond<'q>(
    c: &'q Cond,
    env: &Env<'q>,
    shared: &Shared,
) -> Result<bool, StreamError> {
    match c {
        Cond::True => Ok(true),
        Cond::VarEq(x, y, mode) => {
            let bx = lookup(env, x)?;
            let by = lookup(env, y)?;
            match mode {
                EqMode::Deep => streams_equal(bx, by, shared),
                EqMode::Atomic => Ok(first_label(bx, shared)? == first_label(by, shared)?),
                EqMode::Mon => Err(StreamError::BadEqualityMode),
            }
        }
        Cond::ConstEq(x, a, mode) => {
            let bx = lookup(env, x)?;
            match mode {
                EqMode::Deep => {
                    let mut cx = build_binding(bx, shared)?;
                    let t1 = cx.pull()?;
                    let t2 = cx.pull()?;
                    let t3 = cx.pull()?;
                    Ok(t1 == Some(Token::Open(a.clone()))
                        && t2 == Some(Token::Close(a.clone()))
                        && t3.is_none())
                }
                _ => Ok(first_label(bx, shared)?.as_ref() == Some(a)),
            }
        }
        Cond::Query(q) => {
            let mut c = build_query(q, env, shared)?;
            Ok(c.pull()?.is_some())
        }
        Cond::Some(v, source, sat) => {
            QuantLoopCursor::new(v.clone(), source, sat, env, shared)?.verdict(true, shared)
        }
        Cond::Every(v, source, sat) => {
            QuantLoopCursor::new(v.clone(), source, sat, env, shared)?.verdict(false, shared)
        }
        Cond::And(a, b) => Ok(eval_cond(a, env, shared)? && eval_cond(b, env, shared)?),
        Cond::Or(a, b) => Ok(eval_cond(a, env, shared)? || eval_cond(b, env, shared)?),
        Cond::Not(a) => Ok(!eval_cond(a, env, shared)?),
    }
}

/// The pipeline builder: one pull budget + one [`BufferPolicy`], shared by
/// every cursor built from it. All four `stream_query*` entry points are
/// thin wrappers over `Pipeline::new(..).build(..)`; external consumers
/// can also compose node cursors by hand.
///
/// # Example: a two-step pipeline composed by hand
///
/// An axis step over raw input tokens, wrapped in a constructed element —
/// no query AST involved:
///
/// ```
/// use cv_xtree::{parse_tree, Axis, Label, NodeTest};
/// use xq_stream::{BufferPolicy, Pipeline};
///
/// let tree = parse_tree("<r><a><b/></a><c/><a/></r>").unwrap();
/// let pipe = Pipeline::new(10_000, BufferPolicy::lazy());
///
/// // Step 1: `child::a` over the input tokens.
/// let hits = pipe.step(tree.tokens(), Axis::Child, NodeTest::Tag(Label::new("a")));
/// // Step 2: wrap all matches in one `<out>` element.
/// let mut wrapped = pipe.elem(Label::new("out"), hits);
///
/// let mut out = Vec::new();
/// while let Some(t) = wrapped.pull().unwrap() {
///     out.push(t);
/// }
/// // <out> + <a><b/></a> + <a/> + </out> = 8 tokens.
/// assert_eq!(out.len(), 8);
/// assert!(pipe.stats().pulls > 0);
/// ```
pub struct Pipeline {
    shared: Shared,
}

impl Pipeline {
    /// A pipeline charging at most `max_pulls` cursor pulls, buffering
    /// loop/quantifier sources per `policy`.
    pub fn new(max_pulls: u64, policy: BufferPolicy) -> Pipeline {
        Pipeline {
            shared: Shared::new(max_pulls, policy.per_source_cap),
        }
    }

    /// Derives both knobs from an evaluation [`Budget`](xq_core::Budget):
    /// the pull cap from `max_steps`, the buffering cap from
    /// [`BufferPolicy::from_budget`].
    pub fn from_budget(budget: &xq_core::Budget) -> Pipeline {
        Pipeline::new(budget.max_steps, BufferPolicy::from_budget(budget))
    }

    /// Builds the full pipeline for `q` with `$root` bound to `input` —
    /// the engine path every entry point takes.
    pub fn build<'q>(
        &self,
        q: &'q Query,
        input: impl Into<Rc<[Token]>>,
    ) -> Result<BoxCursor<'q>, StreamError> {
        let env = bind(&None, Var::root(), Binding::Input(input.into()));
        build_query(q, &env, &self.shared)
    }

    /// A source cursor over raw tokens (hand composition).
    pub fn source<'q>(&self, tokens: impl Into<Rc<[Token]>>) -> BoxCursor<'q> {
        Box::new(SliceCursor::new(tokens.into(), &self.shared))
    }

    /// An axis-step cursor ranging over raw input tokens (hand
    /// composition; the engine path steps over re-streamable queries
    /// instead).
    pub fn step<'q>(
        &self,
        input: impl Into<Rc<[Token]>>,
        axis: Axis,
        test: NodeTest,
    ) -> BoxCursor<'q> {
        Box::new(AxisStepCursor::new(
            StepBase::Input(input.into()),
            axis,
            test,
            &self.shared,
        ))
    }

    /// An element-construction cursor wrapping `body` in `⟨tag⟩…⟨/tag⟩`
    /// (hand composition).
    pub fn elem<'q>(&self, tag: Label, body: BoxCursor<'q>) -> BoxCursor<'q> {
        Box::new(ElemCursor::new(tag, body, &self.shared))
    }

    /// Snapshot of this pipeline's counters. `tokens_out` and `workers`
    /// are the entry points' to fill in (a pipeline doesn't know what the
    /// caller collected).
    pub fn stats(&self) -> StreamStats {
        self.shared.snapshot()
    }
}
