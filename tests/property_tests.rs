//! Property-based tests (proptest) on the core data structures and the
//! headline invariants.

use proptest::prelude::*;
use xq_complexity::core::{c_tree, c_tree_inverse, t_value, t_value_inverse};
use xq_complexity::monad::{eval, CollectionKind, Expr};
use xq_complexity::paths::{decode, value_paths};
use xq_complexity::value::{parse_value, Type, Value};
use xq_complexity::xtree::{Token, Tree};

// ---- generators ----------------------------------------------------------

fn arb_atom() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::atom("a")),
        Just(Value::atom("b")),
        Just(Value::atom("c")),
        Just(Value::atom("0")),
        Just(Value::atom("1")),
    ]
}

/// Complex values over lists + tuples + atoms (the T-translatable ones).
fn arb_list_value() -> impl Strategy<Value = Value> {
    arb_atom().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::list),
            prop::collection::vec((any::<u8>(), inner), 0..3).prop_map(|fields| {
                Value::tuple(
                    fields
                        .into_iter()
                        .enumerate()
                        .map(|(i, (_, v))| (format!("f{i}"), v)),
                )
            }),
        ]
    })
}

/// Set-based complex values (for the path semantics). Always a set at the
/// top level; members are atoms or nested sets.
fn arb_set_value() -> impl Strategy<Value = Value> {
    let member = arb_atom().prop_recursive(2, 12, 3, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::set)
    });
    prop::collection::vec(member, 0..4).prop_map(Value::set)
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    prop_oneof![Just("a"), Just("b"), Just("c")]
        .prop_map(Tree::leaf)
        .prop_recursive(3, 20, 4, |inner| {
            (
                prop_oneof![Just("a"), Just("b"), Just("x")],
                prop::collection::vec(inner, 0..4),
            )
                .prop_map(|(l, cs)| Tree::node(l, cs))
        })
}

// ---- properties ----------------------------------------------------------

proptest! {
    #[test]
    fn value_display_parse_round_trip(v in arb_list_value()) {
        let text = v.to_string();
        prop_assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn set_canonicalization_is_idempotent(v in arb_set_value()) {
        let items: Vec<Value> = v.items().unwrap().to_vec();
        let rebuilt = Value::set(items);
        prop_assert_eq!(rebuilt, v);
    }

    #[test]
    fn tree_tokens_round_trip(t in arb_tree()) {
        let toks = t.tokens();
        let forest = Tree::forest_from_tokens(&toks).unwrap();
        prop_assert_eq!(forest, vec![t]);
    }

    #[test]
    fn tree_tokens_balance(t in arb_tree()) {
        let mut depth = 0i64;
        for tok in t.tokens() {
            match tok {
                Token::Open(_) => depth += 1,
                Token::Close(_) => depth -= 1,
            }
            prop_assert!(depth >= 0);
        }
        prop_assert_eq!(depth, 0);
    }

    #[test]
    fn c_encoding_bijective_on_trees(t in arb_tree()) {
        prop_assert_eq!(c_tree_inverse(&c_tree(&t)), Some(t));
    }

    #[test]
    fn t_encoding_bijective_on_list_values(v in arb_list_value()) {
        let tree = t_value(&v).unwrap();
        prop_assert_eq!(t_value_inverse(&tree), Some(v));
    }

    #[test]
    fn union_is_set_union(a in arb_set_value(), b in arb_set_value()) {
        let input = Value::tuple([("A", a.clone()), ("B", b.clone())]);
        let expr = Expr::proj("A").union(Expr::proj("B"));
        let got = eval(&expr, CollectionKind::Set, &input).unwrap();
        let want = Value::set(
            a.items().unwrap().iter().chain(b.items().unwrap()).cloned(),
        );
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sng_then_flatten_is_identity(v in arb_set_value()) {
        // flatten ∘ sng on the wrapped value: map(sng) ∘ flatten = id on sets.
        let expr = Expr::Sng.mapped().then(Expr::Flatten);
        let got = eval(&expr, CollectionKind::Set, &v).unwrap();
        prop_assert_eq!(got, v);
    }

    #[test]
    fn path_decoding_inverts_encoding(v in arb_set_value()) {
        // U^τ(paths(v)) = v for set-of-atom-ish types (depth ≤ 4 here).
        fn type_of(v: &Value, depth: usize) -> Type {
            match v.items() {
                Ok(items) if depth < 5 => {
                    let inner = items
                        .first()
                        .map(|m| type_of(m, depth + 1))
                        .unwrap_or(Type::Dom);
                    Type::set(inner)
                }
                _ => Type::Dom,
            }
        }
        let ty = type_of(&v, 0);
        // Heterogeneous-depth sets don't decode; restrict to uniform ones.
        fn uniform(v: &Value) -> bool {
            match v.items() {
                Err(_) => true,
                Ok(items) => {
                    let kinds: Vec<bool> =
                        items.iter().map(|m| m.items().is_ok()).collect();
                    kinds.windows(2).all(|w| w[0] == w[1])
                        && items.iter().all(uniform)
                }
            }
        }
        prop_assume!(uniform(&v));
        let paths = value_paths(&v);
        if let Some(decoded) = decode(&paths, &ty) {
            // Empty inner collections are unrepresentable as paths; skip
            // values containing them.
            fn has_empty_inner(v: &Value) -> bool {
                match v.items() {
                    Err(_) => false,
                    Ok(items) => {
                        items.iter().any(|m| {
                            m.items().map(|i| i.is_empty()).unwrap_or(false)
                                || has_empty_inner(m)
                        })
                    }
                }
            }
            if !has_empty_inner(&v) {
                prop_assert_eq!(decoded, v);
            }
        }
    }

    #[test]
    fn xq_eval_never_panics_on_random_docs(seed in 0u64..50) {
        let mut g = xq_complexity::xtree::TreeGen::new(seed);
        let t = xq_complexity::xtree::random_tree(&mut g, 12, &["a", "b"]);
        let q = xq_complexity::core::parse_query(
            "for $x in $root//a return <w>{ $x/b }</w>",
        ).unwrap();
        let _ = xq_complexity::core::eval_query(&q, &t).unwrap();
    }
}
