//! Data-parallel evaluation over the arena document store.
//!
//! The paper's combined-complexity results hinge on large `for`-nests over
//! documents: the outer `for` of a query typically ranges over thousands
//! of input nodes, and the body's work per node is independent of every
//! other node's. With the label interner now global and sharded,
//! [`ArenaDoc`] is `Send + Sync`, so that loop can be split across
//! threads: [`eval_query_par`] resolves the outer `for`-source to arena
//! node ids, carves the id list into one contiguous chunk per worker, and
//! evaluates the body on each chunk under [`std::thread::scope`] (no
//! thread pool, no external runtime — the registry is offline).
//!
//! **Determinism is the contract.** Workers return their chunk's result
//! as interned token streams ([`IToken`], the `Send` form of a tag
//! string); the merging thread concatenates them *in chunk order* and
//! rebuilds trees through the tested [`Tree::forest_from_tokens`] path.
//! Because each body evaluation is exactly the Figure 1 sequential
//! semantics on the same subtree values, the merged result is
//! byte-identical to [`eval_query`](crate::eval_query) — the `par_diff`
//! differential suite asserts this at 1/2/4/8 threads over the
//! random-query corpus.
//!
//! **Budget semantics.** Each worker draws on the step/item caps of the
//! [`Budget`] independently for its chunk (a shared atomic counter would
//! put a contended cache line in the innermost loop). Work per chunk is a
//! subset of the sequential work, so any query that fits the budget
//! sequentially also fits it in parallel; the converse may not hold, which
//! only ever turns an error into a result.
//!
//! Queries whose outer shape is not a `for` over input nodes (or with
//! fewer outer items than would pay for a thread) fall back to the
//! sequential evaluator on the materialized tree — [`ParStats::parallelized`]
//! reports which path ran.

use crate::ast::{Query, Var};
use crate::fragments::free_vars;
use crate::semantics::{eval_with, Budget, Env, EvalStats, XqError};
use cv_xtree::{intern_tokens, resolve_tokens, ArenaDoc, IToken, Label, NodeId, Tree};

/// Counters reported by [`eval_query_par`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ParStats {
    /// Worker threads the budget's [`Threads`](crate::Threads) knob
    /// resolved to.
    pub threads: usize,
    /// Items of the outer `for`-source (0 when the query fell back).
    pub outer_items: usize,
    /// Whether the data-parallel path ran (false: sequential fallback).
    pub parallelized: bool,
    /// Evaluation steps summed over all workers (excludes the outer
    /// source resolution, which is a pure arena axis scan).
    pub steps: u64,
    /// Result-list items summed over all workers.
    pub items: u64,
}

/// Splits `q` into its element-constructor wrappers and the outermost
/// `for`, if that is its shape: `⟨a⟩…⟨b⟩ for $v in σ return β ⟨/b⟩…⟨/a⟩`
/// returns `([a, …, b], $v, σ, β)`. This is the loop the data-parallel
/// evaluators distribute; anything else falls back to sequential.
pub fn outer_for_split(q: &Query) -> Option<(Vec<Label>, &Var, &Query, &Query)> {
    let mut wrappers = Vec::new();
    let mut cur = q;
    loop {
        match cur {
            Query::Elem(a, body) => {
                wrappers.push(a.clone());
                cur = body;
            }
            Query::For(v, source, body) => return Some((wrappers, v, source, body)),
            _ => return None,
        }
    }
}

/// Resolves a `for`-source that is a chain of axis steps grounded at
/// `$root` to the arena nodes it selects, in document order with
/// multiplicity — exactly the items (as subtrees) the Figure 1 semantics
/// would bind. Returns `None` for any other source shape (constructed
/// intermediates, variables other than `$root`, conditionals …), which
/// the callers treat as "not parallelizable".
pub fn resolve_node_source(doc: &ArenaDoc, source: &Query) -> Option<Vec<NodeId>> {
    match source {
        Query::Var(v) if *v == Var::root() => Some(vec![doc.root()]),
        Query::Step(base, axis, test) => {
            let bases = resolve_node_source(doc, base)?;
            let mut out = Vec::new();
            for b in bases {
                out.extend(doc.axis(b, *axis, test));
            }
            Some(out)
        }
        _ => None,
    }
}

/// Carves `items` into at most `parts` contiguous chunks of near-equal
/// length (never empty; fewer chunks than `parts` when items are scarce).
/// Public so every parallel engine shards identically
/// (`xq_stream::stream_query_arena_par` uses it too).
pub fn chunks<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.clamp(1, items.len().max(1));
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

/// One worker's share of the outer loop: evaluates `body` with `var`
/// bound to each chunk node's subtree (and `$root` to the whole document
/// when the body needs it), under the worker's own slice of the budget.
/// The chunk result crosses back to the merger as an interned token
/// stream.
fn eval_chunk(
    doc: &ArenaDoc,
    var: &Var,
    body: &Query,
    chunk: &[NodeId],
    budget: Budget,
    needs_root: bool,
) -> Result<(Vec<IToken>, EvalStats), XqError> {
    let mut env = Env::new();
    if needs_root {
        env.bind(Var::root(), doc.to_tree());
    }
    let mut remaining = budget;
    let mut itokens = Vec::new();
    let mut total = EvalStats::default();
    for &node in chunk {
        // One env reused across the loop: bind/pop around each item
        // (eval_with clones internally, so the binding stays per-item).
        env.bind(var.clone(), doc.subtree(node));
        let result = eval_with(body, &env, remaining);
        env.pop();
        let (out, stats) = result?;
        total.steps += stats.steps;
        total.items += stats.items;
        total.max_env_depth = total.max_env_depth.max(stats.max_env_depth);
        remaining.max_steps = remaining.max_steps.saturating_sub(stats.steps);
        remaining.max_items = remaining.max_items.saturating_sub(stats.items);
        for t in &out {
            itokens.extend(intern_tokens(&t.tokens()));
        }
    }
    Ok((itokens, total))
}

/// Evaluates `q` over an arena-backed document, splitting the outer
/// `for`-loop across `budget.threads` workers. Results are byte-identical
/// to [`eval_query`](crate::eval_query) on `doc.to_tree()`; see the
/// module docs for the merge and budget contracts.
pub fn eval_query_par(
    q: &Query,
    doc: &ArenaDoc,
    budget: Budget,
) -> Result<(Vec<Tree>, ParStats), XqError> {
    let threads = budget.threads.count();
    let split = outer_for_split(q)
        .and_then(|(w, v, s, b)| resolve_node_source(doc, s).map(|nodes| (w, v, nodes, b)));
    let (wrappers, var, nodes, body) = match split {
        // One worker per chunk only pays off with at least one item each.
        Some(s) if threads > 1 && s.2.len() >= 2 => s,
        _ => return eval_seq(q, doc, budget, threads),
    };
    let needs_root = free_vars(body).contains(&Var::root());
    let parts = chunks(&nodes, threads);
    let results: Vec<Result<(Vec<IToken>, EvalStats), XqError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .map(|chunk| scope.spawn(move || eval_chunk(doc, var, body, chunk, budget, needs_root)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation worker panicked"))
            .collect()
    });
    let mut out = Vec::new();
    let mut stats = ParStats {
        threads,
        outer_items: nodes.len(),
        parallelized: true,
        ..ParStats::default()
    };
    // Chunk order is document order, so extending in order preserves it;
    // the first error in chunk order wins, making failures deterministic
    // for a fixed thread count.
    for r in results {
        let (itokens, chunk_stats) = r?;
        stats.steps += chunk_stats.steps;
        stats.items += chunk_stats.items;
        out.extend(
            Tree::forest_from_tokens(&resolve_tokens(&itokens))
                .expect("workers emit well-formed tag strings"),
        );
    }
    for a in wrappers.into_iter().rev() {
        out = vec![Tree::node(a, out)];
    }
    Ok((out, stats))
}

/// The sequential fallback: materialize the tree once and run Figure 1.
fn eval_seq(
    q: &Query,
    doc: &ArenaDoc,
    budget: Budget,
    threads: usize,
) -> Result<(Vec<Tree>, ParStats), XqError> {
    let (out, stats) = eval_with(q, &Env::with_root(doc.to_tree()), budget)?;
    Ok((
        out,
        ParStats {
            threads,
            outer_items: 0,
            parallelized: false,
            steps: stats.steps,
            items: stats.items,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::Threads;
    use crate::{eval_query, parse_query};
    use cv_xtree::{random_tree, TreeGen};

    fn arena(src: &str) -> ArenaDoc {
        ArenaDoc::parse(src).unwrap()
    }

    fn xml(trees: &[Tree]) -> String {
        trees.iter().map(Tree::to_xml).collect()
    }

    #[test]
    fn outer_for_split_recognizes_wrapped_loops() {
        let q = parse_query("<out>{ for $x in $root/a return $x }</out>").unwrap();
        let (wrappers, v, _, _) = outer_for_split(&q).unwrap();
        assert_eq!(wrappers, vec![Label::from("out")]);
        assert_eq!(v.name(), "x");
        assert!(outer_for_split(&parse_query("$root/a").unwrap()).is_none());
    }

    #[test]
    fn node_source_matches_sequential_step_semantics() {
        let doc = arena("<r><a><b/><a/></a><c/><a/></r>");
        let q = parse_query("$root//a").unwrap();
        let nodes = resolve_node_source(&doc, &q).unwrap();
        let seq = eval_query(&q, &doc.to_tree()).unwrap();
        assert_eq!(nodes.len(), seq.len());
        for (n, t) in nodes.iter().zip(&seq) {
            assert_eq!(&doc.subtree(*n), t);
        }
        // Constructed sources are not node sources.
        let q = parse_query("(<w><a/></w>)/a").unwrap();
        assert!(resolve_node_source(&doc, &q).is_none());
    }

    #[test]
    fn chunking_covers_everything_in_order() {
        let items: Vec<u32> = (0..10).collect();
        for parts in 1..=12 {
            let cs = chunks(&items, parts);
            let flat: Vec<u32> = cs.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, items, "parts = {parts}");
            assert!(cs.iter().all(|c| !c.is_empty()));
        }
    }

    #[test]
    fn parallel_agrees_with_sequential_on_fixed_queries() {
        let queries = [
            "for $x in $root/* return <w>{ $x }</w>",
            "<out>{ for $x in $root//a return $x/b }</out>",
            "for $x in $root//* return if ($x =atomic <a/>) then <hit/>",
            "for $x in $root/a return for $y in $root/a return \
             if ($x = $y) then <same/>",
            "$root/a", // no outer for: fallback
            "<solo/>", // constant: fallback
        ];
        for seed in 0..4u64 {
            let mut g = TreeGen::new(seed);
            let t = random_tree(&mut g, 30, &["a", "b", "c"]);
            let doc = ArenaDoc::from_tree(&t);
            for src in queries {
                let q = parse_query(src).unwrap();
                let want = xml(&eval_query(&q, &t).unwrap());
                for threads in [1usize, 2, 4] {
                    let budget = Budget::default().with_threads(Threads::N(threads));
                    let (got, _) = eval_query_par(&q, &doc, budget).unwrap();
                    assert_eq!(xml(&got), want, "{src} at {threads} threads, seed {seed}");
                }
            }
        }
    }

    #[test]
    fn parallel_path_actually_engages() {
        let doc = arena("<r><a/><a/><a/><a/><a/><a/></r>");
        let q = parse_query("for $x in $root/a return <w>{ $x }</w>").unwrap();
        let budget = Budget::default().with_threads(Threads::N(3));
        let (_, stats) = eval_query_par(&q, &doc, budget).unwrap();
        assert!(stats.parallelized);
        assert_eq!(stats.outer_items, 6);
        assert_eq!(stats.threads, 3);
        // Threads::One falls back by construction.
        let (_, stats) = eval_query_par(&q, &doc, Budget::default()).unwrap();
        assert!(!stats.parallelized);
    }

    #[test]
    fn errors_are_deterministic_and_budget_is_monotone() {
        let doc = arena("<r><a/><a/><a/><a/></r>");
        // Unbound variable in the body: every worker fails identically.
        let q = parse_query("for $x in $root/a return $nope").unwrap();
        for threads in [1usize, 2, 4] {
            let budget = Budget::default().with_threads(Threads::N(threads));
            let got = eval_query_par(&q, &doc, budget);
            assert!(
                matches!(got, Err(XqError::UnboundVariable(ref v)) if v == "nope"),
                "{got:?} at {threads} threads"
            );
        }
        // A budget ample for the sequential run stays ample in parallel.
        let q = parse_query("for $x in $root/a return ($x, $x)").unwrap();
        let tight = Budget {
            max_steps: 10_000,
            max_items: 10_000,
            ..Budget::default()
        };
        assert!(eval_with(&q, &Env::with_root(doc.to_tree()), tight).is_ok());
        for threads in [2usize, 4] {
            assert!(eval_query_par(&q, &doc, tight.with_threads(Threads::N(threads))).is_ok());
        }
    }

    #[test]
    fn threads_knob_resolves() {
        assert_eq!(Threads::One.count(), 1);
        assert_eq!(Threads::N(0).count(), 1);
        assert_eq!(Threads::N(7).count(), 7);
        assert!(Threads::Auto.count() >= 1);
    }
}
