//! A peephole/normalization pass over monad-algebra expressions that
//! recognizes the paper's *derived* constructions (Theorem 2.2,
//! Examples 2.1/2.3/2.4, footnote 5 — see [`crate::derived`]) and rewrites
//! them back to the built-in operators, plus generic cleanups.
//!
//! The derived forms are the paper's proof devices: they show the built-ins
//! interexpressible, but evaluating them literally is asymptotically worse
//! (the Example 2.4 difference materializes the R × S product, turning a
//! linear-scan `Diff` into a quadratic pairing — ~30× slower already at
//! |R| = 60 in the `derived_ops` bench). This pass undoes the encodings so
//! the [`crate::Evaluator`] runs the built-ins instead.
//!
//! # Rule catalog
//!
//! | rule | redex | rewrite |
//! |---|---|---|
//! | `flatten-then` | right-nested `∘` | left-nested pipeline |
//! | `elim-id` | `id` inside a composition | dropped |
//! | `map-id` | `map(id)` | `id` |
//! | `fuse-proj` | `⟨…, A: f, …⟩ ∘ π_A` | `f` (dead fields dropped) |
//! | `pred-true` | `⟨⟩ ∘ sng` | `pred[true]` |
//! | `intersect-2.3` | `(f × g) ∘ σ_{1=2} ∘ map(π1)` (sets only) | `f ∩ g` |
//! | `diff-2.4` | the Example 2.4 pairing construction | `π_R − π_S` |
//! | `select-2.3` | `σ_γ` with `γ = pred[c]` (Example 2.3) | `σ_c` |
//! | `not-deep-eq` | `⟨1: φ, 2: ∅⟩ ∘ (1 =deep 2)` | `φ ∘ not` |
//! | `and-product` | `pred[c] × pred[d]` normalized | `pred[c ∧ d]` |
//! | `or-union` | `pred[c] ∪ pred[d]` (sets only) | `pred[c ∨ d]` |
//! | `subset-2.3` | `⟨A: π_a, A′: π_a ∩ π_b⟩ ∘ (A =deep A′)` | `pred[a ⊆ b]` |
//! | `member-2.3` | `⟨A: π_a ∘ sng, B: π_b⟩ ∘ pred[A ⊆ B]` | `pred[a ∈ b]` |
//! | `nest-fn.5` | the footnote 5 grouping construction (sets only) | `map(π_{key,collect}) ∘ nest` |
//!
//! Rules fire bottom-up to a fixpoint, so constructions that *contain*
//! other constructions normalize in one call: `member_pred` contains
//! `subset_pred` contains `derived_intersect`, and
//! `optimize(member_pred(..))` collapses all three layers to a single
//! built-in `pred[a ∈ b]`.
//!
//! # Soundness
//!
//! Every rule preserves the semantics of well-typed expressions for the
//! collection kind the pass is run with; kind-sensitive rules
//! (`intersect-2.3`, `or-union`, `nest-fn.5`, the empty-collection
//! constant in `diff-2.4`) are gated on it. On *ill-typed* inputs the optimized expression may fail earlier,
//! later, or not at all (e.g. `fuse-proj` deletes dead fields together
//! with their errors) — the differential property test
//! (`tests/opt_prop.rs`) pins the contract: if the naive evaluator
//! succeeds, the optimized one succeeds with the same value.
//!
//! Each rule application is recorded in a [`Trace`] (shared with
//! `xq_rewrite`'s Theorem 7.9 eliminator), so the derivation itself is
//! testable — golden tests pin one trace per rule.

use crate::trace::Trace;
use crate::{Cond, EqMode, Expr, Operand};
use cv_value::{Atom, CollectionKind, Value, ValueKind};
use std::rc::Rc;

/// Upper bound on full rewriting passes; each pass is bottom-up and
/// cascades within itself, so the fixpoint is reached in one or two.
const MAX_PASSES: usize = 8;

/// Rewrites `e` to a fixpoint of the rule catalog for collection kind
/// `kind`, returning the normalized expression and the rule trace.
///
/// # Example
///
/// The Example 2.4 derived difference collapses to the built-in:
///
/// ```
/// use cv_monad::{derived::derived_diff, opt, CollectionKind, Expr};
///
/// let (rewritten, trace) = opt::optimize(&derived_diff(), CollectionKind::Set);
/// assert_eq!(
///     rewritten,
///     Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into())
/// );
/// assert!(trace.rules().contains(&"diff-2.4"));
/// ```
pub fn optimize(e: &Expr, kind: CollectionKind) -> (Expr, Trace) {
    let mut opt = Optimizer {
        kind,
        trace: Trace::default(),
    };
    let mut cur = opt.pass(e);
    for _ in 1..MAX_PASSES {
        let next = opt.pass(&cur);
        if next == cur {
            break;
        }
        cur = next;
    }
    (cur, opt.trace)
}

/// A thread-shareable summary of one [`optimize`] run: which rules fired
/// and how the expression size changed. [`Expr`] (and therefore [`Trace`],
/// which stores redex snapshots) is `Rc`-backed and cannot cross threads;
/// compile-time consumers that cache plans process-wide — `xq_core`'s
/// bytecode plan store bakes the optimizer verdict into each cached plan —
/// keep this report instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptReport {
    /// Names of the rules that fired, in application order (the
    /// [`Trace::rules`] listing).
    pub rules: Vec<&'static str>,
    /// Operator count of the input expression.
    pub size_before: u64,
    /// Operator count of the normalized expression.
    pub size_after: u64,
}

/// [`optimize`], additionally returning an [`OptReport`] — the
/// `Send + Sync` summary surfaced at query-compile time by plan caches.
pub fn optimize_report(e: &Expr, kind: CollectionKind) -> (Expr, OptReport) {
    let size_before = e.size();
    let (out, trace) = optimize(e, kind);
    let report = OptReport {
        rules: trace.rules(),
        size_before,
        size_after: out.size(),
    };
    (out, report)
}

struct Optimizer {
    kind: CollectionKind,
    trace: Trace,
}

impl Optimizer {
    /// One full bottom-up pass: linearize compositions, rewrite children,
    /// drop identities, then run the peephole window rules over the
    /// pipeline until none fires.
    fn pass(&mut self, e: &Expr) -> Expr {
        let mut right_nested = false;
        let mut segs: Vec<Expr> = Vec::new();
        collect_pipeline(e, &mut segs, &mut right_nested);
        if right_nested {
            self.trace.log("flatten-then", e);
        }
        let mut segs: Vec<Expr> = segs.iter().map(|s| self.rw_node(s)).collect();
        self.drop_identities(&mut segs);
        loop {
            let mut fired = false;
            let mut i = 0;
            while i < segs.len() {
                if let Some((repl, used, rule)) = self.try_window(&segs[i..]) {
                    self.trace.log(rule, &render(&segs[i..i + used]));
                    segs.splice(i..i + used, repl);
                    self.drop_identities(&mut segs);
                    fired = true;
                    // Rewind: the replacement may complete an earlier redex.
                    i = 0;
                } else {
                    i += 1;
                }
            }
            if !fired {
                break;
            }
        }
        match segs.len() {
            0 => Expr::Id,
            _ => Expr::chain(segs),
        }
    }

    /// Drops `id` segments from a pipeline (they are units of `∘`).
    fn drop_identities(&mut self, segs: &mut Vec<Expr>) {
        while segs.len() > 1 {
            let Some(pos) = segs.iter().position(|s| *s == Expr::Id) else {
                break;
            };
            self.trace.log("elim-id", &"id");
            segs.remove(pos);
        }
    }

    /// Rewrites the children of one pipeline segment (plus the single-node
    /// rules that need no window).
    fn rw_node(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Compose(_, _) => self.pass(e),
            Expr::Map(f) => {
                let f = self.pass(f);
                if f == Expr::Id {
                    self.trace.log("map-id", &"map(id)");
                    Expr::Id
                } else {
                    Expr::Map(Rc::new(f))
                }
            }
            Expr::MkTuple(fields) => Expr::MkTuple(
                fields
                    .iter()
                    .map(|(n, f)| (n.clone(), self.pass(f)))
                    .collect(),
            ),
            Expr::Union(f, g) => {
                let (f, g) = (self.pass(f), self.pass(g));
                // pred_or: γ ∨ δ = γ ∪ δ. Set union deduplicates the truth
                // witness; list/bag union would change multiplicities.
                if self.kind == CollectionKind::Set {
                    if let (Expr::Pred(c), Expr::Pred(d)) = (&f, &g) {
                        self.trace.log("or-union", &render(&[f.clone(), g.clone()]));
                        return Expr::Pred(c.clone().or(d.clone()));
                    }
                }
                Expr::Union(Rc::new(f), Rc::new(g))
            }
            Expr::Diff(f, g) => Expr::Diff(Rc::new(self.pass(f)), Rc::new(self.pass(g))),
            Expr::Intersect(f, g) => Expr::Intersect(Rc::new(self.pass(f)), Rc::new(self.pass(g))),
            Expr::Monus(f, g) => Expr::Monus(Rc::new(self.pass(f)), Rc::new(self.pass(g))),
            other => other.clone(),
        }
    }

    /// Tries every window rule at the head of `w`, longest pattern first.
    fn try_window(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        self.try_intersect(w)
            .or_else(|| self.try_pred_and(w))
            .or_else(|| self.try_diff(w))
            .or_else(|| self.try_nest(w))
            .or_else(|| self.try_sigma_gamma(w))
            .or_else(|| self.try_derived_not(w))
            .or_else(|| self.try_subset(w))
            .or_else(|| self.try_member(w))
            .or_else(|| self.try_fuse_proj(w))
            .or_else(|| self.try_pred_true(w))
    }

    /// Example 2.3 (sets only): `(f × g) ∘ σ_{1 =deep 2} ∘ map(π1)  ⊢  f ∩ g`.
    ///
    /// On lists and bags the derived form repeats an `f`-member once per
    /// deep-equal match in `g` (the product pairs them all), while the
    /// built-in `∩` keeps `f`'s multiplicity — only set semantics
    /// deduplicates the two to the same value.
    fn try_intersect(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        if self.kind != CollectionKind::Set {
            return None;
        }
        let (t1, f, t2, g) = match_product(w)?;
        let Expr::Select(Cond::Eq(Operand::Path(pa), Operand::Path(pb), EqMode::Deep)) =
            w.get(4)?
        else {
            return None;
        };
        if !(is_path_to(pa, t1) && is_path_to(pb, t2)) {
            return None;
        }
        let Expr::Map(m) = w.get(5)? else {
            return None;
        };
        if **m != Expr::Proj(t1.clone()) {
            return None;
        }
        Some((
            vec![Expr::Intersect(Rc::new(f.clone()), Rc::new(g.clone()))],
            6,
            "intersect-2.3",
        ))
    }

    /// §2.2: `pred[c] × pred[d]`, normalized back to Boolean type,
    /// is predicate conjunction — `pred[c ∧ d]`.
    fn try_pred_and(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        let (_, f, _, g) = match_product(w)?;
        let Expr::Map(m) = w.get(4)? else {
            return None;
        };
        if **m != Expr::MkTuple(Vec::new()) {
            return None;
        }
        let (Expr::Pred(c), Expr::Pred(d)) = (f, g) else {
            return None;
        };
        Some((vec![Expr::Pred(c.clone().and(d.clone()))], 5, "and-product"))
    }

    /// Example 2.4: the derived difference construction `⊢ π_R − π_S`.
    fn try_diff(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        let Expr::PairWith(r) = w.first()? else {
            return None;
        };
        let Expr::Map(body) = w.get(1)? else {
            return None;
        };
        let Expr::MkTuple(outer) = &**body else {
            return None;
        };
        let [(or_name, or_expr), (sr, inner)] = outer.as_slice() else {
            return None;
        };
        if or_name != r || *or_expr != Expr::Proj(r.clone()) || sr == r {
            return None;
        }
        // inner: ⟨R: πR, S: πS⟩ ∘ pairwith_S ∘ σ_{R =deep S}
        let ipipe = inner.pipeline();
        let [Expr::MkTuple(ifs), Expr::PairWith(pw), Expr::Select(Cond::Eq(Operand::Path(pa), Operand::Path(pb), EqMode::Deep))] =
            ipipe.as_slice()
        else {
            return None;
        };
        let [(ir_name, ir_expr), (is_name, is_expr)] = ifs.as_slice() else {
            return None;
        };
        let Expr::Proj(s_attr) = is_expr else {
            return None;
        };
        if ir_name != r
            || *ir_expr != Expr::Proj(r.clone())
            || is_name == r
            || pw != is_name
            || !is_path_to(pa, r)
            || !is_path_to(pb, is_name)
        {
            return None;
        }
        // π_{s_attr} must read a *different* attribute than the one
        // pairwith replaced: after pairwith_r, π_r is the current element,
        // not the original collection, so an aliasing projection is NOT
        // the Example 2.4 shape (and Diff(π_r, π_r) would be wrong).
        if s_attr == r {
            return None;
        }
        // σ_{SR =deep ∅} ∘ map(π_R)
        let Expr::Select(Cond::Eq(Operand::Path(psr), Operand::Const(empty), EqMode::Deep)) =
            w.get(2)?
        else {
            return None;
        };
        if !is_path_to(psr, sr) || !self.is_empty_of_kind(empty) {
            return None;
        }
        let Expr::Map(last) = w.get(3)? else {
            return None;
        };
        if **last != Expr::Proj(r.clone()) {
            return None;
        }
        Some((
            vec![Expr::Diff(
                Rc::new(Expr::Proj(r.clone())),
                Rc::new(Expr::Proj(s_attr.clone())),
            )],
            4,
            "diff-2.4",
        ))
    }

    /// Footnote 5 (sets only): the derived binary nesting construction
    /// `⊢ map(⟨key: π_key, collect: π_collect⟩) ∘ nest_{into=(collect)}`.
    ///
    /// The projection prefix makes the rewrite valid for relations of any
    /// width: the derived form groups by `key` alone and keeps only `key`
    /// and the nested collection, which is exactly built-in `nest` applied
    /// to the binary projection.
    fn try_nest(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        if self.kind != CollectionKind::Set {
            return None;
        }
        let Expr::MkTuple(top) = w.first()? else {
            return None;
        };
        let [(t, te), (rel, re)] = top.as_slice() else {
            return None;
        };
        if t == rel || *te != Expr::Id || *re != Expr::Id {
            return None;
        }
        let Expr::PairWith(pt) = w.get(1)? else {
            return None;
        };
        if pt != t {
            return None;
        }
        let Expr::Map(body) = w.get(2)? else {
            return None;
        };
        let Expr::MkTuple(bfs) = &**body else {
            return None;
        };
        let [(key, kexpr), (into, inner)] = bfs.as_slice() else {
            return None;
        };
        if !is_proj2(kexpr, t, key) {
            return None;
        }
        // inner: ⟨v: π_t ∘ π_key, rel: π_rel⟩ ∘ pairwith_rel
        //          ∘ σ_{rel.key =atomic v} ∘ map(⟨collect: π_rel ∘ π_collect⟩)
        let ipipe = inner.pipeline();
        let [Expr::MkTuple(ifs), Expr::PairWith(pr), Expr::Select(Cond::Eq(Operand::Path(pa), Operand::Path(pb), EqMode::Atomic)), Expr::Map(mm)] =
            ipipe.as_slice()
        else {
            return None;
        };
        let [(v, vx), (rel2, rx)] = ifs.as_slice() else {
            return None;
        };
        if v == rel2 || !is_proj2(vx, t, key) || *rx != Expr::Proj(rel.clone()) || pr != rel2 {
            return None;
        }
        if !(pa.len() == 2 && pa[0] == *rel2 && pa[1] == *key) || !is_path_to(pb, v) {
            return None;
        }
        let Expr::MkTuple(cfs) = &**mm else {
            return None;
        };
        let [(collect, cexpr)] = cfs.as_slice() else {
            return None;
        };
        if collect == key || into == key || !is_proj2(cexpr, rel2, collect) {
            return None;
        }
        Some((
            vec![
                Expr::Map(Rc::new(Expr::MkTuple(vec![
                    (key.clone(), Expr::Proj(key.clone())),
                    (collect.clone(), Expr::Proj(collect.clone())),
                ]))),
                Expr::Nest {
                    collect: vec![collect.clone()],
                    into: into.clone(),
                },
            ],
            3,
            "nest-fn.5",
        ))
    }

    /// Example 2.3: `σ_γ` with `γ = pred[c]` `⊢ σ_c` (the built-in).
    fn try_sigma_gamma(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        let Expr::Map(body) = w.first()? else {
            return None;
        };
        if *w.get(1)? != Expr::Flatten {
            return None;
        }
        let bpipe = body.pipeline();
        let [Expr::MkTuple(fs), Expr::PairWith(p2), Expr::Map(mp)] = bpipe.as_slice() else {
            return None;
        };
        let [(t1, e1), (t2, gamma)] = fs.as_slice() else {
            return None;
        };
        if t1 == t2 || *e1 != Expr::Id || p2 != t2 || **mp != Expr::Proj(t1.clone()) {
            return None;
        }
        let Expr::Pred(c) = gamma else {
            return None;
        };
        Some((vec![Expr::Select(c.clone())], 2, "select-2.3"))
    }

    /// §3: `not φ := (φ =deep ∅)` `⊢ φ ∘ not`, for collection-valued `φ`.
    fn try_derived_not(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        let Expr::MkTuple(fs) = w.first()? else {
            return None;
        };
        let [(t1, e1), (t2, e2)] = fs.as_slice() else {
            return None;
        };
        let Expr::Pred(Cond::Eq(Operand::Path(pa), Operand::Path(pb), EqMode::Deep)) = w.get(1)?
        else {
            return None;
        };
        let straight = is_path_to(pa, t1) && is_path_to(pb, t2);
        let swapped = is_path_to(pa, t2) && is_path_to(pb, t1);
        if !straight && !swapped {
            return None;
        }
        let phi = match (e1, e2) {
            (Expr::EmptyColl, phi) | (phi, Expr::EmptyColl) => phi,
            _ => return None,
        };
        // `not` demands a collection of the evaluator's kind; the derived
        // form merely compares, so only rewrite provably collection-valued φ.
        if !self.returns_collection(phi) {
            return None;
        }
        Some((vec![phi.clone(), Expr::Not], 2, "not-deep-eq"))
    }

    /// Example 2.3: `⟨A: f, A′: f ∩ g⟩ ∘ (A =deep A′)` `⊢ pred[f ⊆ g]`,
    /// when `f`/`g` are attribute paths.
    fn try_subset(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        let Expr::MkTuple(fs) = w.first()? else {
            return None;
        };
        let [(t1, e1), (t2, e2)] = fs.as_slice() else {
            return None;
        };
        let Expr::Intersect(f, g) = e2 else {
            return None;
        };
        if *e1 != **f {
            return None;
        }
        let Expr::Pred(Cond::Eq(Operand::Path(pa), Operand::Path(pb), EqMode::Deep)) = w.get(1)?
        else {
            return None;
        };
        let straight = is_path_to(pa, t1) && is_path_to(pb, t2);
        let swapped = is_path_to(pa, t2) && is_path_to(pb, t1);
        if !straight && !swapped {
            return None;
        }
        let pf = expr_as_path(f)?;
        let pg = expr_as_path(g)?;
        Some((
            vec![Expr::Pred(Cond::Subset(
                Operand::Path(pf),
                Operand::Path(pg),
            ))],
            2,
            "subset-2.3",
        ))
    }

    /// Example 2.3: `⟨A: f ∘ sng, B: g⟩ ∘ pred[A ⊆ B]` `⊢ pred[f ∈ g]`
    /// (membership as singleton containment, read back).
    fn try_member(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        let Expr::MkTuple(fs) = w.first()? else {
            return None;
        };
        let [(t1, e1), (t2, e2)] = fs.as_slice() else {
            return None;
        };
        let Expr::Pred(Cond::Subset(Operand::Path(pa), Operand::Path(pb))) = w.get(1)? else {
            return None;
        };
        // The ⊆-left side must be the singleton-wrapped field.
        let (sng_side, coll_side) = if is_path_to(pa, t1) && is_path_to(pb, t2) {
            (e1, e2)
        } else if is_path_to(pa, t2) && is_path_to(pb, t1) {
            (e2, e1)
        } else {
            return None;
        };
        let mut pipe = sng_side.pipeline();
        if pipe.pop() != Some(&Expr::Sng) {
            return None;
        }
        let elem = expr_path_of_segments(&pipe)?;
        let coll = expr_as_path(coll_side)?;
        Some((
            vec![Expr::Pred(Cond::In(
                Operand::Path(elem),
                Operand::Path(coll),
            ))],
            2,
            "member-2.3",
        ))
    }

    /// `⟨…, A: f, …⟩ ∘ π_A  ⊢  f` — dead fields are dropped.
    fn try_fuse_proj(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        let Expr::MkTuple(fs) = w.first()? else {
            return None;
        };
        let Expr::Proj(a) = w.get(1)? else {
            return None;
        };
        let (_, f) = fs.iter().find(|(n, _)| n == a)?;
        Some((vec![f.clone()], 2, "fuse-proj"))
    }

    /// `⟨⟩ ∘ sng ⊢ pred[true]` — the constantly-true predicate.
    fn try_pred_true(&self, w: &[Expr]) -> Option<(Vec<Expr>, usize, &'static str)> {
        let Expr::MkTuple(fs) = w.first()? else {
            return None;
        };
        if !fs.is_empty() || *w.get(1)? != Expr::Sng {
            return None;
        }
        Some((vec![Expr::Pred(Cond::True)], 2, "pred-true"))
    }

    /// Whether `v` is the empty collection of this optimizer's kind.
    fn is_empty_of_kind(&self, v: &Value) -> bool {
        match (self.kind, v.kind()) {
            (CollectionKind::Set, ValueKind::Set(xs))
            | (CollectionKind::List, ValueKind::List(xs))
            | (CollectionKind::Bag, ValueKind::Bag(xs)) => xs.is_empty(),
            _ => false,
        }
    }

    /// Conservative syntactic check that `e` always yields a collection of
    /// this optimizer's kind (so a following `not` cannot shape-error where
    /// the derived comparison form would have returned false).
    fn returns_collection(&self, e: &Expr) -> bool {
        match e {
            Expr::EmptyColl
            | Expr::Sng
            | Expr::Map(_)
            | Expr::Flatten
            | Expr::PairWith(_)
            | Expr::Union(_, _)
            | Expr::Pred(_)
            | Expr::Select(_)
            | Expr::Not
            | Expr::True
            | Expr::Diff(_, _)
            | Expr::Intersect(_, _)
            | Expr::Nest { .. }
            | Expr::Monus(_, _)
            | Expr::Unique
            | Expr::DescMap => true,
            Expr::Compose(_, g) => self.returns_collection(g),
            Expr::Const(v) => matches!(
                (self.kind, v.kind()),
                (CollectionKind::Set, ValueKind::Set(_))
                    | (CollectionKind::List, ValueKind::List(_))
                    | (CollectionKind::Bag, ValueKind::Bag(_))
            ),
            Expr::Id | Expr::Proj(_) | Expr::MkTuple(_) => false,
        }
    }
}

/// Matches the Example 2.1 product prefix
/// `⟨1: f, 2: g⟩ ∘ pairwith_1 ∘ map(pairwith_2) ∘ flatten`,
/// returning the tuple attributes and factors.
fn match_product(w: &[Expr]) -> Option<(&Atom, &Expr, &Atom, &Expr)> {
    let Expr::MkTuple(fs) = w.first()? else {
        return None;
    };
    let [(t1, f), (t2, g)] = fs.as_slice() else {
        return None;
    };
    if t1 == t2 {
        return None;
    }
    let Expr::PairWith(p1) = w.get(1)? else {
        return None;
    };
    let Expr::Map(m) = w.get(2)? else {
        return None;
    };
    if p1 != t1 || **m != Expr::PairWith(t2.clone()) || *w.get(3)? != Expr::Flatten {
        return None;
    }
    Some((t1, f, t2, g))
}

/// Linearizes nested compositions, noting whether any was right-nested
/// (i.e. reassembly will reassociate).
fn collect_pipeline(e: &Expr, segs: &mut Vec<Expr>, right_nested: &mut bool) {
    match e {
        Expr::Compose(f, g) => {
            if matches!(**g, Expr::Compose(_, _)) {
                *right_nested = true;
            }
            collect_pipeline(f, segs, right_nested);
            collect_pipeline(g, segs, right_nested);
        }
        other => segs.push(other.clone()),
    }
}

/// Whether `path` is the single-attribute path `[a]`.
fn is_path_to(path: &[Atom], a: &Atom) -> bool {
    path.len() == 1 && path[0] == *a
}

/// Whether `e` is exactly `π_a ∘ π_b`.
fn is_proj2(e: &Expr, a: &Atom, b: &Atom) -> bool {
    matches!(
        e.pipeline()[..],
        [Expr::Proj(ref x), Expr::Proj(ref y)] if x == a && y == b
    )
}

/// Reads `e` as an attribute path (`id` ⇒ the empty path, projection
/// chains ⇒ their attributes); `None` for anything else.
fn expr_as_path(e: &Expr) -> Option<Vec<Atom>> {
    expr_path_of_segments(&e.pipeline())
}

fn expr_path_of_segments(segs: &[&Expr]) -> Option<Vec<Atom>> {
    let mut path = Vec::new();
    for seg in segs {
        match seg {
            Expr::Proj(a) => path.push(a.clone()),
            Expr::Id => {}
            _ => return None,
        }
    }
    Some(path)
}

fn render(w: &[Expr]) -> String {
    w.iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(" o ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derived::*;
    use crate::{eval, Evaluator};
    use cv_value::parse_value;

    const K: CollectionKind = CollectionKind::Set;

    fn run(e: &Expr, input: &str) -> Value {
        eval(e, K, &parse_value(input).unwrap()).unwrap()
    }

    /// Optimizes, asserting the given rule fired.
    fn opt(e: &Expr, rule: &str) -> Expr {
        let (out, trace) = optimize(e, K);
        assert!(
            trace.rules().contains(&rule),
            "expected rule {rule} in {:?} for {e}",
            trace.rules()
        );
        out
    }

    // ---- golden tests: one pinned rewrite + trace per rule ---------------

    #[test]
    fn golden_diff_2_4() {
        let out = opt(&derived_diff(), "diff-2.4");
        assert_eq!(
            out,
            Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into())
        );
        let input = "<R: {1, 2, 3}, S: {2}>";
        assert_eq!(run(&out, input), run(&derived_diff(), input));
    }

    #[test]
    fn diff_rule_rejects_aliasing_projection() {
        // Like derived_diff() but with the inner "S" projection aliasing
        // the pairwith'd attribute: after pairwith_R, π_R is the current
        // element, not the original collection, so this is not a
        // difference and the rule must not fire.
        let aliased = Expr::pairwith("R")
            .then(
                Expr::mk_tuple([
                    ("R", Expr::proj("R")),
                    (
                        "SR",
                        Expr::mk_tuple([("R", Expr::proj("R")), ("S2", Expr::proj("R"))])
                            .then(Expr::pairwith("S2"))
                            .then(Expr::Select(Cond::eq_deep(
                                Operand::path("R"),
                                Operand::path("S2"),
                            ))),
                    ),
                ])
                .mapped(),
            )
            .then(Expr::Select(Cond::eq_deep(
                Operand::path("SR"),
                Operand::konst(cv_value::Value::set([])),
            )))
            .then(Expr::proj("R").mapped());
        let (out, trace) = optimize(&aliased, K);
        assert!(
            !trace.rules().contains(&"diff-2.4"),
            "aliasing shape must not rewrite: {out}"
        );
        // Naive semantics keep every member (SR is always empty here);
        // the rewrite to Diff(π_R, π_R) would have returned {}.
        let input = "<R: {{a}}>";
        assert_eq!(run(&out, input), run(&aliased, input));
        assert_eq!(run(&aliased, input), parse_value("{{a}}").unwrap());
    }

    #[test]
    fn golden_intersect_2_3() {
        let d = derived_intersect(Expr::proj("R"), Expr::proj("S"));
        let out = opt(&d, "intersect-2.3");
        assert_eq!(
            out,
            Expr::Intersect(Expr::proj("R").into(), Expr::proj("S").into())
        );
        let input = "<R: {1, 2}, S: {2, 3}>";
        assert_eq!(run(&out, input), run(&d, input));
        // On lists the derived form repeats an f-member once per match in
        // g (e.g. R: [1], S: [1, 1] gives [1, 1], builtin gives [1]) — the
        // rule must not fire.
        let (out, trace) = optimize(&d, CollectionKind::List);
        assert!(
            !trace.rules().contains(&"intersect-2.3"),
            "intersect rule must not fire on lists: {out}"
        );
    }

    #[test]
    fn golden_select_2_3() {
        let c = Cond::eq_atomic(Operand::path("A"), Operand::path("B"));
        let d = sigma_gamma(Expr::Pred(c.clone()));
        let out = opt(&d, "select-2.3");
        assert_eq!(out, Expr::Select(c));
        let input = "{<A: 1, B: 1>, <A: 1, B: 2>}";
        assert_eq!(run(&out, input), run(&d, input));
    }

    #[test]
    fn golden_not_deep_eq() {
        let d = derived_not(pred_true());
        let out = opt(&d, "not-deep-eq");
        assert_eq!(out, Expr::Pred(Cond::True).then(Expr::Not));
        assert_eq!(run(&out, "<>"), run(&d, "<>"));
    }

    #[test]
    fn golden_and_product() {
        let c = Cond::eq_atomic(Operand::path("A"), Operand::path("B"));
        let d = Cond::eq_atomic(Operand::path("A"), Operand::path("C"));
        let e = pred_and(Expr::Pred(c.clone()), Expr::Pred(d.clone()));
        let out = opt(&e, "and-product");
        assert_eq!(out, Expr::Pred(c.and(d)));
        for input in ["<A: 1, B: 1, C: 1>", "<A: 1, B: 1, C: 2>"] {
            assert_eq!(run(&out, input), run(&e, input), "{input}");
        }
    }

    #[test]
    fn golden_or_union() {
        let c = Cond::eq_atomic(Operand::path("A"), Operand::path("B"));
        let d = Cond::eq_atomic(Operand::path("A"), Operand::path("C"));
        let e = pred_or(Expr::Pred(c.clone()), Expr::Pred(d.clone()));
        let out = opt(&e, "or-union");
        assert_eq!(out, Expr::Pred(c.or(d)));
        for input in ["<A: 1, B: 2, C: 1>", "<A: 1, B: 2, C: 3>"] {
            assert_eq!(run(&out, input), run(&e, input), "{input}");
        }
        // On lists the union concatenates truth witnesses — no rewrite.
        let e = pred_or(Expr::Pred(Cond::True), Expr::Pred(Cond::True));
        let (out, _) = optimize(&e, CollectionKind::List);
        assert!(matches!(out, Expr::Union(_, _)), "got {out}");
    }

    #[test]
    fn golden_subset_2_3() {
        let d = subset_pred("A", "B");
        let out = opt(&d, "subset-2.3");
        assert_eq!(
            out,
            Expr::Pred(Cond::Subset(Operand::path("A"), Operand::path("B")))
        );
        for input in ["<A: {1}, B: {1, 2}>", "<A: {1, 9}, B: {1, 2}>"] {
            assert_eq!(run(&out, input), run(&d, input), "{input}");
        }
    }

    #[test]
    fn golden_member_2_3() {
        let d = member_pred("A", "B");
        let out = opt(&d, "member-2.3");
        assert_eq!(
            out,
            Expr::Pred(Cond::In(Operand::path("A"), Operand::path("B")))
        );
        for input in ["<A: 1, B: {1, 2}>", "<A: 9, B: {1, 2}>"] {
            assert_eq!(run(&out, input), run(&d, input), "{input}");
        }
    }

    #[test]
    fn golden_nest_fn_5() {
        let d = derived_nest_binary("A", "B", "C");
        let out = opt(&d, "nest-fn.5");
        assert_eq!(
            out,
            Expr::Map(Rc::new(Expr::mk_tuple([
                ("A", Expr::proj("A")),
                ("B", Expr::proj("B")),
            ])))
            .then(Expr::Nest {
                collect: vec!["B".into()],
                into: "C".into(),
            })
        );
        for input in [
            "{<A: 1, B: x>, <A: 1, B: y>, <A: 2, B: x>}",
            "{<A: 1, B: x, D: extra>, <A: 1, B: y, D: other>}",
            "{}",
        ] {
            assert_eq!(run(&out, input), run(&d, input), "{input}");
        }
        // Lists keep per-tuple groups in the derived form — no rewrite.
        let (out, trace) = optimize(&d, CollectionKind::List);
        assert!(
            !trace.rules().contains(&"nest-fn.5"),
            "nest rule must not fire on lists: {out}"
        );
    }

    #[test]
    fn golden_fuse_proj() {
        let e = Expr::mk_tuple([("A", Expr::Sng), ("B", Expr::proj("X"))]).then(Expr::proj("A"));
        let out = opt(&e, "fuse-proj");
        assert_eq!(out, Expr::Sng);
        // The dead field "B" (which would error on an atom) is gone.
        assert_eq!(run(&out, "q"), parse_value("{q}").unwrap());
    }

    #[test]
    fn golden_identity_cleanups() {
        let e = Expr::Id.then(Expr::Sng).then(Expr::Id);
        let out = opt(&e, "elim-id");
        assert_eq!(out, Expr::Sng);
        let e = Expr::Id.mapped();
        let out = opt(&e, "map-id");
        assert_eq!(out, Expr::Id);
        let e = Expr::Compose(
            Rc::new(Expr::Sng),
            Rc::new(Expr::Compose(Rc::new(Expr::Flatten), Rc::new(Expr::Sng))),
        );
        let out = opt(&e, "flatten-then");
        assert_eq!(out, Expr::Sng.then(Expr::Flatten).then(Expr::Sng));
    }

    #[test]
    fn golden_pred_true() {
        let out = opt(&pred_true(), "pred-true");
        assert_eq!(out, Expr::Pred(Cond::True));
        assert_eq!(run(&out, "x"), Value::truth(K));
    }

    // ---- structural properties ------------------------------------------

    #[test]
    fn cascading_rewrites_collapse_nested_constructions() {
        // member_pred contains subset_pred contains derived_intersect: one
        // optimize call fires all three rules.
        let (out, trace) = optimize(&member_pred("A", "B"), K);
        let rules = trace.rules();
        for rule in ["intersect-2.3", "subset-2.3", "member-2.3"] {
            assert!(rules.contains(&rule), "missing {rule} in {rules:?}");
        }
        assert_eq!(
            out,
            Expr::Pred(Cond::In(Operand::path("A"), Operand::path("B"))),
            "fully collapsed"
        );
    }

    #[test]
    fn optimizer_is_idempotent_on_rewritten_output() {
        for e in [
            derived_diff(),
            derived_intersect(Expr::proj("R"), Expr::proj("S")),
            member_pred("A", "B"),
            derived_nest_binary("A", "B", "C"),
            sigma_gamma(Expr::Pred(Cond::True)),
        ] {
            let (once, _) = optimize(&e, K);
            let (twice, trace) = optimize(&once, K);
            assert_eq!(once, twice, "not idempotent on {e}");
            assert!(
                trace.rules().is_empty(),
                "second pass fired {:?} on {once}",
                trace.rules()
            );
        }
    }

    #[test]
    fn optimizer_never_grows_expressions() {
        for e in [
            derived_diff(),
            subset_pred("A", "B"),
            pred_and(pred_true(), pred_true()),
            Expr::Id.then(Expr::Sng),
            Expr::mk_tuple([("A", Expr::Id)]).then(Expr::proj("A")),
        ] {
            let (out, _) = optimize(&e, K);
            assert!(out.size() <= e.size(), "{e} grew to {out}");
        }
    }

    #[test]
    fn derived_not_requires_collection_valued_argument() {
        // φ = const(atom) is not collection-valued: the derived form
        // evaluates to false, the built-in `not` would shape-error.
        let e = derived_not(Expr::atom("a"));
        let (out, trace) = optimize(&e, K);
        assert!(!trace.rules().contains(&"not-deep-eq"), "{out}");
        assert_eq!(run(&out, "<>"), Value::boolean(K, false));
    }

    #[test]
    fn evaluator_knob_runs_the_pass() {
        let input = parse_value("<R: {1, 2, 3}, S: {2}>").unwrap();
        let mut naive = Evaluator::new(K);
        let want = naive.eval(&derived_diff(), &input).unwrap();
        let naive_steps = naive.stats().steps;
        let mut opt = Evaluator::new(K).with_optimizer(true);
        let got = opt.eval(&derived_diff(), &input).unwrap();
        assert_eq!(got, want);
        assert!(
            opt.stats().steps < naive_steps,
            "optimized {} vs naive {naive_steps} steps",
            opt.stats().steps
        );
    }
}
