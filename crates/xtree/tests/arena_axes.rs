//! Golden axis tests: every `Axis` × node test on the `generate.rs`
//! doubling families (plus a fixed-seed random document), compared
//! node-for-node against the `Rc` `Tree::axis` baseline, with a
//! fixed-seed golden file so regressions diff readably.
//!
//! Regenerate the golden file after an intentional change with
//!
//! ```text
//! XQ_UPDATE_GOLDEN=1 cargo test -p cv_xtree --test arena_axes
//! ```
//! and review the diff of `tests/golden/axes.golden` like any other code
//! change.

use cv_xtree::{random_tree, ArenaDoc, Axis, DoublingFamily, NodeId, NodeTest, Tree, TreeGen};
use std::fmt::Write as _;

const AXES: [Axis; 4] = [
    Axis::Child,
    Axis::Descendant,
    Axis::SelfAxis,
    Axis::DescendantOrSelf,
];

fn node_tests() -> [NodeTest; 3] {
    [NodeTest::Wildcard, NodeTest::tag("a"), NodeTest::tag("b")]
}

/// The fixed instance set: the three doubling families at n = 3 and one
/// fixed-seed random document. Changing this set invalidates the golden
/// file on purpose.
fn instances() -> Vec<(String, Tree)> {
    let mut out: Vec<(String, Tree)> = DoublingFamily::ALL
        .iter()
        .map(|f| (format!("{f}(n=3)"), f.tree(3)))
        .collect();
    let mut g = TreeGen::new(2005);
    out.push((
        "random(seed=2005,size=18)".into(),
        random_tree(&mut g, 18, &["a", "b", "c"]),
    ));
    out
}

/// Pairs each subtree of `t` (preorder) with its arena [`NodeId`].
fn preorder_subtrees(t: &Tree) -> Vec<Tree> {
    let mut out = vec![t.clone()];
    out.extend(t.descendants());
    out
}

/// The Rc-tree baseline for an axis + node test at one subtree.
fn baseline(sub: &Tree, axis: Axis, test: &NodeTest) -> Vec<Tree> {
    sub.axis(axis)
        .into_iter()
        .filter(|x| test.matches(x.label()))
        .collect()
}

#[test]
fn arena_axes_match_the_rc_baseline_node_for_node() {
    for (name, t) in instances() {
        let arena = ArenaDoc::from_tree(&t);
        let subs = preorder_subtrees(&t);
        assert_eq!(subs.len(), arena.len(), "{name}: node count");
        for (i, sub) in subs.iter().enumerate() {
            let id = NodeId(i as u32);
            for axis in AXES {
                for test in &node_tests() {
                    let want = baseline(sub, axis, test);
                    let got: Vec<Tree> = arena
                        .axis(id, axis, test)
                        .into_iter()
                        .map(|n| arena.subtree(n))
                        .collect();
                    assert_eq!(got, want, "{name}: node {i}, axis {axis}, test {test}");
                }
            }
        }
    }
}

/// Renders the full axis relation of the instance set, one line per
/// (document, node, axis, test) with the selected preorder ids.
fn render_golden() -> String {
    let mut out = String::new();
    for (name, t) in instances() {
        let arena = ArenaDoc::from_tree(&t);
        writeln!(out, "# {name}  ({} nodes)  {}", arena.len(), t.to_xml()).unwrap();
        for i in 0..arena.len() as u32 {
            let id = NodeId(i);
            for axis in AXES {
                for test in &node_tests() {
                    let ids: Vec<String> = arena
                        .axis(id, axis, test)
                        .iter()
                        .map(|n| n.0.to_string())
                        .collect();
                    writeln!(
                        out,
                        "{name} node={i}({}) axis={axis} test={test} -> [{}]",
                        arena.label(id),
                        ids.join(",")
                    )
                    .unwrap();
                }
            }
        }
    }
    out
}

#[test]
fn axis_relation_matches_the_golden_file() {
    let got = render_golden();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/axes.golden");
    if std::env::var_os("XQ_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run with XQ_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "axis relation drifted from tests/golden/axes.golden; \
         if intentional, regenerate with XQ_UPDATE_GOLDEN=1"
    );
}
