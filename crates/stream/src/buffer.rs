//! The Budget-driven buffering layer: per-source materialization under a
//! token cap, with lazy fallback above it.
//!
//! Pure recomputation (Theorem 4.5) is the right *space* story but a
//! terrible *time* story on small intermediates: re-streaming a
//! `for`-source once per `item_exists` probe and once per variable
//! reference makes the engine ~160× slower than materializing on the tiny
//! doubling-family outputs. The fix is a *per-source decision*, not a
//! separate engine: every `for`/`some`/`every` source gets an
//! [`ItemBuffer`] that materializes its items **once**, on demand, while
//! the stream stays under the cap ([`BufferPolicy`], derived from the
//! caller's `Budget` or set explicitly). A source that overflows the cap
//! reverts to the lazy discipline — `item_exists` probing plus lazy
//! [`Binding`]s — so the Theorem 4.5 space bound degrades by at most
//! `O(cap)` *per live loop/quantifier scope*.
//!
//! Accounting: a decision that engages and holds for the source's whole
//! life counts in [`StreamStats::buffered_sources`]; an overflow reversal
//! counts in [`StreamStats::lazy_fallbacks`]; every token parked in a
//! buffer is tracked in the high-water mark behind
//! [`StreamStats::peak_buffered_tokens`].
//!
//! [`StreamStats::buffered_sources`]: crate::StreamStats::buffered_sources
//! [`StreamStats::lazy_fallbacks`]: crate::StreamStats::lazy_fallbacks
//! [`StreamStats::peak_buffered_tokens`]: crate::StreamStats::peak_buffered_tokens

use crate::cursor::{bind, Binding, BoxCursor, Env, Shared};
use crate::pipeline::{build_query, eval_cond};
use crate::{StreamError, DEFAULT_BUFFER_LIMIT};
use cv_xtree::Token;
use std::rc::Rc;
use xq_core::ast::{Cond, Query, Var};

/// How much of a `for`/`some`/`every` source the engine may materialize:
/// the per-source token cap of the buffered fast path. `0` disables
/// buffering entirely (the pure Theorem 4.5 discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPolicy {
    /// Per-source token cap; sources streaming past it fall back to lazy
    /// re-streaming.
    pub per_source_cap: usize,
}

impl BufferPolicy {
    /// Pure lazy re-streaming — no source is ever materialized.
    pub fn lazy() -> BufferPolicy {
        BufferPolicy { per_source_cap: 0 }
    }

    /// A fixed per-source cap (what the classic `buffer_limit` argument
    /// of the entry points configures).
    pub fn fixed(cap: usize) -> BufferPolicy {
        BufferPolicy {
            per_source_cap: cap,
        }
    }

    /// The Budget-driven decision: buffer up to the smaller of
    /// [`DEFAULT_BUFFER_LIMIT`] and the budget's item allowance, so a
    /// caller that can only afford `max_items` materialized items never
    /// parks more than that many tokens per source.
    pub fn from_budget(budget: &xq_core::Budget) -> BufferPolicy {
        let cap = budget.max_items.min(DEFAULT_BUFFER_LIMIT as u64) as usize;
        BufferPolicy {
            per_source_cap: cap,
        }
    }
}

/// Incrementally materialized items of a `for`/`some`/`every` source —
/// the buffered fast path. One cursor streams the source exactly once;
/// items are split off the token stream *on demand*, so a consumer that
/// stops early (a short-circuiting condition, an outer boolean probe)
/// pulls no more of the source than the lazy discipline would. When the
/// stream exceeds the per-source token cap, `overflowed` is set and the
/// caller falls back to lazy re-streaming (the pulls spent probing still
/// count against the budget).
pub(crate) struct ItemBuffer<'q> {
    shared: Shared,
    cursor: Option<BoxCursor<'q>>,
    items: Vec<Rc<[Token]>>,
    partial: Vec<Token>,
    depth: i64,
    total: usize,
    overflowed: bool,
    /// Whether this buffer's held decision was already counted in
    /// `buffered_sources` (set at full drain; drop counts the rest).
    counted: bool,
}

impl<'q> ItemBuffer<'q> {
    fn new(expr: &'q Query, env: &Env<'q>, shared: &Shared) -> Result<ItemBuffer<'q>, StreamError> {
        shared.recompute();
        Ok(ItemBuffer {
            shared: shared.clone(),
            cursor: Some(build_query(expr, env, shared)?),
            items: Vec::new(),
            partial: Vec::new(),
            depth: 0,
            total: 0,
            overflowed: false,
            counted: false,
        })
    }

    /// Tokens currently parked in this buffer (and charged to the
    /// buffered-token gauge).
    fn parked(&self) -> u64 {
        (self.items.iter().map(|i| i.len()).sum::<usize>() + self.partial.len()) as u64
    }

    /// Returns item #m (0-based), pulling just far enough to materialize
    /// it. `Ok(None)` means the source ended before item #m *or* the cap
    /// was exceeded — check [`ItemBuffer::overflowed`] to tell them apart.
    fn get(&mut self, m: usize) -> Result<Option<Rc<[Token]>>, StreamError> {
        while self.items.len() <= m {
            let Some(cursor) = self.cursor.as_mut() else {
                return Ok(None);
            };
            let Some(t) = cursor.pull()? else {
                // Source fully buffered: the decision held.
                self.cursor = None;
                if !self.counted {
                    self.counted = true;
                    self.shared.count_buffered();
                }
                return Ok(None);
            };
            self.total += 1;
            if self.total > self.shared.buffer_limit {
                self.overflowed = true;
                self.cursor = None;
                self.shared.count_fallback();
                return Ok(None);
            }
            match &t {
                Token::Open(_) => self.depth += 1,
                Token::Close(_) => self.depth -= 1,
            }
            self.shared.buffer_tokens(1);
            self.partial.push(t);
            if self.depth == 0 {
                self.items.push(Rc::from(std::mem::take(&mut self.partial)));
            }
        }
        Ok(Some(self.items[m].clone()))
    }

    fn fork(&self) -> ItemBuffer<'q> {
        // The fork holds its own copy of the parked tokens; charge them so
        // the high-water mark stays honest and the fork's drop balances.
        self.shared.buffer_tokens(self.parked());
        ItemBuffer {
            shared: self.shared.clone(),
            cursor: self.cursor.as_ref().map(|c| c.fork()),
            items: self.items.clone(),
            partial: self.partial.clone(),
            depth: self.depth,
            total: self.total,
            overflowed: self.overflowed,
            counted: self.counted,
        }
    }
}

impl Drop for ItemBuffer<'_> {
    fn drop(&mut self) {
        self.shared.unbuffer_tokens(self.parked());
        if !self.overflowed && !self.counted {
            // The decision engaged and held for the source's whole life
            // (an early-stopping consumer simply never drained it).
            self.shared.count_buffered();
        }
    }
}

/// Iterates the item bindings of a `for`/`some`/`every` source: the
/// buffered fast path when the policy's cap is nonzero (falling back to
/// lazy re-streaming on overflow), pure `item_exists` probing otherwise.
/// Both disciplines yield bindings one at a time, so early-stopping
/// consumers (quantifier short-circuits, outer boolean probes) pull no
/// more of the source than strictly needed.
pub(crate) struct SourceIter<'q> {
    source: &'q Query,
    env: Env<'q>,
    m: u64,
    buf: Option<ItemBuffer<'q>>,
}

impl<'q> SourceIter<'q> {
    pub(crate) fn new(
        source: &'q Query,
        env: &Env<'q>,
        shared: &Shared,
    ) -> Result<SourceIter<'q>, StreamError> {
        let buf = if shared.buffer_limit > 0 {
            Some(ItemBuffer::new(source, env, shared)?)
        } else {
            None
        };
        Ok(SourceIter {
            source,
            env: env.clone(),
            m: 0,
            buf,
        })
    }

    /// The binding for the next item, or `None` when the source ends.
    pub(crate) fn next_binding(
        &mut self,
        shared: &Shared,
    ) -> Result<Option<Binding<'q>>, StreamError> {
        let m = self.m;
        self.m += 1;
        let mut overflowed = false;
        if let Some(b) = self.buf.as_mut() {
            match b.get(m as usize)? {
                Some(item) => return Ok(Some(Binding::Input(item))),
                None => {
                    if b.overflowed {
                        overflowed = true;
                    } else {
                        return Ok(None);
                    }
                }
            }
        }
        if overflowed {
            self.buf = None;
        }
        if !item_exists(self.source, &self.env, m, shared)? {
            return Ok(None);
        }
        Ok(Some(Binding::Lazy {
            expr: self.source,
            env: self.env.clone(),
            index: m,
        }))
    }

    pub(crate) fn fork(&self) -> SourceIter<'q> {
        SourceIter {
            source: self.source,
            env: self.env.clone(),
            m: self.m,
            buf: self.buf.as_ref().map(ItemBuffer::fork),
        }
    }
}

/// The quantifier loop of `some`/`every`: drives a [`SourceIter`] over
/// the source — the same per-item bindings (buffered or lazy) the
/// `for`-loop sees — and evaluates the satisfaction condition per item
/// with Boolean short-circuiting. Like
/// [`MatchEmitter`](crate::cursor::MatchEmitter) it is a loop driver, not
/// a token cursor: it has no meter and no budget charge of its own (every
/// pull is its probes'), so quantifier cost is exactly the cost of the
/// probes actually made before the verdict.
pub(crate) struct QuantLoopCursor<'q> {
    var: Var,
    sat: &'q Cond,
    env: Env<'q>,
    iter: SourceIter<'q>,
}

impl<'q> QuantLoopCursor<'q> {
    pub(crate) fn new(
        var: Var,
        source: &'q Query,
        sat: &'q Cond,
        env: &Env<'q>,
        shared: &Shared,
    ) -> Result<QuantLoopCursor<'q>, StreamError> {
        Ok(QuantLoopCursor {
            var,
            sat,
            env: env.clone(),
            iter: SourceIter::new(source, env, shared)?,
        })
    }

    /// The short-circuiting verdict: existential (`some`) stops at the
    /// first satisfying item, universal (`every`) at the first
    /// counterexample.
    pub(crate) fn verdict(
        &mut self,
        existential: bool,
        shared: &Shared,
    ) -> Result<bool, StreamError> {
        while let Some(binding) = self.iter.next_binding(shared)? {
            let new_env = bind(&self.env, self.var.clone(), binding);
            if eval_cond(self.sat, &new_env, shared)? == existential {
                return Ok(existential);
            }
        }
        Ok(!existential)
    }
}

/// Does `[[expr]](env)` have an item #m (0-based)? Re-streams and counts.
pub(crate) fn item_exists<'q>(
    expr: &'q Query,
    env: &Env<'q>,
    m: u64,
    shared: &Shared,
) -> Result<bool, StreamError> {
    shared.recompute();
    let mut c = build_query(expr, env, shared)?;
    let mut depth: i64 = 0;
    let mut seen: u64 = 0;
    while let Some(t) = c.pull()? {
        match t {
            Token::Open(_) => {
                if depth == 0 {
                    seen += 1;
                    if seen > m {
                        return Ok(true);
                    }
                }
                depth += 1;
            }
            Token::Close(_) => depth -= 1,
        }
    }
    Ok(false)
}
