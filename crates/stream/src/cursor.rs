//! The cursor core: one pull-based [`Cursor`] trait and the composable
//! node cursors every `xq_stream` entry point is built from.
//!
//! A cursor is a restartable pull iterator over a token stream. Each node
//! of the query plan becomes one cursor value — [`SliceCursor`] for raw
//! input spans, [`ElemCursor`] for element construction, [`SeqCursor`]
//! for concatenation, [`AxisStepCursor`] for axis steps, [`ForLoopCursor`]
//! for `for`/`let` loops, [`IfCursor`] for conditionals, [`ItemCursor`]
//! for the lazy "item `m` of `[[α]](env)`" handles of Theorem 4.5 — and
//! the pipeline builder ([`crate::pipeline`]) composes them 1:1 with the
//! query's AST. (XQ∼ has no set operators; [`SeqCursor`] is the only
//! polyadic combinator. The quantifier loops live in
//! [`QuantLoopCursor`](crate::buffer::QuantLoopCursor), which drives the
//! same source iteration with Boolean short-circuiting.)
//!
//! **Accounting is part of the contract.** Every cursor charges exactly
//! one pull against the shared budget per [`Cursor::pull`] call —
//! including exhausted cursors — and registers itself in the live-cursor
//! gauge for exactly its own lifetime. The `cursor_diff` suite proves the
//! composed pipeline pull- and peak-identical to the pre-refactor engine,
//! so the Theorem 4.5 space/time measurements carried over unchanged.

use crate::buffer::SourceIter;
use crate::pipeline::{build_query, eval_cond};
use crate::{StreamError, StreamStats};
use cv_xtree::{Axis, Label, NodeTest, Token};
use std::cell::Cell;
use std::rc::Rc;
use xq_core::ast::{Cond, Query, Var};

/// A boxed [`Cursor`] — the form the pipeline builder hands out and the
/// node cursors compose over.
pub type BoxCursor<'q> = Box<dyn Cursor<'q> + 'q>;

/// A pull-based stream of tokens: the one interface behind every
/// `xq_stream` entry point.
///
/// The contract, in the order the engine relies on it:
///
/// * [`pull`](Cursor::pull) returns the next [`Token`] of this cursor's
///   stream, `None` once exhausted (repeatable), or a [`StreamError`] —
///   and **charges exactly one unit of the pull budget per call**, even
///   when exhausted. Budget errors are therefore deterministic functions
///   of the pull sequence, which is what lets the differential suites pin
///   error points exactly.
/// * [`size_hint`](Cursor::size_hint) bounds the number of tokens still
///   to come, `(lower, Some(upper))` or `(lower, None)` when unbounded —
///   same discipline as [`Iterator::size_hint`]. Hints never affect
///   results; the buffering policy uses them opportunistically.
/// * [`fork`](Cursor::fork) clones the cursor *at its current position*
///   into an independent stream (clone-for-restart): forking a
///   freshly-built cursor yields a replayable copy of the whole stream.
///   Forks register as live cursors like any other; the engine itself
///   restarts by rebuilding from the query instead (cheaper and exactly
///   what Theorem 4.5's recomputation discipline charges for), so `fork`
///   exists for hand-composed pipelines and external consumers.
/// * [`kill`](Cursor::kill) decays the cursor to the exhausted stream,
///   releasing all held state (child cursors leave the live gauge at that
///   moment). A killed cursor still charges one pull per [`pull`](Cursor::pull) and
///   returns `None` — it is how the axis step abandons a base stream
///   mid-match without distorting the budget accounting.
pub trait Cursor<'q> {
    /// Pulls the next token, charging one pull against the budget.
    fn pull(&mut self) -> Result<Option<Token>, StreamError>;

    /// `(lower, upper)` bounds on the tokens still to come.
    fn size_hint(&self) -> (u64, Option<u64>) {
        (0, None)
    }

    /// Clones this cursor at its current position into an independent
    /// stream.
    fn fork(&self) -> BoxCursor<'q>;

    /// Decays to the exhausted stream, releasing held state. Subsequent
    /// pulls still charge (one per call) and return `None`.
    fn kill(&mut self);
}

/// Counters shared by every cursor of one pipeline run. `Rc<Cell<_>>`
/// because a pipeline is single-threaded by construction; the parallel
/// entry point gives each worker its own `Shared` and merges after.
#[derive(Clone)]
pub(crate) struct Shared {
    pulls: Rc<Cell<u64>>,
    live: Rc<Cell<u64>>,
    peak: Rc<Cell<u64>>,
    recomp: Rc<Cell<u64>>,
    buffered: Rc<Cell<u64>>,
    fallbacks: Rc<Cell<u64>>,
    buf_tokens: Rc<Cell<u64>>,
    buf_peak: Rc<Cell<u64>>,
    max_pulls: u64,
    /// Per-source token cap for the buffered fast path; 0 disables it.
    pub(crate) buffer_limit: usize,
}

impl Shared {
    pub(crate) fn new(max_pulls: u64, buffer_limit: usize) -> Shared {
        Shared {
            pulls: Rc::new(Cell::new(0)),
            live: Rc::new(Cell::new(0)),
            peak: Rc::new(Cell::new(0)),
            recomp: Rc::new(Cell::new(0)),
            buffered: Rc::new(Cell::new(0)),
            fallbacks: Rc::new(Cell::new(0)),
            buf_tokens: Rc::new(Cell::new(0)),
            buf_peak: Rc::new(Cell::new(0)),
            max_pulls,
            buffer_limit,
        }
    }

    /// Charges one pull against the budget.
    pub(crate) fn pull(&self) -> Result<(), StreamError> {
        self.pulls.set(self.pulls.get() + 1);
        if self.pulls.get() > self.max_pulls {
            return Err(StreamError::Budget);
        }
        Ok(())
    }

    fn alloc(&self) {
        self.live.set(self.live.get() + 1);
        if self.live.get() > self.peak.get() {
            self.peak.set(self.live.get());
        }
    }

    fn free(&self) {
        self.live.set(self.live.get() - 1);
    }

    /// Charges one re-streaming of a defining expression.
    pub(crate) fn recompute(&self) {
        self.recomp.set(self.recomp.get() + 1);
    }

    /// Records a buffering decision that held (see
    /// [`StreamStats::buffered_sources`]).
    pub(crate) fn count_buffered(&self) {
        self.buffered.set(self.buffered.get() + 1);
    }

    /// Records a buffering decision reverted to the lazy discipline.
    pub(crate) fn count_fallback(&self) {
        self.fallbacks.set(self.fallbacks.get() + 1);
    }

    /// `n` more tokens parked in a buffer (high-water mark tracked).
    pub(crate) fn buffer_tokens(&self, n: u64) {
        self.buf_tokens.set(self.buf_tokens.get() + n);
        if self.buf_tokens.get() > self.buf_peak.get() {
            self.buf_peak.set(self.buf_tokens.get());
        }
    }

    /// `n` buffered tokens released.
    pub(crate) fn unbuffer_tokens(&self, n: u64) {
        self.buf_tokens.set(self.buf_tokens.get() - n);
    }

    /// Snapshot of the counters as a [`StreamStats`] (tokens_out and
    /// workers are the caller's to fill in).
    pub(crate) fn snapshot(&self) -> StreamStats {
        StreamStats {
            tokens_out: 0,
            pulls: self.pulls.get(),
            recomputations: self.recomp.get(),
            peak_live_cursors: self.peak.get(),
            buffered_sources: self.buffered.get(),
            workers: 0,
            lazy_fallbacks: self.fallbacks.get(),
            peak_buffered_tokens: self.buf_peak.get(),
        }
    }
}

/// RAII registration of one cursor in the live-cursor gauge: allocated on
/// construction, released on drop. Every node cursor owns exactly one, so
/// [`StreamStats::peak_live_cursors`] counts cursors, not nodes of some
/// internal representation.
pub(crate) struct Meter {
    shared: Shared,
}

impl Meter {
    pub(crate) fn new(shared: &Shared) -> Meter {
        shared.alloc();
        Meter {
            shared: shared.clone(),
        }
    }

    /// Charges one pull.
    fn tick(&self) -> Result<(), StreamError> {
        self.shared.pull()
    }

    pub(crate) fn shared(&self) -> &Shared {
        &self.shared
    }
}

impl Clone for Meter {
    fn clone(&self) -> Meter {
        // A fork is a new live cursor.
        Meter::new(&self.shared)
    }
}

impl Drop for Meter {
    fn drop(&mut self) {
        self.shared.free();
    }
}

/// What a variable is bound to.
#[derive(Clone)]
pub(crate) enum Binding<'q> {
    /// A materialized token span (the input document, a buffered item, or
    /// a hoisted binding) — given data, not working memory.
    Input(Rc<[Token]>),
    /// Item `index` of `[[expr]](env)` — a lazy handle; referencing it
    /// re-streams the defining expression (Theorem 4.5's discipline).
    Lazy {
        expr: &'q Query,
        env: Env<'q>,
        index: u64,
    },
}

pub(crate) struct EnvNode<'q> {
    var: Var,
    binding: Binding<'q>,
    parent: Env<'q>,
}

/// The streaming environment: a persistent linked list of bindings
/// (cursors for one loop iteration share their prefix with every other
/// iteration by `Rc` bump).
pub(crate) type Env<'q> = Option<Rc<EnvNode<'q>>>;

pub(crate) fn bind<'q>(env: &Env<'q>, var: Var, binding: Binding<'q>) -> Env<'q> {
    Some(Rc::new(EnvNode {
        var,
        binding,
        parent: env.clone(),
    }))
}

pub(crate) fn lookup<'q>(env: &Env<'q>, v: &Var) -> Result<Binding<'q>, StreamError> {
    let mut cur = env;
    while let Some(node) = cur {
        if &node.var == v {
            return Ok(node.binding.clone());
        }
        cur = &node.parent;
    }
    Err(StreamError::UnboundVariable(v.name().to_string()))
}

// ---------------------------------------------------------------------
// Node cursors. Each mirrors one arm of the pre-refactor evaluator; the
// comments note the stream it produces, the struct fields are its state.
// ---------------------------------------------------------------------

/// The empty stream (`()` — and the terminal state other cursors decay
/// to). Pulls still charge, so exhausted probes count against the budget
/// like any other.
pub(crate) struct EmptyCursor {
    meter: Meter,
}

impl EmptyCursor {
    pub(crate) fn new(shared: &Shared) -> EmptyCursor {
        EmptyCursor {
            meter: Meter::new(shared),
        }
    }
}

impl<'q> Cursor<'q> for EmptyCursor {
    fn pull(&mut self) -> Result<Option<Token>, StreamError> {
        self.meter.tick()?;
        Ok(None)
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        (0, Some(0))
    }

    fn fork(&self) -> BoxCursor<'q> {
        Box::new(EmptyCursor {
            meter: self.meter.clone(),
        })
    }

    fn kill(&mut self) {}
}

/// A raw token slice — the input document, a subtree span of it, or a
/// buffered item. The only source cursor; both `Tree` and `ArenaDoc`
/// tokenize into it (the pipeline builder differs only in how the slice
/// is produced).
pub(crate) struct SliceCursor {
    meter: Meter,
    tokens: Rc<[Token]>,
    pos: usize,
}

impl SliceCursor {
    pub(crate) fn new(tokens: Rc<[Token]>, shared: &Shared) -> SliceCursor {
        SliceCursor {
            meter: Meter::new(shared),
            tokens,
            pos: 0,
        }
    }
}

impl<'q> Cursor<'q> for SliceCursor {
    fn pull(&mut self) -> Result<Option<Token>, StreamError> {
        self.meter.tick()?;
        if self.pos < self.tokens.len() {
            let t = self.tokens[self.pos].clone();
            self.pos += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        let left = (self.tokens.len() - self.pos) as u64;
        (left, Some(left))
    }

    fn fork(&self) -> BoxCursor<'q> {
        Box::new(SliceCursor {
            meter: self.meter.clone(),
            tokens: self.tokens.clone(),
            pos: self.pos,
        })
    }

    fn kill(&mut self) {
        self.tokens = Rc::from(&[][..]);
        self.pos = 0;
    }
}

/// Element construction: `⟨a⟩ body ⟨/a⟩`. Emits the open tag, streams the
/// body, emits the close tag, then decays to the exhausted state (the
/// body cursor is dropped the moment the close tag is produced).
pub(crate) struct ElemCursor<'q> {
    meter: Meter,
    tag: Label,
    opened: bool,
    body: Option<BoxCursor<'q>>,
}

impl<'q> ElemCursor<'q> {
    pub(crate) fn new(tag: Label, body: BoxCursor<'q>, shared: &Shared) -> ElemCursor<'q> {
        ElemCursor {
            meter: Meter::new(shared),
            tag,
            opened: false,
            body: Some(body),
        }
    }
}

impl<'q> Cursor<'q> for ElemCursor<'q> {
    fn pull(&mut self) -> Result<Option<Token>, StreamError> {
        self.meter.tick()?;
        if !self.opened {
            self.opened = true;
            return Ok(Some(Token::Open(self.tag.clone())));
        }
        if let Some(b) = &mut self.body {
            if let Some(t) = b.pull()? {
                return Ok(Some(t));
            }
            let t = Token::Close(self.tag.clone());
            self.body = None;
            return Ok(Some(t));
        }
        Ok(None)
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        match &self.body {
            Some(b) => {
                let (lo, hi) = b.size_hint();
                let wrap = if self.opened { 1 } else { 2 };
                (lo + wrap, hi.map(|h| h + wrap))
            }
            None => (0, Some(0)),
        }
    }

    fn fork(&self) -> BoxCursor<'q> {
        Box::new(ElemCursor {
            meter: self.meter.clone(),
            tag: self.tag.clone(),
            opened: self.opened,
            body: self.body.as_ref().map(|b| b.fork()),
        })
    }

    fn kill(&mut self) {
        self.opened = true;
        self.body = None;
    }
}

/// Concatenation: `α` then `β` — the stream combinator behind `Seq` (and
/// the closest thing XQ∼ has to a set operator; union-of-streams is
/// exactly concatenation under the list semantics).
pub(crate) struct SeqCursor<'q> {
    meter: Meter,
    cur: Option<BoxCursor<'q>>,
    rest: Option<(&'q Query, Env<'q>)>,
}

impl<'q> SeqCursor<'q> {
    pub(crate) fn new(
        cur: BoxCursor<'q>,
        rest: (&'q Query, Env<'q>),
        shared: &Shared,
    ) -> SeqCursor<'q> {
        SeqCursor {
            meter: Meter::new(shared),
            cur: Some(cur),
            rest: Some(rest),
        }
    }
}

impl<'q> Cursor<'q> for SeqCursor<'q> {
    fn pull(&mut self) -> Result<Option<Token>, StreamError> {
        self.meter.tick()?;
        let Some(cur) = self.cur.as_mut() else {
            return Ok(None);
        };
        loop {
            if let Some(t) = cur.pull()? {
                return Ok(Some(t));
            }
            match self.rest.take() {
                Some((q, env)) => {
                    *cur = build_query(q, &env, self.meter.shared())?;
                }
                None => return Ok(None),
            }
        }
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        let (lo, hi) = match &self.cur {
            Some(c) => c.size_hint(),
            None => (0, Some(0)),
        };
        match &self.rest {
            Some(_) => (lo, None),
            None => (lo, hi),
        }
    }

    fn fork(&self) -> BoxCursor<'q> {
        Box::new(SeqCursor {
            meter: self.meter.clone(),
            cur: self.cur.as_ref().map(|c| c.fork()),
            rest: self.rest.clone(),
        })
    }

    fn kill(&mut self) {
        self.cur = None;
        self.rest = None;
    }
}

/// Passes through item #`index` of the inner stream — the cursor form of
/// a lazy variable handle ("item `m` of `[[α]](env)`", Theorem 4.5).
pub(crate) struct ItemCursor<'q> {
    meter: Meter,
    inner: Option<BoxCursor<'q>>,
    index: u64,
    seen: u64,
    depth: i64,
    done: bool,
}

impl<'q> ItemCursor<'q> {
    pub(crate) fn new(inner: BoxCursor<'q>, index: u64, shared: &Shared) -> ItemCursor<'q> {
        ItemCursor {
            meter: Meter::new(shared),
            inner: Some(inner),
            index,
            seen: 0,
            depth: 0,
            done: false,
        }
    }
}

impl<'q> Cursor<'q> for ItemCursor<'q> {
    fn pull(&mut self) -> Result<Option<Token>, StreamError> {
        self.meter.tick()?;
        if self.done {
            return Ok(None);
        }
        let inner = self.inner.as_mut().expect("inner present while not done");
        loop {
            let Some(t) = inner.pull()? else {
                self.done = true;
                return Ok(None);
            };
            match &t {
                Token::Open(_) => {
                    if self.depth == 0 {
                        self.seen += 1;
                    }
                    self.depth += 1;
                }
                Token::Close(_) => {
                    self.depth -= 1;
                }
            }
            // 1-based item number of the token just processed.
            if self.seen == self.index + 1 {
                if self.depth == 0 {
                    self.done = true; // closing token of our item
                }
                return Ok(Some(t));
            }
            if self.seen > self.index + 1 {
                self.done = true;
                return Ok(None);
            }
        }
    }

    fn fork(&self) -> BoxCursor<'q> {
        Box::new(ItemCursor {
            meter: self.meter.clone(),
            inner: self.inner.as_ref().map(|c| c.fork()),
            index: self.index,
            seen: self.seen,
            depth: self.depth,
            done: self.done,
        })
    }

    fn kill(&mut self) {
        self.done = true;
        self.inner = None;
    }
}

/// What an axis step ranges over: a re-streamable base. The engine always
/// steps over a query (rebuilt per match — the recomputation trade); a
/// hand-composed pipeline can step straight over an input span.
#[derive(Clone)]
pub(crate) enum StepBase<'q> {
    Query(&'q Query, Env<'q>),
    Input(Rc<[Token]>),
}

impl<'q> StepBase<'q> {
    /// Builds a fresh cursor over the base (one re-streaming, charged).
    fn restream(&self, shared: &Shared) -> Result<BoxCursor<'q>, StreamError> {
        shared.recompute();
        match self {
            StepBase::Query(q, env) => build_query(q, env, shared),
            StepBase::Input(tokens) => Ok(Box::new(SliceCursor::new(tokens.clone(), shared))),
        }
    }
}

/// Axis step over all items of a re-streamable base: for each match
/// index, the base is re-streamed and a [`MatchEmitter`] copies out the
/// subtree of match #index; when a restart finds no further match the
/// step is exhausted. This is the token-counter implementation of
/// `child`/`descendant`/`self`/`descendant-or-self` from the paper —
/// depth counters on the tag stream, no trees.
pub(crate) struct AxisStepCursor<'q> {
    meter: Meter,
    base: StepBase<'q>,
    axis: Axis,
    test: NodeTest,
    match_idx: u64,
    sub: Option<MatchEmitter<'q>>,
    exhausted: bool,
}

impl<'q> AxisStepCursor<'q> {
    pub(crate) fn new(
        base: StepBase<'q>,
        axis: Axis,
        test: NodeTest,
        shared: &Shared,
    ) -> AxisStepCursor<'q> {
        AxisStepCursor {
            meter: Meter::new(shared),
            base,
            axis,
            test,
            match_idx: 0,
            sub: None,
            exhausted: false,
        }
    }
}

impl<'q> Cursor<'q> for AxisStepCursor<'q> {
    fn pull(&mut self) -> Result<Option<Token>, StreamError> {
        self.meter.tick()?;
        loop {
            if self.exhausted {
                return Ok(None);
            }
            if self.sub.is_none() {
                let inner = self.base.restream(self.meter.shared())?;
                self.sub = Some(MatchEmitter::new(
                    inner,
                    self.axis,
                    self.test.clone(),
                    self.match_idx,
                ));
            }
            let emitter = self.sub.as_mut().expect("just set");
            match emitter.next()? {
                Some(t) => return Ok(Some(t)),
                None => {
                    let found = emitter.found;
                    self.sub = None;
                    if found {
                        self.match_idx += 1;
                    } else {
                        self.exhausted = true;
                    }
                }
            }
        }
    }

    fn fork(&self) -> BoxCursor<'q> {
        Box::new(AxisStepCursor {
            meter: self.meter.clone(),
            base: self.base.clone(),
            axis: self.axis,
            test: self.test.clone(),
            match_idx: self.match_idx,
            sub: self.sub.as_ref().map(MatchEmitter::fork),
            exhausted: self.exhausted,
        })
    }

    fn kill(&mut self) {
        self.exhausted = true;
        self.sub = None;
    }
}

/// Streams the subtree of match #`target` within an inner cursor. Not a
/// cursor itself: it has no meter and no budget charge of its own — every
/// pull it makes is the inner cursor's — so the axis step's cost is
/// exactly the base re-streaming cost, as in the paper's operator
/// algebra.
pub(crate) struct MatchEmitter<'q> {
    inner: BoxCursor<'q>,
    axis: Axis,
    test: NodeTest,
    target: u64,
    matches_seen: u64,
    depth: i64,
    emitting_from: Option<i64>,
    found: bool,
}

impl<'q> MatchEmitter<'q> {
    fn new(inner: BoxCursor<'q>, axis: Axis, test: NodeTest, target: u64) -> MatchEmitter<'q> {
        MatchEmitter {
            inner,
            axis,
            test,
            target,
            matches_seen: 0,
            depth: 0,
            emitting_from: None,
            found: false,
        }
    }

    fn fork(&self) -> MatchEmitter<'q> {
        MatchEmitter {
            inner: self.inner.fork(),
            axis: self.axis,
            test: self.test.clone(),
            target: self.target,
            matches_seen: self.matches_seen,
            depth: self.depth,
            emitting_from: self.emitting_from,
            found: self.found,
        }
    }

    /// Whether an `Open` that raised the depth to `d` starts a node
    /// selected by the axis (items are at depth 1).
    fn selects(&self, d: i64) -> bool {
        match self.axis {
            Axis::SelfAxis => d == 1,
            Axis::Child => d == 2,
            Axis::Descendant => d >= 2,
            Axis::DescendantOrSelf => d >= 1,
        }
    }

    fn next(&mut self) -> Result<Option<Token>, StreamError> {
        loop {
            let Some(t) = self.inner.pull()? else {
                return Ok(None);
            };
            match &t {
                Token::Open(label) => {
                    self.depth += 1;
                    if self.emitting_from.is_none()
                        && self.selects(self.depth)
                        && self.test.matches(label)
                    {
                        if self.matches_seen == self.target {
                            self.emitting_from = Some(self.depth);
                            self.found = true;
                        }
                        self.matches_seen += 1;
                    }
                    if self.emitting_from.is_some() {
                        return Ok(Some(t));
                    }
                }
                Token::Close(_) => {
                    let emit = self.emitting_from.is_some();
                    let finished = self.emitting_from == Some(self.depth);
                    self.depth -= 1;
                    if emit {
                        if finished {
                            // Final close of this match: abandon the rest
                            // of the base stream (its held state leaves
                            // the live gauge now; the next probe charges
                            // the killed cursor's one pull) and emit.
                            self.emitting_from = None;
                            self.inner.kill();
                            return Ok(Some(t));
                        }
                        return Ok(Some(t));
                    }
                }
            }
        }
    }
}

/// `for var in source return body` (and `let`, its single-item special
/// case), item by item: a [`SourceIter`] yields the per-item bindings —
/// buffered token spans when the Budget-driven policy engaged, lazy
/// handles otherwise — and the body is rebuilt per binding.
pub(crate) struct ForLoopCursor<'q> {
    meter: Meter,
    var: Var,
    source: &'q Query,
    body: &'q Query,
    env: Env<'q>,
    iter: Option<SourceIter<'q>>,
    cur: Option<BoxCursor<'q>>,
    exhausted: bool,
}

impl<'q> ForLoopCursor<'q> {
    pub(crate) fn new(
        var: Var,
        source: &'q Query,
        body: &'q Query,
        env: Env<'q>,
        shared: &Shared,
    ) -> ForLoopCursor<'q> {
        ForLoopCursor {
            meter: Meter::new(shared),
            var,
            source,
            body,
            env,
            iter: None,
            cur: None,
            exhausted: false,
        }
    }
}

impl<'q> Cursor<'q> for ForLoopCursor<'q> {
    fn pull(&mut self) -> Result<Option<Token>, StreamError> {
        self.meter.tick()?;
        let shared = self.meter.shared().clone();
        loop {
            if self.exhausted {
                return Ok(None);
            }
            if self.cur.is_none() {
                if self.iter.is_none() {
                    self.iter = Some(SourceIter::new(self.source, &self.env, &shared)?);
                }
                let next = self
                    .iter
                    .as_mut()
                    .expect("just set")
                    .next_binding(&shared)?;
                let Some(binding) = next else {
                    self.exhausted = true;
                    return Ok(None);
                };
                let new_env = bind(&self.env, self.var.clone(), binding);
                self.cur = Some(build_query(self.body, &new_env, &shared)?);
            }
            if let Some(t) = self.cur.as_mut().expect("just set").pull()? {
                return Ok(Some(t));
            }
            self.cur = None;
        }
    }

    fn fork(&self) -> BoxCursor<'q> {
        Box::new(ForLoopCursor {
            meter: self.meter.clone(),
            var: self.var.clone(),
            source: self.source,
            body: self.body,
            env: self.env.clone(),
            iter: self.iter.as_ref().map(SourceIter::fork),
            cur: self.cur.as_ref().map(|c| c.fork()),
            exhausted: self.exhausted,
        })
    }

    fn kill(&mut self) {
        self.exhausted = true;
        self.iter = None;
        self.cur = None;
    }
}

/// `if c then body` — the condition is evaluated on the first pull (via
/// [`eval_cond`], which builds its own probe cursors against this same
/// budget), after which the cursor either streams the body or is dead.
pub(crate) struct IfCursor<'q> {
    meter: Meter,
    cond: &'q Cond,
    body: &'q Query,
    env: Env<'q>,
    decided: Option<BoxCursor<'q>>,
    dead: bool,
}

impl<'q> IfCursor<'q> {
    pub(crate) fn new(
        cond: &'q Cond,
        body: &'q Query,
        env: Env<'q>,
        shared: &Shared,
    ) -> IfCursor<'q> {
        IfCursor {
            meter: Meter::new(shared),
            cond,
            body,
            env,
            decided: None,
            dead: false,
        }
    }
}

impl<'q> Cursor<'q> for IfCursor<'q> {
    fn pull(&mut self) -> Result<Option<Token>, StreamError> {
        self.meter.tick()?;
        if self.dead {
            return Ok(None);
        }
        if self.decided.is_none() {
            let shared = self.meter.shared().clone();
            if eval_cond(self.cond, &self.env, &shared)? {
                self.decided = Some(build_query(self.body, &self.env, &shared)?);
            } else {
                self.dead = true;
                return Ok(None);
            }
        }
        self.decided.as_mut().expect("just set").pull()
    }

    fn fork(&self) -> BoxCursor<'q> {
        Box::new(IfCursor {
            meter: self.meter.clone(),
            cond: self.cond,
            body: self.body,
            env: self.env.clone(),
            decided: self.decided.as_ref().map(|c| c.fork()),
            dead: self.dead,
        })
    }

    fn kill(&mut self) {
        self.dead = true;
        self.decided = None;
    }
}
