//! Degradation under pressure: write-side backpressure and idle-timeout
//! reaping, observed through live sockets.
//!
//! * A connection that requests faster than it reads gets **corked**:
//!   once its write buffer passes the high-water mark the reactor stops
//!   reading it (and stops handling its already-buffered lines), so the
//!   slow reader can't force unbounded buffering — and other
//!   connections keep getting served while it's corked. Uncorking is
//!   automatic as the client drains, and nothing is lost: every
//!   pipelined query is still answered exactly once, in order.
//! * A connection with no traffic for the idle timeout is closed by the
//!   timer wheel; one that keeps talking is not.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cv_xtree::{parse_tree, ArenaDoc};
use xq_server::{Server, ServerConfig};

/// A document whose `$root/*` result is ~80 KiB — big enough that a few
/// hundred pipelined responses overflow any kernel socket buffering and
/// force the server's own write buffer to absorb the difference.
fn wide_docs(children: usize) -> HashMap<String, Arc<ArenaDoc>> {
    let mut xml = String::with_capacity(children * 4 + 16);
    xml.push_str("<r>");
    for _ in 0..children {
        xml.push_str("<a/>");
    }
    xml.push_str("</r>");
    let tree = parse_tree(&xml).unwrap();
    let mut m = HashMap::new();
    m.insert("wide".to_string(), Arc::new(ArenaDoc::from_tree(&tree)));
    m
}

fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn send_queries(stream: &TcpStream, doc: &str, ids: std::ops::RangeInclusive<u64>) {
    let mut w = stream;
    for id in ids {
        let line = format!(r#"{{"op":"query","id":{id},"doc":"{doc}","query":"$root/*"}}"#);
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
    }
    w.flush().unwrap();
}

#[test]
fn backpressure_corks_a_slow_reader_without_losing_responses() {
    let server = Server::start(ServerConfig {
        workers: 2,
        docs: wide_docs(20_000),
        // Tiny water marks so the cork engages as soon as the kernel
        // stops absorbing our ~80 KiB responses.
        write_high_water: 4 * 1024,
        write_low_water: 1024,
        ..ServerConfig::default()
    })
    .unwrap();
    let stats = server.stats();

    // Wave 1: ~24 MiB of responses pipelined by a client that reads
    // nothing. Loopback absorbs a few MiB at most; the rest lands in
    // the server's write buffer and must trip the high-water mark.
    let slow = TcpStream::connect(server.addr()).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    send_queries(&slow, "wide", 1..=300);
    // The reactor admits wave 1 far faster than the pool can answer it,
    // so the cork engages only as completions pile up. It may engage
    // and release a few times while kernel socket buffers autotune;
    // once all 300 responses (~24 MiB) are written, though, the ~20 MiB
    // the kernel can't hold sits in the server's write buffer and the
    // cork is stuck until the client deigns to read.
    wait_for("wave 1 fully answered and the cork engaged", || {
        stats.served.load(Relaxed) == 300 && stats.backpressured.load(Relaxed) > 0
    });
    assert!(
        stats.peak_write_buffer.load(Relaxed) as usize >= 4 * 1024,
        "cork implies the buffer crossed the mark"
    );

    // Wave 2 arrives while corked: the reactor must not read it — the
    // whole point is that a slow reader stops generating new work.
    send_queries(&slow, "wide", 301..=350);

    // Fairness: a well-behaved connection is served while the slow one
    // is corked; the reactor is parked on readiness, not on the cork.
    let brisk = TcpStream::connect(server.addr()).expect("connect");
    brisk
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    send_queries(&brisk, "wide", 9001..=9001);
    let mut brisk_r = BufReader::new(&brisk);
    let mut line = String::new();
    brisk_r.read_line(&mut line).unwrap();
    let frame = xq_server::Frame::parse(line.trim_end()).unwrap();
    assert_eq!(frame.get_uint("id"), Some(9001));
    assert_eq!(frame.get_bool("ok"), Some(true));

    // With the cork stuck, wave 2 stays deferred: nothing beyond wave 1
    // and brisk's single query may be served while the client reads
    // nothing.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        stats.served.load(Relaxed),
        301,
        "corked connection must not generate new work"
    );

    // Now drain: reading uncorks the connection, the deferred lines get
    // handled, and all 350 answers arrive in order with nothing lost or
    // duplicated.
    let mut slow_r = BufReader::new(&slow);
    for id in 1..=350u64 {
        let mut line = String::new();
        let n = slow_r.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed before id {id} answered");
        let frame = xq_server::Frame::parse(line.trim_end()).unwrap();
        assert_eq!(frame.get_uint("id"), Some(id), "order broken at {line:?}");
        assert_eq!(frame.get_bool("ok"), Some(true), "failed: {line:?}");
    }
    assert_eq!(stats.served.load(Relaxed), 351);
    wait_for("gauges settle", || {
        server.queue_depth() == 0 && server.admitted_depth() == 0 && server.in_flight() == 0
    });
    drop(slow_r);
    drop(slow);
    drop(brisk_r);
    drop(brisk);
    let mut server = server;
    server.shutdown();
}

#[test]
fn idle_timeout_reaps_only_quiet_connections() {
    let server = Server::start(ServerConfig {
        workers: 1,
        docs: wide_docs(2),
        idle_timeout: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    })
    .unwrap();
    let stats = server.stats();

    let quiet = TcpStream::connect(server.addr()).expect("connect");
    quiet
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let chatty = TcpStream::connect(server.addr()).expect("connect");
    chatty
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut chatty_r = BufReader::new(&chatty);

    // The chatty connection heartbeats well inside the timeout while the
    // quiet one says nothing; only the quiet one may be reaped.
    let opened = Instant::now();
    for id in 1..=8u64 {
        send_queries(&chatty, "wide", id..=id);
        let mut line = String::new();
        chatty_r.read_line(&mut line).unwrap();
        let frame = xq_server::Frame::parse(line.trim_end()).unwrap();
        assert_eq!(frame.get_uint("id"), Some(id));
        assert_eq!(frame.get_bool("ok"), Some(true));
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        opened.elapsed() >= Duration::from_millis(800),
        "heartbeats must outlive the idle timeout for the test to mean anything"
    );

    // The quiet connection observed EOF (a clean server-side close).
    let mut buf = [0u8; 1];
    match (&quiet).read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} bytes on the idle connection"),
        // A reaped connection may also surface as a reset, depending on
        // timing; either way it is closed, which is what's asserted.
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected EOF on the idle connection, got {e}"),
    }
    assert!(stats.idle_closed.load(Relaxed) >= 1);

    // Once the chatty connection goes quiet it gets reaped too.
    let mut line = String::new();
    match chatty_r.read_line(&mut line) {
        Ok(0) => {}
        Ok(_) => panic!("unexpected frame after going quiet: {line:?}"),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected EOF after going quiet, got {e}"),
    }
    wait_for("both idle closes counted", || {
        stats.idle_closed.load(Relaxed) == 2
    });
    let mut server = server;
    server.shutdown();
}
