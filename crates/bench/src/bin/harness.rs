//! The experiment harness: regenerates every EXPERIMENTS.md table
//! (paper claim vs measured) in one run. Intended use:
//!
//! ```text
//! cargo run --release -p xq_bench --bin harness
//! cargo run --release -p xq_bench --bin harness -- --only t16 --json BENCH_T16.json
//! cargo run --release -p xq_bench --bin harness -- --only t17 --json BENCH_T17.json
//! cargo run --release -p xq_bench --bin harness -- --only t18 --json BENCH_T18.json
//! cargo run --release -p xq_bench --bin harness -- --only t19 --json BENCH_T19.json
//! cargo run --release -p xq_bench --bin harness -- --only t20 --json BENCH_T20.json
//! cargo run --release -p xq_bench --bin harness -- --only t21 --json BENCH_T21.json
//! cargo run --release -p xq_bench --bin harness -- --only t22 --json BENCH_T22.json
//! ```
//!
//! `--only tN` runs a single table; `--json FILE` additionally writes the
//! machine-readable payload of the selected measurement table — T17
//! (planner coverage) under `--only t17`, T18 (VM vs interpreter) under
//! `--only t18`, T19 (network serving under load) under `--only t19`,
//! T20 (connection scaling on the reactor) under `--only t20`,
//! T21 (chaos soak under seeded fault injection) under `--only t21`,
//! T22 (cursor core vs the frozen pre-refactor streaming engine) under
//! `--only t22`, T16 (parallel scaling) otherwise — the CI
//! perf-trajectory artifacts.

use cv_monad::Budget;
use cv_xtree::{ArenaDoc, TreeGen};
use std::time::Instant;
use xq_bench::{bib_document, books_query, doubling_query, let_chain_query};
use xq_compfree::{witness_boolean, NestedLoopEngine};
use xq_core::{eval_query, ma_invariant_holds, ma_query, Var};
use xq_logicprog::{lp_succeeds, ma_to_lp};
use xq_paths::{eval_paths, figure_5_query, prove, unit_input};
use xq_reductions as red;
use xq_reductions::{EqFlavor, NtmReduction};
use xq_rewrite::eliminate_composition;

fn header(title: &str) {
    println!("\n## {title}\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_path = Some(it.next().expect("--json needs a file path").clone()),
            "--only" => only = Some(it.next().expect("--only needs a table name").to_lowercase()),
            other => {
                panic!("unknown harness argument {other:?} (expected --json FILE / --only tN)")
            }
        }
    }
    if let Some(o) = &only {
        // A typo must fail loudly, not silently run zero tables.
        let known: Vec<String> = (1..=22).map(|i| format!("t{i}")).collect();
        assert!(
            known.contains(o),
            "--only {o:?} is not a known table (expected one of t1..t22)"
        );
    }

    println!("# Koch (PODS 2005) reproduction — experiment harness");

    let tables: [(&str, fn()); 15] = [
        ("t1", t1_ntm_reduction),
        ("t2", t2_atm_reduction),
        ("t3", t3_blowup),
        ("t4", t4_streaming),
        ("t5", t5_qbf),
        ("t6", t6_three_col),
        ("t7", t7_translations),
        ("t8", t8_path_semantics),
        ("t9", t9_data_complexity),
        ("t10", t10_rewrite),
        ("t11", t11_derived),
        ("t12", t12_logicprog),
        ("t13", t13_relalg),
        ("t14", t14_optimizer),
        ("t15", t15_arena),
    ];
    for (name, run) in tables {
        if only.as_deref().is_none_or(|o| o == name) {
            run();
        }
    }
    // T16/T17/T18 run last and carry the JSON payloads (`--only t17`
    // writes the T17 coverage JSON, `--only t18` the T18 VM comparison;
    // any other selection that includes T16 writes the T16 scaling JSON).
    if only.as_deref().is_none_or(|o| o == "t16") {
        let rows = t16_parallel();
        if let Some(path) = &json_path {
            std::fs::write(path, t16_json(&rows)).expect("write --json file");
            println!("\nT16 rows written to {path}");
        }
    }
    if only.as_deref().is_none_or(|o| o == "t17") {
        let cov = t17_coverage();
        if only.as_deref() == Some("t17") {
            if let Some(path) = &json_path {
                std::fs::write(path, t17_json(&cov)).expect("write --json file");
                println!("\nT17 rows written to {path}");
            }
        }
    }
    if only.as_deref().is_none_or(|o| o == "t18") {
        let rows = t18_vm();
        if only.as_deref() == Some("t18") {
            if let Some(path) = &json_path {
                std::fs::write(path, t18_json(&rows)).expect("write --json file");
                println!("\nT18 rows written to {path}");
            }
        }
    }
    if only.as_deref().is_none_or(|o| o == "t19") {
        let rows = t19_serving();
        if only.as_deref() == Some("t19") {
            if let Some(path) = &json_path {
                std::fs::write(path, t19_json(&rows)).expect("write --json file");
                println!("\nT19 rows written to {path}");
            }
        }
    }
    if only.as_deref().is_none_or(|o| o == "t20") {
        let rows = t20_connection_scaling();
        if only.as_deref() == Some("t20") {
            if let Some(path) = &json_path {
                std::fs::write(path, t20_json(&rows)).expect("write --json file");
                println!("\nT20 rows written to {path}");
            }
        }
    }
    if only.as_deref().is_none_or(|o| o == "t21") {
        let rows = t21_chaos();
        if only.as_deref() == Some("t21") {
            if let Some(path) = &json_path {
                std::fs::write(path, t21_json(&rows)).expect("write --json file");
                println!("\nT21 rows written to {path}");
            }
        }
    }
    if only.as_deref().is_none_or(|o| o == "t22") {
        let rows = t22_cursor();
        if only.as_deref() == Some("t22") {
            if let Some(path) = &json_path {
                std::fs::write(path, t22_json(&rows)).expect("write --json file");
                println!("\nT22 rows written to {path}");
            }
        }
    }
    if json_path.is_some()
        && !matches!(
            only.as_deref(),
            None | Some("t16")
                | Some("t17")
                | Some("t18")
                | Some("t19")
                | Some("t20")
                | Some("t21")
                | Some("t22")
        )
    {
        panic!("--json requires T16..T22 to run (drop --only or use --only t16/.../t22)");
    }

    println!("\nAll requested experiment tables regenerated.");
}

/// One T17 measurement: planner vs PR 4 baseline coverage on one corpus
/// document.
struct T17Row {
    doc_seed: u64,
    nodes: usize,
    queries: usize,
    /// Queries the PR 4 `outer_for_split` path would have parallelized.
    baseline: usize,
    /// Queries the `xq_core::plan` planner parallelizes.
    planner: usize,
}

/// The T17 merge-datapoint timings (µs): the retired
/// `resolve_tokens → forest_from_tokens` merge vs the `IToken` splice.
struct T17Merge {
    tokens: usize,
    reparse_us: f64,
    splice_us: f64,
}

struct T17Coverage {
    rows: Vec<T17Row>,
    merge: T17Merge,
}

/// T17 — parallel-path coverage of the random-query corpus: which
/// fraction of deterministic random queries (the `par_diff` grammar,
/// fixed seed stream) the parallel layer shards, before (PR 4's
/// `outer_for_split` + `$root`-chain resolution) vs after (the
/// `xq_core::plan` planner: `Seq` branches, nested `for`s, hoisted
/// `let`s, `where`-filtered sources). Every planner-engaged query is
/// verified byte-identical to sequential at 4 threads as it is counted,
/// so the coverage number is also a correctness sweep.
fn t17_coverage() -> T17Coverage {
    use xq_core::{eval_query_par, outer_for_split, resolve_node_source, ParPlan, Threads};

    header("T17  Parallel planner coverage  (xq_core::plan vs PR 4 outer_for_split)");
    let corpus = xq_bench::coverage_corpus(256);
    println!(
        "Corpus: {} deterministic random queries (seeded stream; \
         regenerated identically every run).\n",
        corpus.len()
    );
    println!("| doc (seed) | nodes | queries | PR4 outer-for engaged | planner engaged | coverage before → after |");
    println!("|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    let (mut base_total, mut plan_total) = (0usize, 0usize);
    for seed in 0..3u64 {
        let mut g = TreeGen::new(seed);
        let tree = cv_xtree::random_tree(&mut g, 30, &["a", "b", "k"]);
        let doc = ArenaDoc::from_tree(&tree);
        let budget = xq_core::Budget::default().with_threads(Threads::N(4));
        let (mut baseline, mut planner) = (0usize, 0usize);
        for q in &corpus {
            if outer_for_split(q)
                .and_then(|(_, _, s, _)| resolve_node_source(&doc, s))
                .is_some_and(|nodes| nodes.len() >= 2)
            {
                baseline += 1;
            }
            if ParPlan::of(q, &doc, budget.clone()).engages() {
                planner += 1;
                // Trust, then verify: the counted query must be
                // byte-identical to sequential on this document.
                let par = eval_query_par(q, &doc, budget.clone());
                let seq = xq_core::eval_query(q, &tree);
                match (par, seq) {
                    (Ok((p, stats)), Ok(s)) => {
                        assert!(stats.parallelized, "engaged plan must parallelize: {q}");
                        let render = |ts: &[cv_xtree::Tree]| -> String {
                            ts.iter().map(|t| t.to_xml()).collect()
                        };
                        assert_eq!(render(&p), render(&s), "coverage sweep diverged on {q}");
                    }
                    // Per-worker budgets are fresh, so parallel may outlive
                    // a sequential budget exhaustion (the documented
                    // monotone direction).
                    (_, Err(xq_core::XqError::Budget { .. })) => {}
                    (Err(p), Err(s)) => assert_eq!(p, s, "error mismatch on {q}"),
                    (p, s) => panic!("outcome mismatch on {q}: par {p:?} vs seq {s:?}"),
                }
            }
        }
        println!(
            "| {seed} | {} | {} | {baseline} | {planner} | {:.0}% → {:.0}% |",
            doc.len(),
            corpus.len(),
            100.0 * baseline as f64 / corpus.len() as f64,
            100.0 * planner as f64 / corpus.len() as f64,
        );
        base_total += baseline;
        plan_total += planner;
        rows.push(T17Row {
            doc_seed: seed,
            nodes: doc.len(),
            queries: corpus.len(),
            baseline,
            planner,
        });
    }
    let pairs = corpus.len() * rows.len();
    println!(
        "\nOverall: {base_total}/{pairs} query-document pairs parallelized before \
         ({:.0}%), {plan_total}/{pairs} after ({:.0}%).",
        100.0 * base_total as f64 / pairs as f64,
        100.0 * plan_total as f64 / pairs as f64,
    );

    // The merge datapoint: the retired per-chunk `resolve_tokens` →
    // `forest_from_tokens` rebuild vs the single `forest_from_itokens`
    // splice pass, on a large worker-shaped result buffer.
    let forest_doc = cv_xtree::DoublingFamily::Wide.arena(12);
    let itokens: Vec<cv_xtree::IToken> = {
        let toks = forest_doc.tokens();
        let one = cv_xtree::intern_tokens(&toks);
        // Splice of 4 per-worker buffers, as a 4-thread merge would see.
        let mut all = Vec::with_capacity(4 * one.len());
        for _ in 0..4 {
            all.extend_from_slice(&one);
        }
        all
    };
    let reparse_us = time_us(10, || {
        let tokens = cv_xtree::resolve_tokens(&itokens);
        std::hint::black_box(cv_xtree::Tree::forest_from_tokens(&tokens).unwrap());
    });
    let splice_us = time_us(10, || {
        std::hint::black_box(cv_xtree::forest_from_itokens(&itokens).unwrap());
    });
    println!(
        "\nMerge of a {}-token spliced result: resolve+reparse {reparse_us:.1} µs \
         vs IToken splice {splice_us:.1} µs — {:.2}x (the intermediate Vec<Token> \
         is gone from the merge path).",
        itokens.len(),
        reparse_us / splice_us
    );

    // The shared-root datapoint: the full-tree materialization each
    // worker used to repeat when the body mentioned $root. At W workers
    // the old path paid W of these per query; the planner builds one.
    let big = cv_xtree::DoublingFamily::Binary.arena(11);
    let to_tree_us = time_us(5, || {
        std::hint::black_box(big.to_tree());
    });
    println!(
        "Shared $root build (binary n=11, {} nodes): {to_tree_us:.1} µs per \
         materialization — a 4-worker query with a $root-referencing body \
         previously paid 4x this, now 1x (Tree is Arc-backed; workers clone \
         the one build).",
        big.len()
    );
    println!("\nShape: the planner strictly widens the parallelizable fraction — every outer-for query still shards, and Seq/nested/let/filtered shapes are new coverage; the per-query verification makes this table a correctness sweep too.");
    T17Coverage {
        rows,
        merge: T17Merge {
            tokens: itokens.len(),
            reparse_us,
            splice_us,
        },
    }
}

/// Renders the T17 coverage as the `--json` payload (hand-rolled: the
/// workspace is offline, no serde).
fn t17_json(cov: &T17Coverage) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"table\": \"T17\",\n");
    out.push_str(&format!("  \"host_threads\": {host},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in cov.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"doc_seed\": {}, \"nodes\": {}, \"queries\": {}, \
             \"baseline_engaged\": {}, \"planner_engaged\": {}}}{}\n",
            r.doc_seed,
            r.nodes,
            r.queries,
            r.baseline,
            r.planner,
            if i + 1 == cov.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"merge\": {{\"tokens\": {}, \"reparse_us\": {:.1}, \"splice_us\": {:.1}}}\n",
        cov.merge.tokens, cov.merge.reparse_us, cov.merge.splice_us
    ));
    out.push_str("}\n");
    out
}

/// One T16 measurement: a doubling-family workload at a thread count.
struct T16Row {
    family: String,
    n: u32,
    nodes: u64,
    outer_items: usize,
    threads: usize,
    eval_us: f64,
    stream_us: f64,
}

/// T16 — data-parallel evaluation over the arena store (`xq_core::par`,
/// `stream_query_arena_par`): the cross-join `for`-nest workloads at
/// 1/2/4 worker threads, plus the indexed-vs-linear `Env::lookup`
/// contrast and the `QueryService` batch shape.
fn t16_parallel() -> Vec<T16Row> {
    use xq_core::{eval_query_par, Threads};

    header("T16  Data-parallel evaluation  (xq_core::par, stream_query_arena_par)");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Host parallelism: {host} hardware thread(s). Speedups are \
         hardware-bound — on a single-core host the multi-thread rows \
         measure sharding overhead, not speedup.\n"
    );

    println!("| family (n) | nodes | outer items | threads | eval cross-join (µs) | stream emit (µs) | eval speedup vs 1T | stream speedup vs 1T |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    for (family, n) in [
        (cv_xtree::DoublingFamily::Binary, 11u32),
        (cv_xtree::DoublingFamily::Wide, 12),
        (cv_xtree::DoublingFamily::Comb, 10),
    ] {
        let doc = family.arena(n);
        let q = xq_bench::par_workload(family);
        let qs = xq_bench::stream_workload(family);
        let outer_items = xq_core::outer_for_split(&q)
            .and_then(|(_, _, s, _)| xq_core::resolve_node_source(&doc, s))
            .map_or(0, |nodes| nodes.len());
        let (mut eval_base, mut stream_base) = (0.0, 0.0);
        for threads in [1usize, 2, 4] {
            // The cross-join runs ~|items|·|doc| steps — far past the
            // default caps, which exist to stop runaway blowups, not
            // deliberate ones.
            let budget = xq_core::Budget {
                max_steps: u64::MAX,
                max_items: u64::MAX,
                threads: Threads::N(threads),
                ..xq_core::Budget::default()
            };
            let eval_us = time_us(2, || {
                eval_query_par(&q, &doc, budget.clone()).unwrap();
            });
            let stream_us = time_us(2, || {
                xq_stream::stream_query_arena_par(
                    &qs,
                    &doc,
                    u64::MAX,
                    xq_stream::DEFAULT_BUFFER_LIMIT,
                    threads,
                )
                .unwrap();
            });
            if threads == 1 {
                eval_base = eval_us;
                stream_base = stream_us;
            }
            println!(
                "| {family} ({n}) | {} | {outer_items} | {threads} | {eval_us:.1} | {stream_us:.1} | {:.2}x | {:.2}x |",
                family.size(n),
                eval_base / eval_us,
                stream_base / stream_us
            );
            rows.push(T16Row {
                family: family.to_string(),
                n,
                nodes: family.size(n),
                outer_items,
                threads,
                eval_us,
                stream_us,
            });
        }
    }

    // The Env::lookup satellite: indexed vs linear on the deep-nest
    // environment (ENV_NEST_DEPTH live bindings, outermost var probed).
    let depth = xq_bench::ENV_NEST_DEPTH;
    let mut env = xq_core::Env::new();
    env.bind(Var::root(), cv_xtree::Tree::leaf("doc"));
    for i in 0..depth {
        env.bind(Var::new(format!("v{i}")), cv_xtree::Tree::leaf("x"));
    }
    let root = Var::root();
    let probes = 1000;
    let indexed_us = time_us(200, || {
        for _ in 0..probes {
            std::hint::black_box(env.lookup(&root).is_some());
        }
    });
    let linear_us = time_us(200, || {
        for _ in 0..probes {
            std::hint::black_box(env.lookup_linear(&root).is_some());
        }
    });
    println!(
        "\nEnv::lookup at nest depth {depth} ({probes} probes): indexed {indexed_us:.1} µs \
         vs linear scan {linear_us:.1} µs — {:.1}x",
        linear_us / indexed_us
    );

    // The QueryService batch shape: one pool, a mixed batch, results in
    // submission order.
    let docs: Vec<std::sync::Arc<ArenaDoc>> = (0..4u64)
        .map(|seed| {
            let mut g = TreeGen::new(seed);
            std::sync::Arc::new(ArenaDoc::from_tree(&cv_xtree::random_tree(
                &mut g,
                200,
                &["a", "b", "k"],
            )))
        })
        .collect();
    let service = xq_core::QueryService::new(4);
    let batch: Vec<xq_core::Request> = docs
        .iter()
        .cycle()
        .take(64)
        .map(|d| xq_core::Request::new("for $x in $root//a return <w>{ $x/* }</w>", d.clone()))
        .collect();
    let batch_us = time_us(5, || {
        let got = service.run_batch(batch.clone());
        assert!(got.iter().all(Result::is_ok));
    });
    println!(
        "QueryService: 64-request batch over 4 docs, 4 workers: {batch_us:.1} µs \
         ({:.1} µs/request)",
        batch_us / 64.0
    );
    println!("\nShape: chunks are contiguous spans of the outer for-source; merge preserves document order, so results are byte-identical to sequential (par_diff proves it). The stream speedup has two components: binding items straight from arena spans (algorithmic, visible even at 1 host core) and actual hardware parallelism (needs cores).");
    rows
}

/// Renders the T16 rows as the `--json` payload (hand-rolled: the
/// workspace is offline, no serde).
fn t16_json(rows: &[T16Row]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"table\": \"T16\",\n");
    out.push_str(&format!("  \"host_threads\": {host},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"nodes\": {}, \"outer_items\": {}, \
             \"threads\": {}, \"eval_us\": {:.1}, \"stream_us\": {:.1}}}{}\n",
            r.family,
            r.n,
            r.nodes,
            r.outer_items,
            r.threads,
            r.eval_us,
            r.stream_us,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One T18 measurement: a configuration's total and per-unit latency.
struct T18Row {
    label: &'static str,
    total_us: f64,
    per_unit_us: f64,
}

fn t18_vm() -> Vec<T18Row> {
    use xq_core::{compile_query, parse_query, ServeMode, Threads};

    header("T18  Bytecode VM and plan cache  (xq_core::vm, QueryService)");
    println!(
        "Compile-once-run-many vs parse-and-tree-walk-per-request, on the \
         T16 service shape. The vm_diff suite proves the engines byte- and \
         counter-identical; this table prices the difference.\n"
    );

    let mut rows = Vec::new();
    let src = "for $x in $root//a return <w>{ $x/* }</w>";
    let q = parse_query(src).unwrap();

    // Engine micro-comparison: one document, repeated evaluation.
    let mut g = TreeGen::new(7);
    let doc = cv_xtree::random_tree(&mut g, 200, &["a", "b", "k"]);
    let env = xq_core::Env::with_root(doc.clone());
    let budget = xq_core::Budget::default();
    let evals = 50u32;
    let interp_us = time_us(evals, || {
        xq_core::eval_with(&q, &env, budget.clone()).unwrap();
    });
    let plan = compile_query(&q);
    let vm_us = time_us(evals, || {
        xq_core::vm::exec_with(&plan, &env, budget.clone()).unwrap();
    });
    let reparse_us = time_us(evals, || {
        let q = parse_query(src).unwrap();
        xq_core::eval_with(&q, &env, budget.clone()).unwrap();
    });
    let compile_us = time_us(evals, || {
        std::hint::black_box(compile_query(&q));
    });
    println!("| engine | per-eval (µs) | vs interpreter |");
    println!("|---|---|---|");
    for (label, us) in [
        ("interpreter (pre-parsed AST)", interp_us),
        ("interpreter (parse per request)", reparse_us),
        ("VM (compiled plan)", vm_us),
    ] {
        println!("| {label} | {us:.1} | {:.2}x |", interp_us / us);
    }
    println!("\nCompile cost (amortized by the cache): {compile_us:.1} µs/plan");
    rows.push(T18Row {
        label: "interp_eval",
        total_us: interp_us,
        per_unit_us: interp_us,
    });
    rows.push(T18Row {
        label: "interp_parse_eval",
        total_us: reparse_us,
        per_unit_us: reparse_us,
    });
    rows.push(T18Row {
        label: "vm_exec",
        total_us: vm_us,
        per_unit_us: vm_us,
    });
    rows.push(T18Row {
        label: "compile",
        total_us: compile_us,
        per_unit_us: compile_us,
    });

    // The service comparison: the exact T16 batch shape (64 requests over
    // 4 docs, 4 workers, one hot query) under both serve modes. CachedVm
    // is the default route: workers hit the global plan cache, so the
    // parse + compile happens once per distinct text per process.
    let docs: Vec<std::sync::Arc<ArenaDoc>> = (0..4u64)
        .map(|seed| {
            let mut g = TreeGen::new(seed);
            std::sync::Arc::new(ArenaDoc::from_tree(&cv_xtree::random_tree(
                &mut g,
                200,
                &["a", "b", "k"],
            )))
        })
        .collect();
    let batch: Vec<xq_core::Request> = docs
        .iter()
        .cycle()
        .take(64)
        .map(|d| xq_core::Request::new(src, d.clone()))
        .collect();
    println!("\n| serve mode | 64-request batch (µs) | µs/request | speedup |");
    println!("|---|---|---|---|");
    let mut interp_batch = 0.0;
    for (label, mode) in [
        ("interp", ServeMode::Interp),
        ("cached_vm", ServeMode::CachedVm),
    ] {
        let service = xq_core::QueryService::with_mode(4, mode);
        let batch_us = time_us(5, || {
            let got = service.run_batch(batch.clone());
            assert!(got.iter().all(Result::is_ok));
        });
        if matches!(mode, ServeMode::Interp) {
            interp_batch = batch_us;
        }
        println!(
            "| {label} | {batch_us:.1} | {:.1} | {:.2}x |",
            batch_us / 64.0,
            interp_batch / batch_us
        );
        rows.push(T18Row {
            label: match mode {
                ServeMode::Interp => "service_interp",
                ServeMode::CachedVm => "service_cached_vm",
            },
            total_us: batch_us,
            per_unit_us: batch_us / 64.0,
        });
    }

    // Sanity: the modes agree on the batch itself (vm_diff and the
    // service tests prove this at scale; this is the harness's own check).
    let a = xq_core::QueryService::with_mode(2, ServeMode::Interp).run_batch(batch.clone());
    let b = xq_core::QueryService::with_mode(2, ServeMode::CachedVm).run_batch(batch.clone());
    assert_eq!(a, b, "serve modes diverged on the T18 batch");

    // The parallel entry point still engages through a compiled plan.
    let arena = &docs[0];
    let par_budget = xq_core::Budget::default().with_threads(Threads::N(4));
    let (_, stats) = xq_core::eval_compiled_par(&plan, arena, par_budget).unwrap();
    println!(
        "\neval_compiled_par on doc seed 0: parallelized={} workers={}",
        stats.parallelized, stats.workers
    );

    println!("\nShape: the VM wins by skipping per-request parse + scope re-resolution; the plan cache amortizes compilation to zero on hot queries, which is where the service µs/request delta comes from.");
    rows
}

/// One T19 measurement: a closed-loop client count's serving profile
/// against the socket front door.
struct T19Row {
    clients: usize,
    requests: usize,
    ok: usize,
    shed: usize,
    p50_us: f64,
    p99_us: f64,
    throughput_rps: f64,
    wall_ms: f64,
}

/// The latency percentile of a sorted sample (nearest-rank).
fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn t19_serving() -> Vec<T19Row> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use xq_server::{Frame, Server, ServerConfig};

    header("T19  Network serving under load  (xq_server: admission, shedding)");
    const WORKERS: usize = 2;
    const CAPACITY: usize = 4;
    const PER_CLIENT: usize = 100;
    println!(
        "Closed-loop load generator over the line-delimited JSON socket \
         protocol: each client pipelines nothing — send one query, wait \
         for the answer (or the shed), repeat. {WORKERS} pool workers, \
         admission queue capacity {CAPACITY}; once concurrent clients \
         exceed workers + capacity the server must answer `overloaded` \
         immediately rather than queue without bound, so p99 for the \
         *admitted* requests stays bounded while the shed rate absorbs \
         the overload.\n"
    );

    // One moderately heavy query (a quadratic //* self-join shape on a
    // 200-node document) so per-request service time dominates loopback
    // latency and the queue actually fills under concurrency.
    let src = "for $x in $root//* return <w>{ $x//* }</w>";
    let mut g = TreeGen::new(19);
    let doc = cv_xtree::random_tree(&mut g, 200, &["a", "b", "k"]);
    let mut docs = std::collections::HashMap::new();
    docs.insert(
        "d0".to_string(),
        std::sync::Arc::new(ArenaDoc::from_tree(&doc)),
    );

    println!("| clients | requests | ok | shed | shed rate | p50 (µs) | p99 (µs) | ok/s |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8, 16] {
        let server = Server::start(ServerConfig {
            workers: WORKERS,
            queue_capacity: CAPACITY,
            docs: docs.clone(),
            ..ServerConfig::default()
        })
        .expect("start T19 server");
        let started = Instant::now();
        let mut latencies: Vec<f64> = Vec::new();
        let mut ok = 0usize;
        let mut shed = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let addr = server.addr();
                    scope.spawn(move || {
                        let stream = TcpStream::connect(addr).expect("connect");
                        stream.set_nodelay(true).expect("nodelay");
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut writer = stream;
                        let mut lat = Vec::with_capacity(PER_CLIENT);
                        let mut ok = 0usize;
                        let mut shed = 0usize;
                        for id in 0..PER_CLIENT {
                            let frame = Frame::new()
                                .str("op", "query")
                                .uint("id", id as u64)
                                .str("doc", "d0")
                                .str("query", src);
                            let t0 = Instant::now();
                            writer.write_all(frame.encode().as_bytes()).expect("send");
                            writer.write_all(b"\n").expect("send");
                            writer.flush().expect("flush");
                            let mut line = String::new();
                            reader.read_line(&mut line).expect("recv");
                            let us = t0.elapsed().as_secs_f64() * 1e6;
                            let resp =
                                Frame::parse(line.trim_end_matches('\n')).expect("frame parses");
                            if resp.get_bool("ok") == Some(true) {
                                ok += 1;
                                lat.push(us);
                            } else {
                                assert_eq!(
                                    resp.get_str("code"),
                                    Some("overloaded"),
                                    "T19 only expects ok or overloaded answers"
                                );
                                shed += 1;
                            }
                        }
                        (lat, ok, shed)
                    })
                })
                .collect();
            for h in handles {
                let (lat, o, s) = h.join().expect("client thread");
                latencies.extend(lat);
                ok += o;
                shed += s;
            }
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let requests = clients * PER_CLIENT;
        let row = T19Row {
            clients,
            requests,
            ok,
            shed,
            p50_us: percentile_us(&latencies, 50.0),
            p99_us: percentile_us(&latencies, 99.0),
            throughput_rps: ok as f64 / (wall_ms / 1e3),
            wall_ms,
        };
        println!(
            "| {} | {} | {} | {} | {:.1}% | {:.1} | {:.1} | {:.0} |",
            row.clients,
            row.requests,
            row.ok,
            row.shed,
            100.0 * row.shed as f64 / row.requests as f64,
            row.p50_us,
            row.p99_us,
            row.throughput_rps
        );
        rows.push(row);
        drop(server);
    }

    // The load-shedding contract, self-checked: below the high-water
    // mark nothing is shed; well past it the server must actually shed
    // (16 closed-loop clients against workers + capacity = 6 admitted
    // slots cannot all be admitted once service time dominates).
    assert_eq!(rows[0].shed, 0, "a single closed-loop client never sheds");
    let past_mark = rows.last().unwrap();
    assert!(
        past_mark.shed > 0,
        "{} clients against {} admitted slots must shed",
        past_mark.clients,
        WORKERS + CAPACITY
    );

    println!(
        "\nShape: closed-loop concurrency beyond workers + queue slots converts \
         directly into sheds, not latency — the admitted-request percentiles grow \
         with queue depth only, which is the entire point of admission control."
    );
    rows
}

/// Renders the T19 rows as the `--json` payload (hand-rolled: the
/// workspace is offline, no serde).
fn t19_json(rows: &[T19Row]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"table\": \"T19\",\n");
    out.push_str(&format!("  \"host_threads\": {host},\n"));
    out.push_str("  \"workers\": 2,\n");
    out.push_str("  \"queue_capacity\": 4,\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"ok\": {}, \"shed\": {}, \
             \"shed_rate\": {:.4}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"throughput_rps\": {:.1}, \"wall_ms\": {:.1}}}{}\n",
            r.clients,
            r.requests,
            r.ok,
            r.shed,
            r.shed as f64 / r.requests as f64,
            r.p50_us,
            r.p99_us,
            r.throughput_rps,
            r.wall_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One T20 measurement: a concurrent-connection count served by the
/// fixed-thread reactor front door.
struct T20Row {
    conns: usize,
    requests: usize,
    ok: usize,
    p50_us: f64,
    p99_us: f64,
    throughput_rps: f64,
    wall_ms: f64,
}

fn t20_connection_scaling() -> Vec<T20Row> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use xq_server::{Frame, Server, ServerConfig};

    header("T20  Connection scaling  (xq_server reactor: fixed threads, many sockets)");
    const WORKERS: usize = 2;
    const PER_CONN: usize = 25;
    println!(
        "The connection-count sweep T19 could not run: the PR 7 front door \
         spent two threads per connection, so 64 clients cost 128 threads. \
         The reactor serves every connection from one thread ({WORKERS} pool \
         workers + 1 reactor = {} serving threads total, at any client \
         count). Same closed-loop clients and the same quadratic query as \
         T19, but an unbounded admission queue: with send-one-await-one \
         clients the queue is bounded by the connection count, and the \
         point here is socket scaling, not shedding. Throughput should \
         hold at the worker-limited rate — the T19 baseline — while \
         connections grow past anything thread-per-connection could pin.\n",
        WORKERS + 1
    );

    let src = "for $x in $root//* return <w>{ $x//* }</w>";
    let mut g = TreeGen::new(19);
    let doc = cv_xtree::random_tree(&mut g, 200, &["a", "b", "k"]);
    let mut docs = std::collections::HashMap::new();
    docs.insert(
        "d0".to_string(),
        std::sync::Arc::new(ArenaDoc::from_tree(&doc)),
    );

    println!("| conns | requests | ok | p50 (µs) | p99 (µs) | ok/s |");
    println!("|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    for conns in [8usize, 16, 32, 64] {
        let server = Server::start(ServerConfig {
            workers: WORKERS,
            docs: docs.clone(),
            ..ServerConfig::default()
        })
        .expect("start T20 server");
        let started = Instant::now();
        let mut latencies: Vec<f64> = Vec::new();
        let mut ok = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|_| {
                    let addr = server.addr();
                    scope.spawn(move || {
                        let stream = TcpStream::connect(addr).expect("connect");
                        stream.set_nodelay(true).expect("nodelay");
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut writer = stream;
                        let mut lat = Vec::with_capacity(PER_CONN);
                        for id in 0..PER_CONN {
                            let frame = Frame::new()
                                .str("op", "query")
                                .uint("id", id as u64)
                                .str("doc", "d0")
                                .str("query", src);
                            let t0 = Instant::now();
                            writer.write_all(frame.encode().as_bytes()).expect("send");
                            writer.write_all(b"\n").expect("send");
                            writer.flush().expect("flush");
                            let mut line = String::new();
                            reader.read_line(&mut line).expect("recv");
                            let us = t0.elapsed().as_secs_f64() * 1e6;
                            let resp =
                                Frame::parse(line.trim_end_matches('\n')).expect("frame parses");
                            assert_eq!(
                                resp.get_bool("ok"),
                                Some(true),
                                "T20 runs with an unbounded queue; every answer must be ok"
                            );
                            lat.push(us);
                        }
                        lat
                    })
                })
                .collect();
            for h in handles {
                let lat = h.join().expect("client thread");
                ok += lat.len();
                latencies.extend(lat);
            }
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let requests = conns * PER_CONN;
        let row = T20Row {
            conns,
            requests,
            ok,
            p50_us: percentile_us(&latencies, 50.0),
            p99_us: percentile_us(&latencies, 99.0),
            throughput_rps: ok as f64 / (wall_ms / 1e3),
            wall_ms,
        };
        println!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.0} |",
            row.conns, row.requests, row.ok, row.p50_us, row.p99_us, row.throughput_rps
        );
        rows.push(row);
        drop(server);
    }

    // The scaling contract, self-checked: every request at every
    // connection count is answered (nothing lost multiplexing 64
    // sockets over one thread), and throughput at the top of the sweep
    // has not collapsed relative to the bottom — the workers stay the
    // bottleneck, not the reactor.
    for r in &rows {
        assert_eq!(r.ok, r.requests, "lost responses at {} conns", r.conns);
    }
    let (first, last) = (rows.first().unwrap(), rows.last().unwrap());
    assert!(last.conns >= 64, "the sweep must reach 64 connections");
    assert!(
        last.throughput_rps > 0.35 * first.throughput_rps,
        "throughput collapsed with connection count: {:.0} ok/s at {} conns \
         vs {:.0} ok/s at {} conns",
        last.throughput_rps,
        last.conns,
        first.throughput_rps,
        first.conns
    );

    println!(
        "\nShape: worker-limited throughput is flat across the sweep while \
         p50 grows linearly with the closed-loop connection count (each \
         request queues behind ~conns others) — the reactor adds sockets, \
         not threads, and loses nothing."
    );
    rows
}

/// Renders the T20 rows as the `--json` payload (hand-rolled: the
/// workspace is offline, no serde).
fn t20_json(rows: &[T20Row]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"table\": \"T20\",\n");
    out.push_str(&format!("  \"host_threads\": {host},\n"));
    out.push_str("  \"workers\": 2,\n");
    out.push_str("  \"server_threads\": 3,\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"conns\": {}, \"requests\": {}, \"ok\": {}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"throughput_rps\": {:.1}, \"wall_ms\": {:.1}}}{}\n",
            r.conns,
            r.requests,
            r.ok,
            r.p50_us,
            r.p99_us,
            r.throughput_rps,
            r.wall_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One T21 measurement: a soak under one fault spec (or none, for the
/// baseline row).
struct T21Row {
    label: &'static str,
    spec: &'static str,
    requests: usize,
    ok: usize,
    internal: usize,
    shed: usize,
    deaths: usize,
    restarts: usize,
    throughput_rps: f64,
    wall_ms: f64,
}

fn t21_chaos() -> Vec<T21Row> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use xq_server::{Frame, Server, ServerConfig};

    header("T21  Chaos soak  (xq_server: seeded fault injection, supervision)");
    const WORKERS: usize = 2;
    const CONNS: usize = 8;
    const PER_CONN: usize = 40;
    // The pinned default makes the table reproducible run over run; the
    // scheduled randomized soak overrides it through the environment.
    let seed: u64 = std::env::var("XQ_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2005);
    println!(
        "The T20 pipelined-client shape under seeded fault injection \
         (seed {seed}): worker panics contained by the unwind fence, \
         workers killed mid-delivery and respawned by the supervisor, \
         injected evaluation delays, injected admission refusals. \
         {CONNS} connections pipeline {PER_CONN} queries each; the \
         contract is not throughput but integrity — every query answered \
         exactly once, in order, with `ok`/`internal_error`/`overloaded`, \
         gauges back to zero and the pool back at {WORKERS} workers \
         after every row.\n"
    );

    let src = "for $x in $root//* return <w>{ $x//* }</w>";
    let mut g = TreeGen::new(19);
    let doc = cv_xtree::random_tree(&mut g, 200, &["a", "b", "k"]);
    let mut docs = std::collections::HashMap::new();
    docs.insert(
        "d0".to_string(),
        std::sync::Arc::new(ArenaDoc::from_tree(&doc)),
    );

    let specs: [(&'static str, &'static str); 3] = [
        ("baseline", ""),
        ("panics", "worker-panic=0.05"),
        (
            "full chaos",
            "worker-panic=0.05,completion-drop=0.03,slow-eval=0.2@1,submit-refusal=0.03",
        ),
    ];
    println!("| row | requests | ok | internal | shed | deaths | restarts | ok/s |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    for (label, spec) in specs {
        let faults = (!spec.is_empty()).then(|| {
            std::sync::Arc::new(xq_core::Faults::from_spec(spec, seed).expect("T21 spec parses"))
        });
        let server = Server::start(ServerConfig {
            workers: WORKERS,
            docs: docs.clone(),
            faults,
            // Worst case every delivery kills its worker; self-healing
            // must never run out of budget mid-soak.
            restart_budget: (CONNS * PER_CONN) as u32,
            ..ServerConfig::default()
        })
        .expect("start T21 server");
        let started = Instant::now();
        let (mut ok, mut internal, mut shed) = (0usize, 0usize, 0usize);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CONNS)
                .map(|_| {
                    let addr = server.addr();
                    scope.spawn(move || {
                        let stream = TcpStream::connect(addr).expect("connect");
                        stream.set_nodelay(true).expect("nodelay");
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut writer = stream;
                        for id in 0..PER_CONN {
                            let frame = Frame::new()
                                .str("op", "query")
                                .uint("id", id as u64)
                                .str("doc", "d0")
                                .str("query", src);
                            writer.write_all(frame.encode().as_bytes()).expect("send");
                            writer.write_all(b"\n").expect("send");
                        }
                        writer.flush().expect("flush");
                        let (mut ok, mut internal, mut shed) = (0usize, 0usize, 0usize);
                        for id in 0..PER_CONN {
                            let mut line = String::new();
                            let n = reader.read_line(&mut line).expect("recv");
                            assert!(n > 0, "connection closed before id {id} answered");
                            let resp =
                                Frame::parse(line.trim_end_matches('\n')).expect("frame parses");
                            // Zero lost or duplicated responses: ids
                            // echo the pipeline order exactly.
                            assert_eq!(
                                resp.get_uint("id"),
                                Some(id as u64),
                                "T21 responses must arrive in pipeline order"
                            );
                            if resp.get_bool("ok") == Some(true) {
                                ok += 1;
                            } else {
                                match resp.get_str("code") {
                                    Some("internal_error") => internal += 1,
                                    Some("overloaded") => shed += 1,
                                    other => {
                                        panic!("T21 answers are ok/internal/overloaded: {other:?}")
                                    }
                                }
                            }
                        }
                        (ok, internal, shed)
                    })
                })
                .collect();
            for h in handles {
                let (o, i, s) = h.join().expect("client thread");
                ok += o;
                internal += i;
                shed += s;
            }
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        // Gauges must return to zero and the supervisor must have the
        // pool back at strength before the row is accepted.
        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        loop {
            let settled = server.queue_depth() == 0
                && server.admitted_depth() == 0
                && server.in_flight() == 0
                && server.alive_workers() == WORKERS;
            if settled {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "T21 {label}: gauges or pool never settled"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let row = T21Row {
            label,
            spec,
            requests: CONNS * PER_CONN,
            ok,
            internal,
            shed,
            deaths: server.worker_deaths(),
            restarts: server.restarts(),
            throughput_rps: ok as f64 / (wall_ms / 1e3),
            wall_ms,
        };
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.0} |",
            row.label,
            row.requests,
            row.ok,
            row.internal,
            row.shed,
            row.deaths,
            row.restarts,
            row.throughput_rps
        );
        rows.push(row);
        drop(server);
    }

    // The containment contract, self-checked: the baseline row is
    // untouched by the machinery (injection off costs nothing and fails
    // nothing), every row answers every request, and the chaos rows
    // actually exercised the fence and the supervisor.
    for r in &rows {
        assert_eq!(
            r.ok + r.internal + r.shed,
            r.requests,
            "T21 {}: every request answered exactly once",
            r.label
        );
    }
    let baseline = &rows[0];
    assert_eq!(baseline.internal, 0, "baseline must not fail internally");
    assert_eq!(baseline.shed, 0, "baseline must not shed (unbounded queue)");
    assert_eq!(baseline.deaths, 0, "baseline must not lose workers");
    let chaos = rows.last().unwrap();
    assert!(chaos.internal > 0, "full chaos must surface failures");
    assert_eq!(
        chaos.deaths, chaos.restarts,
        "every crashed worker was respawned"
    );

    println!(
        "\nShape: fault injection converts a configurable slice of the \
         baseline's oks into contained `internal_error` answers (plus a \
         few injected sheds) without losing, duplicating, or reordering \
         a single response — and every worker the chaos kills is back \
         before the row ends."
    );
    rows
}

/// Renders the T21 rows as the `--json` payload (hand-rolled: the
/// workspace is offline, no serde).
fn t21_json(rows: &[T21Row]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let seed: u64 = std::env::var("XQ_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2005);
    let mut out = String::from("{\n");
    out.push_str("  \"table\": \"T21\",\n");
    out.push_str(&format!("  \"host_threads\": {host},\n"));
    out.push_str("  \"workers\": 2,\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"spec\": \"{}\", \"requests\": {}, \
             \"ok\": {}, \"internal\": {}, \"shed\": {}, \"deaths\": {}, \
             \"restarts\": {}, \"throughput_rps\": {:.1}, \"wall_ms\": {:.1}}}{}\n",
            r.label,
            r.spec,
            r.requests,
            r.ok,
            r.internal,
            r.shed,
            r.deaths,
            r.restarts,
            r.throughput_rps,
            r.wall_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One T22 measurement: one streaming discipline of one doubling family,
/// timed on the refactored cursor core and on the frozen pre-refactor
/// engine (`xq_bench::legacy_stream`).
struct T22Row {
    family: String,
    n: u32,
    discipline: &'static str,
    tokens_out: u64,
    legacy_us: f64,
    cursor_us: f64,
    /// High-water mark of parked tokens (cursor engine; the legacy
    /// engine had no such gauge — its parallel merge materialized every
    /// chunk, so its effective in-flight peak was `tokens_out`).
    peak_buffered_tokens: u64,
    workers: usize,
}

/// T22 — the cursor-core refactor's performance gate: lazy, buffered, and
/// parallel-merge streaming on the doubling families, refactored engine
/// vs the frozen pre-refactor engine. Self-checked: bytes and budget
/// counters must match the baseline exactly (a slow-path regression
/// cannot hide behind a fast mean), the cursor engine must stay within
/// noise of the old engine on every discipline, and the parallel merge's
/// `peak_buffered_tokens` must stay under its queue bound — the number
/// that proves the merge consumes worker output incrementally where the
/// old engine materialized whole chunks.
fn t22_cursor() -> Vec<T22Row> {
    use cv_xtree::DoublingFamily;
    use xq_bench::legacy_stream as legacy;
    use xq_stream::{DEFAULT_BUFFER_LIMIT, PAR_QUEUE_CAP_TOKENS, PAR_RUN_TOKENS};

    header("T22  Cursor core vs pre-refactor engine  (xq_stream refactor)");
    println!(
        "The composable-cursor refactor routed all four `stream_query*` \
         entry points through one pipeline builder; this table gates its \
         cost. Lazy rows use smaller documents (re-streaming cost is \
         quadratic), the parallel rows run 4 threads with the incremental \
         run-queue merge.\n"
    );
    println!(
        "| family (n) | discipline | tokens out | legacy (µs) | cursor (µs) | ratio | peak buffered tokens |"
    );
    println!("|---|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    let mut push = |family: DoublingFamily,
                    n: u32,
                    discipline: &'static str,
                    tokens_out: u64,
                    legacy_us: f64,
                    cursor_us: f64,
                    peak: u64,
                    workers: usize| {
        println!(
            "| {family} ({n}) | {discipline} | {tokens_out} | {legacy_us:.1} | {cursor_us:.1} | {:.2}x | {peak} |",
            cursor_us / legacy_us
        );
        // The refactor gate: within noise of the old engine (generous
        // margin — CI containers are single-core and share tenants).
        assert!(
            cursor_us <= legacy_us * 1.5 + 250.0,
            "cursor core regressed {discipline} on {family}({n}): \
             {cursor_us:.1}µs vs legacy {legacy_us:.1}µs"
        );
        rows.push(T22Row {
            family: family.to_string(),
            n,
            discipline,
            tokens_out,
            legacy_us,
            cursor_us,
            peak_buffered_tokens: peak,
            workers,
        });
    };
    for (family, n_lazy, n) in [
        (DoublingFamily::Binary, 8u32, 11u32),
        (DoublingFamily::Wide, 9, 12),
        (DoublingFamily::Comb, 7, 10),
    ] {
        let q = xq_bench::stream_workload(family);

        // Lazy discipline (pure Theorem 4.5 re-streaming).
        let tree = family.tree(n_lazy);
        let (out, stats) = xq_stream::stream_query(&q, &tree, u64::MAX).unwrap();
        let (lout, lstats) = legacy::stream_query(&q, &tree, u64::MAX).unwrap();
        assert_eq!(out, lout, "lazy bytes diverged on {family}({n_lazy})");
        assert_eq!(stats.pulls, lstats.pulls, "lazy pulls on {family}");
        let cursor_us = time_us(3, || {
            xq_stream::stream_query(&q, &tree, u64::MAX).unwrap();
        });
        let legacy_us = time_us(3, || {
            legacy::stream_query(&q, &tree, u64::MAX).unwrap();
        });
        push(
            family,
            n_lazy,
            "lazy",
            stats.tokens_out,
            legacy_us,
            cursor_us,
            stats.peak_buffered_tokens,
            0,
        );

        // Buffered fast path.
        let tree = family.tree(n);
        let (out, stats) =
            xq_stream::stream_query_buffered(&q, &tree, u64::MAX, DEFAULT_BUFFER_LIMIT).unwrap();
        let (lout, lstats) =
            legacy::stream_query_buffered(&q, &tree, u64::MAX, DEFAULT_BUFFER_LIMIT).unwrap();
        assert_eq!(out, lout, "buffered bytes diverged on {family}({n})");
        assert_eq!(stats.pulls, lstats.pulls, "buffered pulls on {family}");
        let cursor_us = time_us(8, || {
            xq_stream::stream_query_buffered(&q, &tree, u64::MAX, DEFAULT_BUFFER_LIMIT).unwrap();
        });
        let legacy_us = time_us(8, || {
            legacy::stream_query_buffered(&q, &tree, u64::MAX, DEFAULT_BUFFER_LIMIT).unwrap();
        });
        push(
            family,
            n,
            "buffered",
            stats.tokens_out,
            legacy_us,
            cursor_us,
            stats.peak_buffered_tokens,
            0,
        );

        // Parallel incremental merge, 4 threads.
        let doc = family.arena(n);
        let (out, stats) =
            xq_stream::stream_query_arena_par(&q, &doc, u64::MAX, DEFAULT_BUFFER_LIMIT, 4).unwrap();
        let (lout, _) =
            legacy::stream_query_arena_par(&q, &doc, u64::MAX, DEFAULT_BUFFER_LIMIT, 4).unwrap();
        assert_eq!(out, lout, "par bytes diverged on {family}({n})");
        // The boundedness gate: in-flight tokens stay under the queue
        // bound however large the output grows — the legacy merge parked
        // every chunk's full output instead.
        let bound = (stats.workers * (PAR_QUEUE_CAP_TOKENS + PAR_RUN_TOKENS)) as u64;
        assert!(
            stats.peak_buffered_tokens <= bound,
            "incremental merge exceeded its bound on {family}({n}): \
             peak {} > {bound}",
            stats.peak_buffered_tokens
        );
        let cursor_us = time_us(5, || {
            xq_stream::stream_query_arena_par(&q, &doc, u64::MAX, DEFAULT_BUFFER_LIMIT, 4).unwrap();
        });
        let legacy_us = time_us(5, || {
            legacy::stream_query_arena_par(&q, &doc, u64::MAX, DEFAULT_BUFFER_LIMIT, 4).unwrap();
        });
        push(
            family,
            n,
            "par-merge 4T",
            stats.tokens_out,
            legacy_us,
            cursor_us,
            stats.peak_buffered_tokens,
            stats.workers,
        );
    }
    println!(
        "\nSelf-checks passed: bytes and pull counters identical to the \
         frozen baseline, cursor within noise on every discipline, \
         parallel peak bounded by workers × (queue cap {PAR_QUEUE_CAP_TOKENS} \
         + run {PAR_RUN_TOKENS}) tokens while the old merge parked whole \
         chunk outputs."
    );
    rows
}

/// Renders the T22 rows as the `--json` payload (hand-rolled: the
/// workspace is offline, no serde).
fn t22_json(rows: &[T22Row]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"table\": \"T22\",\n");
    out.push_str(&format!("  \"host_threads\": {host},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"discipline\": \"{}\", \
             \"tokens_out\": {}, \"legacy_us\": {:.1}, \"cursor_us\": {:.1}, \
             \"ratio\": {:.3}, \"peak_buffered_tokens\": {}, \"workers\": {}}}{}\n",
            r.family,
            r.n,
            r.discipline,
            r.tokens_out,
            r.legacy_us,
            r.cursor_us,
            r.cursor_us / r.legacy_us,
            r.peak_buffered_tokens,
            r.workers,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the T18 rows as the `--json` payload (hand-rolled: the
/// workspace is offline, no serde).
fn t18_json(rows: &[T18Row]) -> String {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"table\": \"T18\",\n");
    out.push_str(&format!("  \"host_threads\": {host},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"total_us\": {:.1}, \"per_unit_us\": {:.2}}}{}\n",
            r.label,
            r.total_us,
            r.per_unit_us,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Times `f` over `iters` runs (after one warmup) and returns mean µs.
fn time_us(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// T14 — the `cv_monad::opt` pass and the streaming fast path (the README
/// "Performance" table is regenerated from this section).
fn t14_optimizer() {
    use cv_monad::{eval, opt, CollectionKind};

    header("T14  Optimizer & streaming fast path  (cv_monad::opt, xq_stream)");

    let (derived, builtin, input) = xq_bench::diff_workload();
    let (optimized, trace) = opt::optimize(&derived, CollectionKind::Set);

    let naive_us = time_us(50, || {
        eval(&derived, CollectionKind::Set, &input).unwrap();
    });
    let opt_us = time_us(50, || {
        eval(&optimized, CollectionKind::Set, &input).unwrap();
    });
    let builtin_us = time_us(50, || {
        eval(&builtin, CollectionKind::Set, &input).unwrap();
    });
    let pass_us = time_us(50, || {
        opt::optimize(&derived, CollectionKind::Set);
    });
    println!("| workload (|R| = 60, |S| = 30) | naive derived (µs) | optimized (µs) | builtin (µs) | naive/opt | opt/builtin |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| Ex 2.4 difference | {naive_us:.1} | {opt_us:.1} | {builtin_us:.1} | {:.1}x | {:.2}x |",
        naive_us / opt_us,
        opt_us / builtin_us
    );
    println!(
        "\nRewrite trace: {:?} (pass itself: {pass_us:.1} µs)",
        trace.rules()
    );

    println!("\n| n (doubling family) | lazy stream (µs) | buffered stream (µs) | materializing (µs) | lazy/buffered | lazy pulls | buffered pulls |");
    println!("|---|---|---|---|---|---|---|");
    let t = cv_xtree::parse_tree("<r/>").unwrap();
    for n in [2usize, 4] {
        let q = doubling_query(n);
        let lazy_us = time_us(10, || {
            xq_stream::stream_query(&q, &t, u64::MAX).unwrap();
        });
        let buf_us = time_us(10, || {
            xq_stream::stream_query_buffered(&q, &t, u64::MAX, xq_stream::DEFAULT_BUFFER_LIMIT)
                .unwrap();
        });
        let mat_us = time_us(10, || {
            eval_query(&q, &t).unwrap();
        });
        let (_, lazy_stats) = xq_stream::stream_query(&q, &t, u64::MAX).unwrap();
        let (_, buf_stats) =
            xq_stream::stream_query_buffered(&q, &t, u64::MAX, xq_stream::DEFAULT_BUFFER_LIMIT)
                .unwrap();
        println!(
            "| {n} | {lazy_us:.1} | {buf_us:.1} | {mat_us:.1} | {:.1}x | {} | {} |",
            lazy_us / buf_us,
            lazy_stats.pulls,
            buf_stats.pulls
        );
    }
    println!("\nShape: the optimized plan matches the builtin; buffering closes most of the lazy-streaming gap on tiny outputs.");
}

/// T15 — the arena document store vs the `Rc` tree (`cv_xtree::arena`,
/// README "Performance" rows): build, descendant-axis scan, and
/// full-query streaming at the doubling-family sizes, plus the arena
/// route over the random-queries corpus documents.
fn t15_arena() {
    use cv_xtree::{ArenaDoc, Axis, DoublingFamily, NodeTest, TreeGen};

    header("T15  Arena document store vs Rc tree  (cv_xtree::arena)");

    println!("| family (n) | nodes | tree build (µs) | arena build (µs) | build speedup | tree dsc-scan (µs) | arena dsc-scan (µs) | scan speedup |");
    println!("|---|---|---|---|---|---|---|---|");
    // Scan for a tag each family actually contains (comb documents hold
    // only s/t nodes), so every row measures a hit-collecting scan.
    for (family, n, tag) in [
        (DoublingFamily::Binary, 15u32, "a"),
        (DoublingFamily::Wide, 16, "a"),
        (DoublingFamily::Comb, 12, "t"),
    ] {
        let tree_us = time_us(20, || {
            std::hint::black_box(family.tree(n));
        });
        let arena_us = time_us(20, || {
            std::hint::black_box(family.arena(n));
        });
        let tree = family.tree(n);
        let arena = family.arena(n);
        let test = NodeTest::tag(tag);
        let tscan_us = time_us(20, || {
            let hits = tree
                .axis(Axis::Descendant)
                .into_iter()
                .filter(|t| test.matches(t.label()))
                .count();
            std::hint::black_box(hits);
        });
        let ascan_us = time_us(20, || {
            std::hint::black_box(arena.axis(arena.root(), Axis::Descendant, &test).len());
        });
        println!(
            "| {family} ({n}) | {} | {tree_us:.1} | {arena_us:.1} | {:.1}x | {tscan_us:.1} | {ascan_us:.1} | {:.1}x |",
            family.size(n),
            tree_us / arena_us,
            tscan_us / ascan_us
        );
    }

    println!("\n| stream workload | Rc-tree source (µs) | arena source (µs) | note |");
    println!("|---|---|---|---|");
    let q = xq_core::parse_query("for $x in $root//a return <w>{ $x/* }</w>").unwrap();
    let tree = DoublingFamily::Binary.tree(7);
    let arena = DoublingFamily::Binary.arena(7);
    let cap = xq_stream::DEFAULT_BUFFER_LIMIT;
    let t_us = time_us(10, || {
        xq_stream::stream_query_buffered(&q, &tree, u64::MAX, cap).unwrap();
    });
    let a_us = time_us(10, || {
        xq_stream::stream_query_arena(&q, &arena, u64::MAX, cap).unwrap();
    });
    println!("| `$root//a` nest, binary n=7 | {t_us:.1} | {a_us:.1} | arena tokenizes with zero Rc churn |");
    // The random-queries corpus documents, streamed through both routes.
    let corpus: Vec<cv_xtree::Tree> = (0..3u64)
        .map(|seed| {
            let mut g = TreeGen::new(seed);
            cv_xtree::random_tree(&mut g, 10, &["a", "b", "k"])
        })
        .collect();
    let arenas: Vec<ArenaDoc> = corpus.iter().map(ArenaDoc::from_tree).collect();
    let qs = xq_core::parse_query("for $x in $root/* return ($x//b, <w>{ $x/a }</w>)").unwrap();
    let ct_us = time_us(50, || {
        for d in &corpus {
            xq_stream::stream_query_buffered(&qs, d, u64::MAX, cap).unwrap();
        }
    });
    let ca_us = time_us(50, || {
        for d in &arenas {
            xq_stream::stream_query_arena(&qs, d, u64::MAX, cap).unwrap();
        }
    });
    println!("| random-queries docs() corpus | {ct_us:.1} | {ca_us:.1} | agreement suites run both via XQ_ARENA |");

    // The §5.1 path-set encoding (xq_paths::treepaths): recursive Rc-tree
    // traversal vs the single-pass arena walk. Expected ratio ~1× — Term
    // path-set construction dominates both — recorded to keep that claim
    // honest (the arena route's value is skipping tree materialization).
    let ptree = DoublingFamily::Binary.tree(12);
    let parena = DoublingFamily::Binary.arena(12);
    let tp_us = time_us(10, || {
        std::hint::black_box(xq_paths::tree_paths(&ptree));
    });
    let dp_us = time_us(10, || {
        std::hint::black_box(xq_paths::doc_paths(&parena));
    });
    println!(
        "\n| §5.1 path-set encoding (binary n=12) | tree_paths (µs) | doc_paths (µs) | ratio |"
    );
    println!("|---|---|---|---|");
    println!(
        "| {} paths | {tp_us:.1} | {dp_us:.1} | {:.1}x |",
        1u64 << 12,
        tp_us / dp_us
    );
    println!("\nShape: contiguous id-indexed vectors beat per-node Rc allocation on build and axis scans; streaming and path-encoding differ only in how the source is walked, so those rows are ~1x.");
}

/// T1 — Theorem 5.6 / Lemma 5.7(a,b): NTM reduction.
fn t1_ntm_reduction() {
    header("T1  NTM → M∪[=atomic]  (Thm 5.6; NEXPTIME-hardness)");
    println!("| machine | input | simulator | φ_accept | agree |");
    println!("|---|---|---|---|---|");
    let cases: Vec<(red::Ntm, Vec<usize>, &str)> = vec![
        (red::ntm::zoo::first_is_one(), vec![1, 0], "first_is_one"),
        (red::ntm::zoo::first_is_one(), vec![0, 1], "first_is_one"),
        (red::ntm::zoo::some_one(), vec![0, 1], "some_one"),
        (red::ntm::zoo::some_one(), vec![0, 0], "some_one"),
        (red::ntm::zoo::writes_then_accepts(), vec![0, 0], "writes"),
        (red::ntm::zoo::reject_all(), vec![1, 1], "reject_all"),
    ];
    for (m, input, name) in cases {
        let start = m.start_config(&input, 2);
        let want = m.accepts_in(&start, 2);
        let got = NtmReduction::new(&m, 1, input.clone(), EqFlavor::Builtin)
            .run(Budget::large())
            .expect("K=1 fits the budget");
        println!(
            "| {name} | {input:?} | {want} | {got} | {} |",
            if want == got { "yes" } else { "NO" }
        );
    }
    // K=2: tape length 4 — the Figure 7 zoom-in rules execute.
    println!();
    println!("| machine (K=2, zoom-in active) | input | simulator | φ_accept | agree |");
    println!("|---|---|---|---|---|");
    let big = Budget {
        max_steps: 2_000_000_000,
        max_nodes: 2_000_000_000,
    };
    for (m, input, name) in [
        (
            red::ntm::zoo::first_is_one(),
            vec![1, 0, 0, 0],
            "first_is_one",
        ),
        (red::ntm::zoo::some_one(), vec![0, 0, 1, 0], "some_one"),
        (red::ntm::zoo::some_one(), vec![0, 0, 0, 0], "some_one"),
    ] {
        let start = m.start_config(&input, 4);
        let want = m.accepts_in(&start, 4);
        let got = NtmReduction::new(&m, 2, input.clone(), EqFlavor::Builtin)
            .run(big)
            .expect("K=2 fits the large budget");
        println!(
            "| {name} | {input:?} | {want} | {got} | {} |",
            if want == got { "yes" } else { "NO" }
        );
    }

    println!("\n| K | size (builtin =mon) | size (defined =mon) |");
    println!("|---|---|---|");
    let m = red::ntm::zoo::first_is_one();
    for k in 1..=8u32 {
        let b = NtmReduction::new(&m, k, vec![1], EqFlavor::Builtin)
            .accept_query()
            .size();
        let d = NtmReduction::new(&m, k, vec![1], EqFlavor::Defined)
            .accept_query()
            .size();
        println!("| {k} | {b} | {d} |");
    }
    println!("\nShape: builtin grows linearly in K (Lemma 5.7b), defined quadratically (5.7a).");
}

/// T2 — Theorem 5.9: ATM reduction.
fn t2_atm_reduction() {
    header("T2  ATM → M∪[=mon, not]  (Thm 5.9/5.11; TA[2^O(n),O(n)]-hardness)");
    println!("| machine | A_i oracle | φ_accept | agree |");
    println!("|---|---|---|---|");
    for require_one in [true, false] {
        let m = red::atm::zoo::forall_then_check(require_one);
        let input = vec![1, 0];
        let start = m.machine.start_config(&input, 2);
        let want = m.accepts_alternating(&start, 2, 3);
        let got = red::AtmReduction::new(&m, 1, input, 3)
            .run(Budget::large())
            .expect("K=1 fits the budget");
        println!(
            "| forall_then_check({require_one}) | {want} | {got} | {} |",
            if want == got { "yes" } else { "NO" }
        );
    }
}

/// T3 — Prop 4.2/4.3: blowup family.
fn t3_blowup() {
    header("T3  Doubly exponential values  (Prop 4.2/4.3)");
    println!("| m | |Q| | predicted 2^(2^m) | measured cardinality | C_f bound holds |");
    println!("|---|---|---|---|---|");
    for m in 0..=4usize {
        match red::measure_blowup(m, Budget::large()) {
            Ok(p) => {
                let bound = red::size_bound(&red::blowup_query(m), 1);
                println!(
                    "| {m} | {} | {} | {} | {} |",
                    p.query_size,
                    red::blowup_cardinality(m),
                    p.cardinality,
                    bound >= p.node_count
                );
            }
            Err(e) => println!(
                "| {m} | {} | {} | budget: {e} | – |",
                red::blowup_query(m).size(),
                red::blowup_cardinality(m)
            ),
        }
    }
}

/// T4 — Theorem 4.5: streaming vs materializing.
fn t4_streaming() {
    header("T4  Streaming (EXPSPACE) vs materializing  (Thm 4.5)");
    println!("| n | output tokens | materializer items | stream peak cursors | stream pulls |");
    println!("|---|---|---|---|---|");
    let t = cv_xtree::parse_tree("<r/>").unwrap();
    for n in [2usize, 4, 6] {
        let q = doubling_query(n);
        let out = eval_query(&q, &t).unwrap();
        let (tokens, stats) = xq_stream::stream_query(&q, &t, u64::MAX).unwrap();
        println!(
            "| {n} | {} | {} | {} | {} |",
            tokens.len(),
            out.len(),
            stats.peak_live_cursors,
            stats.pulls
        );
    }
    println!("\nShape: output doubles per step; live cursors stay ~flat (space ≪ output).");
}

/// T5 — Prop 7.3/7.4: QBF / PSPACE engine.
fn t5_qbf() {
    header("T5  QBF → XQ⁻[not]  (Prop 7.4; PSPACE-hardness) + space (Prop 7.3)");
    println!("| vars | oracle | reduction | agree | live bindings |");
    println!("|---|---|---|---|---|");
    let tree = red::qbf_tree();
    let doc = ArenaDoc::from_tree(&tree);
    let mut gen = TreeGen::new(2005);
    for vars in [2usize, 4, 6, 8] {
        let f = red::random_qbf(&mut gen, vars, vars);
        let q = red::qbf_query(&f);
        let want = f.is_true();
        let mut engine = NestedLoopEngine::new(&doc);
        let got = engine.boolean(&q).unwrap();
        println!(
            "| {vars} | {want} | {got} | {} | {} |",
            if want == got { "yes" } else { "NO" },
            engine.stats().max_live_bindings
        );
    }
    println!("\nShape: live bindings = vars + 1 — O(|Q| log |t|) space, per Prop 7.3.");
}

/// T6 — Prop 7.6/7.7: 3COL / NP engine.
fn t6_three_col() {
    header("T6  3COL → positive XQ⁻  (Prop 7.7; NP-hardness)");
    println!("| graph | oracle | witness search | nested loop | agree |");
    println!("|---|---|---|---|---|");
    let tree = red::color_tree();
    let doc = ArenaDoc::from_tree(&tree);
    let mut cases = vec![
        ("K4".to_string(), red::three_col::k4()),
        ("C5".to_string(), red::three_col::c5()),
    ];
    let mut gen = TreeGen::new(42);
    for v in [5usize, 7] {
        cases.push((
            format!("rand(v={v})"),
            red::random_graph(&mut gen, v, v + 2),
        ));
    }
    for (name, graph) in cases {
        let want = graph.is_3_colorable();
        let q = red::three_col_query(&graph);
        let w = witness_boolean(&q, &tree).unwrap();
        let nl = NestedLoopEngine::new(&doc).boolean(&q).unwrap();
        println!(
            "| {name} | {want} | {w} | {nl} | {} |",
            if want == w && want == nl { "yes" } else { "NO" }
        );
    }
}

/// T7 — Lemmas 3.2/3.3: translations.
fn t7_translations() {
    header("T7  XQ ↔ monad algebra translations  (Lemmas 3.2/3.3)");
    let q = books_query();
    let e = ma_query(&q).unwrap();
    println!("| |Q| (XQ) | |MA(Q)| | ratio |");
    println!("|---|---|---|");
    println!(
        "| {} | {} | {:.1} |",
        q.size(),
        e.size(),
        e.size() as f64 / q.size() as f64
    );
    let doc = bib_document(8);
    println!(
        "\nLemma 3.2 invariant C′([[Q]](t)) = MA(Q)(env) on the books workload: {}",
        ma_invariant_holds(&q, &doc).unwrap()
    );
    let ratios: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&k| {
            let mut src = String::from("$root");
            for _ in 0..k * 3 {
                src = format!("for $x in {src} return ($x, $x)");
            }
            let q = xq_core::parse_query(&src).unwrap();
            let e = ma_query(&q).unwrap();
            format!("{:.1}", e.size() as f64 / q.size() as f64)
        })
        .collect();
    println!("Size ratios on a growing family (should stay ~constant): {ratios:?}");
}

/// T8 — Thm 5.2 + Figures 5/6: path semantics.
fn t8_path_semantics() {
    header("T8  Path semantics & proof trees  (Thm 5.2, Figs 5/6)");
    let q = figure_5_query();
    let out = eval_paths(&q, &unit_input()).unwrap();
    println!("Figure 5 final deterministic tree: {} path(s):", out.len());
    for p in &out {
        println!("  {p}");
    }
    let target = out.iter().next().unwrap();
    let proof = prove(&q, &unit_input(), target).unwrap().unwrap();
    let stats = proof.stats();
    println!(
        "\nFigure 6 proof tree: {} nodes, depth {}, max branching {}, max path size {}",
        stats.nodes, stats.depth, stats.max_branching, stats.max_path_size
    );
    println!("(Thm 5.2 predicts branching ≤ 2 and polynomial path sizes.)");
    println!("\n{}", proof.render());
}

/// T9 — Thm 6.5/6.6: data complexity.
fn t9_data_complexity() {
    header("T9  Data complexity  (Thm 6.5/6.6: LOGSPACE / TC⁰)");
    println!("| books | tree eval (µs) | ratio to previous |");
    println!("|---|---|---|");
    let q = books_query();
    let mut prev: Option<f64> = None;
    for n in [10usize, 100, 1000, 10000] {
        let doc = bib_document(n);
        let start = Instant::now();
        let _ = eval_query(&q, &doc).unwrap();
        let us = start.elapsed().as_secs_f64() * 1e6;
        let ratio = prev.map(|p| format!("{:.1}", us / p)).unwrap_or("-".into());
        println!("| {n} | {us:.0} | {ratio} |");
        prev = Some(us);
    }
    println!("\nShape: ~10x time per 10x data (fixed query ⇒ polynomial, near-linear).");
    let small = bib_document(3);
    let a = xq_fom::eval_positional(&q, &small, u64::MAX).unwrap();
    let b: Vec<cv_xtree::Token> = eval_query(&q, &small)
        .unwrap()
        .iter()
        .flat_map(cv_xtree::Tree::tokens)
        .collect();
    println!(
        "Positional (Remark 6.7) agreement on a small instance: {}",
        a == b
    );
}

/// T10 — Thm 7.9: composition elimination.
fn t10_rewrite() {
    header("T10  Composition elimination  (Thm 7.9; exponential succinctness)");
    println!("| let-depth | |Q| | |rewritten| | blowup |");
    println!("|---|---|---|---|");
    for depth in 1..=7usize {
        let q = let_chain_query(depth);
        let (out, _) = eliminate_composition(&q, 100_000_000).unwrap();
        println!(
            "| {depth} | {} | {} | {:.1}x |",
            q.size(),
            out.size(),
            out.size() as f64 / q.size() as f64
        );
    }
    println!("\nShape: rewritten size ~doubles per extra let — the succinctness gap.");
}

/// T11 — Thm 2.2: derived vs built-in operations.
fn t11_derived() {
    header("T11  Derived operations  (Thm 2.2 equivalences)");
    use cv_monad::derived::*;
    use cv_monad::{eval, CollectionKind, Expr};
    use cv_value::parse_value;
    let pair = parse_value("<R: {1, 2, 3, 4}, S: {2, 4}>").unwrap();
    let builtin = eval(
        &Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into()),
        CollectionKind::Set,
        &pair,
    )
    .unwrap();
    let derived = eval(&derived_diff(), CollectionKind::Set, &pair).unwrap();
    println!(
        "difference: builtin = {builtin}, Example 2.4 = {derived}, agree = {}",
        builtin == derived
    );
    let sub = eval(&subset_pred("S", "R"), CollectionKind::Set, &pair).unwrap();
    println!("S ⊆ R via Example 2.3: {}", sub.is_true());
}

/// T12 — Appendix A.1: the logic-programming reduction.
fn t12_logicprog() {
    header("T12  MA → nonrecursive logic programming  (Appendix A.1)");
    let q = figure_5_query();
    let lp = ma_to_lp(&q).unwrap();
    println!(
        "Figure 5 query: |Q| = {}, |program| = {}, predicates = {}",
        q.size(),
        lp.program.size(),
        lp.program.pred_names.len()
    );
    println!("success = {}", lp_succeeds(&lp, 1_000_000).unwrap());
    println!(
        "path semantics agrees = {}",
        eval_paths(&q, &unit_input()).unwrap().len()
            == lp.program.evaluate(1_000_000).unwrap()[lp.goal].len()
    );
}

/// T13 — Thm 2.5 / Prop 6.1 / Fig 11.
fn t13_relalg() {
    header("T13  Flat encoding V_τ  (Prop 6.1 / Fig 11) & conservativity (Thm 2.5)");
    let ty = cv_value::parse_type("{<A: Dom, B: Dom>}").unwrap();
    let v = cv_value::parse_value("{<A: a, B: b>, <A: c, B: d>}").unwrap();
    let (flat, root) = xq_relalg::flat_value(&v);
    let got = cv_monad::eval(
        &xq_relalg::v_prime(&ty, root),
        cv_monad::CollectionKind::Set,
        &flat,
    )
    .unwrap();
    println!("v            = {v}");
    println!("V′(flat(v))  = {got}");
    println!("Fig 11 check = {}", got == cv_value::Value::set([v]));
    let _ = Var::root(); // silence unused import on some feature sets
}
