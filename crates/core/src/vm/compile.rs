//! AST → [`InstrSeq`] lowering.
//!
//! One pass over the [`Query`]/[`Cond`] tree emits a flat instruction
//! sequence whose execution (see [`super::exec`]) reproduces the Figure 1
//! interpreter **exactly** — same bytes, same step/item counters, same
//! errors at the same points. The interpreter's budget accounting is
//! observable (a tight budget errors mid-query), so lowering performs no
//! semantics-visible rewriting; what compilation *bakes in* instead is
//! everything that used to be re-derived per evaluation:
//!
//! * **variable scoping** — binder references become depth-indexed slot
//!   loads, free references become by-name environment loads;
//! * **the `ParPlan` shard decision** — a document-independent,
//!   conservative [`par_hint`]: `false` proves the parallel planner could
//!   never engage on any document, letting executors skip planning
//!   entirely (the sound direction `engages ⇒ hint` is property-tested in
//!   `vm_diff`);
//! * **the `cv_monad::opt` verdict** — the Figure 2 translation is
//!   optimized once ([`cv_monad::opt::optimize_report`]) and the fired
//!   rules and size delta ride along as [`MaInfo`], surfaced in the
//!   disassembly header.

use super::ir::{InstrSeq, OpCode, VarRef};
use crate::ast::{Cond, Query, Var};
use std::fmt::Write as _;

/// The compile-time `cv_monad::opt` verdict for a query's Figure 2
/// monad-algebra translation (absent when the query leaves the
/// translatable fragment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaInfo {
    /// Optimizer rules that fired, in application order.
    pub rules: Vec<&'static str>,
    /// Operator count of the naive Figure 2 translation.
    pub size_before: u64,
    /// Operator count after the `cv_monad::opt` normalization pass.
    pub size_after: u64,
}

/// A query compiled once, executed many times: the instruction sequence
/// plus everything the evaluation paths used to re-derive per request.
/// `Send + Sync` (labels, variables, and the query itself are all
/// `Arc`-backed), so the process-wide [`PlanCache`](super::PlanCache)
/// shares one instance across every service worker.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    query: Query,
    source: Option<String>,
    instrs: InstrSeq,
    slots: usize,
    par_hint: bool,
    ma: Option<MaInfo>,
}

impl CompiledPlan {
    /// The query this plan was compiled from.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The surface text the plan was compiled from, when it came through
    /// the parser (plans compiled from ASTs have none).
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// The compiled instruction sequence.
    pub fn instrs(&self) -> &InstrSeq {
        &self.instrs
    }

    /// Number of local binding slots the executor must allocate.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whether the parallel planner could possibly engage for *some*
    /// document. `false` is a proof: executors skip planning. `true` is a
    /// hint: planning may still come back non-engaging.
    pub fn par_hint(&self) -> bool {
        self.par_hint
    }

    /// The baked `cv_monad::opt` verdict, if the query translates.
    pub fn ma(&self) -> Option<&MaInfo> {
        self.ma.as_ref()
    }

    /// The disassembly listing: a header (source, slot count, par hint,
    /// optimizer verdict) followed by one line per instruction — the
    /// substrate of the `vm_golden` golden tests.
    pub fn disasm(&self) -> String {
        let mut out = String::new();
        match &self.source {
            Some(src) => writeln!(out, "; query  {src}").unwrap(),
            None => writeln!(out, "; query  {}", self.query).unwrap(),
        }
        writeln!(
            out,
            "; slots  {}   par_hint {}",
            self.slots,
            if self.par_hint { "yes" } else { "no" }
        )
        .unwrap();
        match &self.ma {
            Some(ma) if ma.rules.is_empty() => {
                writeln!(out, "; ma.opt {} ops (no rules fired)", ma.size_after).unwrap();
            }
            Some(ma) => {
                writeln!(
                    out,
                    "; ma.opt {} -> {} ops via [{}]",
                    ma.size_before,
                    ma.size_after,
                    ma.rules.join(", ")
                )
                .unwrap();
            }
            None => writeln!(out, "; ma.opt not translatable").unwrap(),
        }
        write!(out, "{}", self.instrs).unwrap();
        out
    }
}

/// Compiles a query into a [`CompiledPlan`]. Deterministic: equal queries
/// yield equal instruction sequences.
pub fn compile_query(q: &Query) -> CompiledPlan {
    compile_with_source(q, None)
}

/// Parses surface text and compiles it, recording the text in the plan
/// (it becomes the disassembly header and the [`PlanCache`](super::PlanCache)
/// key).
pub fn compile_query_text(src: &str) -> Result<CompiledPlan, crate::QueryParseError> {
    let q = crate::parse_query(src)?;
    Ok(compile_with_source(&q, Some(src.to_string())))
}

fn compile_with_source(q: &Query, source: Option<String>) -> CompiledPlan {
    let mut c = Compiler {
        ops: Vec::new(),
        scope: Vec::new(),
        slots: 0,
    };
    c.query(q);
    let ma = crate::translate::ma_query(q).ok().map(|expr| {
        let (_, report) = cv_monad::opt::optimize_report(&expr, cv_monad::CollectionKind::List);
        MaInfo {
            rules: report.rules,
            size_before: report.size_before,
            size_after: report.size_after,
        }
    });
    CompiledPlan {
        query: q.clone(),
        source,
        instrs: InstrSeq::from_ops(c.ops),
        slots: c.slots,
        par_hint: par_hint(q),
        ma,
    }
}

struct Compiler {
    ops: Vec<OpCode>,
    /// Live binders, outermost first — index is the slot.
    scope: Vec<Var>,
    slots: usize,
}

impl Compiler {
    fn emit(&mut self, op: OpCode) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn depth(&self) -> u16 {
        self.scope.len() as u16
    }

    /// Resolves a reference: innermost matching binder wins (lexical
    /// shadowing), otherwise the name stays free.
    fn resolve(&self, v: &Var) -> VarRef {
        match self.scope.iter().rposition(|b| b == v) {
            Some(slot) => VarRef::Local(slot as u16, v.clone()),
            None => VarRef::Free(v.clone()),
        }
    }

    fn bind(&mut self, v: &Var) -> u16 {
        let slot = self.depth();
        self.scope.push(v.clone());
        self.slots = self.slots.max(self.scope.len());
        slot
    }

    fn unbind(&mut self) {
        self.scope.pop();
    }

    fn query(&mut self, q: &Query) {
        self.emit(OpCode::TickQ(self.depth()));
        match q {
            Query::Empty => {
                self.emit(OpCode::PushUnit);
            }
            Query::Elem(a, body) => {
                self.query(body);
                self.emit(OpCode::MakeElem(a.clone()));
            }
            Query::Seq(x, y) => {
                self.query(x);
                self.query(y);
                self.emit(OpCode::Concat);
            }
            Query::Var(v) => {
                let r = self.resolve(v);
                self.emit(OpCode::Load(r));
            }
            Query::Step(base, axis, test) => {
                self.query(base);
                self.emit(OpCode::AxisStep(*axis, test.clone()));
            }
            // `let` is `for` in this dialect (see `Query::Let`): both
            // compile to the same jump-backed loop the interpreter runs.
            Query::For(v, source, body) | Query::Let(v, source, body) => {
                self.query(source);
                self.emit(OpCode::IterInit);
                let head = self.here();
                let next = self.emit(OpCode::IterNext {
                    slot: 0,
                    var: v.clone(),
                    exit: 0,
                });
                let slot = self.bind(v);
                self.query(body);
                self.unbind();
                self.emit(OpCode::IterAccum { back: head });
                let exit = self.here();
                self.ops[next] = OpCode::IterNext {
                    slot,
                    var: v.clone(),
                    exit,
                };
            }
            Query::If(cond, then) => {
                self.cond(cond);
                let jf = self.emit(OpCode::JumpIfFalse(0));
                self.query(then);
                let jend = self.emit(OpCode::Jump(0));
                // The false branch pushes () without an extra tick — the
                // interpreter's `Ok(Vec::new())`.
                self.ops[jf] = OpCode::JumpIfFalse(self.here());
                self.emit(OpCode::PushUnit);
                self.ops[jend] = OpCode::Jump(self.here());
            }
        }
    }

    fn cond(&mut self, c: &Cond) {
        self.emit(OpCode::TickC);
        match c {
            Cond::True => {
                self.emit(OpCode::PushBool(true));
            }
            Cond::VarEq(x, y, mode) => {
                let (rx, ry) = (self.resolve(x), self.resolve(y));
                self.emit(OpCode::CmpVars(rx, ry, *mode));
            }
            Cond::ConstEq(x, a, mode) => {
                let rx = self.resolve(x);
                self.emit(OpCode::CmpConst(rx, a.clone(), *mode));
            }
            Cond::Query(q) => {
                self.query(q);
                self.emit(OpCode::NonEmpty);
            }
            Cond::Some(v, source, sat) => self.quant(v, source, sat, true),
            Cond::Every(v, source, sat) => self.quant(v, source, sat, false),
            Cond::And(a, b) => {
                self.cond(a);
                let sc = self.emit(OpCode::AndJump(0));
                self.cond(b);
                self.ops[sc] = OpCode::AndJump(self.here());
            }
            Cond::Or(a, b) => {
                self.cond(a);
                let sc = self.emit(OpCode::OrJump(0));
                self.cond(b);
                self.ops[sc] = OpCode::OrJump(self.here());
            }
            Cond::Not(inner) => {
                self.cond(inner);
                self.emit(OpCode::NotBool);
            }
        }
    }

    fn quant(&mut self, v: &Var, source: &Query, sat: &Cond, some: bool) {
        self.query(source);
        self.emit(OpCode::QuantInit);
        let head = self.here();
        let next = self.emit(OpCode::QuantNext {
            slot: 0,
            var: v.clone(),
            some,
            exit: 0,
        });
        let slot = self.bind(v);
        self.cond(sat);
        self.unbind();
        let check = self.emit(OpCode::QuantCheck {
            some,
            back: head,
            exit: 0,
        });
        let exit = self.here();
        self.ops[next] = OpCode::QuantNext {
            slot,
            var: v.clone(),
            some,
            exit,
        };
        self.ops[check] = OpCode::QuantCheck {
            some,
            back: head,
            exit,
        };
    }
}

/// Document-independent conservative engagement analysis: `true` iff the
/// parallel planner ([`crate::ParPlan`]) could produce an engaging plan
/// for *some* document. Mirrors the planner's traversal (element bodies,
/// `Seq` branches, `for`/`let` loops) and its source resolver's accepted
/// shapes syntactically, overapproximating the parts that need a document
/// (variable pinning, filter-predicate verdicts). Soundness — `ParPlan`
/// engages ⇒ hint is `true` — is property-tested in `vm_diff`.
pub fn par_hint(q: &Query) -> bool {
    match q {
        Query::Elem(_, body) => par_hint(body),
        Query::Seq(a, b) => par_hint(a) || par_hint(b),
        // A loop shards (or hoists into a body that may shard) only when
        // its source has a resolvable shape; resolution failure makes the
        // whole node opaque, so the body cannot rescue it.
        Query::For(_, source, _) | Query::Let(_, source, _) => resolvable_shape(source),
        _ => false,
    }
}

/// Syntactic mirror of the planner's `resolve`: the shapes that *can*
/// resolve to arena node sets. Variables overapproximate (the planner
/// additionally requires `$root` or a pinned binder) and filter loops
/// overapproximate the predicate verdict.
fn resolvable_shape(source: &Query) -> bool {
    match source {
        Query::Var(_) => true,
        Query::Step(base, _, _) => resolvable_shape(base),
        Query::For(w, inner, body) | Query::Let(w, inner, body) => {
            resolvable_shape(inner)
                && match &**body {
                    // Identity loop: `for $w in σ return $w`.
                    Query::Var(v) => v == w,
                    // Filter loop: `for $w in σ where φ return $w`.
                    Query::If(_, then) => matches!(&**then, Query::Var(v) if v == w),
                    _ => false,
                }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn compiled(src: &str) -> CompiledPlan {
        compile_query(&parse_query(src).unwrap())
    }

    #[test]
    fn compile_is_deterministic() {
        let q = parse_query("for $x in $root//a return <w>{ $x/* }</w>").unwrap();
        let a = compile_query(&q);
        let b = compile_query(&q);
        assert_eq!(a.instrs(), b.instrs());
        assert_eq!(a.slots(), b.slots());
        assert_eq!(a.par_hint(), b.par_hint());
    }

    #[test]
    fn binders_resolve_to_slots_and_free_vars_stay_free() {
        let plan = compiled("for $x in $root/a return $x");
        let loads: Vec<&OpCode> = plan
            .instrs()
            .ops()
            .iter()
            .filter(|op| matches!(op, OpCode::Load(_)))
            .collect();
        assert_eq!(loads.len(), 2, "source $root + body $x");
        assert!(matches!(loads[0], OpCode::Load(VarRef::Free(v)) if v.name() == "root"));
        assert!(matches!(loads[1], OpCode::Load(VarRef::Local(0, v)) if v.name() == "x"));
    }

    #[test]
    fn shadowing_resolves_to_the_innermost_slot() {
        let plan = compiled("for $x in $root/a return for $x in $x/* return $x");
        let locals: Vec<u16> = plan
            .instrs()
            .ops()
            .iter()
            .filter_map(|op| match op {
                OpCode::Load(VarRef::Local(slot, _)) => Some(*slot),
                _ => None,
            })
            .collect();
        // Inner source `$x/*` sees the outer binder (slot 0); the body's
        // `$x` sees the inner binder (slot 1).
        assert_eq!(locals, vec![0, 1]);
        assert_eq!(plan.slots(), 2);
    }

    #[test]
    fn par_hint_tracks_planner_shapes() {
        for (src, want) in [
            ("for $x in $root/a return <w>{ $x }</w>", true),
            ("<out>{ for $x in $root//a return $x }</out>", true),
            ("let $z := $root return for $x in $z/* return $x", true),
            (
                "for $x in (for $w in $root/* where $w/b return $w) return $x",
                true,
            ),
            // No loop at all, or a non-resolvable source: never shards.
            ("$root/*", false),
            ("<a/>", false),
            ("for $x in <a/> return $x", false),
            ("for $x in (for $w in $root/* return <c/>) return $x", false),
            ("if ($root = $root) then for $x in $root/* return $x", false),
        ] {
            assert_eq!(par_hint(&parse_query(src).unwrap()), want, "{src}");
        }
    }

    #[test]
    fn ma_verdict_is_baked_for_translatable_queries() {
        let plan = compiled("for $x in $root/a return <w>{ $x }</w>");
        let ma = plan.ma().expect("query translates");
        assert!(ma.size_after <= ma.size_before);
        // The Figure 2 scaffolding always leaves the optimizer something.
        assert!(!ma.rules.is_empty());
    }

    #[test]
    fn disasm_lists_header_and_every_instruction() {
        let plan = compiled("for $x in $root/a return $x");
        let d = plan.disasm();
        assert!(d.starts_with("; query"));
        assert!(d.contains("par_hint yes"));
        assert_eq!(
            d.lines()
                .filter(|l| l.trim_start().starts_with('@'))
                .count(),
            plan.instrs().len()
        );
    }
}
