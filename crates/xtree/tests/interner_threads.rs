//! Concurrency smoke tests for the sharded global label interner: the
//! invariants that make `LabelId` (and hence [`ArenaDoc`]) safe to share —
//! same string ⇒ same id on every thread, distinct strings ⇒ distinct ids,
//! resolution round-trips — asserted while 8 threads intern the same label
//! set simultaneously in different orders.

use cv_xtree::{ArenaDoc, Axis, DoublingFamily, LabelId, NodeTest};
use std::collections::HashMap;

const WORKERS: usize = 8;

#[test]
fn concurrent_interning_preserves_id_equality_and_ordering() {
    // A label set large enough to spread over every shard, interned by all
    // workers in rotated orders so lock acquisition interleaves.
    let labels: Vec<String> = (0..64).map(|i| format!("shared-label-{i}")).collect();
    let per_thread: Vec<Vec<(String, LabelId)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let labels = &labels;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..4 {
                        for i in 0..labels.len() {
                            let label = &labels[(i + w * 7 + round) % labels.len()];
                            seen.push((label.clone(), LabelId::intern(label)));
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Equality invariant: every thread agrees on every label's id, and the
    // raw handles agree too (ids are plain data, not per-thread handles).
    let mut canon: HashMap<String, LabelId> = HashMap::new();
    for thread in &per_thread {
        for (label, id) in thread {
            let entry = canon.entry(label.clone()).or_insert(*id);
            assert_eq!(entry, id, "label {label} interned to two different ids");
            assert_eq!(entry.index(), id.index());
        }
    }
    // Distinctness (the ordering side of the invariant: ids are distinct
    // handles whose order is stable, even if not lexicographic).
    let mut ids: Vec<u32> = canon.values().map(|id| id.index()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        labels.len(),
        "distinct labels must get distinct ids"
    );
    // Resolution round-trips on a fresh thread (its resolve cache is cold).
    std::thread::scope(|scope| {
        scope
            .spawn(|| {
                for (label, id) in &canon {
                    assert_eq!(id.label().as_str(), label.as_str());
                    assert_eq!(LabelId::lookup(label), Some(*id));
                }
            })
            .join()
            .unwrap();
    });
}

#[test]
fn arena_docs_cross_and_are_shared_between_threads() {
    // Send: build on a worker, ship the whole document back.
    let doc: ArenaDoc = std::thread::scope(|scope| {
        scope
            .spawn(|| DoublingFamily::Binary.arena(8))
            .join()
            .unwrap()
    });
    let want = doc.axis(doc.root(), Axis::Descendant, &NodeTest::tag("a"));

    // Sync: scan the same document from 8 threads at once; every scan
    // (and every label resolution) must agree with the builder thread's.
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let doc = &doc;
            let want = &want;
            scope.spawn(move || {
                let got = doc.axis(doc.root(), Axis::Descendant, &NodeTest::tag("a"));
                assert_eq!(&got, want);
                assert_eq!(doc.label(doc.root()).as_str(), "r");
                assert_eq!(doc.to_tree(), DoublingFamily::Binary.tree(8));
            });
        }
    });
}
