//! E12 (Appendix A.1): monad algebra through the logic-programming
//! reduction vs the path semantics.
use criterion::{criterion_group, criterion_main, Criterion};
use xq_logicprog::{lp_succeeds, ma_to_lp};
use xq_paths::{eval_paths, figure_5_query, unit_input};

fn bench(c: &mut Criterion) {
    let q = figure_5_query();
    let mut g = c.benchmark_group("logicprog");
    g.sample_size(20);
    g.bench_function("translate", |b| {
        b.iter(|| ma_to_lp(&q).unwrap().program.size())
    });
    g.bench_function("lp_success", |b| {
        let lp = ma_to_lp(&q).unwrap();
        b.iter(|| lp_succeeds(&lp, 1_000_000).unwrap())
    });
    g.bench_function("path_semantics_reference", |b| {
        b.iter(|| eval_paths(&q, &unit_input()).unwrap().len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
