//! The arena-backed, label-interned document store.
//!
//! Koch's complexity bounds (PODS 2005) are stated over data trees whose
//! *size* dominates everything; the [`Tree`] representation spends that
//! budget on one `Rc<TreeNode>` allocation per node and one `Rc<str>` per
//! label. This module provides the flat alternative suggested by the §5.1
//! path-set encoding (and the flat-value encoding of Prop 6.1): all node
//! data lives in contiguous, [`NodeId`]-indexed parallel vectors, and
//! labels are interned process-wide into `u32` [`LabelId`]s, making
//! label equality a single integer compare.
//!
//! Layout of an [`ArenaDoc`] (ids are assigned in preorder, so comparing
//! ids compares document order, exactly as in [`Document`](crate::Document)):
//!
//! ```text
//! labels:       Vec<LabelId>     one per node, resolved via the interner
//! parents:      Vec<u32>         parent id (root stores NO_PARENT)
//! child_spans:  Vec<Range<u32>>  per-node contiguous span into child_ids
//! child_ids:    Vec<NodeId>      all child lists, concatenated
//! subtree_ends: Vec<u32>         preorder end of each node's subtree
//! ```
//!
//! The descendants of `v` are exactly the id range
//! `v+1 .. subtree_ends[v]`, so a descendant axis scan is a linear walk
//! over a `u32` range with no pointer chasing and no `Rc` refcount
//! traffic — the core of the T15 speedup over [`Tree::axis`].
//!
//! **Sharing across threads.** Labels are interned into one *global*,
//! lock-striped [`LabelInterner`]: the label hash selects one of
//! [`LabelInterner::SHARDS`] shards, each an independent
//! `RwLock<Vec<Arc<str>>> + reverse map`, so concurrent interning from
//! many threads contends only when two threads hit the same shard at the
//! same instant, and the common case (the label is already interned) takes
//! a read lock only. A [`LabelId`] therefore means the same label on
//! *every* thread, which makes `ArenaDoc: Send + Sync` — a document can be
//! built on one thread and scanned from many (the basis of
//! `xq_core::par`'s data-parallel evaluation). Hot resolution
//! ([`LabelId::label`]) goes through a per-thread cache of already-resolved
//! [`Label`]s, so repeated serialization never touches the shard locks.

use crate::{Axis, Label, NodeId, NodeTest, Token, Tree, XmlError};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::{Arc, LazyLock, PoisonError, RwLock};

/// An interned label: a `u32` handle into the global sharded
/// [`LabelInterner`]. Equality and hashing are O(1) integer operations;
/// *ordering* is intentionally not derived, because ids are assigned in
/// interning order, not lexicographic order — compare via [`LabelId::label`].
///
/// The interner is process-global, so a `LabelId` is meaningful on every
/// thread: the same string interns to the same id everywhere, and ids are
/// freely `Send`/`Sync` (they are what makes [`ArenaDoc`] shareable).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(u32);

impl LabelId {
    /// Packs a (shard, slot-within-shard) pair into the `u32` handle: the
    /// low [`SHARD_BITS`](LabelInterner::SHARD_BITS) bits address the
    /// shard, so resolution never searches.
    fn from_parts(shard: usize, slot: u32) -> LabelId {
        debug_assert!(shard < LabelInterner::SHARDS);
        LabelId((slot << LabelInterner::SHARD_BITS) | shard as u32)
    }

    fn shard(self) -> usize {
        (self.0 & (LabelInterner::SHARDS as u32 - 1)) as usize
    }

    fn slot(self) -> usize {
        (self.0 >> LabelInterner::SHARD_BITS) as usize
    }

    /// Interns `s` in the global interner and returns its id. The same
    /// string always receives the same id, on every thread.
    pub fn intern(s: impl AsRef<str>) -> LabelId {
        interner().intern(s.as_ref())
    }

    /// Resolves the id back to its [`Label`]. The first resolution on a
    /// thread takes a shard read lock; later ones hit the thread's resolve
    /// cache (a cheap `Rc` clone).
    pub fn label(self) -> Label {
        RESOLVE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let i = self.0 as usize;
            if i >= cache.len() {
                cache.resize(i + 1, None);
            }
            if let Some(l) = &cache[i] {
                return l.clone();
            }
            let label = Label::new(interner().resolve(self));
            cache[i] = Some(label.clone());
            label
        })
    }

    /// The id `s` was interned under, if any — a lookup that, unlike
    /// [`LabelId::intern`], never grows the table. Queries use this: a
    /// never-interned label cannot occur in any document in this process.
    ///
    /// Found ids are cached per thread (ids are immutable once assigned,
    /// so positive entries can never go stale), keeping hot repeated
    /// lookups — e.g. a `ConstEq` condition in an innermost nested loop —
    /// off the shard locks. Misses are *not* cached: another thread may
    /// intern the label later, so a negative answer is only valid at the
    /// moment it is given.
    pub fn lookup(s: &str) -> Option<LabelId> {
        LOOKUP_CACHE.with(|cache| {
            if let Some(&id) = cache.borrow().get(s) {
                return Some(id);
            }
            let found = interner().lookup(s)?;
            cache.borrow_mut().insert(s.to_owned().into(), found);
            Some(found)
        })
    }

    /// The raw handle (useful for dense per-label side tables).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LabelId({} = {:?})", self.0, self.label().as_str())
    }
}

impl From<&str> for LabelId {
    fn from(s: &str) -> LabelId {
        LabelId::intern(s)
    }
}

impl From<&Label> for LabelId {
    fn from(l: &Label) -> LabelId {
        LabelId::intern(l.as_str())
    }
}

/// A compact, thread-portable token: one symbol of a tag string with its
/// label interned. An `IToken` is `Copy` and 4 bytes + discriminant (no
/// refcount traffic at all), so the data-parallel evaluators use it to
/// ship per-chunk results back to the merging thread, where
/// [`IToken::resolve`] reconstitutes ordinary tokens.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IToken {
    /// `<a>`
    Open(LabelId),
    /// `</a>`
    Close(LabelId),
}

impl IToken {
    /// Interns the token's label.
    pub fn intern(t: &Token) -> IToken {
        match t {
            Token::Open(l) => IToken::Open(LabelId::intern(l.as_str())),
            Token::Close(l) => IToken::Close(LabelId::intern(l.as_str())),
        }
    }

    /// Resolves back to an ordinary [`Token`].
    pub fn resolve(self) -> Token {
        match self {
            IToken::Open(id) => Token::Open(id.label()),
            IToken::Close(id) => Token::Close(id.label()),
        }
    }
}

/// Interns a whole tag string (see [`IToken::intern`]).
pub fn intern_tokens(tokens: &[Token]) -> Vec<IToken> {
    tokens.iter().map(IToken::intern).collect()
}

/// Resolves a whole interned tag string (see [`IToken::resolve`]).
pub fn resolve_tokens(itokens: &[IToken]) -> Vec<Token> {
    itokens.iter().map(|t| t.resolve()).collect()
}

/// Rebuilds a forest of [`Tree`]s straight from interned tokens — the
/// merge path of the data-parallel evaluators. Equivalent to
/// `Tree::forest_from_tokens(&resolve_tokens(itokens))` (identical error
/// messages), but with no intermediate `Vec<Token>` materialization:
/// labels resolve through the per-thread cache exactly once per token, so
/// splicing many per-worker `IToken` buffers into one result forest is a
/// single pass over plain `Copy` data.
pub fn forest_from_itokens(itokens: &[IToken]) -> Result<Vec<Tree>, crate::XmlError> {
    struct Frame {
        label: Label,
        children: Vec<Tree>,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut roots: Vec<Tree> = Vec::new();
    for (i, tok) in itokens.iter().enumerate() {
        match tok {
            IToken::Open(id) => stack.push(Frame {
                label: id.label(),
                children: Vec::new(),
            }),
            IToken::Close(id) => {
                let l = id.label();
                let frame = stack.pop().ok_or_else(|| crate::XmlError {
                    offset: i,
                    message: format!("unmatched closing tag </{l}>"),
                })?;
                if frame.label != l {
                    return Err(crate::XmlError {
                        offset: i,
                        message: format!("mismatched tags: <{}> closed by </{l}>", frame.label),
                    });
                }
                let t = Tree::node(frame.label, frame.children);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(t),
                    None => roots.push(t),
                }
            }
        }
    }
    if let Some(f) = stack.last() {
        return Err(crate::XmlError {
            offset: itokens.len(),
            message: format!("unclosed tag <{}>", f.label),
        });
    }
    Ok(roots)
}

/// One lock stripe of the global interner: the labels owned by this shard
/// (slot-indexed) plus the reverse map. `Arc<str>` rather than [`Label`]
/// (`Rc<str>`) so the table is shareable across threads.
#[derive(Default)]
struct Shard {
    labels: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

/// The global string ⇄ id table behind [`LabelId`]: an array of
/// [`SHARDS`](LabelInterner::SHARDS) independently locked stripes, selected
/// by label hash. Use the [`LabelId`] associated functions rather than
/// holding an interner directly.
pub struct LabelInterner {
    shards: Vec<RwLock<Shard>>,
}

impl LabelInterner {
    /// log2 of the shard count; the low bits of a [`LabelId`] name the
    /// shard, the high bits the slot within it.
    const SHARD_BITS: u32 = 4;
    /// Number of lock stripes. Interning threads contend only within a
    /// stripe, and each stripe still addresses `2^28` distinct labels.
    pub const SHARDS: usize = 1 << Self::SHARD_BITS;

    fn new() -> LabelInterner {
        LabelInterner {
            shards: (0..Self::SHARDS).map(|_| RwLock::default()).collect(),
        }
    }

    /// FNV-1a over the label bytes — a fixed (per-process-stable) hash, so
    /// shard selection is deterministic and never consults `RandomState`.
    fn shard_of(s: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h & (Self::SHARDS as u64 - 1)) as usize
    }

    fn intern(&self, s: &str) -> LabelId {
        let idx = Self::shard_of(s);
        let shard = &self.shards[idx];
        // Shard locks recover from poisoning rather than propagating it:
        // the table is append-only (push a label, insert its id), so a
        // panic between the two at worst strands one unreachable slot —
        // every id already handed out stays resolvable, which is what a
        // serving pool that *contains* panics needs from process-global
        // state.
        // Fast path: already interned — read lock only.
        if let Some(&slot) = shard
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .ids
            .get(s)
        {
            return LabelId::from_parts(idx, slot);
        }
        let mut shard = shard.write().unwrap_or_else(PoisonError::into_inner);
        // Double-check: another thread may have interned `s` between the
        // read unlock and the write lock.
        if let Some(&slot) = shard.ids.get(s) {
            return LabelId::from_parts(idx, slot);
        }
        let slot = u32::try_from(shard.labels.len())
            .ok()
            .filter(|&n| n < 1 << (32 - Self::SHARD_BITS))
            .expect("too many distinct labels in one interner shard");
        let label: Arc<str> = Arc::from(s);
        shard.labels.push(label.clone());
        shard.ids.insert(label, slot);
        LabelId::from_parts(idx, slot)
    }

    fn lookup(&self, s: &str) -> Option<LabelId> {
        let idx = Self::shard_of(s);
        let shard = self.shards[idx]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        shard.ids.get(s).map(|&slot| LabelId::from_parts(idx, slot))
    }

    fn resolve(&self, id: LabelId) -> Arc<str> {
        self.shards[id.shard()]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .labels[id.slot()]
        .clone()
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .labels
                    .len()
            })
            .sum()
    }
}

static INTERNER: LazyLock<LabelInterner> = LazyLock::new(LabelInterner::new);

fn interner() -> &'static LabelInterner {
    &INTERNER
}

thread_local! {
    /// Per-thread resolve cache: raw id → already-materialized [`Label`].
    /// Keeps the hot serialization paths (`tokens_of`, `xml_of`) off the
    /// shard locks entirely after the first resolution per label.
    static RESOLVE_CACHE: RefCell<Vec<Option<Label>>> = const { RefCell::new(Vec::new()) };
    /// Per-thread *positive* lookup cache: name → id for labels this
    /// thread has already looked up successfully (see [`LabelId::lookup`]).
    static LOOKUP_CACHE: RefCell<HashMap<Box<str>, LabelId>> = RefCell::new(HashMap::new());
}

/// Number of distinct labels interned process-wide so far (test aid; under
/// concurrent tests this can grow at any time — assert on
/// [`LabelId::lookup`] of specific strings rather than on counts).
pub fn interned_labels() -> usize {
    interner().len()
}

const NO_PARENT: u32 = u32::MAX;

/// An arena-backed document: one tree stored as [`NodeId`]-indexed
/// parallel vectors with interned labels. See the module docs for the
/// layout and the [`Document`](crate::Document) comparison.
pub struct ArenaDoc {
    labels: Vec<LabelId>,
    parents: Vec<u32>,
    child_spans: Vec<Range<u32>>,
    child_ids: Vec<NodeId>,
    subtree_ends: Vec<u32>,
    // Every field is a vector of plain data (`LabelId`s resolve through
    // the global interner), so `ArenaDoc` is automatically `Send + Sync`
    // — asserted at compile time in the test suite.
}

/// Incremental preorder construction of an [`ArenaDoc`]: call
/// [`open`](ArenaBuilder::open)/[`close`](ArenaBuilder::close) in tag-string
/// order (or [`leaf`](ArenaBuilder::leaf)), then [`finish`](ArenaBuilder::finish).
/// Generators use this to build documents arena-natively, with no `Rc`
/// tree ever materialized.
pub struct ArenaBuilder {
    doc: ArenaDoc,
    /// Open nodes: (node, offset into `scratch` where its child list
    /// starts). Completed-but-unflushed sibling ids accumulate in the one
    /// shared `scratch` stack, so building performs no per-node
    /// allocation (a fresh `Vec` per open node would).
    stack: Vec<(u32, usize)>,
    scratch: Vec<NodeId>,
    roots: usize,
}

impl Default for ArenaBuilder {
    fn default() -> ArenaBuilder {
        ArenaBuilder::new()
    }
}

impl ArenaBuilder {
    /// An empty builder.
    pub fn new() -> ArenaBuilder {
        ArenaBuilder::with_capacity(0)
    }

    /// An empty builder with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> ArenaBuilder {
        ArenaBuilder {
            doc: ArenaDoc {
                labels: Vec::with_capacity(nodes),
                parents: Vec::with_capacity(nodes),
                child_spans: Vec::with_capacity(nodes),
                child_ids: Vec::with_capacity(nodes.saturating_sub(1)),
                subtree_ends: Vec::with_capacity(nodes),
            },
            stack: Vec::new(),
            scratch: Vec::new(),
            roots: 0,
        }
    }

    /// Opens a node (`<a>`): assigns the next preorder id.
    pub fn open(&mut self, label: impl Into<LabelId>) -> NodeId {
        let id = u32::try_from(self.doc.labels.len()).expect("more than u32::MAX nodes");
        self.doc.labels.push(label.into());
        self.doc
            .parents
            .push(self.stack.last().map_or(NO_PARENT, |(p, _)| *p));
        self.doc.child_spans.push(0..0);
        self.doc.subtree_ends.push(0);
        if self.stack.is_empty() {
            self.roots += 1;
        }
        self.stack.push((id, self.scratch.len()));
        NodeId(id)
    }

    /// Closes the innermost open node (`</a>`), flushing its child list —
    /// the top `scratch` segment — into the contiguous `child_ids` vector.
    pub fn close(&mut self) {
        let (id, kids_from) = self.stack.pop().expect("close without a matching open");
        let start = self.doc.child_ids.len() as u32;
        self.doc
            .child_ids
            .extend_from_slice(&self.scratch[kids_from..]);
        self.scratch.truncate(kids_from);
        self.doc.child_spans[id as usize] = start..self.doc.child_ids.len() as u32;
        self.doc.subtree_ends[id as usize] = self.doc.labels.len() as u32;
        // Register as a completed sibling for the enclosing node (if any).
        self.scratch.push(NodeId(id));
    }

    /// `open` + `close`: a leaf node (`<a/>`).
    pub fn leaf(&mut self, label: impl Into<LabelId>) -> NodeId {
        let id = self.open(label);
        self.close();
        id
    }

    /// Finishes construction. Panics unless exactly one root was built and
    /// every `open` was closed (malformed input should be rejected earlier,
    /// by [`ArenaDoc::parse`]).
    pub fn finish(self) -> ArenaDoc {
        assert!(self.stack.is_empty(), "unclosed node in ArenaBuilder");
        assert_eq!(self.roots, 1, "ArenaDoc holds exactly one root");
        self.doc
    }
}

impl ArenaDoc {
    /// Builds the arena for `tree` (lossless; see [`ArenaDoc::to_tree`]).
    pub fn from_tree(tree: &Tree) -> ArenaDoc {
        let mut b = ArenaBuilder::with_capacity(tree.size() as usize);
        // Explicit stack: (subtree, next-child index); avoids deep recursion
        // on comb-shaped documents.
        let mut stack: Vec<(&Tree, usize)> = Vec::new();
        b.open(tree.label());
        stack.push((tree, 0));
        while let Some((t, next)) = stack.last_mut() {
            if let Some(c) = t.children().get(*next) {
                *next += 1;
                b.open(c.label());
                stack.push((c, 0));
            } else {
                b.close();
                stack.pop();
            }
        }
        b.finish()
    }

    /// Parses an XML document (the paper's tag-string dialect) directly
    /// into the arena — no intermediate [`Tree`] is built. Error messages
    /// are identical to [`parse_tree`](crate::parse_tree)'s on the same
    /// input, so the two representations are interchangeable in error
    /// paths too.
    pub fn parse(src: &str) -> Result<ArenaDoc, XmlError> {
        let tokens = crate::parse::tokenize(src)?;
        ArenaDoc::from_tokens(&tokens)
    }

    /// Rebuilds a single-rooted document from a token stream, with the
    /// same error messages as [`Tree::forest_from_tokens`] plus the
    /// [`parse_tree`](crate::parse_tree) single-root check.
    pub fn from_tokens(tokens: &[Token]) -> Result<ArenaDoc, XmlError> {
        let mut b = ArenaBuilder::with_capacity(tokens.len() / 2);
        // Open labels, for the mismatch/unclosed diagnostics.
        let mut open: Vec<Label> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            match tok {
                Token::Open(l) => {
                    b.open(l);
                    open.push(l.clone());
                }
                Token::Close(l) => {
                    let top = open.pop().ok_or_else(|| XmlError {
                        offset: i,
                        message: format!("unmatched closing tag </{l}>"),
                    })?;
                    if &top != l {
                        return Err(XmlError {
                            offset: i,
                            message: format!("mismatched tags: <{top}> closed by </{l}>"),
                        });
                    }
                    b.close();
                }
            }
        }
        if let Some(l) = open.last() {
            return Err(XmlError {
                offset: tokens.len(),
                message: format!("unclosed tag <{l}>"),
            });
        }
        if b.roots != 1 {
            return Err(XmlError {
                offset: 0,
                message: format!("expected exactly one root element, found {}", b.roots),
            });
        }
        Ok(b.finish())
    }

    /// The root node (always id 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the document has no nodes (never after a successful build).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The interned label of `id` — O(1) to compare against another node's.
    pub fn label_id(&self, id: NodeId) -> LabelId {
        self.labels[id.0 as usize]
    }

    /// The resolved label of `id`.
    pub fn label(&self, id: NodeId) -> Label {
        self.label_id(id).label()
    }

    /// The parent of `id`, if any.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        match self.parents[id.0 as usize] {
            NO_PARENT => None,
            p => Some(NodeId(p)),
        }
    }

    /// The children of `id` in document order, as a contiguous slice.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let span = self.child_spans[id.0 as usize].clone();
        &self.child_ids[span.start as usize..span.end as usize]
    }

    /// Whether `id` is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        let span = &self.child_spans[id.0 as usize];
        span.start == span.end
    }

    /// Proper descendants of `id` in document order — a pure id-range scan.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (id.0 + 1..self.subtree_ends[id.0 as usize]).map(NodeId)
    }

    /// Whether `desc` lies in the subtree rooted at `anc` (inclusive).
    pub fn is_in_subtree(&self, anc: NodeId, desc: NodeId) -> bool {
        anc.0 <= desc.0 && desc.0 < self.subtree_ends[anc.0 as usize]
    }

    /// Number of nodes in the subtree of `id` (inclusive).
    pub fn subtree_len(&self, id: NodeId) -> usize {
        (self.subtree_ends[id.0 as usize] - id.0) as usize
    }

    /// Height of the subtree of `id` (a leaf has height 1). Iterative:
    /// height(v) = 1 + max(height(children)), computed in reverse preorder.
    pub fn height(&self, id: NodeId) -> u64 {
        let start = id.0 as usize;
        let end = self.subtree_ends[start] as usize;
        let mut h = vec![1u64; end - start];
        for v in (start..end).rev() {
            for c in self.children(NodeId(v as u32)) {
                h[v - start] = h[v - start].max(1 + h[c.0 as usize - start]);
            }
        }
        h[0]
    }

    /// The nodes reached from `id` via `axis` whose labels pass `test`, in
    /// document order — mirrors [`Document::axis`](crate::Document::axis).
    pub fn axis(&self, id: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        // Node tests resolve to one interned-id compare (or none for `*`).
        // Lookup only — querying a foreign tag must not grow the interner,
        // and a never-interned tag matches nothing.
        let want: Option<LabelId> = match test {
            NodeTest::Tag(l) => match LabelId::lookup(l.as_str()) {
                Some(w) => Some(w),
                None => return Vec::new(),
            },
            NodeTest::Wildcard => None,
        };
        let pass = |n: NodeId| want.is_none_or(|w| self.label_id(n) == w);
        let mut out = Vec::new();
        match axis {
            Axis::Child => out.extend(self.children(id).iter().copied().filter(|&c| pass(c))),
            Axis::Descendant => out.extend(self.descendants(id).filter(|&c| pass(c))),
            Axis::SelfAxis => {
                if pass(id) {
                    out.push(id);
                }
            }
            Axis::DescendantOrSelf => {
                if pass(id) {
                    out.push(id);
                }
                out.extend(self.descendants(id).filter(|&c| pass(c)));
            }
        }
        out
    }

    /// Deep (value) equality of the subtrees at `a` and `b`. Interning
    /// makes the per-node label compare O(1); the shape compare walks the
    /// two preorder ranges in lockstep.
    pub fn deep_eq(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let n = self.subtree_len(a);
        if n != self.subtree_len(b) {
            return false;
        }
        // Equal-size preorder ranges are equal trees iff labels and child
        // counts agree position-wise.
        (0..n as u32).all(|i| {
            let (x, y) = (NodeId(a.0 + i), NodeId(b.0 + i));
            self.label_id(x) == self.label_id(y) && self.children(x).len() == self.children(y).len()
        })
    }

    /// Atomic equality: both nodes must be leaves; compares labels.
    /// `None` when either node is not a leaf (the comparison is undefined,
    /// matching `=atomic` being a partial operation).
    pub fn atomic_eq(&self, a: NodeId, b: NodeId) -> Option<bool> {
        if self.is_leaf(a) && self.is_leaf(b) {
            Some(self.label_id(a) == self.label_id(b))
        } else {
            None
        }
    }

    /// The tag string of the subtree at `id` (cf. [`Tree::tokens`]).
    pub fn tokens_of(&self, id: NodeId) -> Vec<Token> {
        let mut out = Vec::with_capacity(2 * self.subtree_len(id));
        self.walk(id, |doc, v, open| {
            let label = doc.label(v);
            out.push(if open {
                Token::Open(label)
            } else {
                Token::Close(label)
            })
        });
        out
    }

    /// The tag string of the whole document.
    pub fn tokens(&self) -> Vec<Token> {
        self.tokens_of(self.root())
    }

    /// Serializes the subtree at `id` to XML text, byte-identical to
    /// [`Tree::to_xml`] on the converted tree (leaves print as `<a/>`).
    pub fn xml_of(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.walk(id, |doc, v, open| {
            let leaf = doc.is_leaf(v);
            if open {
                out.push('<');
                out.push_str(doc.label(v).as_str());
                out.push_str(if leaf { "/>" } else { ">" });
            } else if !leaf {
                out.push_str("</");
                out.push_str(doc.label(v).as_str());
                out.push('>');
            }
        });
        out
    }

    /// Serializes the whole document to XML text.
    pub fn to_xml(&self) -> String {
        self.xml_of(self.root())
    }

    /// Materializes the subtree at `id` as a [`Tree`]. Iterative, in
    /// reverse preorder: by the time `v` is visited every child tree is
    /// already built.
    pub fn subtree(&self, id: NodeId) -> Tree {
        let start = id.0 as usize;
        let end = self.subtree_ends[start] as usize;
        let mut built: Vec<Option<Tree>> = vec![None; end - start];
        for v in (start..end).rev() {
            let children: Vec<Tree> = self
                .children(NodeId(v as u32))
                .iter()
                .map(|c| built[c.0 as usize - start].take().expect("child built"))
                .collect();
            built[v - start] = Some(Tree::node(self.label(NodeId(v as u32)), children));
        }
        built[0].take().expect("root built")
    }

    /// Converts the whole document back to a [`Tree`]
    /// (`ArenaDoc::from_tree` ∘ `to_tree` is the identity — tested).
    pub fn to_tree(&self) -> Tree {
        self.subtree(self.root())
    }

    /// Iterative preorder tag-string walk — the one traversal behind
    /// [`ArenaDoc::tokens_of`] and [`ArenaDoc::xml_of`]: calls
    /// `f(self, node, true)` at each opening tag and `f(self, node,
    /// false)` at the matching closing tag (leaves get both calls
    /// back-to-back; serializers may collapse them).
    fn walk(&self, id: NodeId, mut f: impl FnMut(&ArenaDoc, NodeId, bool)) {
        enum Ev {
            Open(NodeId),
            Close(NodeId),
        }
        let mut stack = vec![Ev::Open(id)];
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Open(v) => {
                    f(self, v, true);
                    stack.push(Ev::Close(v));
                    for &c in self.children(v).iter().rev() {
                        stack.push(Ev::Open(c));
                    }
                }
                Ev::Close(v) => f(self, v, false),
            }
        }
    }
}

impl fmt::Display for ArenaDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

impl fmt::Debug for ArenaDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArenaDoc[{} nodes] {}", self.len(), self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_tree;

    fn sample() -> Tree {
        // <r><a><b/><b/></a><a/><c><a><b/></a></c></r> — the Document
        // module's example, for cross-representation comparison.
        Tree::node(
            "r",
            [
                Tree::node("a", [Tree::leaf("b"), Tree::leaf("b")]),
                Tree::leaf("a"),
                Tree::node("c", [Tree::node("a", [Tree::leaf("b")])]),
            ],
        )
    }

    #[test]
    fn interning_is_idempotent_and_o1_equal() {
        // The interner is global and other tests intern concurrently, so
        // assert on specific ids, never on table counts.
        let a1 = LabelId::intern("a");
        let a2 = LabelId::intern("a");
        let b = LabelId::intern("b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.label().as_str(), "a");
        assert_eq!(b.label(), Label::from("b"));
        assert_eq!(LabelId::lookup("a"), Some(a1));
        assert!(interned_labels() >= 2);
    }

    #[test]
    fn axis_queries_do_not_grow_the_interner() {
        // This tag string appears nowhere else in the workspace, so the
        // only way it could enter the (global) interner is a bug in the
        // lookup-only query path below.
        let foreign = "never-interned-tag-axis-query";
        let doc = ArenaDoc::from_tree(&sample());
        let hits = doc.axis(doc.root(), Axis::Descendant, &NodeTest::tag(foreign));
        assert!(hits.is_empty());
        assert_eq!(
            LabelId::lookup(foreign),
            None,
            "querying a foreign tag must not intern it"
        );
    }

    #[test]
    fn arena_and_label_ids_are_send_and_sync() {
        // Compile-time proof obligations for the data-parallel layer: the
        // arena store and everything workers ship across threads, plus
        // `Tree` itself (the planner builds shared values — the `$root`
        // tree, hoisted `let` bindings — once and clones per worker).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LabelId>();
        assert_send_sync::<ArenaDoc>();
        assert_send_sync::<IToken>();
        assert_send_sync::<LabelInterner>();
        assert_send_sync::<Tree>();
    }

    #[test]
    fn interned_tokens_round_trip() {
        let doc = ArenaDoc::from_tree(&sample());
        let tokens = doc.tokens();
        let itokens = intern_tokens(&tokens);
        assert_eq!(resolve_tokens(&itokens), tokens);
    }

    #[test]
    fn forest_from_itokens_matches_the_token_path() {
        // A two-root forest: the merge path's normal shape.
        let (a, b) = (sample(), Tree::node("x", [Tree::leaf("y")]));
        let mut itokens = intern_tokens(&a.tokens());
        itokens.extend(intern_tokens(&b.tokens()));
        let got = forest_from_itokens(&itokens).unwrap();
        assert_eq!(got, vec![a, b]);
        assert_eq!(forest_from_itokens(&[]).unwrap(), vec![]);
    }

    #[test]
    fn forest_from_itokens_rejects_with_identical_messages() {
        let (a, b) = (LabelId::intern("a"), LabelId::intern("b"));
        for bad in [
            vec![IToken::Close(a)],
            vec![IToken::Open(a)],
            vec![IToken::Open(a), IToken::Close(b)],
        ] {
            let via_tokens = Tree::forest_from_tokens(&resolve_tokens(&bad)).unwrap_err();
            let via_itokens = forest_from_itokens(&bad).unwrap_err();
            assert_eq!(via_itokens, via_tokens, "error for {bad:?}");
        }
    }

    #[test]
    fn ids_are_preorder_and_links_match_document() {
        let t = sample();
        let a = ArenaDoc::from_tree(&t);
        let d = crate::Document::new(&t);
        assert_eq!(a.len(), d.len());
        for i in 0..a.len() as u32 {
            let id = NodeId(i);
            assert_eq!(a.label(id), *d.label(id), "label of {i}");
            assert_eq!(a.parent(id), d.parent(id), "parent of {i}");
            assert_eq!(a.children(id), d.children(id), "children of {i}");
            assert_eq!(a.is_leaf(id), d.is_leaf(id), "leafness of {i}");
            assert_eq!(
                a.descendants(id).collect::<Vec<_>>(),
                d.descendants(id).collect::<Vec<_>>(),
                "descendants of {i}"
            );
        }
    }

    #[test]
    fn axes_match_document_on_every_node_and_test() {
        let t = sample();
        let a = ArenaDoc::from_tree(&t);
        let d = crate::Document::new(&t);
        let tests = [
            NodeTest::Wildcard,
            NodeTest::tag("a"),
            NodeTest::tag("b"),
            NodeTest::tag("zzz"),
        ];
        for i in 0..a.len() as u32 {
            for axis in [
                Axis::Child,
                Axis::Descendant,
                Axis::SelfAxis,
                Axis::DescendantOrSelf,
            ] {
                for test in &tests {
                    assert_eq!(
                        a.axis(NodeId(i), axis, test),
                        d.axis(NodeId(i), axis, test),
                        "axis {axis} test {test} at node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_round_trip_is_identity() {
        let t = sample();
        let a = ArenaDoc::from_tree(&t);
        assert_eq!(a.to_tree(), t);
        assert_eq!(a.subtree(NodeId(6)), Tree::node("a", [Tree::leaf("b")]));
    }

    #[test]
    fn parse_and_serialize_directly() {
        let src = "<c><d/><a/><a><c/></a></c>";
        let a = ArenaDoc::parse(src).unwrap();
        assert_eq!(a.to_xml(), src);
        assert_eq!(a.tokens(), parse_tree(src).unwrap().tokens());
        assert_eq!(a.to_tree(), parse_tree(src).unwrap());
    }

    #[test]
    fn parse_rejects_with_tree_identical_messages() {
        for bad in ["<a>", "</a>", "<a></b>", "<a>text</a>", "<a/><b/>", "<a"] {
            let via_tree = parse_tree(bad).unwrap_err();
            let via_arena = ArenaDoc::parse(bad).unwrap_err();
            assert_eq!(via_arena, via_tree, "error for {bad:?}");
        }
    }

    #[test]
    fn equalities_match_document() {
        let t = sample();
        let a = ArenaDoc::from_tree(&t);
        let d = crate::Document::new(&t);
        for x in 0..a.len() as u32 {
            for y in 0..a.len() as u32 {
                let (x, y) = (NodeId(x), NodeId(y));
                assert_eq!(a.deep_eq(x, y), d.deep_eq(x, y), "deep_eq {x:?} {y:?}");
                assert_eq!(
                    a.atomic_eq(x, y),
                    d.atomic_eq(x, y),
                    "atomic_eq {x:?} {y:?}"
                );
            }
        }
    }

    #[test]
    fn metrics() {
        let a = ArenaDoc::from_tree(&sample());
        assert_eq!(a.len(), 8);
        assert_eq!(a.subtree_len(a.root()), 8);
        assert_eq!(a.subtree_len(NodeId(5)), 3);
        assert_eq!(a.height(a.root()), 4);
        assert_eq!(a.height(NodeId(4)), 1);
        assert!(a.is_in_subtree(NodeId(5), NodeId(7)));
        assert!(!a.is_in_subtree(NodeId(1), NodeId(4)));
    }

    #[test]
    fn builder_builds_the_remark_6_7_document() {
        // <c><d/><a/><a><c/></a></c>, built by hand.
        let mut b = ArenaBuilder::new();
        b.open("c");
        b.leaf("d");
        b.leaf("a");
        b.open("a");
        b.leaf("c");
        b.close();
        b.close();
        let a = b.finish();
        assert_eq!(a.to_xml(), "<c><d/><a/><a><c/></a></c>");
    }
}
