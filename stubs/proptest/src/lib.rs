//! Offline stub of [proptest](https://docs.rs/proptest) — see `stubs/README.md`.
//!
//! Implements the API subset this workspace uses: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`prop_recursive`/
//! `boxed`, [`prop_oneof!`], `prop::collection::vec`, integer-range and tuple
//! strategies, `any::<T>()`, and the `prop_assert*`/`prop_assume!` macros.
//! Generation is deterministic per test (seeded from the test name, with an
//! optional `PROPTEST_SEED` environment override); there is no shrinking.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a test file needs, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not panicking directly) so the runner can report it with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `{}` + concat! rather than passing stringify! as the format string:
        // the condition text may itself contain braces.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n  {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Discards the current case (counted as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Union of strategies, optionally weighted: `prop_oneof![a, b]` or
/// `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body on `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases {
                attempts += 1;
                if attempts > config.cases * 64 {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} attempts)",
                        stringify!($name), ran, attempts
                    );
                }
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed (case {} of {}, seed {}):\n{}",
                            stringify!($name), ran, config.cases, rng.seed(), msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
