//! Protocol golden tests and the malformed-frame fuzz loop.
//!
//! The golden half pins the wire conversation byte-for-byte: a fixed
//! script of frames (ok / parse error / eval error / unknown doc /
//! bad request / overload / deadline / cancel) runs against live
//! servers and the full `>`/`<` transcript must match
//! `tests/golden/proto.golden`. Regenerate after an intentional
//! protocol change with
//!
//! ```text
//! XQ_UPDATE_GOLDEN=1 cargo test -p xq_server --test proto
//! ```
//!
//! and review the diff like any other code change.
//!
//! The fuzz half throws seeded-splitmix64 garbage at a live server —
//! random bytes, mutated frames, truncations, raw control characters —
//! and holds the crate's totality promise: the server never panics,
//! answers every line it can read (or drops the connection on invalid
//! UTF-8, which counts as shedding), and keeps serving fresh
//! connections afterwards.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cv_xtree::{parse_tree, ArenaDoc, TreeGen};
use xq_core::{Budget, Threads};
use xq_server::{RateLimit, Server, ServerConfig};

/// The fixed golden document: small, hand-written, engine-independent.
fn golden_docs() -> HashMap<String, Arc<ArenaDoc>> {
    let tree = parse_tree("<r><a/><b><k/></b><k/></r>").unwrap();
    let mut docs = HashMap::new();
    docs.insert("d0".to_string(), Arc::new(ArenaDoc::from_tree(&tree)));
    docs
}

/// A line-oriented test client with a read timeout (so a protocol bug
/// fails the test instead of hanging it).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end_matches('\n').to_string()
    }
}

/// One golden scenario: a named server setup plus a scripted exchange.
/// `send` lines are written verbatim; after each, the listed number of
/// response lines is read. The transcript records both directions.
fn run_script(transcript: &mut String, title: &str, server: &Server, script: &[(&str, usize)]) {
    transcript.push_str(&format!("=== {title} ===\n"));
    let mut client = Client::connect(server);
    for (line, replies) in script {
        transcript.push_str(&format!("> {line}\n"));
        client.send(line);
        for _ in 0..*replies {
            let got = client.recv();
            transcript.push_str(&format!("< {got}\n"));
        }
    }
}

/// Builds the full golden transcript across the scenario servers.
fn render_transcript() -> String {
    let mut t = String::new();

    // Plain server: happy path and the per-frame error codes.
    let basic = Server::start(ServerConfig {
        docs: golden_docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    run_script(
        &mut t,
        "basic",
        &basic,
        &[
            (r#"{"op":"hello","tenant":"acme"}"#, 1),
            (r#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#, 1),
            (
                r#"{"op":"query","id":2,"doc":"d0","query":"<out>{ $root//k }</out>"}"#,
                1,
            ),
            (r#"{"op":"query","id":3,"doc":"d0","query":"for $x in"}"#, 1),
            (r#"{"op":"query","id":4,"doc":"d0","query":"$nope"}"#, 1),
            (
                r#"{"op":"query","id":5,"doc":"missing","query":"$root"}"#,
                1,
            ),
            (r#"{"op":"query","doc":"d0","query":"$root"}"#, 1),
            (r#"{"op":"flush"}"#, 1),
            (r#"{"op":"query","id":6,"#, 1),
            (r#"not json at all"#, 1),
            (r#"{"op":"query","id":7,"doc":"d0","query":"$root/b/k"}"#, 1),
        ],
    );

    // Zero-capacity server: every query is shed at admission.
    let overloaded = Server::start(ServerConfig {
        queue_capacity: 0,
        docs: golden_docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    run_script(
        &mut t,
        "overload (queue_capacity=0)",
        &overloaded,
        &[
            (r#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#, 1),
            (r#"{"op":"query","id":2,"doc":"d0","query":"<x/>"}"#, 1),
        ],
    );

    // Deadline: deadline_ms=0 is expired by its first budget tick.
    run_script(
        &mut t,
        "deadline (deadline_ms=0)",
        &basic,
        &[(
            r#"{"op":"query","id":1,"doc":"d0","query":"$root/*","deadline_ms":0}"#,
            1,
        )],
    );

    // Cancellation: the "slow" tenant gets an effectively unlimited
    // budget and a query whose full run is astronomically long (3^20
    // loop iterations), so the cancel frame always lands mid-run. The
    // ack is written before the flag is set, so the order ack-then-
    // cancelled is deterministic.
    let mut tenants = HashMap::new();
    tenants.insert(
        "slow".to_string(),
        Budget {
            max_steps: u64::MAX,
            max_items: u64::MAX,
            threads: Threads::One,
            ..Budget::default()
        },
    );
    let cancel_server = Server::start(ServerConfig {
        tenants,
        docs: golden_docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let nested: String = (1..=20)
        .map(|i| format!("for $v{i} in $root//* return "))
        .collect::<String>()
        + "<t/>";
    let query_frame = format!(r#"{{"op":"query","id":1,"doc":"d0","query":"{nested}"}}"#);
    run_script(
        &mut t,
        "cancel (tenant quota, in-flight abort)",
        &cancel_server,
        &[
            (r#"{"op":"hello","tenant":"slow"}"#, 1),
            (query_frame.as_str(), 0),
            // A second query reusing the in-flight id is rejected
            // outright (it used to clobber the first's cancel-flag
            // registration); the original query and its flag are
            // untouched, so the cancel below still lands.
            (r#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#, 1),
            (r#"{"op":"cancel","id":1}"#, 2),
        ],
    );

    // Rate limit: tenant "acme" gets a two-token bucket that never
    // refills (per_sec=0), so exactly the first two queries are served
    // and the third answers `rate_limited` — deterministically, because
    // refusals flow through the same ordered FIFO as results.
    let mut rates = HashMap::new();
    rates.insert(
        "acme".to_string(),
        RateLimit {
            per_sec: 0.0,
            burst: 2,
        },
    );
    let limited = Server::start(ServerConfig {
        rates,
        docs: golden_docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    run_script(
        &mut t,
        "rate limit (acme: burst 2, no refill)",
        &limited,
        &[
            (r#"{"op":"hello","tenant":"acme"}"#, 1),
            (r#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#, 1),
            (r#"{"op":"query","id":2,"doc":"d0","query":"<x/>"}"#, 1),
            (r#"{"op":"query","id":3,"doc":"d0","query":"$root/b"}"#, 1),
        ],
    );

    // Rate limit with a refilling bucket: the refusal carries a
    // `retry_after_ms` hint of one token's refill time —
    // ceil(1000 / 0.01) = 100000 ms, slow enough that no CI stall can
    // refill the bucket mid-scenario and perturb the transcript.
    let mut rates = HashMap::new();
    rates.insert(
        "acme".to_string(),
        RateLimit {
            per_sec: 0.01,
            burst: 1,
        },
    );
    let hinted = Server::start(ServerConfig {
        rates,
        docs: golden_docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    run_script(
        &mut t,
        "rate limit retry hint (acme: burst 1, 0.01/s)",
        &hinted,
        &[
            (r#"{"op":"hello","tenant":"acme"}"#, 1),
            (r#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#, 1),
            (r#"{"op":"query","id":2,"doc":"d0","query":"<x/>"}"#, 1),
        ],
    );

    // Fault injection: a certain worker-panic is contained by the
    // pool's unwind fence and answered `internal_error` — the panic
    // message is fixed by the injection, so the frame is deterministic.
    let panicky = Server::start(ServerConfig {
        docs: golden_docs(),
        faults: Some(Arc::new(
            xq_core::Faults::from_spec("worker-panic=1", 2005).unwrap(),
        )),
        ..ServerConfig::default()
    })
    .unwrap();
    run_script(
        &mut t,
        "fault injection (worker-panic=1)",
        &panicky,
        &[
            (r#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#, 1),
            (r#"{"op":"query","id":2,"doc":"d0","query":"<x/>"}"#, 1),
        ],
    );

    t
}

#[test]
fn protocol_matches_the_golden_transcript() {
    let got = render_transcript();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/proto.golden");
    if std::env::var_os("XQ_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run with XQ_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "wire protocol drifted from tests/golden/proto.golden; \
         if intentional, regenerate with XQ_UPDATE_GOLDEN=1"
    );
}

/// Disconnecting mid-evaluation cancels the in-flight request: the
/// server-side cancelled counter ticks up even though no response can be
/// delivered — the abandoned work stops within one budget tick.
#[test]
fn disconnect_cancels_in_flight_work() {
    let mut tenants = HashMap::new();
    tenants.insert(
        "slow".to_string(),
        Budget {
            max_steps: u64::MAX,
            max_items: u64::MAX,
            ..Budget::default()
        },
    );
    let server = Server::start(ServerConfig {
        workers: 1,
        tenants,
        docs: golden_docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let nested: String = (1..=20)
        .map(|i| format!("for $v{i} in $root//* return "))
        .collect::<String>()
        + "<t/>";
    let mut client = Client::connect(&server);
    client.send(r#"{"op":"hello","tenant":"slow"}"#);
    let _ = client.recv();
    client.send(&format!(
        r#"{{"op":"query","id":1,"doc":"d0","query":"{nested}"}}"#
    ));
    // Give the pool a moment to pick the query up, then vanish.
    std::thread::sleep(Duration::from_millis(100));
    drop(client);
    // The cancelled counter must tick as the abandoned run aborts; the
    // worker must come back (a fresh request is served promptly).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server
        .stats()
        .cancelled
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned request was never cancelled"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut probe = Client::connect(&server);
    probe.send(r#"{"op":"query","id":9,"doc":"d0","query":"$root/*"}"#);
    let resp = probe.recv();
    assert!(
        resp.contains(r#""ok":true"#),
        "pool wedged after disconnect: {resp}"
    );
}

/// Regression for the PR 8 cancel-registry bugfix: a duplicate query id
/// used to `insert` over the first request's cancel flag, and the
/// duplicate's completion then `remove`d the registration, leaving the
/// still-running original uncancellable. Now the duplicate is rejected
/// with `bad_request` and the original's cancel still lands.
#[test]
fn duplicate_id_is_rejected_and_does_not_clobber_cancellation() {
    let mut tenants = HashMap::new();
    tenants.insert(
        "slow".to_string(),
        Budget {
            max_steps: u64::MAX,
            max_items: u64::MAX,
            threads: Threads::One,
            ..Budget::default()
        },
    );
    let server = Server::start(ServerConfig {
        workers: 1,
        tenants,
        docs: golden_docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let nested: String = (1..=20)
        .map(|i| format!("for $v{i} in $root//* return "))
        .collect::<String>()
        + "<t/>";
    let mut client = Client::connect(&server);
    client.send(r#"{"op":"hello","tenant":"slow"}"#);
    let _ = client.recv();
    client.send(&format!(
        r#"{{"op":"query","id":1,"doc":"d0","query":"{nested}"}}"#
    ));
    // Wait for the original to be picked up, so the duplicate arrives
    // while it is genuinely in flight.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.in_flight() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "query was never picked up"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    client.send(r#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#);
    let dup = client.recv();
    assert!(
        dup.contains(r#""code":"bad_request""#) && dup.contains("already in flight"),
        "duplicate id was not rejected: {dup}"
    );
    // Pre-fix, this cancel would no-op (the registration was clobbered
    // then stripped) and the recv below would hang until the timeout.
    client.send(r#"{"op":"cancel","id":1}"#);
    let ack = client.recv();
    assert!(
        ack.contains(r#""op":"cancel""#),
        "missing cancel ack: {ack}"
    );
    let resp = client.recv();
    assert!(
        resp.contains(r#""code":"cancelled""#),
        "original query was not cancelled: {resp}"
    );
}

/// Seeded garbage generator for the fuzz loop: random mutations of a
/// valid frame, random ASCII, random bytes (possibly invalid UTF-8).
fn garbage(g: &mut TreeGen) -> Vec<u8> {
    const VALID: &str = r#"{"op":"query","id":7,"doc":"d0","query":"$root/*","deadline_ms":50}"#;
    match g.below(4) {
        // Mutate a valid frame: flip, delete, or insert a few bytes.
        0 => {
            let mut b = VALID.as_bytes().to_vec();
            for _ in 0..=g.below(4) {
                if b.is_empty() {
                    break;
                }
                let i = g.below(b.len());
                match g.below(3) {
                    0 => b[i] = (g.next_u64() % 256) as u8,
                    1 => {
                        b.remove(i);
                    }
                    _ => b.insert(i, (g.next_u64() % 128) as u8),
                }
            }
            b
        }
        // Truncate a valid frame.
        1 => VALID.as_bytes()[..g.below(VALID.len())].to_vec(),
        // Random printable ASCII with JSON punctuation bias.
        2 => {
            let alphabet = br#"{}[]":,abtfn0 "#;
            (0..g.below(60)).map(|_| *g.choose(alphabet)).collect()
        }
        // Raw random bytes (newline excluded so each case is one line).
        _ => (0..g.below(40))
            .map(|_| match (g.next_u64() % 256) as u8 {
                b'\n' => b' ',
                b => b,
            })
            .collect(),
    }
}

/// The fuzz loop: every line is either answered or the connection is
/// dropped (invalid UTF-8) — never a hang, never a panic, and the
/// server serves fresh connections afterwards.
#[test]
fn malformed_frames_never_kill_the_server() {
    let server = Server::start(ServerConfig {
        docs: golden_docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut g = TreeGen::new(0x5eed_2005);
    let cases: usize = std::env::var("XQ_RANDOM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    for _ in 0..cases * 4 {
        let line = garbage(&mut g);
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        // Writes tolerate failure: garbage that makes the server drop
        // the connection (invalid UTF-8) races our next write into a
        // broken pipe, which is exactly the "shed" outcome.
        let mut w = &stream;
        let _ = w.write_all(&line);
        let _ = w.write_all(b"\n");
        // A sentinel the server must still answer if the garbage didn't
        // (legitimately) drop the connection.
        let _ = w.write_all(br#"{"op":"hello","tenant":"t"}"#);
        let _ = w.write_all(b"\n");
        // Half-close: the server sees EOF after our two lines.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut all = String::new();
        let mut reader = BufReader::new(stream);
        // Read to EOF: the server answers what it accepted, then closes.
        let _ = reader.read_to_string(&mut all);
        if !all.is_empty() {
            assert!(
                all.ends_with('\n'),
                "partial response line for {line:?}: {all:?}"
            );
            for resp in all.lines() {
                assert!(
                    xq_server::Frame::parse(resp).is_ok(),
                    "server emitted an unparseable frame: {resp:?}"
                );
            }
        }
    }
    // The server survived all of it.
    let mut probe = Client::connect(&server);
    probe.send(r#"{"op":"query","id":1,"doc":"d0","query":"$root/*"}"#);
    let resp = probe.recv();
    assert!(
        resp.contains(r#""ok":true"#),
        "server wedged after fuzzing: {resp}"
    );
}
