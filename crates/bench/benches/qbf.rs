//! E5 (Prop 7.3/7.4): QBF through the XQ⁻ reduction and the PSPACE
//! nested-loop engine.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cv_xtree::{ArenaDoc, TreeGen};
use xq_compfree::NestedLoopEngine;
use xq_reductions::{qbf_query, qbf_tree, random_qbf};

fn bench(c: &mut Criterion) {
    let tree = qbf_tree();
    let doc = ArenaDoc::from_tree(&tree);
    let mut g = c.benchmark_group("qbf");
    g.sample_size(10);
    for vars in [4usize, 8, 12] {
        let f = random_qbf(&mut TreeGen::new(7), vars, vars);
        let q = qbf_query(&f);
        g.bench_with_input(BenchmarkId::new("nested_loop", vars), &q, |b, q| {
            b.iter(|| NestedLoopEngine::new(&doc).boolean(q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
