//! The parallel differential suite: random XQ∼ queries (biased toward
//! every shape the parallel planner distributes — outer `for`s, `Seq`s of
//! loops, nested `for`s, `let`-hoisted sources, and `where`-filtered
//! sources) must yield **byte-identical** results sequentially and at
//! 1/2/4/8 worker threads, on both parallel engines:
//!
//! * `xq_core::par::eval_query_par` vs the Figure 1 reference semantics;
//! * `xq_stream::stream_query_arena_par` vs `stream_query_arena`,
//!   token-for-token, at the default buffer cap *and* with a tiny cap
//!   forcing the lazy discipline inside the workers.
//!
//! Determinism is the whole contract of `xq_core::par` (the chunk merge
//! preserves document order; errors resolve in chunk order), so the suite
//! runs every query at every thread count — including thread counts far
//! above this machine's core count, which exercises the chunking edge
//! cases (more workers than items, empty remainders).
//!
//! The corpus is cached per thread and the case count honours
//! `XQ_RANDOM_CASES` (CI pins 16; local default 64). `XQ_THREADS` adds an
//! extra thread count to the sweep, so CI's `XQ_THREADS=4` run is explicit
//! about the configuration it covers. The `#[ignore]`d full-size variant
//! (weekly `scheduled.yml` run) sweeps bigger documents plus the three
//! doubling families.

use cv_xtree::{random_tree, ArenaDoc, Axis, DoublingFamily, NodeTest, Tree, TreeGen};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use xq_core::ast::{Cond, EqMode, Query, Var};
use xq_core::{eval_query_par, Budget, Threads};

/// Variables in scope are `$root` plus loop variables `v0..v{depth}`.
fn var_in_scope(depth: usize) -> impl Strategy<Value = Var> {
    (0..=depth).prop_map(|i| {
        if i == 0 {
            Var::root()
        } else {
            Var::new(format!("v{}", i - 1))
        }
    })
}

fn node_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        Just(NodeTest::Wildcard),
        Just(NodeTest::tag("a")),
        Just(NodeTest::tag("b")),
    ]
}

fn axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        3 => Just(Axis::Child),
        1 => Just(Axis::Descendant),
        1 => Just(Axis::DescendantOrSelf),
        1 => Just(Axis::SelfAxis),
    ]
}

/// A step on an in-scope variable.
fn var_step(depth: usize) -> impl Strategy<Value = Query> {
    (var_in_scope(depth), axis(), node_test())
        .prop_map(|(v, ax, nt)| Query::step(Query::Var(v), ax, nt))
}

/// A chain of up to three steps grounded at `$root` — the source shape
/// `resolve_node_source` parallelizes.
fn root_step_chain() -> impl Strategy<Value = Query> {
    proptest::collection::vec((axis(), node_test()), 1..=3).prop_map(|steps| {
        steps
            .into_iter()
            .fold(Query::Var(Var::root()), |q, (ax, nt)| {
                Query::step(q, ax, nt)
            })
    })
}

/// Random XQ∼ queries with `depth` loop variables in scope — the
/// `random_queries.rs` grammar (see the NOTE there about deliberate
/// duplication), reused here as loop bodies and fallback shapes.
fn xq_tilde(depth: usize, size: u32) -> BoxedStrategy<Query> {
    if size == 0 {
        return prop_oneof![
            Just(Query::Empty),
            Just(Query::leaf("k")),
            var_in_scope(depth).prop_map(Query::Var),
            var_step(depth),
        ]
        .boxed();
    }
    let d = depth;
    prop_oneof![
        2 => var_step(d),
        2 => (prop_oneof![Just("w"), Just("x")], xq_tilde(d, size - 1))
            .prop_map(|(t, b)| Query::elem(t, b)),
        2 => (xq_tilde(d, size - 1), xq_tilde(d, size - 1))
            .prop_map(|(a, b)| Query::seq([a, b])),
        3 => (var_step(d), xq_tilde(d + 1, size - 1)).prop_map(move |(s, b)| {
            Query::for_in(format!("v{d}").as_str(), s, b)
        }),
        2 => (cond(d, size - 1), xq_tilde(d, size - 1))
            .prop_map(|(c, b)| Query::if_then(c, b)),
        1 => var_in_scope(d).prop_map(Query::Var),
    ]
    .boxed()
}

fn cond(depth: usize, size: u32) -> BoxedStrategy<Cond> {
    let base =
        prop_oneof![
            (var_in_scope(depth), var_in_scope(depth), eq_mode())
                .prop_map(|(x, y, m)| Cond::VarEq(x, y, m)),
            (var_in_scope(depth), prop_oneof![Just("a"), Just("k")])
                .prop_map(|(x, t)| Cond::ConstEq(x, t.into(), EqMode::Atomic)),
        ];
    if size == 0 {
        return base.boxed();
    }
    prop_oneof![
        2 => base,
        2 => xq_tilde(depth, size.min(1)).prop_map(Cond::query),
        1 => cond(depth, size - 1).prop_map(Cond::negate),
    ]
    .boxed()
}

fn eq_mode() -> impl Strategy<Value = EqMode> {
    prop_oneof![Just(EqMode::Deep), Just(EqMode::Atomic)]
}

/// A `where`-filtered node source:
/// `for $w in ⟨chain⟩ where φ($w) return $w` — the filter shape
/// `resolve_node_source` evaluates inside the planner so filtered loops
/// still shard.
fn filtered_source() -> impl Strategy<Value = Query> {
    (root_step_chain(), cond(1, 1)).prop_map(|(chain, c)| {
        // The predicate sees $w as "v0" (depth-1 scope), matching cond().
        Query::for_in("v0", chain, Query::if_then(c, Query::var("v0")))
    })
}

/// The query corpus: mostly planner-shardable shapes — outer `for`s over
/// `$root` step chains (possibly element-wrapped), `Seq`s of independent
/// loops, directly nested `for`s (inner source grounded at `$root` or at
/// the outer variable), `let`-hoisted sources, and `where`-filtered
/// sources — plus raw XQ∼ queries to cover the sequential fallback.
fn par_query() -> BoxedStrategy<Query> {
    // Built per use rather than cloned: the vendored proptest stub's
    // strategies are not `Clone`.
    let outer_for = || {
        (root_step_chain(), xq_tilde(1, 2))
            .prop_map(|(source, body)| Query::for_in("v0", source, body))
    };
    let nested_for = || {
        // Inner source is a step chain at $root or a step on $v0, so the
        // planner can flatten the nest into (node, node) rows.
        let inner_source = prop_oneof![
            root_step_chain(),
            (axis(), node_test()).prop_map(|(ax, nt)| Query::step(Query::var("v0"), ax, nt)),
        ];
        (root_step_chain(), inner_source, xq_tilde(2, 1))
            .prop_map(|(s1, s2, body)| Query::for_in("v0", s1, Query::for_in("v1", s2, body)))
    };
    let seq_of_fors = || {
        (
            (root_step_chain(), xq_tilde(1, 1)).prop_map(|(s, b)| Query::for_in("v0", s, b)),
            (root_step_chain(), xq_tilde(1, 1)).prop_map(|(s, b)| Query::for_in("v0", s, b)),
            xq_tilde(0, 1),
        )
            .prop_map(|(a, b, mid)| Query::seq([a, mid, b]))
    };
    let let_hoisted = || {
        // let $v0 := $root (singleton ⇒ hoists) around a shardable loop.
        ((axis(), node_test()), xq_tilde(2, 1)).prop_map(|((ax, nt), body)| {
            Query::let_in(
                "v0",
                Query::Var(Var::root()),
                Query::for_in("v1", Query::step(Query::var("v0"), ax, nt), body),
            )
        })
    };
    let filtered_for = || {
        (filtered_source(), xq_tilde(1, 1)).prop_map(|(source, body)| {
            // The outer loop rebinds v0; shadowing is part of the test.
            Query::for_in("v0", source, body)
        })
    };
    prop_oneof![
        3 => outer_for(),
        2 => outer_for().prop_map(|q| Query::elem("out", q)),
        2 => nested_for(),
        2 => seq_of_fors(),
        1 => let_hoisted(),
        2 => filtered_for(),
        2 => xq_tilde(0, 3),
    ]
    .boxed()
}

/// The cached per-thread corpus — the `random_queries.rs` documents. With
/// `XQ_ARENA=1` each document round-trips through the arena store (as in
/// the agreement suites), so CI's arena pass covers the planner shapes on
/// arena-loaded documents too.
fn docs() -> Vec<Tree> {
    thread_local! {
        static DOCS: Vec<Tree> = {
            let repr = xq_core::DocRepr::from_env();
            (0..3u64)
                .map(|seed| {
                    let mut g = TreeGen::new(seed);
                    repr.roundtrip(&random_tree(&mut g, 10, &["a", "b", "k"]))
                })
                .collect()
        };
    }
    DOCS.with(|d| d.clone())
}

/// Cases per property: `XQ_RANDOM_CASES` if set (CI uses 16), else 64.
fn cases() -> u32 {
    std::env::var("XQ_RANDOM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Thread counts under test: 1/2/4/8 always, plus whatever `XQ_THREADS`
/// resolves to (CI's parallel job sets it to 4).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    let env = Threads::from_env().count();
    if !counts.contains(&env) {
        counts.push(env);
    }
    counts
}

/// Serializes a result list to bytes.
fn bytes(trees: &[Tree]) -> Vec<u8> {
    trees
        .iter()
        .map(Tree::to_xml)
        .collect::<String>()
        .into_bytes()
}

const FUEL: u64 = 50_000_000;

/// The differential body shared by the quick and full-size suites.
///
/// The contract mirrors the `xq_core::par` budget semantics: when the
/// sequential run succeeds, the parallel result must be byte-identical
/// (and parallel must not fail — each worker's chunk is a subset of the
/// sequential work); when the sequential run exhausts its budget, the
/// parallel run — whose workers and sequential plan leaves each draw a
/// fresh budget — may exhaust its own, legitimately succeed, or surface a
/// later non-budget error its larger effective budget reached first.
/// Non-budget sequential errors must match exactly.
fn assert_par_agrees(q: &Query, doc: &Tree) -> Result<(), TestCaseError> {
    let arena = ArenaDoc::from_tree(doc);

    // Materializing engine: reference vs eval_query_par at every count.
    let want = match xq_core::eval_query(q, doc) {
        Ok(out) => Ok(bytes(&out)),
        Err(e) => Err(e),
    };
    for threads in thread_counts() {
        let budget = Budget::default().with_threads(Threads::N(threads));
        let result = eval_query_par(q, &arena, budget);
        // The satellite property: `parallelized` implies the sequential
        // run (if it succeeded) produced these exact bytes — checked via
        // the assert below; here we pin the stats side of the contract.
        if let Ok((_, stats)) = &result {
            prop_assert!(
                !stats.parallelized || stats.workers >= 1,
                "parallelized run must report spawned workers: {:?}",
                stats
            );
            prop_assert!(
                stats.workers <= threads,
                "cannot spawn more workers than requested: {:?}",
                stats
            );
        }
        let got = result.map(|(out, _)| bytes(&out));
        match (&want, &got) {
            (Err(xq_core::XqError::Budget { .. }), _) => {} // monotone: allowed
            _ => prop_assert_eq!(&got, &want, "eval {} at {} threads on {}", q, threads, doc),
        }
    }

    // Streaming engine: sequential arena stream vs the parallel one.
    let stream_want =
        xq_stream::stream_query_arena(q, &arena, FUEL, xq_stream::DEFAULT_BUFFER_LIMIT)
            .map(|(tokens, _)| tokens);
    for threads in thread_counts() {
        let got = xq_stream::stream_query_arena_par(
            q,
            &arena,
            FUEL,
            xq_stream::DEFAULT_BUFFER_LIMIT,
            threads,
        )
        .map(|(tokens, _)| tokens);
        match (&stream_want, &got) {
            (Err(xq_stream::StreamError::Budget), _) => {} // monotone: allowed
            _ => prop_assert_eq!(
                &got,
                &stream_want,
                "stream {} at {} threads on {}",
                q,
                threads,
                doc
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Parallel and sequential evaluation are byte-identical at 1/2/4/8
    /// threads on the cached corpus, for both engines.
    #[test]
    fn parallel_results_are_byte_identical(q in par_query()) {
        for doc in &docs() {
            assert_par_agrees(&q, doc)?;
        }
    }

    /// The satellite property, stated directly: whenever the stats say
    /// the data-parallel path ran (`ParStats::parallelized`), the output
    /// bytes equal the sequential evaluator's. (The fallback path is
    /// trivially identical — it *is* the sequential evaluator — so this
    /// pins the interesting half of the contract.)
    #[test]
    fn parallelized_implies_byte_identical(q in par_query()) {
        for doc in &docs() {
            let arena = ArenaDoc::from_tree(doc);
            let budget = Budget::default().with_threads(Threads::N(4));
            let Ok((out, stats)) = eval_query_par(&q, &arena, budget) else {
                continue; // error determinism is assert_par_agrees' job
            };
            if stats.parallelized {
                // Sequential may legitimately budget-error where the
                // fresh-per-worker parallel budgets sufficed (the
                // monotone direction); equality is only claimed when
                // both succeed.
                let Ok(want) = xq_core::eval_query(&q, doc) else {
                    continue;
                };
                prop_assert_eq!(
                    bytes(&out),
                    bytes(&want),
                    "parallelized run of {} diverged on {}",
                    q,
                    doc
                );
                prop_assert!(stats.outer_items > 0, "{:?}", stats);
            }
        }
    }
}

/// Every planner shape, as fixed queries with hand-checkable structure:
/// `Seq`-of-`for`s, nested `for`s (both groundings), `let`-hoisted
/// sources, and predicate-filtered sources — byte-identical at every
/// thread count on both engines. These run under plain and `XQ_ARENA=1`
/// CI passes (the corpus documents route through `DocRepr`).
#[test]
fn planner_shapes_are_byte_identical() {
    let shapes = [
        // Seq of independently shardable branches (+ an opaque middle).
        "(for $x in $root/a return <w>{ $x }</w>, \
          <mid/>, \
          for $y in $root//b return <v>{ $y }</v>)",
        // Nested fors, inner grounded at the outer variable.
        "for $x in $root/* return for $y in $x/* return <p>{ $y }</p>",
        // Nested fors, inner grounded at $root (cross join).
        "for $x in $root/a return for $y in $root//b return \
         if ($x =atomic $y) then <hit/>",
        // Triple nest: flattens to width-3 rows.
        "for $x in $root/* return for $y in $root/a return \
         for $z in $root/b return <t/>",
        // let-hoisted singleton source around a shardable loop.
        "let $z := $root return for $x in $z/* return <w>{ $x }</w>",
        // where-filtered source (parser desugars to if-then in the body).
        "for $x in (for $w in $root/* where $w/b return $w) return <f>{ $x }</f>",
        // Filter with a root-referencing predicate.
        "for $x in (for $w in $root/a where some $y in $root/b satisfies \
         $w =atomic $y return $w) return <m>{ $x }</m>",
        // Identity filter loop.
        "for $x in (for $w in $root/a return $w) return <w>{ $x }</w>",
        // Wrapped Seq of loops, bodies mentioning $root.
        "<out>{ (for $x in $root/a return ($x, $root/b), \
                 for $y in $root/b return <v>{ $y }</v>) }</out>",
    ];
    for doc in &docs() {
        for src in shapes {
            let q = xq_core::parse_query(src).unwrap();
            assert_par_agrees(&q, doc).unwrap_or_else(|e| panic!("{src}: {e:?}"));
        }
    }
}

proptest! {
    // The weekly full-size pass: bigger random documents plus the three
    // doubling families at n = 6, 128 cases. Run explicitly with
    // `cargo test --release -p xq_core -- --ignored` (scheduled.yml does).
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    #[ignore = "full-size parallel differential pass; runs in the weekly scheduled workflow"]
    fn parallel_results_are_byte_identical_full_size(q in par_query()) {
        let mut full: Vec<Tree> = (0..2u64)
            .map(|seed| {
                let mut g = TreeGen::new(seed);
                random_tree(&mut g, 64, &["a", "b", "k"])
            })
            .collect();
        full.extend(DoublingFamily::ALL.iter().map(|f| f.tree(6)));
        for doc in &full {
            assert_par_agrees(&q, doc)?;
        }
    }
}

/// The service path agrees with direct evaluation under concurrency: one
/// pool, many requests, order-preserving results.
#[test]
fn query_service_agrees_with_reference() {
    use std::sync::Arc;
    let corpus = docs();
    let arenas: Vec<Arc<ArenaDoc>> = corpus
        .iter()
        .map(|t| Arc::new(ArenaDoc::from_tree(t)))
        .collect();
    let queries = [
        "for $x in $root//a return <w>{ $x/* }</w>",
        "<out>{ for $x in $root/* return if ($x =atomic <k/>) then $x }</out>",
        "$root/*",
    ];
    let service = xq_core::QueryService::new(4);
    let requests: Vec<xq_core::Request> = arenas
        .iter()
        .flat_map(|d| queries.iter().map(|q| xq_core::Request::new(q, d.clone())))
        .collect();
    let got = service.run_batch(requests.clone());
    for (i, r) in requests.iter().enumerate() {
        let q = xq_core::parse_query(&r.query).unwrap();
        let want: String = xq_core::eval_query(&q, &r.doc.to_tree())
            .unwrap()
            .iter()
            .map(Tree::to_xml)
            .collect();
        assert_eq!(got[i].as_ref().unwrap(), &want, "request {i}");
    }
}
