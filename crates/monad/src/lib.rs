//! Monad algebra on sets, lists, and bags (Koch, PODS 2005, §2.2–§2.3).
//!
//! This crate implements the functional query language `M` of Tannen,
//! Buneman & Wong as presented in the paper: a variable-free, compositional
//! algebra whose expressions denote functions from complex values to
//! complex values. The *positive* language `M∪` adds union; *full monad
//! algebra* adds any one of deep equality, selection, difference,
//! intersection, `⊆`, `∈`, or nesting — all interexpressible (Theorem 2.2),
//! and all provided here both as built-ins and as derived forms so the
//! equivalences can be tested and benchmarked.
//!
//! The same expression syntax is interpreted over all three collection
//! monads ([`CollectionKind`]): `∪` is set union, list concatenation, or
//! additive bag union; `flatten` likewise. Bags additionally support
//! `unique` and `monus` (§2.3, after Libkin & Wong). Lists support the
//! `true` operation collapsing a truth value to `[⟨⟩]`.
//!
//! * [`Expr`] — the algebra's abstract syntax, with a pretty-printer and
//!   size metrics (used by the Lemma 5.7 reduction-size experiments);
//! * [`eval`]/[`Evaluator`] — a materializing reference evaluator with
//!   resource budgets (the paper's queries can build doubly-exponential
//!   values, Prop 4.2, so the engine must fail gracefully);
//! * [`typecheck`] — a structural type checker for `Expr : τ → τ′`;
//! * [`derived`] — the paper's derived forms: Cartesian product
//!   (Example 2.1), Boolean connectives, `σ_γ`, `⊆`, `∩` (Example 2.3),
//!   difference (Example 2.4), `=mon` expansion (Proposition 5.1), and the
//!   `all_equal` predicate from Theorem 5.11;
//! * [`opt`] — the optimizer: a peephole/normalization pass rewriting the
//!   derived constructions back to the built-in operators (with a rule
//!   [`Trace`] shared with `xq_rewrite`'s Theorem 7.9 eliminator), enabled
//!   on the evaluator via [`Evaluator::with_optimizer`].

pub mod derived;
mod eval;
mod expr;
pub mod opt;
mod trace;
mod typecheck;

pub use cv_value::CollectionKind;
pub use eval::{eval, eval_optimized, eval_with, Budget, EvalError, EvalStats, Evaluator};
pub use expr::{Cond, EqMode, Expr, Operand};
pub use trace::{Trace, TraceStep};
pub use typecheck::{typecheck, TypeError};

#[cfg(test)]
mod tests {
    use super::*;
    use cv_value::Value;

    #[test]
    fn smoke_identity() {
        let v = Value::set([Value::atom("x")]);
        let got = eval(&Expr::Id, CollectionKind::Set, &v).unwrap();
        assert_eq!(got, v);
    }
}
