//! The complex-value representation itself.

use crate::{Atom, ValueError};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// Which collection monad a collection value belongs to (§2.2, §2.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CollectionKind {
    /// Sets: unordered, duplicate-free.
    Set,
    /// Lists: ordered, duplicates preserved.
    List,
    /// Bags: unordered, duplicates preserved.
    Bag,
}

impl fmt::Display for CollectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CollectionKind::Set => "set",
            CollectionKind::List => "list",
            CollectionKind::Bag => "bag",
        })
    }
}

/// The structural variants of a complex value.
///
/// Obtain one from a [`Value`] via [`Value::kind`]; construct values through
/// the [`Value`] constructors, which enforce the canonical-form invariants
/// (sets sorted and deduplicated, bags sorted).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValueKind {
    /// An atomic value from `Dom`.
    Atom(Atom),
    /// A tuple `⟨A1: v1, ..., Ak: vk⟩`; `k = 0` gives the unit tuple `⟨⟩`.
    Tuple(Vec<(Atom, Value)>),
    /// A set, canonically sorted with duplicates removed.
    Set(Vec<Value>),
    /// A list in element order.
    List(Vec<Value>),
    /// A bag, canonically sorted (multiplicities preserved).
    Bag(Vec<Value>),
}

/// An immutable complex value with cheap (`Rc`) clones.
#[derive(Clone)]
pub struct Value(Rc<ValueKind>);

impl Value {
    // ----- constructors ---------------------------------------------------

    /// An atomic value.
    pub fn atom(a: impl Into<Atom>) -> Value {
        Value(Rc::new(ValueKind::Atom(a.into())))
    }

    /// A tuple from attribute/value pairs, in the given attribute order.
    pub fn tuple<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<Atom>,
    {
        Value(Rc::new(ValueKind::Tuple(
            fields.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        )))
    }

    /// The unit tuple `⟨⟩`.
    pub fn unit() -> Value {
        Value::tuple(std::iter::empty::<(Atom, Value)>())
    }

    /// A set; the items are canonicalized (sorted, deduplicated).
    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        let mut v: Vec<Value> = items.into_iter().collect();
        v.sort();
        v.dedup();
        Value(Rc::new(ValueKind::Set(v)))
    }

    /// A list, preserving order and duplicates.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value(Rc::new(ValueKind::List(items.into_iter().collect())))
    }

    /// A bag; the items are canonicalized (sorted), multiplicities kept.
    pub fn bag<I: IntoIterator<Item = Value>>(items: I) -> Value {
        let mut v: Vec<Value> = items.into_iter().collect();
        v.sort();
        Value(Rc::new(ValueKind::Bag(v)))
    }

    /// A collection of the given kind.
    pub fn collection<I: IntoIterator<Item = Value>>(kind: CollectionKind, items: I) -> Value {
        match kind {
            CollectionKind::Set => Value::set(items),
            CollectionKind::List => Value::list(items),
            CollectionKind::Bag => Value::bag(items),
        }
    }

    /// The empty collection of the given kind (`∅`, `[]`, `{||}`).
    pub fn empty(kind: CollectionKind) -> Value {
        Value::collection(kind, std::iter::empty())
    }

    /// The canonical "true" of the paper: a singleton collection holding
    /// the unit tuple (`{⟨⟩}` / `[⟨⟩]` / `{|⟨⟩|}`).
    pub fn truth(kind: CollectionKind) -> Value {
        Value::collection(kind, [Value::unit()])
    }

    /// The canonical Boolean for `b` under collection kind `kind`.
    pub fn boolean(kind: CollectionKind, b: bool) -> Value {
        if b {
            Value::truth(kind)
        } else {
            Value::empty(kind)
        }
    }

    // ----- accessors ------------------------------------------------------

    /// The structural variant of this value.
    pub fn kind(&self) -> &ValueKind {
        &self.0
    }

    /// The atom, if this value is atomic.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self.kind() {
            ValueKind::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// The attribute/value pairs, if this value is a tuple.
    pub fn as_tuple(&self) -> Option<&[(Atom, Value)]> {
        match self.kind() {
            ValueKind::Tuple(fs) => Some(fs),
            _ => None,
        }
    }

    /// The elements, if this value is a collection of any kind.
    pub fn as_collection(&self) -> Option<(CollectionKind, &[Value])> {
        match self.kind() {
            ValueKind::Set(v) => Some((CollectionKind::Set, v)),
            ValueKind::List(v) => Some((CollectionKind::List, v)),
            ValueKind::Bag(v) => Some((CollectionKind::Bag, v)),
            _ => None,
        }
    }

    /// Elements of a collection, or an error mentioning the context.
    pub fn items(&self) -> Result<&[Value], ValueError> {
        self.as_collection()
            .map(|(_, v)| v)
            .ok_or_else(|| ValueError::NotACollection(self.to_string()))
    }

    /// Projection `π_A`: the value of attribute `name` of a tuple.
    pub fn project(&self, name: &str) -> Result<&Value, ValueError> {
        let fields = self
            .as_tuple()
            .ok_or_else(|| ValueError::NotATuple(self.to_string()))?;
        fields
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, v)| v)
            .ok_or_else(|| ValueError::NoSuchAttribute(name.to_string()))
    }

    /// Projection along a dotted attribute path (`π_{A1.···.Am}`, §5.2).
    pub fn project_path<'a, I>(&self, path: I) -> Result<&Value, ValueError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut cur = self;
        for seg in path {
            cur = cur.project(seg)?;
        }
        Ok(cur)
    }

    /// True iff this is a nonempty collection — the paper's convention for
    /// reading a collection value as a Boolean (§2.1).
    pub fn is_true(&self) -> bool {
        self.as_collection().is_some_and(|(_, v)| !v.is_empty())
    }

    // ----- equality forms ---------------------------------------------------

    /// Deep value equality `=deep` (§2.2/§2.3). Because sets and bags are in
    /// canonical form this coincides with structural equality.
    pub fn deep_eq(&self, other: &Value) -> bool {
        self == other
    }

    /// Atomic equality `=atomic`: defined only when both operands are atoms.
    pub fn atomic_eq(&self, other: &Value) -> Result<bool, ValueError> {
        match (self.kind(), other.kind()) {
            (ValueKind::Atom(a), ValueKind::Atom(b)) => Ok(a == b),
            (ValueKind::Atom(_), _) => Err(ValueError::NotAtomic(other.to_string())),
            _ => Err(ValueError::NotAtomic(self.to_string())),
        }
    }

    /// Monotone equality `=mon` (Proposition 5.1): `=atomic` on atoms,
    /// attribute-wise on tuples; undefined on collections.
    pub fn mon_eq(&self, other: &Value) -> Result<bool, ValueError> {
        match (self.kind(), other.kind()) {
            (ValueKind::Atom(a), ValueKind::Atom(b)) => Ok(a == b),
            (ValueKind::Tuple(xs), ValueKind::Tuple(ys)) => {
                if xs.len() != ys.len() {
                    return Ok(false);
                }
                for ((an, av), (bn, bv)) in xs.iter().zip(ys.iter()) {
                    if an != bn || !av.mon_eq(bv)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            (ValueKind::Atom(_), ValueKind::Tuple(_))
            | (ValueKind::Tuple(_), ValueKind::Atom(_)) => Ok(false),
            _ => Err(ValueError::NotMonotoneComparable(self.to_string())),
        }
    }

    // ----- metrics ----------------------------------------------------------

    /// Number of structural nodes (atoms, tuples, collections) in the value.
    /// This is the `|v|` used by the size-bound experiments (Prop 4.2/4.3).
    pub fn node_count(&self) -> u64 {
        match self.kind() {
            ValueKind::Atom(_) => 1,
            ValueKind::Tuple(fs) => 1 + fs.iter().map(|(_, v)| v.node_count()).sum::<u64>(),
            ValueKind::Set(v) | ValueKind::List(v) | ValueKind::Bag(v) => {
                1 + v.iter().map(Value::node_count).sum::<u64>()
            }
        }
    }

    /// Number of atomic leaves in the value.
    pub fn leaf_count(&self) -> u64 {
        match self.kind() {
            ValueKind::Atom(_) => 1,
            ValueKind::Tuple(fs) => fs.iter().map(|(_, v)| v.leaf_count()).sum(),
            ValueKind::Set(v) | ValueKind::List(v) | ValueKind::Bag(v) => {
                v.iter().map(Value::leaf_count).sum()
            }
        }
    }

    /// Maximum nesting depth (an atom has depth 1).
    pub fn depth(&self) -> u64 {
        match self.kind() {
            ValueKind::Atom(_) => 1,
            ValueKind::Tuple(fs) => 1 + fs.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
            ValueKind::Set(v) | ValueKind::List(v) | ValueKind::Bag(v) => {
                1 + v.iter().map(Value::depth).max().unwrap_or(0)
            }
        }
    }

    fn rank(&self) -> u8 {
        match self.kind() {
            ValueKind::Atom(_) => 0,
            ValueKind::Tuple(_) => 1,
            ValueKind::Set(_) => 2,
            ValueKind::List(_) => 3,
            ValueKind::Bag(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self.kind() == other.kind()
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// A structural total order used only for canonicalization; it is not
    /// part of the paper's data model (sets are unordered) but fixing *some*
    /// order makes deep set equality a linear scan.
    fn cmp(&self, other: &Value) -> Ordering {
        if Rc::ptr_eq(&self.0, &other.0) {
            return Ordering::Equal;
        }
        match self.rank().cmp(&other.rank()) {
            Ordering::Equal => {}
            o => return o,
        }
        match (self.kind(), other.kind()) {
            (ValueKind::Atom(a), ValueKind::Atom(b)) => a.cmp(b),
            (ValueKind::Tuple(xs), ValueKind::Tuple(ys)) => xs
                .iter()
                .map(|(n, v)| (n, v))
                .cmp(ys.iter().map(|(n, v)| (n, v))),
            (ValueKind::Set(xs), ValueKind::Set(ys))
            | (ValueKind::List(xs), ValueKind::List(ys))
            | (ValueKind::Bag(xs), ValueKind::Bag(ys)) => xs.iter().cmp(ys.iter()),
            _ => unreachable!("rank() already separated the variants"),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self.kind() {
            ValueKind::Atom(a) => {
                0u8.hash(state);
                a.hash(state);
            }
            ValueKind::Tuple(fs) => {
                1u8.hash(state);
                for (n, v) in fs {
                    n.hash(state);
                    v.hash(state);
                }
            }
            ValueKind::Set(v) => {
                2u8.hash(state);
                for x in v {
                    x.hash(state);
                }
            }
            ValueKind::List(v) => {
                3u8.hash(state);
                for x in v {
                    x.hash(state);
                }
            }
            ValueKind::Bag(v) => {
                4u8.hash(state);
                for x in v {
                    x.hash(state);
                }
            }
        }
    }
}

fn atom_needs_quoting(s: &str) -> bool {
    s.is_empty()
        || !s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '#' || c == '$')
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_items(f: &mut fmt::Formatter<'_>, items: &[Value]) -> fmt::Result {
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}")?;
            }
            Ok(())
        }
        match self.kind() {
            ValueKind::Atom(a) => {
                if atom_needs_quoting(a.as_str()) {
                    write!(f, "{:?}", a.as_str())
                } else {
                    f.write_str(a.as_str())
                }
            }
            ValueKind::Tuple(fs) => {
                f.write_str("<")?;
                for (i, (n, v)) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                f.write_str(">")
            }
            ValueKind::Set(v) => {
                f.write_str("{")?;
                write_items(f, v)?;
                f.write_str("}")
            }
            ValueKind::List(v) => {
                f.write_str("[")?;
                write_items(f, v)?;
                f.write_str("]")
            }
            ValueKind::Bag(v) => {
                f.write_str("{|")?;
                write_items(f, v)?;
                f.write_str("|}")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Value {
        Value::atom(s)
    }

    #[test]
    fn sets_are_canonicalized() {
        let s1 = Value::set([a("b"), a("a"), a("b")]);
        let s2 = Value::set([a("a"), a("b")]);
        assert_eq!(s1, s2);
        assert_eq!(s1.items().unwrap().len(), 2);
    }

    #[test]
    fn bags_keep_multiplicity_but_not_order() {
        let b1 = Value::bag([a("y"), a("x"), a("x")]);
        let b2 = Value::bag([a("x"), a("x"), a("y")]);
        let b3 = Value::bag([a("x"), a("y")]);
        assert_eq!(b1, b2);
        assert_ne!(b1, b3);
    }

    #[test]
    fn lists_are_ordered() {
        let l1 = Value::list([a("x"), a("y")]);
        let l2 = Value::list([a("y"), a("x")]);
        assert_ne!(l1, l2);
    }

    #[test]
    fn deep_eq_across_nesting() {
        let v1 = Value::set([Value::set([a("1"), a("2")]), Value::set([a("3")])]);
        let v2 = Value::set([Value::set([a("3")]), Value::set([a("2"), a("1")])]);
        assert!(v1.deep_eq(&v2));
    }

    #[test]
    fn atomic_eq_requires_atoms() {
        assert_eq!(a("x").atomic_eq(&a("x")), Ok(true));
        assert_eq!(a("x").atomic_eq(&a("y")), Ok(false));
        assert!(a("x").atomic_eq(&Value::set([a("x")])).is_err());
        assert!(Value::unit().atomic_eq(&a("x")).is_err());
    }

    #[test]
    fn mon_eq_on_nested_tuples() {
        let t1 = Value::tuple([("A", a("1")), ("B", Value::tuple([("C", a("2"))]))]);
        let t2 = Value::tuple([("A", a("1")), ("B", Value::tuple([("C", a("2"))]))]);
        let t3 = Value::tuple([("A", a("1")), ("B", Value::tuple([("C", a("9"))]))]);
        assert_eq!(t1.mon_eq(&t2), Ok(true));
        assert_eq!(t1.mon_eq(&t3), Ok(false));
    }

    #[test]
    fn mon_eq_rejects_collections() {
        let t = Value::tuple([("A", Value::set([a("1")]))]);
        assert!(t.mon_eq(&t).is_err());
    }

    #[test]
    fn mon_eq_mismatched_shapes_are_unequal() {
        assert_eq!(a("x").mon_eq(&Value::unit()), Ok(false));
        let t1 = Value::tuple([("A", a("1"))]);
        let t2 = Value::tuple([("B", a("1"))]);
        assert_eq!(t1.mon_eq(&t2), Ok(false));
    }

    #[test]
    fn truth_conventions() {
        assert!(Value::truth(CollectionKind::Set).is_true());
        assert!(!Value::empty(CollectionKind::Set).is_true());
        assert!(!a("x").is_true());
        assert!(Value::set([a("anything")]).is_true());
        assert_eq!(
            Value::boolean(CollectionKind::List, true),
            Value::list([Value::unit()])
        );
    }

    #[test]
    fn projection() {
        let t = Value::tuple([("A", a("1")), ("B", a("2"))]);
        assert_eq!(t.project("B").unwrap(), &a("2"));
        assert!(matches!(
            t.project("Z"),
            Err(ValueError::NoSuchAttribute(_))
        ));
        assert!(matches!(a("x").project("A"), Err(ValueError::NotATuple(_))));
    }

    #[test]
    fn path_projection() {
        let t = Value::tuple([("A", Value::tuple([("B", a("hit"))]))]);
        assert_eq!(t.project_path(["A", "B"]).unwrap(), &a("hit"));
        assert_eq!(t.project_path::<[&str; 0]>([]).unwrap(), &t);
    }

    #[test]
    fn metrics() {
        let v = Value::set([Value::tuple([("A", a("1")), ("B", a("2"))])]);
        assert_eq!(v.node_count(), 4); // set + tuple + 2 atoms
        assert_eq!(v.leaf_count(), 2);
        assert_eq!(v.depth(), 3);
        assert_eq!(a("x").depth(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(a("x").to_string(), "x");
        assert_eq!(a("hello world").to_string(), "\"hello world\"");
        assert_eq!(Value::unit().to_string(), "<>");
        assert_eq!(
            Value::tuple([("A", a("1")), ("B", a("2"))]).to_string(),
            "<A: 1, B: 2>"
        );
        assert_eq!(Value::set([a("b"), a("a")]).to_string(), "{a, b}");
        assert_eq!(Value::list([a("b"), a("a")]).to_string(), "[b, a]");
        assert_eq!(Value::bag([a("b"), a("a")]).to_string(), "{|a, b|}");
    }

    #[test]
    fn total_order_separates_kinds() {
        let vals = [
            a("x"),
            Value::unit(),
            Value::set([a("x")]),
            Value::list([a("x")]),
            Value::bag([a("x")]),
        ];
        for (i, v) in vals.iter().enumerate() {
            for (j, w) in vals.iter().enumerate() {
                assert_eq!(v.cmp(w) == Ordering::Equal, i == j);
            }
        }
    }

    #[test]
    fn collection_constructor_dispatch() {
        let items = [a("b"), a("a"), a("a")];
        assert_eq!(
            Value::collection(CollectionKind::Set, items.clone()),
            Value::set(items.clone())
        );
        assert_eq!(
            Value::collection(CollectionKind::List, items.clone()),
            Value::list(items.clone())
        );
        assert_eq!(
            Value::collection(CollectionKind::Bag, items.clone()),
            Value::bag(items)
        );
    }

    #[test]
    fn hash_agrees_with_eq_for_sets() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        let s1 = Value::set([a("b"), a("a")]);
        let s2 = Value::set([a("a"), a("b"), a("a")]);
        assert_eq!(h(&s1), h(&s2));
    }
}
