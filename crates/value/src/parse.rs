//! A small recursive-descent parser for the textual form of complex values
//! and their types, matching the `Display` output of [`Value`] and [`Type`]:
//!
//! ```text
//! value ::= atom | "<" (name ":" value),* ">" | "{" value,* "}"
//!         | "[" value,* "]" | "{|" value,* "|}"
//! type  ::= "Dom" | "{" type "}" | "[" type "]" | "{|" type "|}"
//!         | "<" (name ":" type),* ">"
//! ```
//!
//! Atoms are bare identifiers (including `#`, `_`, `$`, digits) or quoted
//! strings with the usual escapes.

use crate::{Type, Value};

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the failure occurred.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += self.rest().chars().next().unwrap().len_utf8();
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let c = bytes[self.pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '#' || c == '$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos > start {
            Some(self.src[start..self.pos].to_string())
        } else {
            None
        }
    }

    fn quoted(&mut self) -> Result<Option<String>, ParseError> {
        self.skip_ws();
        if !self.rest().starts_with('"') {
            return Ok(None);
        }
        self.pos += 1;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        loop {
            match chars.next() {
                None => return Err(self.err("unterminated string literal")),
                Some((i, '"')) => {
                    self.pos += i + 1;
                    return Ok(Some(out));
                }
                Some((_, '\\')) => match chars.next() {
                    Some((_, c @ ('"' | '\\'))) => out.push(c),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    _ => return Err(self.err("bad escape in string literal")),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn atom_text(&mut self) -> Result<String, ParseError> {
        if let Some(q) = self.quoted()? {
            return Ok(q);
        }
        self.ident().ok_or_else(|| self.err("expected an atom"))
    }

    fn comma_sep<T>(
        &mut self,
        close: &str,
        mut item: impl FnMut(&mut Self) -> Result<T, ParseError>,
    ) -> Result<Vec<T>, ParseError> {
        let mut out = Vec::new();
        if self.eat(close) {
            return Ok(out);
        }
        loop {
            out.push(item(self)?);
            if self.eat(",") {
                continue;
            }
            self.expect(close)?;
            return Ok(out);
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        if self.eat("{|") {
            let items = self.comma_sep("|}", Self::value)?;
            return Ok(Value::bag(items));
        }
        if self.eat("{") {
            let items = self.comma_sep("}", Self::value)?;
            return Ok(Value::set(items));
        }
        if self.eat("[") {
            let items = self.comma_sep("]", Self::value)?;
            return Ok(Value::list(items));
        }
        if self.eat("<") {
            let fields = self.comma_sep(">", |c| {
                let name = c.atom_text()?;
                c.expect(":")?;
                let v = c.value()?;
                Ok((name, v))
            })?;
            return Ok(Value::tuple(fields));
        }
        Ok(Value::atom(self.atom_text()?))
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        self.skip_ws();
        if self.eat("{|") {
            let inner = self.ty()?;
            self.expect("|}")?;
            return Ok(Type::bag(inner));
        }
        if self.eat("{") {
            let inner = self.ty()?;
            self.expect("}")?;
            return Ok(Type::set(inner));
        }
        if self.eat("[") {
            let inner = self.ty()?;
            self.expect("]")?;
            return Ok(Type::list(inner));
        }
        if self.eat("<") {
            let fields = self.comma_sep(">", |c| {
                let name = c.atom_text()?;
                c.expect(":")?;
                let t = c.ty()?;
                Ok((name, t))
            })?;
            return Ok(Type::tuple(fields));
        }
        match self.ident().as_deref() {
            Some("Dom") => Ok(Type::Dom),
            Some(other) => Err(self.err(format!("unknown type name {other:?}"))),
            None => Err(self.err("expected a type")),
        }
    }

    fn finish(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos == self.src.len() {
            Ok(())
        } else {
            Err(self.err("trailing input"))
        }
    }
}

/// Parses a complex value from its textual form.
pub fn parse_value(src: &str) -> Result<Value, ParseError> {
    let mut c = Cursor::new(src);
    let v = c.value()?;
    c.finish()?;
    Ok(v)
}

/// Parses a type from its textual form.
pub fn parse_type(src: &str) -> Result<Type, ParseError> {
    let mut c = Cursor::new(src);
    let t = c.ty()?;
    c.finish()?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms() {
        assert_eq!(parse_value("x").unwrap(), Value::atom("x"));
        assert_eq!(parse_value(" 42 ").unwrap(), Value::atom("42"));
        assert_eq!(
            parse_value("\"hello world\"").unwrap(),
            Value::atom("hello world")
        );
        assert_eq!(parse_value(r#""a\"b""#).unwrap(), Value::atom("a\"b"));
    }

    #[test]
    fn parses_collections() {
        assert_eq!(
            parse_value("{1, 2, 1}").unwrap(),
            Value::set([Value::atom("1"), Value::atom("2")])
        );
        assert_eq!(
            parse_value("[b, a]").unwrap(),
            Value::list([Value::atom("b"), Value::atom("a")])
        );
        assert_eq!(
            parse_value("{|a, a|}").unwrap(),
            Value::bag([Value::atom("a"), Value::atom("a")])
        );
        assert_eq!(parse_value("{}").unwrap().items().unwrap().len(), 0);
    }

    #[test]
    fn parses_tuples() {
        assert_eq!(parse_value("<>").unwrap(), Value::unit());
        assert_eq!(
            parse_value("<A: 1, B: {2}>").unwrap(),
            Value::tuple([
                ("A", Value::atom("1")),
                ("B", Value::set([Value::atom("2")])),
            ])
        );
    }

    #[test]
    fn parses_paper_example_value() {
        // The §2.3 monus example operands.
        let b = parse_value("{|a, a, a, b, b, b, c, d|}").unwrap();
        assert_eq!(b.items().unwrap().len(), 8);
    }

    #[test]
    fn parse_display_round_trip() {
        for src in [
            "x",
            "<>",
            "<A: 1, B: [x, y, x]>",
            "{<A: 1>, <A: 2>}",
            "{|<>, <>|}",
            "[{a}, {b, c}, []]",
        ] {
            let v = parse_value(src).unwrap();
            assert_eq!(parse_value(&v.to_string()).unwrap(), v, "src = {src}");
        }
    }

    #[test]
    fn parses_types() {
        assert_eq!(parse_type("Dom").unwrap(), Type::Dom);
        assert_eq!(parse_type("{Dom}").unwrap(), Type::set(Type::Dom));
        assert_eq!(parse_type("[Dom]").unwrap(), Type::list(Type::Dom));
        assert_eq!(parse_type("{|Dom|}").unwrap(), Type::bag(Type::Dom));
        assert_eq!(
            parse_type("<A: Dom, B: {Dom}>").unwrap(),
            Type::tuple([("A", Type::Dom), ("B", Type::set(Type::Dom))])
        );
        assert_eq!(parse_type("<>").unwrap(), Type::unit());
    }

    #[test]
    fn type_parse_display_round_trip() {
        for src in ["Dom", "{<A: Dom, B: [Dom]>}", "{|{Dom}|}", "<>"] {
            let t = parse_type(src).unwrap();
            assert_eq!(parse_type(&t.to_string()).unwrap(), t);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("{1").is_err());
        assert!(parse_value("<A 1>").is_err());
        assert!(parse_value("x y").is_err());
        assert!(parse_type("Domm").is_err());
        assert!(parse_type("{Dom").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_value("{1, ?}").unwrap_err();
        assert!(err.offset >= 3, "offset was {}", err.offset);
        assert!(err.to_string().contains("parse error"));
    }
}
