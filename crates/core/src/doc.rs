//! Document loading for the evaluation suites, with a representation
//! switch.
//!
//! The Figure 1 reference semantics consumes [`Tree`]s, but the workspace
//! now carries two document stores: the `Rc`-per-node [`Tree`] and the
//! arena-backed, label-interned [`ArenaDoc`]. This
//! module is where the agreement suites choose between them: with
//! `XQ_ARENA` set (to anything but `0`/`false`/off), every document loaded
//! through [`load_document`] — and every generated tree routed through
//! [`DocRepr::roundtrip`] — takes the arena path (`parse → ArenaDoc →
//! Tree`), so one environment variable re-runs the whole differential test
//! surface against the arena store. Conversion is lossless (property
//! tested in `cv_xtree`), so results must be byte-identical; the
//! `arena_diff` suite asserts exactly that.

use cv_xtree::{ArenaDoc, Tree, XmlError};

/// Which document store backs loaded documents.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DocRepr {
    /// The recursive `Rc`-per-node [`Tree`] (the seed representation).
    #[default]
    RcTree,
    /// The arena store: parse/build into [`ArenaDoc`], convert at the
    /// boundary. Selected by the `XQ_ARENA` environment variable.
    Arena,
}

impl DocRepr {
    /// Reads the `XQ_ARENA` environment variable: unset, `0`, `false`, or
    /// `off` mean [`DocRepr::RcTree`]; anything else selects
    /// [`DocRepr::Arena`].
    pub fn from_env() -> DocRepr {
        match std::env::var("XQ_ARENA") {
            Ok(v) if !matches!(v.as_str(), "" | "0" | "false" | "off") => DocRepr::Arena,
            _ => DocRepr::RcTree,
        }
    }

    /// Parses a single-rooted XML document under this representation.
    pub fn load(self, src: &str) -> Result<Tree, XmlError> {
        match self {
            DocRepr::RcTree => cv_xtree::parse_tree(src),
            DocRepr::Arena => Ok(ArenaDoc::parse(src)?.to_tree()),
        }
    }

    /// Routes an already-built tree through this representation: the
    /// identity for [`DocRepr::RcTree`], and the (lossless)
    /// `Tree → ArenaDoc → Tree` round trip for [`DocRepr::Arena`]. Test
    /// corpora built by generators call this so `XQ_ARENA` covers them too.
    pub fn roundtrip(self, t: &Tree) -> Tree {
        match self {
            DocRepr::RcTree => t.clone(),
            DocRepr::Arena => ArenaDoc::from_tree(t).to_tree(),
        }
    }
}

impl std::fmt::Display for DocRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DocRepr::RcTree => "rc-tree",
            DocRepr::Arena => "arena",
        })
    }
}

/// Parses a document under the representation selected by `XQ_ARENA`
/// (see [`DocRepr::from_env`]). The suites' standard entry point.
pub fn load_document(src: &str) -> Result<Tree, XmlError> {
    DocRepr::from_env().load(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_representations_load_identically() {
        let src = "<r><a><b/></a><a/><c><a><b/></a></c></r>";
        let rc = DocRepr::RcTree.load(src).unwrap();
        let arena = DocRepr::Arena.load(src).unwrap();
        assert_eq!(rc, arena);
        assert_eq!(DocRepr::Arena.roundtrip(&rc), rc);
    }

    #[test]
    fn both_representations_reject_identically() {
        for bad in ["<a>", "</a>", "<a></b>", "<a/><b/>"] {
            assert_eq!(
                DocRepr::RcTree.load(bad).unwrap_err(),
                DocRepr::Arena.load(bad).unwrap_err(),
                "error for {bad:?}"
            );
        }
    }

    #[test]
    fn env_parsing() {
        // from_env is read-only; exercise the match arms via load paths.
        assert_eq!(DocRepr::default(), DocRepr::RcTree);
        assert_eq!(DocRepr::RcTree.to_string(), "rc-tree");
        assert_eq!(DocRepr::Arena.to_string(), "arena");
    }
}
