//! The wire format: one JSON object per line, flat, three value types.
//!
//! The front door speaks line-delimited JSON-RPC-style frames — one
//! object per `\n`-terminated line, string keys, values restricted to
//! strings, unsigned integers, and booleans. That subset covers every
//! frame the protocol needs (queries, acks, errors, stats) while keeping
//! the parser small enough to audit for the property the fuzz suite
//! pins: **no input byte sequence panics it**. The registry is offline,
//! so the codec is hand-rolled here rather than pulled from serde; the
//! golden suite (`tests/proto.rs`) pins the exact bytes both directions.
//!
//! Escapes follow JSON: `\" \\ \/ \b \f \n \r \t \uXXXX`, including
//! UTF-16 surrogate pairs for astral characters. Encoding escapes the
//! two mandatory characters (`"`, `\`) plus control characters; all
//! other text passes through as UTF-8.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A frame value: the protocol needs no nesting, no floats, no null.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A non-negative JSON integer (the protocol has no negative fields).
    UInt(u64),
    /// A JSON boolean.
    Bool(bool),
}

/// A parsed or under-construction frame: an ordered field list.
///
/// Encoding writes fields in insertion order (goldens depend on stable
/// key order); lookup is linear — frames have at most a handful of keys.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Frame {
    fields: Vec<(String, Value)>,
}

impl Frame {
    /// An empty frame.
    pub fn new() -> Frame {
        Frame::default()
    }

    /// Appends a string field (builder-style).
    pub fn str(mut self, key: &str, value: impl Into<String>) -> Frame {
        self.fields
            .push((key.to_string(), Value::Str(value.into())));
        self
    }

    /// Appends an unsigned-integer field (builder-style).
    pub fn uint(mut self, key: &str, value: u64) -> Frame {
        self.fields.push((key.to_string(), Value::UInt(value)));
        self
    }

    /// Appends a boolean field (builder-style).
    pub fn bool(mut self, key: &str, value: bool) -> Frame {
        self.fields.push((key.to_string(), Value::Bool(value)));
        self
    }

    /// The value under `key`, if present (first occurrence wins, matching
    /// the parser's duplicate-key rejection — parsed frames never hold
    /// duplicates).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string under `key`, if present with that type.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The unsigned integer under `key`, if present with that type.
    pub fn get_uint(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Value::UInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The boolean under `key`, if present with that type.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Serializes the frame as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(32);
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            encode_str(&mut out, k);
            out.push(':');
            match v {
                Value::Str(s) => encode_str(&mut out, s),
                Value::UInt(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses one frame from one line. Strict about shape (a single flat
    /// object, no duplicate keys, only the three value types) but total:
    /// any input — malformed escapes, truncation, nesting, raw control
    /// bytes — yields `Err`, never a panic. The fuzz suite holds the
    /// codec to that.
    pub fn parse(line: &str) -> Result<Frame, String> {
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
            src: line,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut fields = Vec::new();
        let mut seen = BTreeMap::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.skip_ws();
                let key = p.parse_string()?;
                if seen.insert(key.clone(), ()).is_some() {
                    return Err(format!("duplicate key {key:?}"));
                }
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let value = p.parse_value()?;
                fields.push((key, value));
                p.skip_ws();
                match p.next() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    other => return Err(unexpected(other, "',' or '}'")),
                }
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes after frame at offset {}", p.pos));
        }
        Ok(Frame { fields })
    }
}

/// Writes `s` as a JSON string literal into `out`.
fn encode_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn unexpected(got: Option<u8>, want: &str) -> String {
    match got {
        Some(b) => format!("expected {want}, got {:?}", b as char),
        None => format!("expected {want}, got end of input"),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    src: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(unexpected(other, &format!("'{}'", want as char))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'0'..=b'9') => self.parse_uint(),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            other => Err(unexpected(other, "a string, unsigned integer, or boolean")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn parse_uint(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let digits = &self.src[start..self.pos];
        // Reject redundant leading zeros (strict JSON) so every integer
        // has one canonical encoding.
        if digits.len() > 1 && digits.starts_with('0') {
            return Err(format!("leading zero in integer {digits:?}"));
        }
        digits
            .parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| format!("integer out of range: {digits:?}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice is valid UTF-8 by construction (src is a &str and
            // we only stop on ASCII boundaries).
            out.push_str(&self.src[start..self.pos]);
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require the paired low half.
                            if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                return Err("unpaired surrogate".to_string());
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or("bad surrogate pair")?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err("unpaired low surrogate".to_string());
                        } else {
                            char::from_u32(hi).ok_or("bad \\u escape")?
                        };
                        out.push(c);
                    }
                    other => return Err(unexpected(other, "an escape character")),
                },
                Some(b) if b < 0x20 => return Err(format!("raw control byte {b:#04x} in string")),
                other => return Err(unexpected(other, "'\"'")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.next().ok_or("truncated \\u escape")?;
            let d = (b as char).to_digit(16).ok_or("bad hex digit")?;
            v = (v << 4) | d;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_three_value_types() {
        let f = Frame::new()
            .str("op", "query")
            .uint("id", 42)
            .bool("ok", true);
        let line = f.encode();
        assert_eq!(line, r#"{"op":"query","id":42,"ok":true}"#);
        assert_eq!(Frame::parse(&line).unwrap(), f);
    }

    #[test]
    fn escapes_round_trip() {
        let wild = "quote \" backslash \\ newline \n tab \t bell \u{07} astral \u{1F600} ok";
        let f = Frame::new().str("s", wild);
        let parsed = Frame::parse(&f.encode()).unwrap();
        assert_eq!(parsed.get_str("s"), Some(wild));
        // Escaped input parses too, including a surrogate pair.
        let f = Frame::parse(r#"{"s":"aéb😀c\/d"}"#).unwrap();
        assert_eq!(f.get_str("s"), Some("aéb\u{1F600}c/d"));
    }

    #[test]
    fn rejects_malformed_frames() {
        for bad in [
            "",
            "null",
            "[1]",
            "{",
            "{}extra",
            r#"{"a":1"#,
            r#"{"a":-1}"#,
            r#"{"a":1.5}"#,
            r#"{"a":01}"#,
            r#"{"a":{}}"#,
            r#"{"a":null}"#,
            r#"{"a":1,"a":2}"#,
            r#"{"a":"\x"}"#,
            r#"{"a":"\ud800"}"#,
            r#"{"a":"\udc00x"}"#,
            r#"{"a":18446744073709551616}"#, // u64::MAX + 1
            "{\"a\":\"raw\u{01}ctl\"}",
        ] {
            assert!(Frame::parse(bad).is_err(), "accepted: {bad:?}");
        }
        // Empty object is fine (the server rejects it at the op level).
        assert!(Frame::parse("{}").unwrap().get("op").is_none());
    }
}
