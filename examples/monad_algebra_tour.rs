//! A tour of monad algebra (§2): the same variable-free query language
//! interpreted over sets, lists, and bags, the derived operations of
//! Theorem 2.2, and the translation to Core XQuery (Figure 3).

use xq_complexity::core::{xq_of_ma, Var};
use xq_complexity::monad::{derived, eval, typecheck, CollectionKind, Cond, Expr, Operand};
use xq_complexity::value::{parse_type, parse_value};

fn main() {
    // The Cartesian product of Example 2.1: f × g.
    let product = derived::product(Expr::Id, Expr::Id);
    let input = parse_value("{a, b}").unwrap();
    let out = eval(&product, CollectionKind::Set, &input).unwrap();
    println!("id × id on {input}  =  {out}");

    // The same expression under bag semantics keeps duplicates.
    let bag_in = parse_value("{|a, a|}").unwrap();
    let bag_out = eval(&product, CollectionKind::Bag, &bag_in).unwrap();
    println!("id × id on {bag_in}  =  {bag_out}");

    // Type checking: pairwith's rule from §2.2.
    let ty = parse_type("<A: {Dom}, B: Dom>").unwrap();
    let out_ty = typecheck(&Expr::pairwith("A"), CollectionKind::Set, &ty).unwrap();
    println!("\npairwith_A : {ty} -> {out_ty}");

    // Derived difference (Example 2.4) vs the built-in.
    let pair = parse_value("<R: {1, 2, 3}, S: {2}>").unwrap();
    let derived_out = eval(&derived::derived_diff(), CollectionKind::Set, &pair).unwrap();
    println!("\nR − S by Example 2.4 on {pair}  =  {derived_out}");

    // Bag monus, §2.3's example.
    let monus = Expr::Monus(Expr::proj("1").into(), Expr::proj("2").into());
    let bags = parse_value("<1: {|a, a, a, b, b, b, c, d|}, 2: {|a, a, b, c, e|}>").unwrap();
    println!(
        "monus example: {}",
        eval(&monus, CollectionKind::Bag, &bags).unwrap()
    );

    // Figure 3: compile a monad algebra query to Core XQuery.
    let f = Expr::pairwith("A")
        .then(Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B"))).mapped());
    let ty = parse_type("<A: [Dom], B: Dom>").unwrap();
    let q = xq_of_ma(&f, &ty, &Var::new("x")).unwrap();
    println!("\nFigure 3 translation of  {f}\n  into XQuery:\n{q}");
}
