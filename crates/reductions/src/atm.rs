//! Alternating Turing machines with bounded alternations, and a direct
//! evaluator for the `A_i` recurrence of Theorem 5.9 — the oracle for the
//! ATM-to-monad-algebra reduction.

use crate::ntm::{Config, Ntm};
use std::collections::BTreeSet;

/// An alternating TM: an [`Ntm`] plus a quantifier block per state.
/// Following the proof's w.l.o.g. assumptions: accepting states are
/// existential (`F ⊆ Q∃`).
#[derive(Clone, Debug)]
pub struct Atm {
    /// The underlying machine (states, alphabet, transitions, accepting).
    pub machine: Ntm,
    /// `existential[q]` iff state `q` is in `Q∃` (else `Q∀`).
    pub existential: Vec<bool>,
}

impl Atm {
    fn is_existential(&self, c: &Config) -> bool {
        self.existential[c.state]
    }

    /// All valid configurations on a `tape_len`-cell tape (the oracle only
    /// enumerates single-head configurations; the reduction's junk configs
    /// are unreachable from a valid start, per the proof).
    fn all_configs(&self, tape_len: usize) -> Vec<Config> {
        let syms = self.machine.alphabet.len();
        let states = self.machine.states.len();
        let mut out = Vec::new();
        let mut tape = vec![0usize; tape_len];
        loop {
            for head in 0..tape_len {
                for state in 0..states {
                    out.push(Config {
                        tape: tape.clone(),
                        head,
                        state,
                    });
                }
            }
            // Odometer over tapes.
            let mut i = 0;
            loop {
                if i == tape_len {
                    return out;
                }
                tape[i] += 1;
                if tape[i] < syms {
                    break;
                }
                tape[i] = 0;
                i += 1;
            }
        }
    }

    /// `ψ`: pairs `(C, C′)` with `C′` reachable from `C` in at most
    /// `steps` steps through configurations in `C`'s quantifier block
    /// (the last configuration may leave the block) — Theorem 5.9's
    /// modified reachability, computed directly.
    pub fn same_block_reach(&self, tape_len: usize, steps: usize) -> BTreeSet<(Config, Config)> {
        let mut pairs = BTreeSet::new();
        for c in self.all_configs(tape_len) {
            // BFS limited to same-block intermediate configs.
            let block = self.is_existential(&c);
            let mut frontier: BTreeSet<Config> = [c.clone()].into();
            pairs.insert((c.clone(), c.clone()));
            for _ in 0..steps {
                let mut next = BTreeSet::new();
                for m in &frontier {
                    for s in self.machine.successors(m) {
                        pairs.insert((c.clone(), s.clone()));
                        // Continue only through the same block.
                        if self.is_existential(&s) == block {
                            next.insert(s);
                        }
                    }
                }
                frontier = next;
            }
        }
        pairs
    }

    /// The `A_i` recurrence of Theorem 5.9 evaluated directly:
    ///
    /// ```text
    /// A_1     = {C | ∃C′: (C,C′) ∈ ψ, C′ accepting, C ∈ Q∃}
    /// A_{i+1} = {C | ∃C′: (C,C′) ∈ ψ, C′ ∈ Configs − A_i,
    ///                C ∈ Q∃ ⇔ C′ ∉ Q∃}
    /// ```
    pub fn alternation_sets(
        &self,
        tape_len: usize,
        steps: usize,
        rounds: usize,
    ) -> Vec<BTreeSet<Config>> {
        let psi = self.same_block_reach(tape_len, steps);
        let configs: BTreeSet<Config> = self.all_configs(tape_len).into_iter().collect();
        let mut sets = Vec::new();
        let a1: BTreeSet<Config> = psi
            .iter()
            .filter(|(c, cp)| self.machine.accepting.contains(&cp.state) && self.is_existential(c))
            .map(|(c, _)| c.clone())
            .collect();
        sets.push(a1);
        for _ in 1..rounds {
            let prev = sets.last().expect("a1 pushed");
            let complement: BTreeSet<&Config> =
                configs.iter().filter(|c| !prev.contains(*c)).collect();
            let next: BTreeSet<Config> = psi
                .iter()
                .filter(|(c, cp)| {
                    complement.contains(cp) && (self.is_existential(c) != self.is_existential(cp))
                })
                .map(|(c, _)| c.clone())
                .collect();
            sets.push(next);
        }
        sets
    }

    /// Acceptance with `rounds` alternations (odd, per the proof's
    /// assumption): `C_start ∈ A_rounds`.
    pub fn accepts_alternating(&self, start: &Config, steps: usize, rounds: usize) -> bool {
        assert!(
            rounds % 2 == 1,
            "the proof assumes an odd alternation count"
        );
        let sets = self.alternation_sets(start.tape.len(), steps, rounds);
        sets[rounds - 1].contains(start)
    }
}

/// Small alternating machines for tests.
pub mod zoo {
    use super::*;
    use crate::ntm::{Move, Transition};

    /// An existential start state steps into a universal state that
    /// branches to write `#` or `1` into cell 0, entering the existential
    /// checker, which accepts iff cell 0 is `1`. With one universal branch
    /// writing `#`, the machine must reject — unless `require_one` is
    /// false, in which case the checker accepts any symbol.
    ///
    /// (The machine *starts existential* because the proof evaluates
    /// `C_start ∈ A_K` with odd `K`, and odd-indexed `A_i` contain
    /// existential configurations.)
    pub fn forall_then_check(require_one: bool) -> Atm {
        let mut transitions = vec![
            // Existential kick-off: hand over to the universal state.
            Transition {
                from: 0,
                read: 0,
                to: 1,
                write: 0,
                mv: Move::Stay,
            },
            Transition {
                from: 0,
                read: 1,
                to: 1,
                write: 1,
                mv: Move::Stay,
            },
            // Universal: overwrite cell 0 with # or 1.
            Transition {
                from: 1,
                read: 0,
                to: 2,
                write: 0,
                mv: Move::Stay,
            },
            Transition {
                from: 1,
                read: 0,
                to: 2,
                write: 1,
                mv: Move::Stay,
            },
            Transition {
                from: 1,
                read: 1,
                to: 2,
                write: 0,
                mv: Move::Stay,
            },
            Transition {
                from: 1,
                read: 1,
                to: 2,
                write: 1,
                mv: Move::Stay,
            },
            // Existential checker: accept on 1.
            Transition {
                from: 2,
                read: 1,
                to: 3,
                write: 1,
                mv: Move::Stay,
            },
        ];
        if !require_one {
            transitions.push(Transition {
                from: 2,
                read: 0,
                to: 3,
                write: 0,
                mv: Move::Stay,
            });
        }
        let machine = Ntm {
            states: vec!["es".into(), "u0".into(), "e0".into(), "acc".into()],
            alphabet: vec!["#".into(), "1".into()],
            accepting: vec![3],
            transitions,
        }
        .with_stay_loops();
        Atm {
            machine,
            // u0 is universal; the rest existential (F ⊆ Q∃).
            existential: vec![true, false, true, true],
        }
    }

    /// A purely existential machine (degenerate alternation) that accepts
    /// iff the first cell holds 1.
    pub fn purely_existential() -> Atm {
        let machine = crate::ntm::zoo::first_is_one();
        let n = machine.states.len();
        Atm {
            machine,
            existential: vec![true; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_branch_rejects_when_one_branch_fails() {
        let m = zoo::forall_then_check(true);
        let start = m.machine.start_config(&[1, 0], 2);
        // The universal state can write # into cell 0; that branch cannot
        // reach acceptance, so with alternations ∀ fails.
        assert!(!m.accepts_alternating(&start, 2, 3));
    }

    #[test]
    fn forall_accepts_when_all_branches_succeed() {
        let m = zoo::forall_then_check(false);
        let start = m.machine.start_config(&[1, 0], 2);
        assert!(m.accepts_alternating(&start, 2, 3));
    }

    #[test]
    fn purely_existential_matches_ntm_semantics() {
        let m = zoo::purely_existential();
        let yes = m.machine.start_config(&[1, 0], 2);
        let no = m.machine.start_config(&[0, 1], 2);
        assert!(m.accepts_alternating(&yes, 2, 1));
        assert!(!m.accepts_alternating(&no, 2, 1));
    }

    #[test]
    fn same_block_reach_respects_blocks() {
        let m = zoo::forall_then_check(true);
        let psi = m.same_block_reach(2, 2);
        // From u0 (universal), one step reaches e0 (existential) — the
        // endpoint may cross; but paths *through* e0 out of u0's block
        // are cut, so u0 cannot reach acc (two block-crossing steps).
        // From u0 (state 1, universal) one step reaches e0 (state 2,
        // existential) — endpoints may cross the block boundary — but acc
        // (state 3) would need a second crossing step, which ψ cuts.
        let u0 = Config {
            state: 1,
            ..m.machine.start_config(&[1, 0], 2)
        };
        let crossed_once = psi.iter().any(|(c, cp)| c == &u0 && cp.state == 2);
        assert!(crossed_once);
        let crossed_twice = psi.iter().any(|(c, cp)| c == &u0 && cp.state == 3);
        assert!(!crossed_twice, "ψ must stop at the block boundary");
    }

    #[test]
    fn reflexivity_of_psi() {
        let m = zoo::purely_existential();
        let psi = m.same_block_reach(2, 1);
        let c = m.machine.start_config(&[1, 1], 2);
        assert!(psi.contains(&(c.clone(), c)));
    }
}
