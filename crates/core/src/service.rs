//! A batching query service over a supervised worker pool — the
//! serve-heavy-traffic shape of the ROADMAP north star.
//!
//! [`QueryService`] owns `N` long-lived worker threads. A batch of
//! [`Request`]s (query text + shared [`ArenaDoc`] + [`Budget`]) is fanned
//! out over one shared job channel; workers evaluate and send back
//! `(index, result)` pairs, and [`QueryService::run_batch`] reassembles
//! them in submission order. Documents cross threads as
//! `Arc<ArenaDoc>` — the sharded global interner is what makes that legal
//! — so a corpus is loaded once and served by every worker without
//! copying.
//!
//! Besides the synchronous batch collectors there is an asynchronous
//! handoff for event-loop callers: [`QueryService::try_submit`] admits
//! (or sheds) one tagged request and returns immediately; the worker
//! later pushes `(tag, result)` onto the caller's [`CompletionSink`] and
//! runs its waker — how the reactor front door in `xq_server` gets
//! completions back into an `epoll_wait` loop without parking a thread
//! per connection.
//!
//! On the default route ([`ServeMode::CachedVm`]) workers do not parse at
//! all: query text resolves through the process-wide
//! [`PlanCache`] to a [`CompiledPlan`](crate::vm::CompiledPlan) —
//! compiled exactly once per process, however many workers race on it —
//! and runs on the bytecode VM. [`ServeMode::Interp`] preserves the
//! parse-per-request interpreter route as a baseline.
//!
//! ## Fault containment
//!
//! Koch05's completeness result means a legitimately adversarial query
//! can demand exponential resources — and an engine bug it tickles can
//! panic. Three layers keep one bad request from taking the pool down:
//!
//! * **The unwind fence.** Each evaluation runs under
//!   [`std::panic::catch_unwind`]: a panicking query is answered
//!   [`ServiceError::Internal`] and the worker serves the next job.
//! * **RAII accounting and delivery.** Every gauge increment is held by
//!   a guard (`GaugeGuard`) and every job owns a `Delivery` that
//!   answers `Internal` on drop if nothing was delivered — so *any*
//!   exit path (normal, panic, worker death, service shutdown with jobs
//!   still queued) returns the gauges to zero and sends exactly one
//!   reply per job. The batch collectors and the reactor's FIFO rely on
//!   exactly-once replies; the guards make that invariant hold even
//!   under injected worker crashes.
//! * **Supervision.** A panic that escapes the fence (delivery-path
//!   failures, injected via [`FaultPoint::CompletionDrop`]) kills the
//!   worker thread; a supervisor thread observes the death through a
//!   drop sentinel and respawns the worker under a bounded restart
//!   budget with exponential backoff. A pool whose budget is exhausted
//!   degrades instead of hanging: the supervisor itself drains the job
//!   channel, answering `Internal` — callers always get replies.
//!
//! Failure paths are exercised deterministically through the seeded
//! [`Faults`] registry in [`crate::fault`];
//! with no registry configured every hook is a single `None` test.
//!
//! Workers keep a small per-document cache of the materialized [`Tree`]
//! (the Figure 1 evaluator's input form), keyed by the `Arc` pointer
//! identity, so serving many queries against the same hot document pays
//! the arena → tree conversion once per worker, not once per request.

use crate::fault::{FaultPoint, Faults, INJECTED_PANIC_PREFIX};
use crate::semantics::{eval_with, Budget, Env, XqError};
use crate::vm::PlanCache;
use crate::Query;
use cv_xtree::{ArenaDoc, Tree};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of work for the service: evaluate `query` (surface syntax)
/// against `doc` under `budget`.
#[derive(Clone)]
pub struct Request {
    /// The query in the paper's surface syntax (parsed by the worker).
    pub query: Arc<str>,
    /// The document, shared across workers without copying.
    pub doc: Arc<ArenaDoc>,
    /// Per-request resource limits. A `threads` knob above 1 routes the
    /// request through the parallel planner
    /// ([`eval_query_par`](crate::eval_query_par)), sharding the query's
    /// loops across that many scoped workers *inside* the pool worker —
    /// intra-query parallelism on top of the pool's inter-query
    /// parallelism. The default ([`Threads::One`](crate::Threads)) keeps
    /// requests on the cached-tree sequential path.
    pub budget: Budget,
}

impl Request {
    /// A request with the default budget.
    pub fn new(query: impl AsRef<str>, doc: Arc<ArenaDoc>) -> Request {
        Request {
            query: Arc::from(query.as_ref()),
            doc,
            budget: Budget::default(),
        }
    }
}

/// Why a request failed. Carries rendered messages (not the source
/// errors) so results stay `Send` and comparable in tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The query text did not parse.
    Parse(String),
    /// Evaluation failed (unbound variable, budget exhaustion, …).
    Eval(String),
    /// Shed at admission: the bounded queue was at its high-water mark.
    /// The request was never queued and consumed no evaluation work.
    Overloaded,
    /// The request's [`CancelFlag`](crate::CancelFlag) was set — either
    /// before evaluation started (preflight) or mid-evaluation at a
    /// budget tick.
    Cancelled,
    /// The request's deadline passed — before evaluation started
    /// (preflight) or mid-evaluation at a budget tick.
    DeadlineExceeded,
    /// The engine failed the request, not the request the engine: the
    /// evaluation panicked (contained by the worker's unwind fence), the
    /// worker died before delivering, or the service shut down with the
    /// job still queued. The message says which. Answered on the wire as
    /// `internal_error`.
    Internal(String),
}

impl ServiceError {
    /// Maps an evaluation error to the service vocabulary: cancellation
    /// and deadline expiry keep their identity (the front door answers
    /// them with distinct protocol codes); everything else renders as a
    /// generic evaluation failure.
    pub fn from_eval(e: &XqError) -> ServiceError {
        match e {
            XqError::Cancelled => ServiceError::Cancelled,
            XqError::DeadlineExceeded => ServiceError::DeadlineExceeded,
            other => ServiceError::Eval(other.to_string()),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Parse(m) => write!(f, "parse error: {m}"),
            ServiceError::Eval(m) => write!(f, "evaluation error: {m}"),
            ServiceError::Overloaded => write!(f, "overloaded"),
            ServiceError::Cancelled => write!(f, "evaluation cancelled"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Which evaluation route the pool workers take.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ServeMode {
    /// Parse every request and tree-walk the Figure 1 interpreter — the
    /// pre-VM behavior, kept as the T18 baseline and for mode-differential
    /// tests. This is the latent per-request re-parse the plan cache
    /// fixes.
    Interp,
    /// Compile through the process-wide [`PlanCache`] and run the
    /// bytecode VM: a hot query parses and compiles once per process,
    /// not once per request per worker. The default.
    #[default]
    CachedVm,
}

/// Construction-time pool configuration: everything the workers and the
/// supervisor need fixed before the first thread spawns.
/// [`QueryService::new`]/[`QueryService::with_mode`] cover the common
/// cases; chaos tests and the front door use the full struct.
#[derive(Clone)]
pub struct PoolConfig {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// Evaluation route (VM by default).
    pub mode: ServeMode,
    /// Seeded fault registry; `None` (the default) disables injection
    /// entirely — each hook is then a single pointer test.
    pub faults: Option<Arc<Faults>>,
    /// Total worker respawns the supervisor will perform over the
    /// service's lifetime. Exhausting it with no workers left switches
    /// the supervisor to degraded draining (every job answered
    /// [`ServiceError::Internal`]) rather than hanging callers.
    pub restart_budget: u32,
    /// Backoff before the first respawn; doubles per respawn up to
    /// [`PoolConfig::MAX_BACKOFF`], resetting after a calm second.
    pub restart_backoff: Duration,
}

impl PoolConfig {
    /// Backoff ceiling for crash-looping pools.
    pub const MAX_BACKOFF: Duration = Duration::from_millis(100);
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 2,
            mode: ServeMode::default(),
            faults: None,
            restart_budget: 32,
            restart_backoff: Duration::from_millis(1),
        }
    }
}

/// Where a finished job's result goes.
enum JobSink {
    /// A synchronous batch collector ([`QueryService::run_batch`] /
    /// [`QueryService::try_run_batch`]): per-batch channels (rather than
    /// one shared receiver) are what make the batch methods take `&self` —
    /// any number of callers can have batches in flight on the same pool
    /// concurrently, each collecting exactly its own replies.
    Batch(Sender<Reply>),
    /// An asynchronous completion queue ([`QueryService::try_submit`]):
    /// the reply lands on the sink's channel and the sink's waker runs,
    /// so a reactor blocked in `epoll_wait` learns a completion exists.
    Queue(CompletionSink),
}

/// Holds one unit of a gauge, releasing it on drop — the RAII fix for
/// the admission-slot leak: a worker dying (or any early return) between
/// claiming a slot and completing can no longer leave `queued`,
/// `admitted`, or `in_flight` permanently elevated, because the
/// decrement rides the guard's destructor through every exit path,
/// unwinding included.
struct GaugeGuard(Arc<AtomicUsize>);

impl GaugeGuard {
    /// Claims one unit (increments) and guards it.
    fn claim(gauge: &Arc<AtomicUsize>) -> GaugeGuard {
        gauge.fetch_add(1, Ordering::SeqCst);
        GaugeGuard(Arc::clone(gauge))
    }

    /// Guards a unit something else already claimed (the admission CAS).
    fn adopt(gauge: Arc<AtomicUsize>) -> GaugeGuard {
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Owns a job's reply obligation: exactly one reply reaches the sink,
/// on every path. [`Delivery::deliver`] sends the real result; if the
/// guard drops still armed — the worker panicked mid-delivery, or the
/// service shut down with the job still queued — the destructor sends
/// [`ServiceError::Internal`] instead. This is what lets the batch
/// collector's "every slot filled" invariant and the reactor's
/// one-response-per-id FIFO survive worker crashes.
struct Delivery {
    tag: u64,
    sink: Option<JobSink>,
}

impl Delivery {
    fn new(tag: u64, sink: JobSink) -> Delivery {
        Delivery {
            tag,
            sink: Some(sink),
        }
    }

    /// Sends the result (exactly once — disarms the destructor).
    /// `faults` hosts the `completion-drop` point: an injected panic
    /// *here* is outside the worker's unwind fence, killing the thread
    /// mid-delivery — precisely the failure the destructor then absorbs.
    fn deliver(mut self, result: Result<String, ServiceError>, faults: Option<&Faults>) {
        if let Some(f) = faults {
            if f.fires(FaultPoint::CompletionDrop) {
                panic!("{INJECTED_PANIC_PREFIX} completion-drop");
            }
        }
        self.send(result);
    }

    fn send(&mut self, result: Result<String, ServiceError>) {
        let Some(sink) = self.sink.take() else {
            return;
        };
        // Losing the reply means the collector hung up; that's its
        // business (mirrors the original batch-path contract).
        match sink {
            JobSink::Batch(reply) => {
                let _ = reply.send((self.tag, result));
            }
            JobSink::Queue(sink) => sink.deliver(self.tag, result),
        }
    }
}

impl Drop for Delivery {
    fn drop(&mut self) {
        if self.sink.is_some() {
            self.send(Err(ServiceError::Internal(
                "request abandoned before completion (worker crash or service shutdown)"
                    .to_string(),
            )));
        }
    }
}

struct Job {
    request: Request,
    /// The reply obligation; carries the caller's correlation tag (batch
    /// paths use the request's position, `try_submit` callers route
    /// whatever ticket they chose).
    delivery: Delivery,
    /// Held while the job sits in the queue; released at worker pickup —
    /// or by the job being dropped unserved at shutdown.
    queued: GaugeGuard,
    /// The admission slot, if this job came through an
    /// admission-controlled path; released at pickup like `queued`.
    admission: Option<GaugeGuard>,
}

type Reply = (u64, Result<String, ServiceError>);

/// The delivery end of [`QueryService::try_submit`]: a completion channel
/// plus a wake callback, bundled so pool workers can hand results back to
/// an event loop that is not blocked on a channel. The worker sends
/// `(tag, result)` on the channel **then** runs the waker — a waker that
/// (say) writes an eventfd therefore never fires before its completion is
/// observable.
#[derive(Clone)]
pub struct CompletionSink {
    tx: Sender<Reply>,
    wake: Arc<dyn Fn() + Send + Sync>,
}

impl CompletionSink {
    /// Bundles a completion channel with the waker that announces sends.
    pub fn new(tx: Sender<Reply>, wake: Arc<dyn Fn() + Send + Sync>) -> CompletionSink {
        CompletionSink { tx, wake }
    }

    fn deliver(&self, tag: u64, result: Result<String, ServiceError>) {
        // Losing the reply means the consumer hung up; that's its
        // business (mirrors the batch paths).
        let _ = self.tx.send((tag, result));
        (self.wake)();
    }
}

/// What a worker's drop sentinel tells the supervisor.
enum Notice {
    /// The worker thread is unwinding from an escaped panic: join the
    /// corpse, consider a respawn.
    Died(usize),
    /// The worker exited cleanly (jobs channel closed — shutdown).
    Exited(usize),
    /// The service is dropping: join everything and return.
    Shutdown,
}

/// Announces the owning worker's fate to the supervisor from the one
/// place that observes every exit path: the thread's stack unwinding or
/// returning. `thread::panicking()` distinguishes a crash from a clean
/// shutdown exit.
struct Sentinel {
    id: usize,
    notices: Sender<Notice>,
    alive: Arc<AtomicUsize>,
    deaths: Arc<AtomicUsize>,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        self.alive.fetch_sub(1, Ordering::SeqCst);
        if std::thread::panicking() {
            self.deaths.fetch_add(1, Ordering::SeqCst);
            let _ = self.notices.send(Notice::Died(self.id));
        } else {
            let _ = self.notices.send(Notice::Exited(self.id));
        }
    }
}

/// State shared by the workers, the supervisor, and the service handle.
struct Pool {
    /// The shared job queue. Living inside the pool (which the service
    /// handle keeps alive), the receiver cannot drop while the service
    /// exists — the invariant that makes `enqueue`'s send infallible.
    jobs_rx: Mutex<Receiver<Job>>,
    mode: ServeMode,
    faults: Option<Arc<Faults>>,
    /// Jobs accepted but not yet picked up by a worker — *all* of them,
    /// whichever path enqueued them. Pure observability.
    queued: Arc<AtomicUsize>,
    /// The admission-controlled subset of `queued`: only jobs that came
    /// through [`QueryService::admit`] (`try_run_batch` / `try_submit`)
    /// count here, so an un-admission-controlled `run_batch` can never
    /// eat admission slots and force spurious sheds (the PR 8 gauge
    /// bugfix — both paths account consistently: each claims the gauges
    /// it owns, and the claims release by RAII at pickup).
    admitted: Arc<AtomicUsize>,
    /// Jobs a worker is currently evaluating.
    in_flight: Arc<AtomicUsize>,
    /// Worker threads currently running.
    alive: Arc<AtomicUsize>,
    /// Worker threads lost to escaped panics, ever.
    deaths: Arc<AtomicUsize>,
    /// Respawns the supervisor performed, ever.
    restarts: Arc<AtomicUsize>,
    /// Panics the unwind fence caught (answered `Internal`), ever.
    contained: Arc<AtomicUsize>,
}

/// The panic payload rendered for an `Internal` answer.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// The worker body: receive, evaluate under the unwind fence, deliver.
fn worker_loop(pool: &Pool) {
    let mut cache = HashMap::new();
    loop {
        // Lock only around the receive so idle workers never block a
        // busy one. A poisoned mutex is recovered, not propagated: the
        // critical section is a single `recv()` (no data structure to
        // half-update), so the receiver is still sound after a panic —
        // and propagating would crash-loop every worker in turn.
        let job = match pool
            .jobs_rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv()
        {
            Ok(job) => job,
            Err(_) => break, // service dropped: shut down
        };
        run_job(pool, job, &mut cache);
    }
}

/// Serves one job with full RAII accounting; see the guard type docs.
fn run_job(pool: &Pool, job: Job, cache: &mut HashMap<usize, (Arc<ArenaDoc>, Tree)>) {
    let Job {
        request,
        delivery,
        queued,
        admission,
    } = job;
    // Leaving the queue: release the queue gauge and the admission slot
    // (the slot bounds *accepted-unserved* work, exactly as before).
    drop(queued);
    drop(admission);
    let in_flight = GaugeGuard::claim(&pool.in_flight);
    let faults = pool.faults.as_deref();
    // The unwind fence. `AssertUnwindSafe` is justified by audit:
    // * `request` is shared immutable state (Arc'd query text, document,
    //   budget clone) — nothing to corrupt.
    // * `cache` (the worker's doc-tree map) mutates only via
    //   `entry().or_insert_with(build)`: a panic inside `build` inserts
    //   nothing, leaving the map consistent.
    // * The process-wide plan cache and label interner are lock-striped;
    //   their locks recover from poisoning (`PoisonError::into_inner`)
    //   and every write is insert-after-construct, so a panic under a
    //   write lock at worst loses the entry being inserted.
    let result = catch_unwind(AssertUnwindSafe(|| {
        serve(&request, cache, pool.mode, faults)
    }));
    // Gauge before reply: a collected batch implies `in_flight` has
    // already been released for each of its requests (tests assert the
    // gauges are zero immediately after `run_batch` returns).
    drop(in_flight);
    match result {
        Ok(result) => delivery.deliver(result, faults),
        Err(payload) => {
            pool.contained.fetch_add(1, Ordering::SeqCst);
            delivery.deliver(
                Err(ServiceError::Internal(panic_message(payload.as_ref()))),
                faults,
            );
        }
    }
}

/// Spawns one worker thread. The `alive` gauge increments inside the
/// thread (paired with the sentinel's decrement), so a failed spawn
/// never skews it.
fn spawn_worker(
    pool: &Arc<Pool>,
    id: usize,
    notices: Sender<Notice>,
) -> std::io::Result<JoinHandle<()>> {
    let pool = Arc::clone(pool);
    std::thread::Builder::new()
        .name(format!("xq-worker-{id}"))
        .spawn(move || {
            pool.alive.fetch_add(1, Ordering::SeqCst);
            let _sentinel = Sentinel {
                id,
                notices,
                alive: Arc::clone(&pool.alive),
                deaths: Arc::clone(&pool.deaths),
            };
            worker_loop(&pool);
        })
}

/// The supervisor body: join the fallen, respawn under budget, and when
/// the pool is gone for good, degrade into answering jobs directly so
/// callers never hang on a dead pool.
fn supervise(
    pool: Arc<Pool>,
    notices_rx: Receiver<Notice>,
    notices_tx: Sender<Notice>,
    mut handles: HashMap<usize, JoinHandle<()>>,
    mut budget: u32,
    base_backoff: Duration,
) {
    /// A death this long after the previous one resets the backoff
    /// ladder — the pool was healthy in between.
    const CALM: Duration = Duration::from_secs(1);
    let mut next_id = handles.len();
    let mut backoff = base_backoff;
    let mut last_death: Option<Instant> = None;
    loop {
        match notices_rx.recv() {
            // The service handle holds the other sender, so disconnect
            // means it dropped without a Shutdown notice — treat as one.
            Err(_) | Ok(Notice::Shutdown) => break,
            Ok(Notice::Exited(id)) => {
                // Clean exits only happen once the jobs channel closed:
                // shutdown is underway, stop supervising as the pool
                // winds down.
                if let Some(h) = handles.remove(&id) {
                    let _ = h.join();
                }
                if handles.is_empty() {
                    break;
                }
            }
            Ok(Notice::Died(id)) => {
                if let Some(h) = handles.remove(&id) {
                    let _ = h.join();
                }
                if last_death.is_none_or(|t| t.elapsed() >= CALM) {
                    backoff = base_backoff;
                }
                last_death = Some(Instant::now());
                let respawned = budget > 0 && {
                    budget -= 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(PoolConfig::MAX_BACKOFF);
                    let id = next_id;
                    next_id += 1;
                    match spawn_worker(&pool, id, notices_tx.clone()) {
                        Ok(h) => {
                            pool.restarts.fetch_add(1, Ordering::SeqCst);
                            handles.insert(id, h);
                            true
                        }
                        // Spawn failure (resource exhaustion) burns the
                        // budget like a failed restart.
                        Err(_) => false,
                    }
                };
                if !respawned && handles.is_empty() && pool.alive.load(Ordering::SeqCst) == 0 {
                    // Budget exhausted and nobody left: degrade. Jobs
                    // keep getting *answers* (Internal), just no
                    // evaluation — the no-hang guarantee.
                    degraded_drain(&pool);
                    break;
                }
            }
        }
    }
    // Shutdown (or total collapse): join whatever is still running —
    // workers exit when the jobs channel closes.
    for (_, h) in handles.drain() {
        let _ = h.join();
    }
}

/// The dead pool's answering service: drain the job channel, answering
/// every job `Internal`, until the service drops. Runs on the
/// supervisor thread; injection is off here (`faults: None`) so a
/// certain `completion-drop` can't crash-loop the last line of defense.
fn degraded_drain(pool: &Pool) {
    loop {
        let job = match pool
            .jobs_rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv()
        {
            Ok(job) => job,
            Err(_) => break,
        };
        let Job {
            request: _,
            delivery,
            queued,
            admission,
        } = job;
        drop(queued);
        drop(admission);
        delivery.deliver(
            Err(ServiceError::Internal(
                "worker pool exhausted its restart budget".to_string(),
            )),
            None,
        );
    }
}

/// A supervised pool of evaluation workers serving batches of requests;
/// see the module docs for the data flow and the containment story.
pub struct QueryService {
    jobs: Option<Sender<Job>>,
    notices: Sender<Notice>,
    supervisor: Option<JoinHandle<()>>,
    pool: Arc<Pool>,
    /// Configured pool size (the live count is [`Pool::alive`]).
    worker_count: usize,
    /// High-water mark for the admission-controlled paths: requests
    /// arriving while `admitted` ≥ capacity are shed.
    queue_capacity: usize,
}

/// How many materialized documents each worker keeps (eviction is a full
/// clear — requests batches are expected to cycle few distinct docs).
const DOC_CACHE_CAP: usize = 32;

/// The worker's materialized view of a request's document: one tree per
/// (worker, document), whatever route the request takes. `build` supplies
/// the tree on a miss (usually `doc.to_tree()`, or a build the planner
/// already made).
fn cached_tree_or(
    request: &Request,
    cache: &mut HashMap<usize, (Arc<ArenaDoc>, Tree)>,
    build: impl FnOnce() -> Tree,
) -> Tree {
    let key = Arc::as_ptr(&request.doc) as usize;
    if cache.len() >= DOC_CACHE_CAP && !cache.contains_key(&key) {
        cache.clear();
    }
    cache
        .entry(key)
        // Holding the Arc in the cache keeps the pointer identity stable.
        .or_insert_with(|| (request.doc.clone(), build()))
        .1
        .clone()
}

fn cached_tree(request: &Request, cache: &mut HashMap<usize, (Arc<ArenaDoc>, Tree)>) -> Tree {
    cached_tree_or(request, cache, || request.doc.to_tree())
}

fn serve(
    request: &Request,
    cache: &mut HashMap<usize, (Arc<ArenaDoc>, Tree)>,
    mode: ServeMode,
    faults: Option<&Faults>,
) -> Result<String, ServiceError> {
    if let Some(f) = faults {
        // Inside the unwind fence: this is the "a query panicked the
        // engine" simulation — contained, answered `internal_error`.
        if f.fires(FaultPoint::WorkerPanic) {
            panic!("{INJECTED_PANIC_PREFIX} worker-panic");
        }
        if f.fires(FaultPoint::SlowEval) {
            std::thread::sleep(f.delay(FaultPoint::SlowEval));
        }
    }
    // A request that is already doomed — pre-set cancel flag, expired
    // deadline, zero step cap — is rejected before any evaluation
    // starts (the zero-cap contract extended to the new Budget fields).
    request
        .budget
        .preflight()
        .map_err(|e| ServiceError::from_eval(&e))?;
    match mode {
        ServeMode::Interp => serve_interp(request, cache),
        ServeMode::CachedVm => serve_cached_vm(request, cache),
    }
}

/// The compiled route: one shared [`PlanCache`] probe replaces the
/// worker-side per-request parse (and re-derives nothing — scoping, the
/// planner hint, and the optimizer verdict are baked into the plan).
fn serve_cached_vm(
    request: &Request,
    cache: &mut HashMap<usize, (Arc<ArenaDoc>, Tree)>,
) -> Result<String, ServiceError> {
    let plan = PlanCache::global()
        .get_or_compile(&request.query)
        .map_err(|e| ServiceError::Parse(e.to_string()))?;
    let threads = request.budget.threads.count();
    // The baked hint proves most non-shardable queries out of the planner
    // without walking the AST; hinted queries plan as before.
    if threads > 1 && plan.par_hint() {
        let key = Arc::as_ptr(&request.doc) as usize;
        let seed = cache.get(&key).map(|(_, t)| t.clone());
        let (par_plan, planner_root) = crate::ParPlan::of_with_root_cache(
            plan.query(),
            &request.doc,
            request.budget.clone(),
            seed,
        );
        if let Some(t) = &planner_root {
            let _ = cached_tree_or(request, cache, || t.clone());
        }
        if par_plan.engages() {
            let root = match planner_root {
                Some(t) => Some(t),
                None if par_plan.needs_root() => Some(cached_tree(request, cache)),
                None => None,
            };
            let (out, _) = crate::par::eval_plan(
                &par_plan,
                &request.doc,
                request.budget.clone(),
                threads,
                root,
            )
            .map_err(|e| ServiceError::from_eval(&e))?;
            return Ok(out.iter().map(Tree::to_xml).collect());
        }
    }
    let tree = cached_tree(request, cache);
    let (out, _) = crate::vm::exec_with(&plan, &Env::with_root(tree), request.budget.clone())
        .map_err(|e| ServiceError::from_eval(&e))?;
    Ok(out.iter().map(Tree::to_xml).collect())
}

/// The pre-VM route, unchanged: parse per request, tree-walk Figure 1.
fn serve_interp(
    request: &Request,
    cache: &mut HashMap<usize, (Arc<ArenaDoc>, Tree)>,
) -> Result<String, ServiceError> {
    let query: Query =
        crate::parse_query(&request.query).map_err(|e| ServiceError::Parse(e.to_string()))?;
    let threads = request.budget.threads.count();
    if threads > 1 {
        // Intra-query parallelism: plan-driven sharding over the arena
        // (byte-identical to the sequential path — par_diff's contract).
        // Only when the plan actually engages — otherwise fall through to
        // the cached-tree route below, so non-shardable threaded requests
        // still hit the per-worker document cache instead of paying a
        // fresh to_tree() per request.
        // Seed the planner with the worker's cached tree (lookup only —
        // no eager build), so $root-referencing filter predicates reuse
        // it; whatever build the planning session ends with is folded
        // back into the cache, so later requests for the same document
        // never rebuild it either.
        let key = Arc::as_ptr(&request.doc) as usize;
        let seed = cache.get(&key).map(|(_, t)| t.clone());
        let (plan, planner_root) =
            crate::ParPlan::of_with_root_cache(&query, &request.doc, request.budget.clone(), seed);
        if let Some(t) = &planner_root {
            let _ = cached_tree_or(request, cache, || t.clone());
        }
        if plan.engages() {
            // Root-needing plans draw the tree from the same cache the
            // sequential route uses — no per-request rebuild.
            let root = match planner_root {
                Some(t) => Some(t),
                None if plan.needs_root() => Some(cached_tree(request, cache)),
                None => None,
            };
            let (out, _) =
                crate::par::eval_plan(&plan, &request.doc, request.budget.clone(), threads, root)
                    .map_err(|e| ServiceError::from_eval(&e))?;
            return Ok(out.iter().map(Tree::to_xml).collect());
        }
    }
    let tree = cached_tree(request, cache);
    let (out, _) = eval_with(&query, &Env::with_root(tree), request.budget.clone())
        .map_err(|e| ServiceError::from_eval(&e))?;
    Ok(out.iter().map(Tree::to_xml).collect())
}

impl QueryService {
    /// Spawns a pool of `workers` evaluation threads (at least 1) on the
    /// default route ([`ServeMode::CachedVm`]).
    pub fn new(workers: usize) -> QueryService {
        QueryService::with_config(PoolConfig {
            workers,
            ..PoolConfig::default()
        })
    }

    /// [`QueryService::new`] with an explicit evaluation route.
    pub fn with_mode(workers: usize, mode: ServeMode) -> QueryService {
        QueryService::with_config(PoolConfig {
            workers,
            mode,
            ..PoolConfig::default()
        })
    }

    /// The full construction surface: workers, route, fault registry,
    /// and supervision parameters.
    pub fn with_config(config: PoolConfig) -> QueryService {
        let workers = config.workers.max(1);
        let (jobs_tx, jobs_rx) = channel::<Job>();
        let pool = Arc::new(Pool {
            jobs_rx: Mutex::new(jobs_rx),
            mode: config.mode,
            faults: config.faults,
            queued: Arc::new(AtomicUsize::new(0)),
            admitted: Arc::new(AtomicUsize::new(0)),
            in_flight: Arc::new(AtomicUsize::new(0)),
            alive: Arc::new(AtomicUsize::new(0)),
            deaths: Arc::new(AtomicUsize::new(0)),
            restarts: Arc::new(AtomicUsize::new(0)),
            contained: Arc::new(AtomicUsize::new(0)),
        });
        let (notices_tx, notices_rx) = channel::<Notice>();
        // Construction-time spawn failure is unrecoverable resource
        // exhaustion (no pool exists to degrade into) — panicking here
        // matches `std::thread::spawn`'s own convention.
        let handles: HashMap<usize, JoinHandle<()>> = (0..workers)
            .map(|id| {
                let h = spawn_worker(&pool, id, notices_tx.clone())
                    .expect("spawning an initial pool worker");
                (id, h)
            })
            .collect();
        let supervisor = {
            let pool = Arc::clone(&pool);
            let notices_tx_sup = notices_tx.clone();
            std::thread::Builder::new()
                .name("xq-supervisor".to_string())
                .spawn(move || {
                    supervise(
                        pool,
                        notices_rx,
                        notices_tx_sup,
                        handles,
                        config.restart_budget,
                        config.restart_backoff,
                    )
                })
                .expect("spawning the pool supervisor")
        };
        QueryService {
            jobs: Some(jobs_tx),
            notices: notices_tx,
            supervisor: Some(supervisor),
            pool,
            worker_count: workers,
            queue_capacity: usize::MAX,
        }
    }

    /// Sets the admission high-water mark: [`QueryService::try_run_batch`]
    /// sheds any request arriving while the accepted-but-unserved queue
    /// holds `capacity` jobs. `run_batch` ignores the mark (it always
    /// admits). The default is effectively unbounded.
    pub fn with_queue_capacity(mut self, capacity: usize) -> QueryService {
        self.queue_capacity = capacity;
        self
    }

    /// Configured number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Worker threads running right now. Below [`QueryService::workers`]
    /// transiently while the supervisor respawns a crashed worker (or
    /// during startup), permanently once the restart budget is spent.
    pub fn alive_workers(&self) -> usize {
        self.pool.alive.load(Ordering::SeqCst)
    }

    /// Worker threads lost to escaped panics, ever.
    pub fn worker_deaths(&self) -> usize {
        self.pool.deaths.load(Ordering::SeqCst)
    }

    /// Respawns the supervisor has performed, ever.
    pub fn restarts(&self) -> usize {
        self.pool.restarts.load(Ordering::SeqCst)
    }

    /// Panics the per-request unwind fence caught (each answered
    /// [`ServiceError::Internal`] with the worker surviving), ever.
    pub fn contained_panics(&self) -> usize {
        self.pool.contained.load(Ordering::SeqCst)
    }

    /// Jobs accepted but not yet picked up by a worker, right now —
    /// whichever path enqueued them.
    pub fn queue_depth(&self) -> usize {
        self.pool.queued.load(Ordering::SeqCst)
    }

    /// The admission-controlled subset of [`QueryService::queue_depth`]:
    /// jobs holding one of the `queue_capacity` admission slots right
    /// now. This — not the total queue — is what the admission
    /// compare-and-swap bounds, so `run_batch` traffic can never cause admission sheds.
    pub fn admitted_depth(&self) -> usize {
        self.pool.admitted.load(Ordering::SeqCst)
    }

    /// Jobs being evaluated by a worker, right now.
    pub fn in_flight(&self) -> usize {
        self.pool.in_flight.load(Ordering::SeqCst)
    }

    /// The admission high-water mark (`usize::MAX` when unbounded).
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Atomically claims an admission slot: increments `admitted` unless
    /// it is already at the high-water mark. This is the entire shedding
    /// decision — one compare-and-swap, no lock, so concurrent
    /// connections can never overshoot the mark. The claim comes back as
    /// a [`GaugeGuard`], so however the job ends the slot frees.
    ///
    /// Hosts the `submit-refusal` fault point: an injected refusal is a
    /// shed with no slot ever claimed — the reactor handoff's
    /// `overloaded` path under a seed instead of a traffic spike.
    fn admit(&self) -> Option<GaugeGuard> {
        if let Some(f) = &self.pool.faults {
            if f.fires(FaultPoint::SubmitRefusal) {
                return None;
            }
        }
        self.pool
            .admitted
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| {
                (q < self.queue_capacity).then_some(q + 1)
            })
            .ok()
            .map(|_| GaugeGuard::adopt(Arc::clone(&self.pool.admitted)))
    }

    /// Enqueues one job, accounting the gauges it claims: every job
    /// counts toward `queued`; only admission-controlled ones hold an
    /// `admitted` slot (already claimed by [`QueryService::admit`]).
    fn enqueue(&self, tag: u64, request: Request, sink: JobSink, admission: Option<GaugeGuard>) {
        // Invariant (documented survivor): `jobs` is only taken in
        // `Drop`, which consumes the service — no call can race it.
        let jobs = self.jobs.as_ref().expect("service not shut down");
        let queued = GaugeGuard::claim(&self.pool.queued);
        jobs.send(Job {
            request,
            delivery: Delivery::new(tag, sink),
            queued,
            admission,
        })
        // Invariant (documented survivor): the send fails only if the
        // receiver dropped, and the receiver lives in `self.pool` — it
        // cannot drop while `&self` exists. Worker deaths don't matter:
        // the channel outlives them, and even a fully-collapsed pool
        // leaves the supervisor draining it.
        .expect("job receiver owned by the service's own pool");
    }

    /// Runs a batch: fans the requests out over the pool and returns the
    /// results in submission order (failures stay positional — one bad
    /// request never poisons its batch). Always admits, ignoring the
    /// queue capacity — and, since it never claims admission slots, a
    /// concurrent `run_batch` cannot make [`QueryService::try_run_batch`]
    /// shed below its real high-water mark. Takes `&self`: batches from
    /// different threads interleave on the pool, each collecting its own
    /// replies.
    pub fn run_batch(&self, requests: Vec<Request>) -> Vec<Result<String, ServiceError>> {
        let n = requests.len();
        let (reply_tx, reply_rx) = channel::<Reply>();
        for (index, request) in requests.into_iter().enumerate() {
            self.enqueue(
                index as u64,
                request,
                JobSink::Batch(reply_tx.clone()),
                None,
            );
        }
        drop(reply_tx);
        Self::collect(reply_rx, vec![None; n])
    }

    /// [`QueryService::run_batch`] with admission control: each request
    /// is individually admitted or shed. A shed request is answered
    /// `Err(Overloaded)` in place — still positional, still in
    /// submission order — without ever touching the queue or a worker.
    pub fn try_run_batch(&self, requests: Vec<Request>) -> Vec<Result<String, ServiceError>> {
        let (reply_tx, reply_rx) = channel::<Reply>();
        let mut out: Vec<Option<Result<String, ServiceError>>> = vec![None; requests.len()];
        for (index, request) in requests.into_iter().enumerate() {
            match self.admit() {
                Some(slot) => self.enqueue(
                    index as u64,
                    request,
                    JobSink::Batch(reply_tx.clone()),
                    Some(slot),
                ),
                None => out[index] = Some(Err(ServiceError::Overloaded)),
            }
        }
        drop(reply_tx);
        Self::collect(reply_rx, out)
    }

    /// Asynchronous, admission-controlled submission — the reactor front
    /// door's handoff. On admission the request is queued and `true`
    /// returned immediately; the result arrives later as `(tag, result)`
    /// on the sink's channel, followed by the sink's waker. Returns
    /// `false` (shed) without queueing anything when the admission queue
    /// is at its high-water mark — the caller renders the `overloaded`
    /// answer itself, keeping shed responses on its own ordered path.
    pub fn try_submit(&self, tag: u64, request: Request, sink: &CompletionSink) -> bool {
        match self.admit() {
            Some(slot) => {
                self.enqueue(tag, request, JobSink::Queue(sink.clone()), Some(slot));
                true
            }
            None => false,
        }
    }

    /// Fills the unanswered slots of `out` from the batch's private reply
    /// channel. Exactly one reply arrives per submitted job — the
    /// [`Delivery`] guard sends on every path, crashed workers and
    /// shutdown included — so this terminates when every sender is
    /// dropped, and the final `expect` documents that invariant rather
    /// than handling a reachable case.
    fn collect(
        reply_rx: Receiver<Reply>,
        mut out: Vec<Option<Result<String, ServiceError>>>,
    ) -> Vec<Result<String, ServiceError>> {
        while let Ok((index, result)) = reply_rx.recv() {
            let index = index as usize;
            debug_assert!(out[index].is_none(), "one reply per job");
            out[index] = Some(result);
        }
        out.into_iter()
            .map(|r| r.expect("Delivery guarantees one reply per job"))
            .collect()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Closing the job channel is the workers' shutdown signal; the
        // explicit notice is the supervisor's (it can't watch the
        // channel — it waits on death notices).
        self.jobs.take();
        let _ = self.notices.send(Notice::Shutdown);
        if let Some(s) = self.supervisor.take() {
            // The supervisor joins every worker before returning.
            let _ = s.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_query;
    use cv_xtree::{random_tree, TreeGen};

    fn corpus() -> Vec<Arc<ArenaDoc>> {
        (0..3u64)
            .map(|seed| {
                let mut g = TreeGen::new(seed);
                Arc::new(ArenaDoc::from_tree(&random_tree(
                    &mut g,
                    20,
                    &["a", "b", "k"],
                )))
            })
            .collect()
    }

    #[test]
    fn batch_results_match_direct_evaluation_in_order() {
        let docs = corpus();
        let queries = [
            "for $x in $root//a return <w>{ $x/* }</w>",
            "$root/*",
            "<out>{ for $x in $root/* return if ($x =atomic <k/>) then $x }</out>",
        ];
        let service = QueryService::new(4);
        assert_eq!(service.workers(), 4);
        let requests: Vec<Request> = docs
            .iter()
            .flat_map(|d| queries.iter().map(|q| Request::new(q, d.clone())))
            .collect();
        let want: Vec<String> = requests
            .iter()
            .map(|r| {
                eval_query(&crate::parse_query(&r.query).unwrap(), &r.doc.to_tree())
                    .unwrap()
                    .iter()
                    .map(Tree::to_xml)
                    .collect()
            })
            .collect();
        let got = service.run_batch(requests);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.as_ref().expect("request succeeds"), w);
        }
    }

    #[test]
    fn failures_stay_positional() {
        let docs = corpus();
        let service = QueryService::new(2);
        let got = service.run_batch(vec![
            Request::new("$root", docs[0].clone()),
            Request::new("for $x in", docs[0].clone()), // parse error
            Request::new("$nope", docs[1].clone()),     // unbound variable
            Request::new("<ok/>", docs[2].clone()),
        ]);
        assert!(got[0].is_ok());
        assert!(matches!(got[1], Err(ServiceError::Parse(_))));
        assert!(matches!(got[2], Err(ServiceError::Eval(_))));
        assert_eq!(got[3].as_deref(), Ok("<ok/>"));
    }

    #[test]
    fn budget_is_enforced_per_request() {
        let docs = corpus();
        let mut tight = Request::new(
            "for $a in $root//* return for $b in $root//* return \
             for $c in $root//* return <t/>",
            docs[0].clone(),
        );
        tight.budget = Budget {
            max_steps: 50,
            max_items: 50,
            ..Budget::default()
        };
        let service = QueryService::new(2);
        let got = service.run_batch(vec![tight]);
        assert!(matches!(got[0], Err(ServiceError::Eval(_))));
    }

    #[test]
    fn threaded_requests_agree_with_sequential_serving() {
        use crate::semantics::Threads;
        let docs = corpus();
        let queries = [
            "for $x in $root//a return <w>{ $x/* }</w>",
            "(for $x in $root/a return <w>{ $x }</w>, for $y in $root/b return $y)",
            "for $x in $root/* return for $y in $x/* return <p>{ $y }</p>",
            // Not planner-shardable: a threaded request falls through to
            // the cached-tree route and must still serve identical bytes.
            "$root/*",
        ];
        let service = QueryService::new(2);
        let make = |threads: Threads| -> Vec<Request> {
            docs.iter()
                .flat_map(|d| {
                    queries.iter().map(move |q| {
                        let mut r = Request::new(q, d.clone());
                        r.budget = r.budget.with_threads(threads);
                        r
                    })
                })
                .collect()
        };
        let seq = service.run_batch(make(Threads::One));
        let par = service.run_batch(make(Threads::N(4)));
        assert_eq!(seq, par, "plan-driven requests must serve identical bytes");
    }

    #[test]
    fn repeated_query_batch_compiles_exactly_once() {
        // The latent-issue regression: workers used to re-parse the query
        // text per request. Routed through the shared PlanCache, a batch
        // of identical requests fanned over 4 workers must compile the
        // text exactly once (the compile-count hook observes duplicates).
        // The text is unique to this test so other suites sharing the
        // process-wide cache can't pre-warm it.
        let text = "for $svc_once in $root/* return <compiled_once>{ $svc_once }</compiled_once>";
        assert_eq!(crate::PlanCache::global().compile_count(text), 0);
        let docs = corpus();
        let service = QueryService::new(4);
        let requests: Vec<Request> = (0..32)
            .map(|i| Request::new(text, docs[i % docs.len()].clone()))
            .collect();
        let got = service.run_batch(requests);
        assert!(got.iter().all(Result::is_ok));
        assert_eq!(
            crate::PlanCache::global().compile_count(text),
            1,
            "a repeated-query batch must hit one cached compilation"
        );
    }

    #[test]
    fn serve_modes_agree_byte_for_byte() {
        use crate::semantics::Threads;
        let docs = corpus();
        let queries = [
            "for $x in $root//a return <w>{ $x/* }</w>",
            "$root/*",
            "<out>{ for $x in $root/* return if ($x =atomic <k/>) then $x }</out>",
            "for $x in", // parse error: identical rendering on both routes
            "$nope",     // eval error: identical rendering on both routes
        ];
        let make = |threads: Threads| -> Vec<Request> {
            docs.iter()
                .flat_map(|d| {
                    queries.iter().map(move |q| {
                        let mut r = Request::new(q, d.clone());
                        r.budget = r.budget.with_threads(threads);
                        r
                    })
                })
                .collect()
        };
        let interp = QueryService::with_mode(2, ServeMode::Interp);
        let vm = QueryService::with_mode(2, ServeMode::CachedVm);
        for threads in [Threads::One, Threads::N(4)] {
            let want = interp.run_batch(make(threads));
            let got = vm.run_batch(make(threads));
            assert_eq!(got, want, "modes diverged at {threads:?}");
        }
    }

    #[test]
    fn zero_capacity_sheds_everything_and_run_batch_still_admits() {
        let docs = corpus();
        let service = QueryService::new(2).with_queue_capacity(0);
        assert_eq!(service.queue_capacity(), 0);
        let make = || {
            vec![
                Request::new("$root/*", docs[0].clone()),
                Request::new("<ok/>", docs[1].clone()),
            ]
        };
        // try_run_batch: every request shed at admission, positionally.
        let got = service.try_run_batch(make());
        assert_eq!(got, vec![Err(ServiceError::Overloaded); 2]);
        assert_eq!(service.queue_depth(), 0, "shed requests never queue");
        // run_batch bypasses admission — same pool still serves.
        let got = service.run_batch(make());
        assert!(got.iter().all(Result::is_ok));
    }

    #[test]
    fn doomed_requests_are_rejected_before_evaluation() {
        use crate::CancelFlag;
        let docs = corpus();
        let service = QueryService::new(2);
        let flag = CancelFlag::new();
        flag.cancel();
        let mut cancelled = Request::new("$root/*", docs[0].clone());
        cancelled.budget = cancelled.budget.with_cancel(flag);
        let mut expired = Request::new("$root/*", docs[0].clone());
        expired.budget = expired
            .budget
            .with_deadline(Instant::now() - Duration::from_secs(1));
        let got = service.run_batch(vec![cancelled, expired]);
        assert_eq!(got[0], Err(ServiceError::Cancelled));
        assert_eq!(got[1], Err(ServiceError::DeadlineExceeded));
    }

    #[test]
    fn concurrent_batches_share_the_pool() {
        // The &self contract: batches submitted from different threads
        // interleave on one pool, and each collects exactly its own
        // replies (per-batch channels — no cross-batch bleed).
        let docs = corpus();
        let service = QueryService::new(2);
        let want: Vec<String> = docs
            .iter()
            .map(|d| {
                eval_query(&crate::parse_query("$root/*").unwrap(), &d.to_tree())
                    .unwrap()
                    .iter()
                    .map(Tree::to_xml)
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        let reqs: Vec<Request> = docs
                            .iter()
                            .map(|d| Request::new("$root/*", d.clone()))
                            .collect();
                        let got = service.run_batch(reqs);
                        for (g, w) in got.iter().zip(&want) {
                            assert_eq!(g.as_ref().expect("request succeeds"), w);
                        }
                    }
                });
            }
        });
        assert_eq!(service.queue_depth(), 0);
        assert_eq!(service.in_flight(), 0);
    }

    /// Spins until `probe` holds (schedule-independent waiting).
    fn wait_for(what: &str, probe: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(60);
        while !probe() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// A query whose full run is ~3^20 loop iterations: never finishes
    /// inside a test, aborts within one tick of its cancel flag.
    fn infinite_query() -> String {
        (1..=20)
            .map(|i| format!("for $v{i} in $root//* return "))
            .collect::<String>()
            + "<t/>"
    }

    #[test]
    fn run_batch_never_eats_admission_slots() {
        // The PR 8 gauge regression: run_batch used to bump the same
        // gauge admit() CAS-es against, so a concurrent un-admission-
        // controlled batch made try_run_batch shed below its real
        // high-water mark. The two paths now account separately: with a
        // run_batch of 4 infinite queries parked on a capacity-2 pool,
        // try_run_batch must still admit exactly 2 and shed exactly 1.
        use crate::CancelFlag;
        let docs = corpus();
        let service = QueryService::new(1).with_queue_capacity(2);
        let flags: Vec<CancelFlag> = (0..4).map(|_| CancelFlag::new()).collect();
        let parked: Vec<Request> = flags
            .iter()
            .map(|f| {
                let mut r = Request::new(infinite_query(), docs[0].clone());
                r.budget = Budget {
                    max_steps: u64::MAX,
                    max_items: u64::MAX,
                    ..Budget::default()
                }
                .with_cancel(f.clone());
                r
            })
            .collect();
        std::thread::scope(|scope| {
            let uncontrolled = scope.spawn(|| service.run_batch(parked));
            wait_for("worker pinned, rest queued", || {
                service.in_flight() == 1 && service.queue_depth() == 3
            });
            assert_eq!(
                service.admitted_depth(),
                0,
                "run_batch must not hold admission slots"
            );
            let controlled = scope.spawn(|| {
                service.try_run_batch(vec![
                    Request::new("$root/*", docs[0].clone()),
                    Request::new("<ok/>", docs[1].clone()),
                    Request::new("$root/*", docs[2].clone()),
                ])
            });
            wait_for("both admission slots claimed", || {
                service.admitted_depth() == 2
            });
            // Release the parked queries; everything drains.
            for f in &flags {
                f.cancel();
            }
            let got = controlled.join().expect("controlled batch");
            assert!(
                got[0].is_ok(),
                "first admitted request served: {:?}",
                got[0]
            );
            assert!(got[1].is_ok(), "second admitted request served");
            assert_eq!(
                got[2],
                Err(ServiceError::Overloaded),
                "exactly the over-capacity request sheds"
            );
            let parked_results = uncontrolled.join().expect("uncontrolled batch");
            assert!(parked_results
                .iter()
                .all(|r| matches!(r, Err(ServiceError::Cancelled))));
        });
        wait_for("gauges settle", || {
            service.queue_depth() == 0 && service.admitted_depth() == 0 && service.in_flight() == 0
        });
    }

    #[test]
    fn try_submit_delivers_tagged_completions_and_wakes() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::mpsc::channel;
        let docs = corpus();
        let service = QueryService::new(2);
        let (tx, rx) = channel();
        let woken = Arc::new(AtomicUsize::new(0));
        let sink = {
            let woken = Arc::clone(&woken);
            CompletionSink::new(
                tx,
                Arc::new(move || {
                    woken.fetch_add(1, Ordering::SeqCst);
                }),
            )
        };
        assert!(service.try_submit(7, Request::new("<ok/>", docs[0].clone()), &sink));
        assert!(service.try_submit(9, Request::new("for $x in", docs[1].clone()), &sink));
        let mut got: Vec<Reply> = (0..2)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(30))
                    .expect("completion")
            })
            .collect();
        got.sort_by_key(|(tag, _)| *tag);
        assert_eq!(got[0].0, 7);
        assert_eq!(got[0].1.as_deref(), Ok("<ok/>"));
        assert_eq!(got[1].0, 9);
        assert!(matches!(got[1].1, Err(ServiceError::Parse(_))));
        // The waker runs *after* its send, so it may trail our recv by an
        // instant — wait for both rather than asserting instantaneously.
        wait_for("one wake per delivery", || {
            woken.load(Ordering::SeqCst) >= 2
        });
        // At capacity 0 the submission sheds without queueing or waking.
        let shed_service = QueryService::new(1).with_queue_capacity(0);
        let before = woken.load(Ordering::SeqCst);
        assert!(!shed_service.try_submit(1, Request::new("<ok/>", docs[0].clone()), &sink));
        assert_eq!(shed_service.queue_depth(), 0);
        assert_eq!(shed_service.admitted_depth(), 0);
        assert_eq!(woken.load(Ordering::SeqCst), before);
    }

    #[test]
    fn reusable_across_batches() {
        let docs = corpus();
        let service = QueryService::new(3);
        for _ in 0..3 {
            let got = service.run_batch(vec![
                Request::new("$root/*", docs[0].clone()),
                Request::new("$root/*", docs[1].clone()),
            ]);
            assert!(got.iter().all(Result::is_ok));
        }
        // An empty batch is fine too.
        assert!(service.run_batch(Vec::new()).is_empty());
    }
}
