//! E11 (Thm 2.2): derived operations vs built-ins.
use criterion::{criterion_group, criterion_main, Criterion};
use cv_monad::{eval, CollectionKind};
use xq_bench::diff_workload;

fn bench(c: &mut Criterion) {
    let (derived, builtin, input) = diff_workload();
    let mut g = c.benchmark_group("derived_ops");
    g.sample_size(20);
    g.bench_function("difference_builtin", |b| {
        b.iter(|| eval(&builtin, CollectionKind::Set, &input).unwrap())
    });
    g.bench_function("difference_derived_ex_2_4", |b| {
        b.iter(|| eval(&derived, CollectionKind::Set, &input).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
