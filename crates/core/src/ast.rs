//! Abstract syntax of Core XQuery (`XQ`, §3) and its derived forms.
//!
//! The core grammar is
//!
//! ```text
//! query ::= () | ⟨a⟩query⟨/a⟩ | query query | var | var/axis::ν
//!         | for var in query return query
//!         | if cond then query
//! cond  ::= var = var | query
//! ```
//!
//! The AST additionally carries the derived forms of Proposition 3.1
//! (`true`, `and`, `or`, `not`, `some`, `every`, `let`, `$x = ⟨a/⟩`) as
//! explicit nodes, because §7 studies fragments (`XQ⁻`, `XQ∼`) whose
//! *syntax* mentions them, and the §7.2 rewriting manipulates `let`
//! directly. [`Query::desugar`] lowers them to the core per Prop 3.1.
//!
//! One generalization: [`Query::Step`] allows an arbitrary query (not just
//! a variable) on the left of `/axis::ν`. Strict Core XQuery requires a
//! variable there — [`crate::fragments`] checks this — but the Lemma 7.8
//! rewrite rules temporarily create steps on constructed elements, and the
//! paper's own proofs use `$x/ν/ν′` and `(⟨a⟩α⟨/a⟩)/χ::ν` as shorthands.

use cv_xtree::{Axis, Label, NodeTest};
use std::fmt;
use std::sync::Arc;

pub use cv_monad::EqMode;

/// An XQuery variable (`$x`). Cheap to clone, compared by name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable; the leading `$` is implied and must not be
    /// included.
    pub fn new(name: impl AsRef<str>) -> Var {
        let name = name.as_ref();
        debug_assert!(!name.starts_with('$'), "variable names exclude the $");
        Var(Arc::from(name))
    }

    /// The distinguished root variable (the query's unique free variable).
    pub fn root() -> Var {
        Var::new("root")
    }

    /// A machine-generated variable that cannot collide with surface names
    /// (used by desugarings and the Fig 3 translation).
    pub fn fresh(counter: usize) -> Var {
        Var(Arc::from(format!("#g{counter}")))
    }

    /// The variable's name, without the `$`.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// A Core XQuery expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Query {
    /// The empty sequence `()`.
    Empty,
    /// Element construction `⟨a⟩α⟨/a⟩`.
    Elem(Label, Arc<Query>),
    /// Sequence concatenation `α β`.
    Seq(Arc<Query>, Arc<Query>),
    /// A variable reference `$x`.
    Var(Var),
    /// A step `q/axis::ν`. In strict Core XQuery `q` is a variable.
    Step(Arc<Query>, Axis, NodeTest),
    /// `for $x in α return β`.
    For(Var, Arc<Query>, Arc<Query>),
    /// `if φ then α` (no else; Prop 3.1 recovers else via `not`).
    If(Arc<Cond>, Arc<Query>),
    /// Derived: `(let $x := α) β` (Prop 3.1 requires α to be an element
    /// constructor; the rewriter of §7.2 eliminates these first).
    Let(Var, Arc<Query>, Arc<Query>),
}

/// A condition of an `if`/`where`/`satisfies`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// `$x = $y` under deep or atomic equality.
    ///
    /// Deep equality is equality of subtrees; atomic equality compares the
    /// *root labels* of the two trees (on leaves this is exactly equality
    /// of atomic values, and it matches the paper's
    /// `σ_{1.V.label =atomic 2.V.label}` in the Fig 2 translation).
    VarEq(Var, Var, EqMode),
    /// Derived: `$x = ⟨a/⟩` — comparison against a constant leaf.
    ConstEq(Var, Label, EqMode),
    /// A query used as a condition: true iff its result is nonempty.
    Query(Arc<Query>),
    /// Derived: the constant `true` (`⟨nonempty/⟩` as a query).
    True,
    /// Derived: `some $x in α satisfies φ`.
    Some(Var, Arc<Query>, Arc<Cond>),
    /// Derived: `every $x in α satisfies φ` (requires negation).
    Every(Var, Arc<Query>, Arc<Cond>),
    /// Derived: conjunction.
    And(Arc<Cond>, Arc<Cond>),
    /// Derived: disjunction.
    Or(Arc<Cond>, Arc<Cond>),
    /// Negation (definable from `=deep`, §3; a primitive of `XQ[..., not]`).
    Not(Arc<Cond>),
}

impl Query {
    /// `⟨a⟩α⟨/a⟩`.
    pub fn elem(tag: impl Into<Label>, body: Query) -> Query {
        Query::Elem(tag.into(), Arc::new(body))
    }

    /// The empty element `⟨a/⟩`.
    pub fn leaf(tag: impl Into<Label>) -> Query {
        Query::elem(tag, Query::Empty)
    }

    /// A variable reference.
    pub fn var(v: impl Into<Var>) -> Query {
        Query::Var(v.into())
    }

    /// `$x/axis::ν`.
    pub fn step(base: Query, axis: Axis, test: NodeTest) -> Query {
        Query::Step(Arc::new(base), axis, test)
    }

    /// `$x/a` (child axis, tag test).
    pub fn child(base: Query, tag: impl Into<Label>) -> Query {
        Query::step(base, Axis::Child, NodeTest::Tag(tag.into()))
    }

    /// `$x/*`.
    pub fn child_any(base: Query) -> Query {
        Query::step(base, Axis::Child, NodeTest::Wildcard)
    }

    /// `for $x in α return β`.
    pub fn for_in(v: impl Into<Var>, source: Query, body: Query) -> Query {
        Query::For(v.into(), Arc::new(source), Arc::new(body))
    }

    /// `if φ then α`.
    pub fn if_then(cond: Cond, then: Query) -> Query {
        Query::If(Arc::new(cond), Arc::new(then))
    }

    /// `(let $x := α) β`.
    pub fn let_in(v: impl Into<Var>, bound: Query, body: Query) -> Query {
        Query::Let(v.into(), Arc::new(bound), Arc::new(body))
    }

    /// Sequence of queries (right-nested `Seq`; empty input gives `()`).
    pub fn seq(parts: impl IntoIterator<Item = Query>) -> Query {
        let mut parts: Vec<Query> = parts.into_iter().collect();
        match parts.len() {
            0 => Query::Empty,
            1 => parts.pop().expect("length checked"),
            _ => {
                let mut it = parts.into_iter().rev();
                let last = it.next().expect("length checked");
                it.fold(last, |acc, q| Query::Seq(Arc::new(q), Arc::new(acc)))
            }
        }
    }

    /// Number of AST nodes — the `|Q|` of the complexity statements.
    pub fn size(&self) -> u64 {
        match self {
            Query::Empty | Query::Var(_) => 1,
            Query::Elem(_, q) => 1 + q.size(),
            Query::Seq(a, b) => 1 + a.size() + b.size(),
            Query::Step(q, _, _) => 1 + q.size(),
            Query::For(_, s, b) | Query::Let(_, s, b) => 1 + s.size() + b.size(),
            Query::If(c, q) => 1 + c.size() + q.size(),
        }
    }

    /// Lowers all derived forms to the core grammar (Proposition 3.1):
    ///
    /// * `true        := ⟨nonempty/⟩`
    /// * `φ or ψ      := φ ψ`
    /// * `φ and ψ     := if φ then ψ`
    /// * `some x…     := for x … return φ`
    /// * `$x = ⟨a/⟩   := some $y in ⟨a/⟩ satisfies $x = $y`
    /// * `(let x:=α)β := for x in α return β`
    /// * `every       := not ∘ some ∘ not`
    ///
    /// `not` remains a condition operator (it is primitive in
    /// `XQ[…, not]`; under `=deep` it is definable but only with a
    /// condition-level equality on query results the core grammar lacks).
    /// `fresh` seeds generated variable names.
    pub fn desugar(&self, fresh: &mut usize) -> Query {
        match self {
            Query::Empty | Query::Var(_) => self.clone(),
            Query::Elem(a, q) => Query::elem(a.clone(), q.desugar(fresh)),
            Query::Seq(a, b) => Query::Seq(Arc::new(a.desugar(fresh)), Arc::new(b.desugar(fresh))),
            Query::Step(q, ax, nt) => Query::step(q.desugar(fresh), *ax, nt.clone()),
            Query::For(v, s, b) => Query::for_in(v.clone(), s.desugar(fresh), b.desugar(fresh)),
            Query::If(c, q) => Query::if_then(c.desugar(fresh), q.desugar(fresh)),
            Query::Let(v, bound, body) => {
                Query::for_in(v.clone(), bound.desugar(fresh), body.desugar(fresh))
            }
        }
    }
}

impl Cond {
    /// `$x = $y` with deep equality.
    pub fn var_eq_deep(x: impl Into<Var>, y: impl Into<Var>) -> Cond {
        Cond::VarEq(x.into(), y.into(), EqMode::Deep)
    }

    /// `$x = $y` with atomic equality.
    pub fn var_eq_atomic(x: impl Into<Var>, y: impl Into<Var>) -> Cond {
        Cond::VarEq(x.into(), y.into(), EqMode::Atomic)
    }

    /// A query as a condition.
    pub fn query(q: Query) -> Cond {
        Cond::Query(Arc::new(q))
    }

    /// `some $x in α satisfies φ`.
    pub fn some(v: impl Into<Var>, source: Query, sat: Cond) -> Cond {
        Cond::Some(v.into(), Arc::new(source), Arc::new(sat))
    }

    /// `every $x in α satisfies φ`.
    pub fn every(v: impl Into<Var>, source: Query, sat: Cond) -> Cond {
        Cond::Every(v.into(), Arc::new(source), Arc::new(sat))
    }

    /// Conjunction helper.
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Arc::new(self), Arc::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Cond) -> Cond {
        Cond::Or(Arc::new(self), Arc::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> Cond {
        Cond::Not(Arc::new(self))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> u64 {
        match self {
            Cond::VarEq(_, _, _) | Cond::ConstEq(_, _, _) | Cond::True => 1,
            Cond::Query(q) => q.size(),
            Cond::Some(_, s, c) | Cond::Every(_, s, c) => 1 + s.size() + c.size(),
            Cond::And(a, b) | Cond::Or(a, b) => 1 + a.size() + b.size(),
            Cond::Not(c) => 1 + c.size(),
        }
    }

    /// Lowers derived condition forms per Proposition 3.1 (see
    /// [`Query::desugar`]).
    pub fn desugar(&self, fresh: &mut usize) -> Cond {
        match self {
            Cond::VarEq(_, _, _) => self.clone(),
            Cond::ConstEq(x, a, mode) => {
                // $x = ⟨a/⟩ := some $y in ⟨a/⟩ satisfies $x = $y
                *fresh += 1;
                let y = Var::fresh(*fresh);
                Cond::query(Query::for_in(
                    y.clone(),
                    Query::leaf(a.clone()),
                    Query::if_then(Cond::VarEq(x.clone(), y, *mode), Query::leaf("yes")),
                ))
            }
            Cond::Query(q) => Cond::query(q.desugar(fresh)),
            Cond::True => Cond::query(Query::leaf("nonempty")),
            Cond::Some(v, s, c) => {
                // some $x in α satisfies φ := for $x in α return φ
                let inner = c.desugar(fresh);
                let s = s.desugar(fresh);
                Cond::query(Query::for_in(v.clone(), s, cond_as_query(&inner)))
            }
            Cond::Every(v, s, c) => {
                // every := not (some ¬φ)
                Cond::Some(v.clone(), s.clone(), Arc::new((**c).clone().negate()))
                    .negate()
                    .desugar(fresh)
            }
            Cond::And(a, b) => {
                // φ and ψ := if φ then ψ
                let a = a.desugar(fresh);
                let b = b.desugar(fresh);
                Cond::query(Query::if_then(a, cond_as_query(&b)))
            }
            Cond::Or(a, b) => {
                // φ or ψ := φ ψ
                let a = a.desugar(fresh);
                let b = b.desugar(fresh);
                Cond::query(Query::seq([cond_as_query(&a), cond_as_query(&b)]))
            }
            Cond::Not(c) => Cond::Not(Arc::new(c.desugar(fresh))),
        }
    }
}

/// Reads a (desugared) condition back as a query: conditions evaluate to
/// lists under Figure 1, so a `Query` condition is itself; an equality is
/// wrapped in `if · then ⟨yes/⟩`, matching `[[xi = xj]] = [⟨yes/⟩]`.
pub fn cond_as_query(c: &Cond) -> Query {
    match c {
        Cond::Query(q) => (**q).clone(),
        other => Query::if_then(other.clone(), Query::leaf("yes")),
    }
}

// ---------------------------------------------------------------------------
// Display: surface syntax
// ---------------------------------------------------------------------------

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Empty => f.write_str("()"),
            Query::Elem(a, q) if matches!(**q, Query::Empty) => write!(f, "<{a}/>"),
            Query::Elem(a, q) => write!(f, "<{a}>{{ {q} }}</{a}>"),
            Query::Seq(a, b) => write!(f, "({a}, {b})"),
            Query::Var(v) => write!(f, "{v}"),
            Query::Step(q, axis, nt) => {
                match &**q {
                    Query::Var(v) => write!(f, "{v}")?,
                    other => write!(f, "({other})")?,
                }
                match axis {
                    Axis::Child => write!(f, "/{nt}"),
                    Axis::Descendant => write!(f, "//{nt}"),
                    Axis::SelfAxis => write!(f, "/self::{nt}"),
                    Axis::DescendantOrSelf => write!(f, "/dos::{nt}"),
                }
            }
            Query::For(v, s, b) => write!(f, "for {v} in {s} return {b}"),
            Query::If(c, q) => write!(f, "if ({c}) then {q}"),
            Query::Let(v, s, b) => write!(f, "let {v} := {s} return {b}"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::VarEq(x, y, EqMode::Deep) => write!(f, "{x} = {y}"),
            Cond::VarEq(x, y, EqMode::Atomic) => write!(f, "{x} =atomic {y}"),
            Cond::VarEq(x, y, EqMode::Mon) => write!(f, "{x} =mon {y}"),
            Cond::ConstEq(x, a, EqMode::Atomic) => write!(f, "{x} =atomic <{a}/>"),
            Cond::ConstEq(x, a, _) => write!(f, "{x} = <{a}/>"),
            Cond::Query(q) => write!(f, "{q}"),
            Cond::True => f.write_str("true"),
            Cond::Some(v, s, c) => write!(f, "some {v} in {s} satisfies ({c})"),
            Cond::Every(v, s, c) => write!(f, "every {v} in {s} satisfies ({c})"),
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
            Cond::Not(c) => write!(f, "not({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Query::Empty.size(), 1);
        assert_eq!(Query::leaf("a").size(), 2);
        let q = Query::for_in("x", Query::child(Query::var("root"), "a"), Query::var("x"));
        assert_eq!(q.size(), 1 + 2 + 1);
    }

    #[test]
    fn seq_builder() {
        assert_eq!(Query::seq([]), Query::Empty);
        assert_eq!(Query::seq([Query::Empty]), Query::Empty);
        let q = Query::seq([Query::leaf("a"), Query::leaf("b"), Query::leaf("c")]);
        assert_eq!(q.to_string(), "(<a/>, (<b/>, <c/>))");
    }

    #[test]
    fn display_matches_surface_syntax() {
        let q = Query::for_in(
            "x",
            Query::child(Query::var("root"), "book"),
            Query::if_then(
                Cond::var_eq_atomic("x", "y"),
                Query::elem("hit", Query::var("x")),
            ),
        );
        assert_eq!(
            q.to_string(),
            "for $x in $root/book return if ($x =atomic $y) then <hit>{ $x }</hit>"
        );
    }

    #[test]
    fn desugar_let_to_for() {
        let mut n = 0;
        let q = Query::let_in("x", Query::leaf("a"), Query::var("x"));
        assert_eq!(
            q.desugar(&mut n),
            Query::for_in("x", Query::leaf("a"), Query::var("x"))
        );
    }

    #[test]
    fn desugar_true_and_or() {
        let mut n = 0;
        let c = Cond::True.desugar(&mut n);
        assert_eq!(c, Cond::query(Query::leaf("nonempty")));

        let c = Cond::True.and(Cond::True).desugar(&mut n);
        // if ⟨nonempty/⟩ then ⟨nonempty/⟩
        match c {
            Cond::Query(q) => assert!(matches!(&*q, Query::If(_, _))),
            other => panic!("expected query cond, got {other}"),
        }

        let c = Cond::True.or(Cond::True).desugar(&mut n);
        match c {
            Cond::Query(q) => assert!(matches!(&*q, Query::Seq(_, _))),
            other => panic!("expected query cond, got {other}"),
        }
    }

    #[test]
    fn desugar_some_to_for() {
        let mut n = 0;
        let c = Cond::some(
            "y",
            Query::child(Query::var("x"), "b"),
            Cond::var_eq_deep("x", "y"),
        )
        .desugar(&mut n);
        match c {
            Cond::Query(q) => assert!(matches!(&*q, Query::For(_, _, _))),
            other => panic!("expected query cond, got {other}"),
        }
    }

    #[test]
    fn desugar_every_uses_double_negation() {
        let mut n = 0;
        let c = Cond::every("y", Query::var("x"), Cond::True).desugar(&mut n);
        assert!(matches!(c, Cond::Not(_)));
    }

    #[test]
    fn desugar_const_eq() {
        let mut n = 0;
        let c = Cond::ConstEq("x".into(), "true".into(), EqMode::Atomic).desugar(&mut n);
        assert!(matches!(c, Cond::Query(_)));
        assert!(n > 0, "a fresh variable was generated");
    }

    #[test]
    fn fresh_vars_cannot_collide_with_surface_names() {
        // The parser rejects '#' in variable names, so fresh vars are safe.
        assert_eq!(Var::fresh(3).to_string(), "$#g3");
    }

    #[test]
    fn var_display_and_root() {
        assert_eq!(Var::root().to_string(), "$root");
        assert_eq!(Var::new("x").name(), "x");
    }
}
