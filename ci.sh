#!/usr/bin/env bash
# The full CI gate. Run from the repository root; exits nonzero on the
# first failing step. GitHub Actions (.github/workflows/ci.yml) runs this
# same script so local and hosted CI cannot drift.
set -euo pipefail

step() { printf '\n=== %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q --workspace"
cargo test -q --workspace

step "cargo bench --no-run (bench targets must compile)"
cargo bench --no-run

step "cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "examples"
for ex in quickstart monad_algebra_tour composition_elimination complexity_frontier; do
    echo "--- cargo run --release --example $ex"
    cargo run --release --example "$ex" > /dev/null
done

step "cargo fmt --check"
cargo fmt --check

echo
echo "CI green."
