//! The Theorem 5.9/5.11 reduction: alternating Turing machine acceptance
//! (time `2^O(n)`, `O(n)` alternations) to `M∪[=mon, not]` — the
//! TA[2^O(n), O(n)] lower bound.
//!
//! Reuses the Theorem 5.6 machinery (`Configs`, `φ_succ`, Savitch
//! squaring) with two changes from the proof:
//!
//! * the squared reachability `ψ` joins only pairs whose *sources* sit in
//!   the same quantifier block (`σ_{1.C.q∈Q∃ ⇔ 2.C.q∈Q∃}`);
//! * the alternation sets `A_i` are built with set difference
//!   (`Configs − A_i`), which needs negation — this is exactly where the
//!   language with `not` (or `=deep`) becomes necessary.

use crate::atm::Atm;
use crate::ntm_to_ma::{EqFlavor, NtmReduction};
use cv_monad::derived::product;
use cv_monad::{Cond, EqMode, Expr, Operand};
use cv_value::Value;

/// The reduction from bounded-alternation ATM acceptance.
pub struct AtmReduction<'m> {
    atm: &'m Atm,
    base: NtmReduction<'m>,
    k: u32,
    /// Number of alternation rounds (odd).
    pub rounds: usize,
}

impl<'m> AtmReduction<'m> {
    /// Creates the reduction for `atm` on `input` with tape length `2^k`
    /// and `rounds` alternations.
    pub fn new(atm: &'m Atm, k: u32, input: Vec<usize>, rounds: usize) -> Self {
        assert!(
            rounds % 2 == 1,
            "the proof assumes an odd alternation count"
        );
        AtmReduction {
            atm,
            base: NtmReduction::new(&atm.machine, k, input, EqFlavor::Builtin),
            k,
            rounds,
        }
    }

    /// Condition: the state at `path.q` is existential.
    fn in_exists(&self, path: &str) -> Cond {
        Cond::any(
            self.atm
                .machine
                .states
                .iter()
                .enumerate()
                .filter(|(i, _)| self.atm.existential[*i])
                .map(|(_, name)| {
                    Cond::eq_atomic(
                        Operand::path(&format!("{path}.q")),
                        Operand::atom(name.as_str()),
                    )
                }),
        )
    }

    /// `ψ` with the same-block join condition on pair sources.
    pub fn psi_same_block(&self) -> Expr {
        let identity = self
            .base
            .configs()
            .then(Expr::mk_tuple([("C", Expr::Id), ("Cp", Expr::Id)]).mapped());
        let mut psi = self.base.succ().union(identity);
        for _ in 0..self.k() {
            psi = psi
                .then(product(Expr::Id, Expr::Id))
                .then(Expr::Select(
                    Cond::Eq(Operand::path("1.Cp"), Operand::path("2.C"), EqMode::Mon)
                        .and(Cond::iff(self.in_exists("1.C"), self.in_exists("2.C"))),
                ))
                .then(
                    Expr::mk_tuple([
                        ("C", Expr::proj_path("1.C")),
                        ("Cp", Expr::proj_path("2.Cp")),
                    ])
                    .mapped(),
                );
        }
        psi
    }

    fn k(&self) -> u32 {
        self.k
    }

    /// `A_1 := {C | ∃C′ (C,C′) ∈ ψ ∧ C′ accepting ∧ C.q ∈ Q∃}` and
    /// `A_{i+1} := {C | ∃C′ (C,C′) ∈ ψ ∧ C′ ∈ Configs − A_i ∧
    ///                  (C.q∈Q∃ ⇔ C′.q∉Q∃)}`,
    /// each as a monad algebra expression over the pair set.
    pub fn alternation_set(&self, i: usize) -> Expr {
        assert!(i >= 1);
        if i == 1 {
            return product(self.psi_same_block(), self.base.accepting_configs())
                .then(Expr::Select(
                    Cond::Eq(Operand::path("1.Cp"), Operand::path("2"), EqMode::Mon)
                        .and(self.in_exists("1.C")),
                ))
                .then(Expr::proj_path("1.C").mapped());
        }
        let complement = Expr::Diff(
            self.base.configs().into(),
            self.alternation_set(i - 1).into(),
        );
        product(self.psi_same_block(), complement)
            .then(Expr::Select(
                Cond::Eq(Operand::path("1.Cp"), Operand::path("2"), EqMode::Mon).and(Cond::iff(
                    self.in_exists("1.C"),
                    self.in_exists("1.Cp").negate(),
                )),
            ))
            .then(Expr::proj_path("1.C").mapped())
    }

    /// `φ_accept`: `C_start ∈ A_rounds`.
    pub fn accept_query(&self) -> Expr {
        Expr::mk_tuple([
            ("1", self.base.start_config()),
            ("2", self.alternation_set(self.rounds)),
        ])
        .then(Expr::pairwith("2"))
        .then(Expr::Select(Cond::Eq(
            Operand::path("1"),
            Operand::path("2"),
            EqMode::Mon,
        )))
        .then(Expr::mk_tuple::<_, &str>([]).mapped())
    }

    /// Evaluates the Boolean query.
    pub fn run(&self, budget: cv_monad::Budget) -> Result<bool, cv_monad::EvalError> {
        let q = self.accept_query();
        let (v, _) =
            cv_monad::eval_with(&q, cv_monad::CollectionKind::Set, &Value::unit(), budget)?;
        Ok(v.is_true())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atm::zoo;
    use cv_monad::Budget;

    fn budget() -> Budget {
        Budget {
            max_steps: 150_000_000,
            max_nodes: 250_000_000,
        }
    }

    #[test]
    fn purely_existential_reduction_matches_oracle() {
        let m = zoo::purely_existential();
        for input in [vec![1, 0], vec![0, 1]] {
            let start = m.machine.start_config(&input, 2);
            let want = m.accepts_alternating(&start, 2, 1);
            let r = AtmReduction::new(&m, 1, input.clone(), 1);
            let got = r.run(budget()).unwrap();
            assert_eq!(got, want, "input {input:?}");
        }
    }

    #[test]
    fn universal_branching_matches_oracle() {
        for require_one in [true, false] {
            let m = zoo::forall_then_check(require_one);
            let input = vec![1, 0];
            let start = m.machine.start_config(&input, 2);
            let want = m.accepts_alternating(&start, 2, 3);
            let r = AtmReduction::new(&m, 1, input, 3);
            let got = r.run(budget()).unwrap();
            assert_eq!(got, want, "require_one = {require_one}");
        }
    }

    #[test]
    fn query_size_linear_in_alternations() {
        let m = zoo::forall_then_check(true);
        let s3 = AtmReduction::new(&m, 1, vec![1], 3).accept_query().size();
        let s5 = AtmReduction::new(&m, 1, vec![1], 5).accept_query().size();
        let s7 = AtmReduction::new(&m, 1, vec![1], 7).accept_query().size();
        assert_eq!(s7 - s5, s5 - s3, "arithmetic growth in rounds");
    }
}
