//! Golden tests reproducing the paper's worked examples verbatim:
//! Figures 5, 6, 10, 11 and Examples 2.1, 2.3, 2.4, 7.2, 7.5, A.1.

use xq_complexity::core::{boolean_result, eval_query, parse_query};
use xq_complexity::monad::{derived, eval, CollectionKind, Expr};
use xq_complexity::paths::{eval_paths, figure_5_query, prove, unit_input};
use xq_complexity::value::{parse_value, Value};
use xq_complexity::xtree::parse_tree;

#[test]
fn figure_5_deterministic_tree_stages() {
    // The value computed by the query is {{<>}} packed in the outer
    // Boolean set: exactly one surviving path ending in ⟨⟩, carrying the
    // provenance of A-member 2 paired with B-member 1 (the values 2 = 2).
    let out = eval_paths(&figure_5_query(), &unit_input()).unwrap();
    assert_eq!(out.len(), 1);
    let p = out.iter().next().unwrap().to_string();
    assert!(p.ends_with(".<>"), "path {p}");
    assert!(p.contains("(2.1)"), "provenance of the matching pair: {p}");
    // Direct evaluation agrees: the query computes {{⟨⟩}} (truth).
    let v = eval(&figure_5_query(), CollectionKind::Set, &Value::unit()).unwrap();
    assert_eq!(v, parse_value("{<>}").unwrap());
}

#[test]
fn figure_6_proof_tree_shape() {
    let q = figure_5_query();
    let out = eval_paths(&q, &unit_input()).unwrap();
    let target = out.iter().next().unwrap();
    let proof = prove(&q, &unit_input(), target).unwrap().unwrap();
    let stats = proof.stats();
    // Fig 6's proof: branching ≤ 2, ops flatten/map/pairwith/=atomic/const.
    assert!(stats.max_branching <= 2);
    let r = proof.render();
    for op in [
        "flatten", "map_e", "map_b", "=atomic", "pairwith", "const", "premise",
    ] {
        assert!(r.contains(op), "missing {op} in:\n{r}");
    }
    // All premises are the input axiom {1.⟨⟩}.
    assert!(r.matches("premise: 1.<>").count() >= 4, "{r}");
}

#[test]
fn figure_10_rewriting() {
    let q = parse_query(
        "let $x := <a>{ for $w in $root/* return <b>{$w}</b> }</a> \
         return for $y in $x/b return $y/*",
    )
    .unwrap();
    let (out, _) = xq_complexity::rewrite::eliminate_composition(&q, 1_000_000).unwrap();
    assert_eq!(out, parse_query("for $w in $root/* return $w").unwrap());
}

#[test]
fn figure_11_flat_decoding() {
    let ty = xq_complexity::value::parse_type("{<A: Dom, B: Dom>}").unwrap();
    let v = parse_value("{<A: a, B: b>, <A: c, B: d>}").unwrap();
    let (flat, root) = xq_complexity::relalg::flat_value(&v);
    let got = eval(
        &xq_complexity::relalg::v_prime(&ty, root),
        CollectionKind::Set,
        &flat,
    )
    .unwrap();
    assert_eq!(got, Value::set([v]));
}

#[test]
fn example_2_1_product_nests() {
    let product = derived::product(Expr::Id, Expr::Id);
    let s = parse_value("{<1: x1, 2: x2>, <1: x3, 2: x4>}").unwrap();
    let got = eval(&product, CollectionKind::Set, &s).unwrap();
    // {⟨⟨x1,x2⟩,⟨x3,x4⟩⟩ | both in S} — nested pairs, not flattened 4-tuples.
    assert_eq!(got.items().unwrap().len(), 4);
    for t in got.items().unwrap() {
        let fst = t.project("1").unwrap();
        assert!(fst.as_tuple().is_some(), "members stay nested: {t}");
    }
}

#[test]
fn example_7_5_qbf_query_is_true() {
    let q = parse_query(
        r#"<a>{ if (every $x in $root/* satisfies
               (some $y in $root/* satisfies
                 ((not($x =atomic <true/>) or $y =atomic <true/>) and
                  ($x =atomic <true/> or not($y =atomic <true/>)))))
              then <yes/> }</a>"#,
    )
    .unwrap();
    let t = parse_tree("<r><true/><false/></r>").unwrap();
    assert!(boolean_result(&q, &t).unwrap());
}

#[test]
fn intro_books_query_end_to_end() {
    let q = xq_bench_books();
    let doc = parse_tree(
        "<doc><bib>\
           <book><year><y2004/></year><title><t1/></title>\
             <author><lastname><n1/></lastname></author></book>\
           <book><year><y1999/></year><title><t2/></title></book>\
         </bib></doc>",
    )
    .unwrap();
    let out = eval_query(&q, &doc).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].children().len(), 1, "only the 2004 book survives");
}

fn xq_bench_books() -> xq_complexity::core::Query {
    parse_query(
        r#"<books_2004>
          { for $b in $root/bib return
            for $x in $b/book
            where some $w in $x/year satisfies
                  some $u in $w/y2004 satisfies true
            return <book>{ $x/title }</book> }
          </books_2004>"#,
    )
    .unwrap()
}
