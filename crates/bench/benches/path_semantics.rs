//! E8 (Thm 5.2, Figs 5/6): path-set evaluation and proof construction.
use criterion::{criterion_group, criterion_main, Criterion};
use xq_paths::{eval_paths, figure_5_query, prove, unit_input};

fn bench(c: &mut Criterion) {
    let q = figure_5_query();
    let mut g = c.benchmark_group("path_semantics");
    g.sample_size(20);
    g.bench_function("figure5_forward", |b| {
        b.iter(|| eval_paths(&q, &unit_input()).unwrap().len())
    });
    let out = eval_paths(&q, &unit_input()).unwrap();
    let target = out.iter().next().unwrap().clone();
    g.bench_function("figure6_proof", |b| {
        b.iter(|| prove(&q, &unit_input(), &target).unwrap().unwrap().stats())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
