//! The Proposition 4.2 blowup family: monad algebra queries of linear
//! size whose results have doubly exponential size.

use cv_monad::derived::product;
use cv_monad::Expr;
use cv_value::Value;

/// `φ{0,1} ∘ (id × id) ∘ ··· ∘ (id × id)` (`m` times): computes the set of
/// all nested pairs (binary trees) of depth `m` with leaves in `{0, 1}` —
/// `2^(2^m)` of them (Prop 4.2).
pub fn blowup_query(m: usize) -> Expr {
    let phi01 = Expr::atom("0")
        .then(Expr::Sng)
        .union(Expr::atom("1").then(Expr::Sng));
    let mut q = phi01;
    for _ in 0..m {
        q = q.then(product(Expr::Id, Expr::Id));
    }
    q
}

/// The predicted cardinality `2^(2^m)` of the blowup result (as `u64`;
/// valid for `m ≤ 5`).
pub fn blowup_cardinality(m: usize) -> u64 {
    assert!(m <= 5, "2^(2^m) overflows u64 beyond m = 5");
    1u64 << (1u64 << m)
}

/// The Proposition 4.3 upper bound `C_f` on the size of values computed by
/// an expression on inputs of size `n` — evaluated as the paper's
/// recurrence (`pairwith` squares, constants are O(1), composition
/// composes), saturating at `u64::MAX`.
pub fn size_bound(expr: &Expr, input_size: u64) -> u64 {
    fn c(expr: &Expr, n: u64) -> u64 {
        match expr {
            Expr::Const(v) => v.node_count(),
            Expr::EmptyColl => 1,
            Expr::Id | Expr::Flatten | Expr::Proj(_) | Expr::Select(_) | Expr::Unique => n,
            Expr::Sng | Expr::True | Expr::Not | Expr::Pred(_) => n.saturating_add(2),
            Expr::PairWith(_) => n.saturating_mul(n).saturating_add(2),
            Expr::Map(f) => c(f, n).saturating_mul(n.max(1)),
            Expr::MkTuple(fs) => fs
                .iter()
                .fold(1u64, |acc, (_, f)| acc.saturating_add(c(f, n))),
            Expr::Union(f, g) | Expr::Diff(f, g) | Expr::Intersect(f, g) | Expr::Monus(f, g) => {
                c(f, n).saturating_add(c(g, n))
            }
            Expr::Compose(f, g) => c(g, c(f, n)),
            Expr::Nest { .. } => n.saturating_mul(2),
            Expr::DescMap => n.saturating_mul(n),
        }
    }
    c(expr, input_size)
}

/// Measured result of running one blowup instance.
#[derive(Debug, Clone, Copy)]
pub struct BlowupPoint {
    /// Nesting depth `m`.
    pub m: usize,
    /// Query size `|Q|` (linear in `m`).
    pub query_size: u64,
    /// Measured result cardinality.
    pub cardinality: u64,
    /// Measured result node count.
    pub node_count: u64,
}

/// Runs the blowup query at depth `m` and reports the measured sizes.
pub fn measure_blowup(
    m: usize,
    budget: cv_monad::Budget,
) -> Result<BlowupPoint, cv_monad::EvalError> {
    let q = blowup_query(m);
    let (v, _) = cv_monad::eval_with(&q, cv_monad::CollectionKind::Set, &Value::unit(), budget)?;
    Ok(BlowupPoint {
        m,
        query_size: q.size(),
        cardinality: v.items().map(|i| i.len() as u64).unwrap_or(0),
        node_count: v.node_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_monad::Budget;

    #[test]
    fn cardinalities_match_the_proposition() {
        for m in 0..=3 {
            let p = measure_blowup(m, Budget::default()).unwrap();
            assert_eq!(
                p.cardinality,
                blowup_cardinality(m),
                "2^(2^{m}) nested pairs"
            );
        }
    }

    #[test]
    fn query_size_is_linear_in_m() {
        let s1 = blowup_query(1).size();
        let s5 = blowup_query(5).size();
        let s9 = blowup_query(9).size();
        assert_eq!(s5 - s1, s9 - s5, "arithmetic growth");
    }

    #[test]
    fn m4_exhausts_a_small_budget() {
        // 2^16 = 65536 pairs of depth 4 — fine; m=5 would be 2^32.
        let r = measure_blowup(
            5,
            Budget {
                max_steps: 100_000,
                max_nodes: 100_000,
            },
        );
        assert!(r.is_err(), "m=5 must hit the budget");
    }

    #[test]
    fn size_bound_dominates_measurement() {
        for m in 0..=3 {
            let p = measure_blowup(m, Budget::default()).unwrap();
            let bound = size_bound(&blowup_query(m), 1);
            assert!(
                bound >= p.node_count,
                "C_f bound {bound} < measured {} at m={m}",
                p.node_count
            );
        }
    }
}
