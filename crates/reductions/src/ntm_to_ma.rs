//! The Theorem 5.6 reduction: NEXPTIME Turing machine acceptance to
//! `M∪[=atomic]` query evaluation (query complexity).
//!
//! The construction, faithfully to the proof:
//!
//! * tapes of length `2^K` are complete nested pairs of depth `K` over the
//!   extended alphabet `Σ′ = Σ ∪ {⊲s⊳}` (head-marked symbols, spelled
//!   `H_s` here); `Tapes = φ_Σ′ ∘ (id×id)^K` computes *all* of them;
//! * `Configs = (Tapes × Q) ∘ map(⟨t: π1, q: π2⟩)`;
//! * the start tape is built from constants `φ_x`/`φ_empty` of size
//!   `O(2^⌈log n⌉)` and the doubling combinator
//!   `φ_pad = ⟨1: id, 2: ⟨1: π2, 2: π2⟩⟩` applied `K − ⌈log n⌉ − 1` times;
//! * monotone equality `=mon` on tapes is either the built-in (Lemma
//!   5.7(b), linear-size) or *defined* from `=atomic` with the paper's
//!   tagging trick `φ = ⟨T:1, V:π1⟩∘sng ∪ ⟨T:2, V:π2⟩∘sng`, which uses one
//!   recursive occurrence per depth (Lemma 5.7(a), quadratic-size);
//! * `φ_succ` finds the ≤2-cell window where the tapes differ by zooming
//!   in `K−1` times with the three σ/π rules of the proof (Figure 7), then
//!   selects windows matching a transition of `δ`;
//! * runs of length `2^K` are Savitch-squared: `ψ_{i+1} = ψ_i ∘ (id×id) ∘
//!   σ_{1.C′=2.C} ∘ map(…)`, `K` times (with the stay-completion making
//!   ψ reflexive, as the w.l.o.g. padding assumption requires);
//! * `φ_accept` intersects the configs reachable from `C_start` with
//!   `AcceptingConfigs`.
//!
//! The resulting query is validated against the direct NTM simulator on a
//! machine zoo, and its *size* realizes the Lemma 5.7 bounds.

use crate::ntm::{Move, Ntm};
use cv_monad::derived::{pred_and, product, sigma_gamma};
use cv_monad::{Cond, EqMode, Expr, Operand};
use cv_value::Value;

/// Which monotone equality the reduction emits (Lemma 5.7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EqFlavor {
    /// Built-in `=mon` — `|φ_accept| = O(K)` (Lemma 5.7(b)).
    Builtin,
    /// `=mon` defined from `=atomic` — `|φ_accept| = O(K²)` (Lemma 5.7(a)).
    Defined,
}

fn plain(sym: &str) -> String {
    sym.to_string()
}

fn marked(sym: &str) -> String {
    format!("H_{sym}")
}

/// Union of singleton constants: `c1∘sng ∪ c2∘sng ∪ …`.
fn const_set(atoms: impl IntoIterator<Item = String>) -> Expr {
    let mut parts = atoms
        .into_iter()
        .map(|a| Expr::atom(a).then(Expr::Sng))
        .collect::<Vec<_>>();
    let first = parts.remove(0);
    parts.into_iter().fold(first, Expr::union)
}

/// A complete binary tape value of the given cells (length a power of 2).
fn tape_value(cells: &[Value]) -> Value {
    match cells.len() {
        0 => unreachable!("tapes are nonempty"),
        1 => cells[0].clone(),
        n => {
            let (l, r) = cells.split_at(n / 2);
            Value::tuple([("1", tape_value(l)), ("2", tape_value(r))])
        }
    }
}

/// The reduction, parameterized by the machine, the tape/time exponent
/// `K` (tape length and run length `2^K`), the input word, and the
/// equality flavor.
pub struct NtmReduction<'m> {
    machine: &'m Ntm,
    k: u32,
    input: Vec<usize>,
    flavor: EqFlavor,
}

impl<'m> NtmReduction<'m> {
    /// Creates the reduction for `machine` on `input` with tape length
    /// `2^k`.
    pub fn new(machine: &'m Ntm, k: u32, input: Vec<usize>, flavor: EqFlavor) -> Self {
        assert!(
            input.len() <= (1usize << k),
            "input longer than the 2^{k}-cell tape"
        );
        NtmReduction {
            machine,
            k,
            input,
            flavor,
        }
    }

    fn sigma_prime(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.machine.alphabet {
            out.push(plain(s));
        }
        for s in &self.machine.alphabet {
            out.push(marked(s));
        }
        out
    }

    /// `Tapes := φ_Σ′ ∘ (id × id) ∘ ··· ∘ (id × id)` (K times).
    pub fn tapes(&self) -> Expr {
        let mut q = const_set(self.sigma_prime());
        for _ in 0..self.k {
            q = q.then(product(Expr::Id, Expr::Id));
        }
        q
    }

    /// `Configs := (Tapes × Q) ∘ map(⟨t: π1, q: π2⟩)`.
    pub fn configs(&self) -> Expr {
        let states = const_set(self.machine.states.iter().map(|s| plain(s)));
        product(self.tapes(), states)
            .then(Expr::mk_tuple([("t", Expr::proj("1")), ("q", Expr::proj("2"))]).mapped())
    }

    /// `AcceptingConfigs := Configs ∘ (σ_{q=f1} ∪ ··· ∪ σ_{q=f|F|})`.
    pub fn accepting_configs(&self) -> Expr {
        let cond = Cond::any(self.machine.accepting.iter().map(|&f| {
            Cond::eq_atomic(
                Operand::path("q"),
                Operand::atom(plain(&self.machine.states[f])),
            )
        }));
        self.configs().then(Expr::Select(cond))
    }

    /// The start configuration `C_start = ⟨t: φ_start, q: q0⟩`, built with
    /// the `φ_x`/`φ_empty`/`φ_pad` machinery of the proof.
    pub fn start_config(&self) -> Expr {
        let n = self.input.len().max(1);
        let l = usize::BITS - (n - 1).leading_zeros(); // ⌈log2 n⌉
        let l = if n == 1 { 0 } else { l };
        let l = l.min(self.k);
        let small_len = 1usize << l;
        let blank = Value::atom(plain(&self.machine.alphabet[0]));
        // φ_x: the input padded to 2^l cells, cell 0 head-marked.
        let mut cells: Vec<Value> = Vec::with_capacity(small_len);
        for i in 0..small_len {
            let sym = self.input.get(i).copied().unwrap_or(0);
            let name = &self.machine.alphabet[sym];
            cells.push(if i == 0 {
                Value::atom(marked(name))
            } else {
                Value::atom(plain(name))
            });
        }
        let phi_x = Expr::konst(tape_value(&cells));
        let mut tape = if l == self.k {
            phi_x
        } else {
            // φ_empty: all-blank tape of the same depth.
            let blanks: Vec<Value> = (0..small_len).map(|_| blank.clone()).collect();
            let phi_empty = Expr::konst(tape_value(&blanks));
            // ⟨1: φ_x, 2: φ_empty⟩ then double with φ_pad.
            let mut t = Expr::mk_tuple([("1", phi_x), ("2", phi_empty)]);
            let phi_pad = Expr::mk_tuple([
                ("1", Expr::Id),
                (
                    "2",
                    Expr::mk_tuple([("1", Expr::proj("2")), ("2", Expr::proj("2"))]),
                ),
            ]);
            for _ in 0..(self.k - l - 1) {
                t = t.then(phi_pad.clone());
            }
            t
        };
        // On an empty input with k = 0 the above underflows conceptually;
        // the assert in new() keeps k ≥ ⌈log n⌉ so this is unreachable.
        tape = tape.then(Expr::Id);
        Expr::mk_tuple([
            ("t", tape),
            ("q", Expr::atom(plain(&self.machine.states[0]))),
        ])
    }

    /// The equality predicate on tapes of depth `d`, reading its operands
    /// from attributes `a` and `b` of the input tuple.
    #[allow(dead_code)] // kept as the documented Lemma 5.7 building block
    fn tape_eq(&self, d: u32, a: &str, b: &str) -> Expr {
        match self.flavor {
            EqFlavor::Builtin => {
                Expr::Pred(Cond::Eq(Operand::path(a), Operand::path(b), EqMode::Mon))
            }
            EqFlavor::Defined => defined_mon_eq(d, a, b),
        }
    }

    /// Config equality (tape `=mon` tape ∧ state `=atomic` state), reading
    /// the configs from dotted paths `a` and `b`.
    fn config_eq(&self, a: &str, b: &str) -> Expr {
        match self.flavor {
            EqFlavor::Builtin => {
                Expr::Pred(Cond::Eq(Operand::path(a), Operand::path(b), EqMode::Mon))
            }
            EqFlavor::Defined => {
                let tapes = Expr::mk_tuple([
                    ("A", Expr::proj_path(&format!("{a}.t"))),
                    ("B", Expr::proj_path(&format!("{b}.t"))),
                ])
                .then(defined_mon_eq(self.k, "A", "B"));
                let states = Expr::Pred(Cond::eq_atomic(
                    Operand::path(&format!("{a}.q")),
                    Operand::path(&format!("{b}.q")),
                ));
                pred_and(tapes, states)
            }
        }
    }

    /// Selection by an equality of two tape-valued paths at depth `d`.
    fn select_tape_eq(&self, d: u32, a: &str, b: &str) -> Expr {
        match self.flavor {
            EqFlavor::Builtin => {
                Expr::Select(Cond::Eq(Operand::path(a), Operand::path(b), EqMode::Mon))
            }
            EqFlavor::Defined => {
                let gamma = Expr::mk_tuple([("A", Expr::proj_path(a)), ("B", Expr::proj_path(b))])
                    .then(defined_mon_eq(d, "A", "B"));
                sigma_gamma(gamma)
            }
        }
    }

    /// One zoom-in step at window depth `d` (windows shrink `d → d−1`):
    /// the three rules of the proof (Figure 7).
    fn zoom_step(&self, d: u32) -> Expr {
        let keep = |first: &str, second: &str| {
            Expr::mk_tuple([
                ("s", Expr::proj("s")),
                ("w", Expr::proj_path(&format!("w.{first}"))),
                ("wp", Expr::proj_path(&format!("wp.{first}"))),
            ])
            .mapped()
            // second projection only used for symmetry documentation
            .then(Expr::Id)
            .then(void(second))
        };
        fn void(_unused: &str) -> Expr {
            Expr::Id
        }
        // Rule 1: second halves kept when first halves agree — σ12⊲34⊳ in
        // the paper keeps the *second* halves when w.1 = w′.1.
        let rule1 = self.select_tape_eq(d - 1, "w.1", "wp.1").then(
            Expr::mk_tuple([
                ("s", Expr::proj("s")),
                ("w", Expr::proj_path("w.2")),
                ("wp", Expr::proj_path("wp.2")),
            ])
            .mapped(),
        );
        // Rule 2: first halves kept when second halves agree.
        let rule2 = self.select_tape_eq(d - 1, "w.2", "wp.2").then(
            Expr::mk_tuple([
                ("s", Expr::proj("s")),
                ("w", Expr::proj_path("w.1")),
                ("wp", Expr::proj_path("wp.1")),
            ])
            .mapped(),
        );
        // Rule 3: middle window when outer quarters agree (needs d ≥ 2).
        let mid = |w: &str| {
            Expr::mk_tuple([
                ("1", Expr::proj_path(&format!("{w}.1.2"))),
                ("2", Expr::proj_path(&format!("{w}.2.1"))),
            ])
        };
        let rule3 = self
            .select_tape_eq(d - 2, "w.1.1", "wp.1.1")
            .then(self.select_tape_eq(d - 2, "w.2.2", "wp.2.2"))
            .then(
                Expr::mk_tuple([("s", Expr::proj("s")), ("w", mid("w")), ("wp", mid("wp"))])
                    .mapped(),
            );
        let _ = keep; // rules are written out explicitly above
        if d >= 2 {
            rule1.union(rule2).union(rule3)
        } else {
            rule1.union(rule2)
        }
    }

    /// `φ_witness−succ`: all `⟨s, w, w′⟩` with `s` a pair of configs and
    /// `w`,`w′` the length-2 windows where the tapes may differ, the
    /// window containing the head marker of the first tape.
    pub fn witness_succ(&self) -> Expr {
        // φ_prepare−succ := Configs ∘ (id×id) ∘ map(⟨s, w, w′⟩)
        let mut q = self.configs().then(product(Expr::Id, Expr::Id)).then(
            Expr::mk_tuple([
                ("s", Expr::Id),
                ("w", Expr::proj_path("1.t")),
                ("wp", Expr::proj_path("2.t")),
            ])
            .mapped(),
        );
        // Zoom in K−1 times: window depth K → 1.
        for d in (2..=self.k).rev() {
            q = q.then(self.zoom_step(d));
        }
        // φ_marker: the window of the first tape contains the head.
        let marker = Cond::any(self.machine.alphabet.iter().flat_map(|s| {
            ["w.1", "w.2"]
                .into_iter()
                .map(move |side| Cond::eq_atomic(Operand::path(side), Operand::atom(marked(s))))
        }));
        q.then(Expr::Select(marker))
    }

    /// The transition selector `σ_γ` for one rule of `δ`.
    fn transition_cond(&self, t: &crate::ntm::Transition) -> Cond {
        let q = plain(&self.machine.states[t.from]);
        let qp = plain(&self.machine.states[t.to]);
        let a = &self.machine.alphabet[t.read];
        let b = &self.machine.alphabet[t.write];
        let state_cond = Cond::eq_atomic(Operand::path("s.1.q"), Operand::atom(q))
            .and(Cond::eq_atomic(Operand::path("s.2.q"), Operand::atom(qp)));
        let eq =
            |path: &str, atom: String| Cond::eq_atomic(Operand::path(path), Operand::atom(atom));
        let window = match t.mv {
            // ⊲a⊳ s ⇝ b ⊲s⊳
            Move::Right => {
                let carry = Cond::any(
                    self.machine
                        .alphabet
                        .iter()
                        .map(|s| eq("w.2", plain(s)).and(eq("wp.2", marked(s)))),
                );
                eq("w.1", marked(a)).and(eq("wp.1", plain(b))).and(carry)
            }
            // s ⊲a⊳ ⇝ ⊲s⊳ b
            Move::Left => {
                let carry = Cond::any(
                    self.machine
                        .alphabet
                        .iter()
                        .map(|s| eq("w.1", plain(s)).and(eq("wp.1", marked(s)))),
                );
                eq("w.2", marked(a)).and(eq("wp.2", plain(b))).and(carry)
            }
            // ⊲a⊳ x ⇝ ⊲b⊳ x  or  x ⊲a⊳ ⇝ x ⊲b⊳
            Move::Stay => {
                let left = eq("w.1", marked(a))
                    .and(eq("wp.1", marked(b)))
                    .and(Cond::eq_atomic(Operand::path("w.2"), Operand::path("wp.2")));
                let right = eq("w.2", marked(a))
                    .and(eq("wp.2", marked(b)))
                    .and(Cond::eq_atomic(Operand::path("w.1"), Operand::path("wp.1")));
                left.or(right)
            }
        };
        state_cond.and(window)
    }

    /// `φ_succ`: the successor relation as a set of `⟨C: c, Cp: c′⟩`.
    pub fn succ(&self) -> Expr {
        let gammas = Cond::any(
            self.machine
                .transitions
                .iter()
                .map(|t| self.transition_cond(t)),
        );
        self.witness_succ().then(Expr::Select(gammas)).then(
            Expr::mk_tuple([
                ("C", Expr::proj_path("s.1")),
                ("Cp", Expr::proj_path("s.2")),
            ])
            .mapped(),
        )
    }

    /// `ψ_K`: reachability in ≤ `2^K` steps by Savitch squaring. `ψ_0` is
    /// `φ_succ` plus the identity pairs (stay-completion — the proof's
    /// w.l.o.g. assumption that runs pad with stay transitions, made
    /// explicit).
    pub fn psi(&self) -> Expr {
        let identity = self
            .configs()
            .then(Expr::mk_tuple([("C", Expr::Id), ("Cp", Expr::Id)]).mapped());
        let mut psi = self.succ().union(identity);
        for _ in 0..self.k {
            psi = psi
                .then(product(Expr::Id, Expr::Id))
                .then(match self.flavor {
                    EqFlavor::Builtin => Expr::Select(Cond::Eq(
                        Operand::path("1.Cp"),
                        Operand::path("2.C"),
                        EqMode::Mon,
                    )),
                    EqFlavor::Defined => sigma_gamma(self.config_eq("1.Cp", "2.C")),
                })
                .then(
                    Expr::mk_tuple([
                        ("C", Expr::proj_path("1.C")),
                        ("Cp", Expr::proj_path("2.Cp")),
                    ])
                    .mapped(),
                );
        }
        psi
    }

    /// `φ_accept`: nonempty iff the machine accepts within `2^K` steps.
    pub fn accept_query(&self) -> Expr {
        // Reachable := ⟨1: C_start, 2: ψ⟩ ∘ pairwith_2 ∘ σ_{1 =mon 2.C}
        //              ∘ map(π_{2.Cp})
        let reachable = Expr::mk_tuple([("1", self.start_config()), ("2", self.psi())])
            .then(Expr::pairwith("2"))
            .then(match self.flavor {
                EqFlavor::Builtin => Expr::Select(Cond::Eq(
                    Operand::path("1"),
                    Operand::path("2.C"),
                    EqMode::Mon,
                )),
                EqFlavor::Defined => sigma_gamma(self.config_eq("1", "2.C")),
            })
            .then(Expr::proj_path("2.Cp").mapped());
        // × AcceptingConfigs, then bulk-compare.
        product(reachable, self.accepting_configs())
            .then(self.config_eq("1", "2").mapped())
            .then(Expr::Flatten)
    }

    /// Evaluates `φ_accept` (a Boolean query) under `budget`.
    pub fn run(&self, budget: cv_monad::Budget) -> Result<bool, cv_monad::EvalError> {
        let q = self.accept_query();
        let (v, _) =
            cv_monad::eval_with(&q, cv_monad::CollectionKind::Set, &Value::unit(), budget)?;
        Ok(v.is_true())
    }
}

/// The paper's *defined* monotone equality on depth-`d` nested pairs,
/// reading operands from attributes `a`/`b` of the input tuple. Uses the
/// tagging function `φ := ⟨T: 1, V: π1⟩∘sng ∪ ⟨T: 2, V: π2⟩∘sng` so that
/// only **one** recursive occurrence per depth is needed — that is what
/// keeps `|=mon| = O(d)` (proof of Theorem 5.6 / Lemma 5.7).
pub fn defined_mon_eq(d: u32, a: &str, b: &str) -> Expr {
    if d == 0 {
        return Expr::Pred(Cond::eq_atomic(Operand::path(a), Operand::path(b)));
    }
    let phi = Expr::mk_tuple([("T", Expr::atom("1")), ("V", Expr::proj("1"))])
        .then(Expr::Sng)
        .union(Expr::mk_tuple([("T", Expr::atom("2")), ("V", Expr::proj("2"))]).then(Expr::Sng));
    let inner = Expr::mk_tuple([("A", Expr::proj_path("1.V")), ("B", Expr::proj_path("2.V"))])
        .then(defined_mon_eq(d - 1, "A", "B"));
    product(Expr::proj(a).then(phi.clone()), Expr::proj(b).then(phi))
        .then(Expr::Select(Cond::eq_atomic(
            Operand::path("1.T"),
            Operand::path("2.T"),
        )))
        .then(sigma_gamma(inner))
        .then(product(Expr::Id, Expr::Id))
        .then(Expr::Select(Cond::eq_atomic(
            Operand::path("1.1.T"),
            Operand::atom("1"),
        )))
        .then(Expr::Select(Cond::eq_atomic(
            Operand::path("2.1.T"),
            Operand::atom("2"),
        )))
        .then(Expr::mk_tuple::<_, &str>([]).mapped())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntm::zoo;
    use cv_monad::{eval, Budget, CollectionKind};

    fn unit() -> Value {
        Value::unit()
    }

    #[test]
    fn tapes_enumerates_all_nested_pairs() {
        let m = zoo::reject_all();
        let r = NtmReduction::new(&m, 1, vec![], EqFlavor::Builtin);
        let v = eval(&r.tapes(), CollectionKind::Set, &unit()).unwrap();
        // |Σ′| = 4, length-2 tapes: 16.
        assert_eq!(v.items().unwrap().len(), 16);
    }

    #[test]
    fn configs_and_accepting() {
        let m = zoo::first_is_one();
        let r = NtmReduction::new(&m, 1, vec![1], EqFlavor::Builtin);
        let configs = eval(&r.configs(), CollectionKind::Set, &unit()).unwrap();
        assert_eq!(configs.items().unwrap().len(), 16 * 2);
        let acc = eval(&r.accepting_configs(), CollectionKind::Set, &unit()).unwrap();
        assert_eq!(acc.items().unwrap().len(), 16);
    }

    #[test]
    fn start_config_places_marker_and_pads() {
        let m = zoo::first_is_one();
        let r = NtmReduction::new(&m, 2, vec![1], EqFlavor::Builtin);
        let v = eval(&r.start_config(), CollectionKind::Set, &unit()).unwrap();
        let tape = v.project("t").unwrap();
        // Depth-2 tape: ⟨1: ⟨1: H_1, 2: #⟩, 2: ⟨1: #, 2: #⟩⟩
        assert_eq!(tape.to_string(), "<1: <1: H_1, 2: #>, 2: <1: #, 2: #>>");
        assert_eq!(v.project("q").unwrap(), &Value::atom("q0"));
    }

    #[test]
    fn defined_mon_eq_agrees_with_builtin() {
        for (a, b, d) in [
            ("<A: x, B: x>", "", 0u32),
            ("<A: <1: x, 2: y>, B: <1: x, 2: y>>", "", 1),
            ("<A: <1: x, 2: y>, B: <1: x, 2: z>>", "", 1),
            (
                "<A: <1: <1: a, 2: b>, 2: <1: c, 2: d>>, \
                  B: <1: <1: a, 2: b>, 2: <1: c, 2: d>>>",
                "",
                2,
            ),
            (
                "<A: <1: <1: a, 2: b>, 2: <1: c, 2: d>>, \
                  B: <1: <1: a, 2: z>, 2: <1: c, 2: d>>>",
                "",
                2,
            ),
        ] {
            let _ = b;
            let v = cv_value::parse_value(a).unwrap();
            let defined = eval(&defined_mon_eq(d, "A", "B"), CollectionKind::Set, &v)
                .unwrap()
                .is_true();
            let builtin = eval(
                &Expr::Pred(Cond::Eq(
                    Operand::path("A"),
                    Operand::path("B"),
                    EqMode::Mon,
                )),
                CollectionKind::Set,
                &v,
            )
            .unwrap()
            .is_true();
            assert_eq!(defined, builtin, "operand {a} at depth {d}");
        }
    }

    #[test]
    fn defined_mon_eq_size_is_linear_in_depth() {
        let s: Vec<u64> = (0..8).map(|d| defined_mon_eq(d, "A", "B").size()).collect();
        for w in s.windows(3) {
            assert_eq!(w[2] - w[1], w[1] - w[0], "arithmetic growth: {s:?}");
        }
    }

    #[test]
    fn succ_finds_real_transitions() {
        let m = zoo::first_is_one();
        let r = NtmReduction::new(&m, 1, vec![1], EqFlavor::Builtin);
        let succ = eval(&r.succ(), CollectionKind::Set, &unit()).unwrap();
        // The pair (start, accepted) must be among the successors:
        // ⟨t: ⟨H_1, #⟩, q: q0⟩ → ⟨t: ⟨H_1, #⟩, q: acc⟩.
        let start = cv_value::parse_value("<t: <1: H_1, 2: \"#\">, q: q0>").unwrap();
        let acc = cv_value::parse_value("<t: <1: H_1, 2: \"#\">, q: acc>").unwrap();
        let wanted = Value::tuple([("C", start), ("Cp", acc)]);
        assert!(
            succ.items().unwrap().contains(&wanted),
            "succ misses the accepting transition"
        );
    }

    /// The headline validation: φ_accept ⟺ the simulator, over the zoo.
    #[test]
    fn reduction_matches_simulator_at_k1() {
        let budget = Budget {
            max_steps: 60_000_000,
            max_nodes: 120_000_000,
        };
        let cases: Vec<(Ntm, Vec<usize>, &str)> = vec![
            (zoo::first_is_one(), vec![1, 0], "first_is_one(1#)"),
            (zoo::first_is_one(), vec![0, 1], "first_is_one(#1)"),
            (zoo::reject_all(), vec![1, 1], "reject_all"),
            (zoo::some_one(), vec![0, 1], "some_one(#1)"),
            (zoo::some_one(), vec![0, 0], "some_one(##)"),
            (zoo::writes_then_accepts(), vec![0, 0], "writes(##)"),
            (zoo::writes_then_accepts(), vec![1, 0], "writes(1#)"),
        ];
        for (m, input, name) in cases {
            let start = m.start_config(&input, 2);
            let want = m.accepts_in(&start, 2);
            let r = NtmReduction::new(&m, 1, input, EqFlavor::Builtin);
            let got = r.run(budget).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(got, want, "machine {name}");
        }
    }

    /// K=2 (tape length 4): the zoom-in rules of Figure 7 execute once,
    /// including the straddling rule 3 when the head crosses the tape
    /// middle. Sub-second in release but tens of seconds in debug, so
    /// ignored by default: `cargo test --release -p xq-reductions -- --ignored`.
    /// The harness (T1) also runs it on every invocation.
    #[test]
    #[ignore = "expensive in debug builds; run with --release -- --ignored"]
    fn reduction_matches_simulator_at_k2_with_zoom() {
        let budget = Budget {
            max_steps: 2_000_000_000,
            max_nodes: 2_000_000_000,
        };
        let cases: Vec<(Ntm, Vec<usize>, &str)> = vec![
            (zoo::first_is_one(), vec![1, 0, 0, 0], "first_is_one(1###)"),
            (zoo::first_is_one(), vec![0, 1, 0, 0], "first_is_one(#1##)"),
            // The head walks right across the middle boundary: rule 3.
            (zoo::some_one(), vec![0, 0, 1, 0], "some_one(##1#)"),
            (zoo::some_one(), vec![0, 0, 0, 0], "some_one(####)"),
        ];
        for (m, input, name) in cases {
            let start = m.start_config(&input, 4);
            let want = m.accepts_in(&start, 4);
            let got = NtmReduction::new(&m, 2, input, EqFlavor::Builtin)
                .run(budget)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(got, want, "machine {name}");
        }
    }

    #[test]
    fn defined_flavor_matches_builtin_at_k1() {
        let budget = Budget {
            max_steps: 120_000_000,
            max_nodes: 200_000_000,
        };
        let m = zoo::first_is_one();
        for input in [vec![1, 0], vec![0, 1]] {
            let b = NtmReduction::new(&m, 1, input.clone(), EqFlavor::Builtin)
                .run(budget)
                .unwrap();
            let d = NtmReduction::new(&m, 1, input.clone(), EqFlavor::Defined)
                .run(budget)
                .unwrap();
            assert_eq!(b, d, "input {input:?}");
        }
    }

    #[test]
    fn lemma_5_7_size_bounds() {
        // Builtin =mon: |φ_accept| grows linearly in K; defined =mon:
        // quadratically (ratios of successive differences ~constant).
        let m = zoo::first_is_one();
        let sizes = |flavor: EqFlavor| -> Vec<u64> {
            (1..=8u32)
                .map(|k| {
                    NtmReduction::new(&m, k, vec![1], flavor)
                        .accept_query()
                        .size()
                })
                .collect()
        };
        let builtin = sizes(EqFlavor::Builtin);
        let defined = sizes(EqFlavor::Defined);
        // Linear: second differences of the builtin sizes are ~bounded.
        let d2: Vec<i64> = builtin
            .windows(3)
            .map(|w| w[2] as i64 - 2 * w[1] as i64 + w[0] as i64)
            .collect();
        assert!(
            d2.iter().all(|&x| x.abs() <= 64),
            "builtin not ~linear: {builtin:?} (d2 = {d2:?})"
        );
        // Quadratic: third differences of the defined sizes vanish-ish,
        // and the ratio defined/builtin grows.
        let ratio_small = defined[1] as f64 / builtin[1] as f64;
        let ratio_large = defined[7] as f64 / builtin[7] as f64;
        assert!(
            ratio_large > 1.5 * ratio_small,
            "defined/builtin ratio should grow: {ratio_small} → {ratio_large}"
        );
    }
}
