//! A structural type checker for monad algebra expressions.
//!
//! Each well-typed expression denotes a function `τ → τ′` (§2.2 gives the
//! typing rules alongside the operations). The checker is kind-polymorphic:
//! the same expression is checked with the set, list, or bag constructor
//! as its collection former.
//!
//! The empty-collection constant is polymorphic; its element type is
//! [`Type::Any`], which joins with every type ([`Type::join`]). Checking is
//! *approximate above `Any`*: once a value's type is unknown, downstream
//! structure is not re-checked (the evaluator still enforces shapes
//! dynamically). `descmap` consumes the inherently recursive tree-encoding
//! type, which the paper's (and our) type grammar cannot express, so it is
//! typed `τ → C(Any)`.

use crate::{Cond, EqMode, Expr, Operand};
use cv_value::{CollectionKind, Type, Value, ValueKind};

/// A type-checking failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An operation was applied at an incompatible input type.
    Mismatch {
        /// The operation.
        op: String,
        /// What it expected.
        expected: String,
        /// The actual input type.
        got: Type,
    },
    /// A projection or pairwith referenced a missing attribute.
    NoSuchAttribute {
        /// The operation.
        op: String,
        /// The attribute.
        attr: String,
        /// The tuple type searched.
        ty: Type,
    },
    /// Two types that must agree (e.g. union branches) do not join.
    NoJoin {
        /// The operation.
        op: String,
        /// Left type.
        left: Type,
        /// Right type.
        right: Type,
    },
    /// A constant collection has members of incompatible types.
    HeterogeneousConstant(String),
    /// The operation is undefined for the active collection kind.
    Unsupported {
        /// The operation.
        op: String,
        /// The active kind.
        kind: CollectionKind,
    },
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::Mismatch { op, expected, got } => {
                write!(f, "{op}: expected {expected}, got {got}")
            }
            TypeError::NoSuchAttribute { op, attr, ty } => {
                write!(f, "{op}: no attribute {attr} in {ty}")
            }
            TypeError::NoJoin { op, left, right } => {
                write!(f, "{op}: incompatible types {left} and {right}")
            }
            TypeError::HeterogeneousConstant(v) => {
                write!(f, "constant collection with mixed member types: {v}")
            }
            TypeError::Unsupported { op, kind } => {
                write!(f, "{op} is not defined on {kind}s")
            }
        }
    }
}

impl std::error::Error for TypeError {}

fn coll(kind: CollectionKind, inner: Type) -> Type {
    match kind {
        CollectionKind::Set => Type::set(inner),
        CollectionKind::List => Type::list(inner),
        CollectionKind::Bag => Type::bag(inner),
    }
}

fn element_of(kind: CollectionKind, op: &str, t: &Type) -> Result<Type, TypeError> {
    match (kind, t) {
        (_, Type::Any) => Ok(Type::Any),
        (CollectionKind::Set, Type::Set(e))
        | (CollectionKind::List, Type::List(e))
        | (CollectionKind::Bag, Type::Bag(e)) => Ok((**e).clone()),
        _ => Err(TypeError::Mismatch {
            op: op.to_string(),
            expected: format!("a {kind} type"),
            got: t.clone(),
        }),
    }
}

/// Infers the type of a constant value. The collection constructors come
/// from the value itself, so no ambient kind is needed.
pub fn type_of_value(v: &Value) -> Result<Type, TypeError> {
    match v.kind() {
        ValueKind::Atom(_) => Ok(Type::Dom),
        ValueKind::Tuple(fs) => Ok(Type::tuple(
            fs.iter()
                .map(|(n, fv)| Ok((n.as_str().to_string(), type_of_value(fv)?)))
                .collect::<Result<Vec<_>, TypeError>>()?,
        )),
        ValueKind::Set(xs) | ValueKind::List(xs) | ValueKind::Bag(xs) => {
            let own_kind = match v.kind() {
                ValueKind::Set(_) => CollectionKind::Set,
                ValueKind::List(_) => CollectionKind::List,
                _ => CollectionKind::Bag,
            };
            let mut elem = Type::Any;
            for x in xs {
                let tx = type_of_value(x)?;
                elem = elem
                    .join(&tx)
                    .ok_or_else(|| TypeError::HeterogeneousConstant(v.to_string()))?;
            }
            Ok(coll(own_kind, elem))
        }
    }
}

fn resolve_operand(
    op: &str,
    operand: &Operand,
    ctx: &Type,
    _kind: CollectionKind,
) -> Result<Type, TypeError> {
    match operand {
        Operand::Const(v) => type_of_value(v),
        Operand::Path(p) => {
            let mut cur = ctx.clone();
            for seg in p {
                if cur == Type::Any {
                    return Ok(Type::Any);
                }
                cur = cur.attribute(seg.as_str()).cloned().ok_or_else(|| {
                    TypeError::NoSuchAttribute {
                        op: op.to_string(),
                        attr: seg.as_str().to_string(),
                        ty: cur.clone(),
                    }
                })?;
            }
            Ok(cur)
        }
    }
}

fn check_cond(cond: &Cond, ctx: &Type, kind: CollectionKind) -> Result<(), TypeError> {
    match cond {
        Cond::True => Ok(()),
        Cond::Eq(a, b, mode) => {
            let ta = resolve_operand("condition", a, ctx, kind)?;
            let tb = resolve_operand("condition", b, ctx, kind)?;
            match mode {
                EqMode::Atomic => {
                    for t in [&ta, &tb] {
                        if !matches!(t, Type::Dom | Type::Any) {
                            return Err(TypeError::Mismatch {
                                op: "=atomic".into(),
                                expected: "Dom".into(),
                                got: t.clone(),
                            });
                        }
                    }
                    Ok(())
                }
                EqMode::Mon => {
                    for t in [&ta, &tb] {
                        if !t.is_collection_free() && *t != Type::Any {
                            return Err(TypeError::Mismatch {
                                op: "=mon".into(),
                                expected: "a collection-free type".into(),
                                got: t.clone(),
                            });
                        }
                    }
                    Ok(())
                }
                EqMode::Deep => {
                    ta.join(&tb).ok_or(TypeError::NoJoin {
                        op: "=deep".into(),
                        left: ta.clone(),
                        right: tb.clone(),
                    })?;
                    Ok(())
                }
            }
        }
        Cond::In(a, b) => {
            let ta = resolve_operand("in", a, ctx, kind)?;
            let tb = resolve_operand("in", b, ctx, kind)?;
            let elem = element_of(kind, "in", &tb)?;
            ta.join(&elem).ok_or(TypeError::NoJoin {
                op: "in".into(),
                left: ta,
                right: elem,
            })?;
            Ok(())
        }
        Cond::Subset(a, b) => {
            let ta = resolve_operand("subseteq", a, ctx, kind)?;
            let tb = resolve_operand("subseteq", b, ctx, kind)?;
            let ea = element_of(kind, "subseteq", &ta)?;
            let eb = element_of(kind, "subseteq", &tb)?;
            ea.join(&eb).ok_or(TypeError::NoJoin {
                op: "subseteq".into(),
                left: ea,
                right: eb,
            })?;
            Ok(())
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_cond(a, ctx, kind)?;
            check_cond(b, ctx, kind)
        }
        Cond::Not(a) => check_cond(a, ctx, kind),
    }
}

/// Infers the output type of `expr` at input type `input`, under collection
/// kind `kind`. Returns the output type or the first type error found.
pub fn typecheck(expr: &Expr, kind: CollectionKind, input: &Type) -> Result<Type, TypeError> {
    match expr {
        Expr::Id => Ok(input.clone()),
        Expr::Compose(f, g) => {
            let mid = typecheck(f, kind, input)?;
            typecheck(g, kind, &mid)
        }
        Expr::Const(v) => type_of_value(v),
        Expr::EmptyColl => Ok(coll(kind, Type::Any)),
        Expr::Sng => Ok(coll(kind, input.clone())),
        Expr::Map(f) => {
            let elem = element_of(kind, "map", input)?;
            let out = typecheck(f, kind, &elem)?;
            Ok(coll(kind, out))
        }
        Expr::Flatten => {
            let outer = element_of(kind, "flatten", input)?;
            let inner = element_of(kind, "flatten", &outer)?;
            Ok(coll(kind, inner))
        }
        Expr::PairWith(attr) => {
            if *input == Type::Any {
                return Ok(coll(kind, Type::Any));
            }
            let fields = input.attributes().ok_or_else(|| TypeError::Mismatch {
                op: format!("pairwith[{attr}]"),
                expected: "a tuple type".into(),
                got: input.clone(),
            })?;
            let at = input
                .attribute(attr.as_str())
                .ok_or_else(|| TypeError::NoSuchAttribute {
                    op: "pairwith".into(),
                    attr: attr.as_str().to_string(),
                    ty: input.clone(),
                })?;
            let elem = element_of(kind, "pairwith", at)?;
            let new_fields: Vec<(String, Type)> = fields
                .iter()
                .map(|(n, t)| {
                    if n == attr.as_str() {
                        (n.clone(), elem.clone())
                    } else {
                        (n.clone(), t.clone())
                    }
                })
                .collect();
            Ok(coll(kind, Type::tuple(new_fields)))
        }
        Expr::MkTuple(fs) => {
            let fields = fs
                .iter()
                .map(|(n, f)| Ok((n.as_str().to_string(), typecheck(f, kind, input)?)))
                .collect::<Result<Vec<_>, TypeError>>()?;
            Ok(Type::tuple(fields))
        }
        Expr::Proj(a) => {
            if *input == Type::Any {
                return Ok(Type::Any);
            }
            input
                .attribute(a.as_str())
                .cloned()
                .ok_or_else(|| TypeError::NoSuchAttribute {
                    op: "pi".into(),
                    attr: a.as_str().to_string(),
                    ty: input.clone(),
                })
        }
        Expr::Union(f, g) => {
            let tf = typecheck(f, kind, input)?;
            let tg = typecheck(g, kind, input)?;
            element_of(kind, "union", &tf)?;
            element_of(kind, "union", &tg)?;
            tf.join(&tg).ok_or(TypeError::NoJoin {
                op: "union".into(),
                left: tf,
                right: tg,
            })
        }
        Expr::Pred(c) => {
            check_cond(c, input, kind)?;
            Ok(coll(kind, Type::unit()))
        }
        Expr::Select(c) => {
            let elem = element_of(kind, "sigma", input)?;
            check_cond(c, &elem, kind)?;
            Ok(input.clone())
        }
        Expr::Not | Expr::True => {
            element_of(kind, "not/true", input)?;
            Ok(coll(kind, Type::unit()))
        }
        Expr::Diff(f, g) | Expr::Intersect(f, g) => {
            let tf = typecheck(f, kind, input)?;
            let tg = typecheck(g, kind, input)?;
            element_of(kind, "difference/intersection", &tf)?;
            element_of(kind, "difference/intersection", &tg)?;
            tf.join(&tg).ok_or(TypeError::NoJoin {
                op: "difference/intersection".into(),
                left: tf,
                right: tg,
            })
        }
        Expr::Nest { collect, into } => {
            let elem = element_of(kind, "nest", input)?;
            if elem == Type::Any {
                return Ok(coll(kind, Type::Any));
            }
            let fields = elem.attributes().ok_or_else(|| TypeError::Mismatch {
                op: "nest".into(),
                expected: "a collection of tuples".into(),
                got: input.clone(),
            })?;
            let kept: Vec<(String, Type)> = fields
                .iter()
                .filter(|(n, _)| !collect.iter().any(|c| c.as_str() == n.as_str()))
                .cloned()
                .collect();
            let collected: Vec<(String, Type)> = fields
                .iter()
                .filter(|(n, _)| collect.iter().any(|c| c.as_str() == n.as_str()))
                .cloned()
                .collect();
            let mut out = kept;
            out.push((
                into.as_str().to_string(),
                coll(kind, Type::tuple(collected)),
            ));
            Ok(coll(kind, Type::tuple(out)))
        }
        Expr::Monus(f, g) => {
            if kind != CollectionKind::Bag {
                return Err(TypeError::Unsupported {
                    op: "monus".into(),
                    kind,
                });
            }
            let tf = typecheck(f, kind, input)?;
            let tg = typecheck(g, kind, input)?;
            tf.join(&tg).ok_or(TypeError::NoJoin {
                op: "monus".into(),
                left: tf,
                right: tg,
            })
        }
        Expr::Unique => {
            element_of(kind, "unique", input)?;
            Ok(input.clone())
        }
        Expr::DescMap => Ok(coll(kind, Type::Any)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_value::parse_type;

    const K: CollectionKind = CollectionKind::Set;

    fn tc(e: &Expr, input: &str) -> Result<Type, TypeError> {
        typecheck(e, K, &parse_type(input).unwrap())
    }

    #[test]
    fn basic_operations() {
        assert_eq!(tc(&Expr::Id, "{Dom}").unwrap().to_string(), "{Dom}");
        assert_eq!(tc(&Expr::Sng, "Dom").unwrap().to_string(), "{Dom}");
        assert_eq!(tc(&Expr::Flatten, "{{Dom}}").unwrap().to_string(), "{Dom}");
        assert_eq!(
            tc(&Expr::Sng.mapped(), "{Dom}").unwrap().to_string(),
            "{{Dom}}"
        );
    }

    #[test]
    fn pairwith_typing_matches_paper_rule() {
        // pairwith_A1 : ⟨A1: {τ1}, A2: τ2⟩ → {⟨A1: τ1, A2: τ2⟩}
        let got = tc(&Expr::pairwith("A"), "<A: {Dom}, B: Dom>").unwrap();
        assert_eq!(got.to_string(), "{<A: Dom, B: Dom>}");
    }

    #[test]
    fn projection_and_tuple_formation() {
        assert_eq!(
            tc(&Expr::proj("B"), "<A: Dom, B: {Dom}>")
                .unwrap()
                .to_string(),
            "{Dom}"
        );
        let e = Expr::mk_tuple([("X", Expr::Id), ("Y", Expr::Sng)]);
        assert_eq!(tc(&e, "Dom").unwrap().to_string(), "<X: Dom, Y: {Dom}>");
        assert!(matches!(
            tc(&Expr::proj("Z"), "<A: Dom>"),
            Err(TypeError::NoSuchAttribute { .. })
        ));
    }

    #[test]
    fn union_joins_branch_types() {
        let e = Expr::EmptyColl.union(Expr::Id);
        assert_eq!(tc(&e, "{Dom}").unwrap().to_string(), "{Dom}");
        // Unjoinable branches fail.
        let bad = Expr::konst(Value::set([Value::atom("x")]))
            .union(Expr::konst(Value::set([Value::unit()])));
        assert!(matches!(tc(&bad, "<>"), Err(TypeError::NoJoin { .. })));
    }

    #[test]
    fn predicates_are_boolean_typed() {
        let e = Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B")));
        assert_eq!(tc(&e, "<A: Dom, B: Dom>").unwrap(), Type::boolean());
        // =atomic at a set type is a type error.
        assert!(matches!(
            tc(&e, "<A: {Dom}, B: {Dom}>"),
            Err(TypeError::Mismatch { .. })
        ));
        // =deep at a set type is fine.
        let e = Expr::Pred(Cond::eq_deep(Operand::path("A"), Operand::path("B")));
        assert!(tc(&e, "<A: {Dom}, B: {Dom}>").is_ok());
    }

    #[test]
    fn mon_eq_requires_collection_free_types() {
        let e = Expr::Pred(Cond::eq_mon(Operand::path("A"), Operand::path("B")));
        assert!(tc(&e, "<A: <X: Dom>, B: <X: Dom>>").is_ok());
        assert!(matches!(
            tc(&e, "<A: {Dom}, B: {Dom}>"),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn composition_threads_types() {
        let e = Expr::Sng.then(Expr::Sng).then(Expr::Flatten);
        assert_eq!(tc(&e, "Dom").unwrap().to_string(), "{Dom}");
    }

    #[test]
    fn empty_collection_is_polymorphic() {
        assert_eq!(tc(&Expr::EmptyColl, "Dom").unwrap().to_string(), "{?}");
        // ∅ ∪ {Dom-set} : the Any element joins away.
        let e = Expr::EmptyColl.union(Expr::Id);
        assert_eq!(tc(&e, "{Dom}").unwrap().to_string(), "{Dom}");
    }

    #[test]
    fn nest_typing_matches_footnote_5() {
        let e = Expr::Nest {
            collect: vec!["B".into()],
            into: "C".into(),
        };
        let got = tc(&e, "{<A: Dom, B: Dom>}").unwrap();
        assert_eq!(got.to_string(), "{<A: Dom, C: {<B: Dom>}>}");
    }

    #[test]
    fn monus_is_bag_only() {
        let e = Expr::Monus(Expr::Id.into(), Expr::Id.into());
        assert!(matches!(
            typecheck(&e, CollectionKind::Set, &parse_type("{Dom}").unwrap()),
            Err(TypeError::Unsupported { .. })
        ));
        assert!(typecheck(&e, CollectionKind::Bag, &parse_type("{|Dom|}").unwrap()).is_ok());
    }

    #[test]
    fn kind_polymorphism() {
        // The same expression types at all three kinds with their own
        // constructors.
        assert_eq!(
            typecheck(&Expr::Sng, CollectionKind::List, &Type::Dom)
                .unwrap()
                .to_string(),
            "[Dom]"
        );
        assert_eq!(
            typecheck(&Expr::Sng, CollectionKind::Bag, &Type::Dom)
                .unwrap()
                .to_string(),
            "{|Dom|}"
        );
    }

    #[test]
    fn constant_typing() {
        let v = cv_value::parse_value("{<A: 1>, <A: 2>}").unwrap();
        assert_eq!(type_of_value(&v).unwrap().to_string(), "{<A: Dom>}");
        let het = cv_value::parse_value("{1, <A: 2>}").unwrap();
        assert!(matches!(
            type_of_value(&het),
            Err(TypeError::HeterogeneousConstant(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = tc(&Expr::proj("Z"), "<A: Dom>").unwrap_err();
        assert!(e.to_string().contains('Z'));
        let e = tc(&Expr::Flatten, "Dom").unwrap_err();
        assert!(e.to_string().contains("set"));
    }

    use crate::{Cond, Operand};
    use cv_value::Value;
}
