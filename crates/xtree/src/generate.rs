//! Deterministic pseudo-random tree generation for tests and benchmarks.
//!
//! Uses a small embedded linear-congruential generator rather than an
//! external RNG so that generated workloads are reproducible across crates
//! without dependency coupling; the bench crate seeds it per experiment.

use crate::{Document, Label, Tree};

/// A tiny splitmix64-based generator for reproducible workloads.
#[derive(Clone, Debug)]
pub struct TreeGen {
    state: u64,
}

impl TreeGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TreeGen {
        TreeGen {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform choice from a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Bernoulli trial with probability `num/denom`.
    pub fn chance(&mut self, num: usize, denom: usize) -> bool {
        self.below(denom) < num
    }
}

/// Generates a random tree with exactly `size` nodes, labels drawn from
/// `labels`, and bounded fanout. The shape is a random recursive tree:
/// each new node attaches to a random existing node (biased toward recent
/// nodes so depth grows), yielding realistic document-ish shapes.
pub fn random_tree(gen: &mut TreeGen, size: usize, labels: &[&str]) -> Tree {
    assert!(size >= 1, "a tree has at least one node");
    assert!(!labels.is_empty(), "need at least one label");
    // Build parent pointers first, then assemble bottom-up.
    let mut parents: Vec<usize> = vec![0; size];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        // Attach to one of the last ~8 nodes to keep depth interesting.
        let window = 8.min(i);
        *p = i - 1 - gen.below(window);
    }
    let node_labels: Vec<Label> = (0..size)
        .map(|_| Label::from(*gen.choose(labels)))
        .collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); size];
    for (i, &p) in parents.iter().enumerate().skip(1) {
        children[p].push(i);
    }
    fn build(i: usize, labels: &[Label], children: &[Vec<usize>]) -> Tree {
        Tree::node(
            labels[i].clone(),
            children[i].iter().map(|&c| build(c, labels, children)),
        )
    }
    build(0, &node_labels, &children)
}

/// Generates a forest of `count` random trees of `size` nodes each.
pub fn random_forest(gen: &mut TreeGen, count: usize, size: usize, labels: &[&str]) -> Vec<Tree> {
    (0..count).map(|_| random_tree(gen, size, labels)).collect()
}

/// Generates a random document (arena form).
pub fn random_document(gen: &mut TreeGen, size: usize, labels: &[&str]) -> Document {
    Document::new(&random_tree(gen, size, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_tree_has_requested_size() {
        let mut g = TreeGen::new(7);
        for size in [1, 2, 10, 257] {
            let t = random_tree(&mut g, size, &["a", "b", "c"]);
            assert_eq!(t.size(), size as u64);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t1 = random_tree(&mut TreeGen::new(42), 50, &["a", "b"]);
        let t2 = random_tree(&mut TreeGen::new(42), 50, &["a", "b"]);
        let t3 = random_tree(&mut TreeGen::new(43), 50, &["a", "b"]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3, "different seeds should differ (with high prob.)");
    }

    #[test]
    fn labels_come_from_alphabet() {
        let t = random_tree(&mut TreeGen::new(1), 100, &["x", "y"]);
        fn check(t: &Tree) {
            assert!(matches!(t.label().as_str(), "x" | "y"));
            t.children().iter().for_each(check);
        }
        check(&t);
    }

    #[test]
    fn forest_and_document_helpers() {
        let mut g = TreeGen::new(3);
        let f = random_forest(&mut g, 4, 10, &["a"]);
        assert_eq!(f.len(), 4);
        let d = random_document(&mut g, 25, &["a", "b"]);
        assert_eq!(d.len(), 25);
    }

    #[test]
    fn rng_helpers_behave() {
        let mut g = TreeGen::new(9);
        for _ in 0..100 {
            assert!(g.below(10) < 10);
        }
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(g.choose(&items)));
        }
        // chance(1,1) is always true; chance(0,5) never.
        assert!(g.chance(1, 1));
        assert!(!g.chance(0, 5));
    }
}
