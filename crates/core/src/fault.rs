//! Deterministic, seeded fault injection for the serving stack.
//!
//! Production failure modes — a panicking evaluation, a worker dying
//! mid-delivery, a stalled evaluation, a refused admission — are rare by
//! construction, which is exactly why the paths that contain them rot
//! unexercised. This module makes failure an *input*: a [`Faults`]
//! registry holds a per-[`FaultPoint`] firing probability, and the code
//! hosting each point asks [`Faults::fires`] at the moment the fault
//! would occur.
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(seed, point, occurrence)`:
//! the `n`-th draw at a given point hashes the seed, a per-point salt,
//! and `n` through SplitMix64 and compares the result against the
//! point's probability. Two registries built from the same spec and
//! seed therefore produce *identical decision sequences*, whichever
//! threads consume them — so a chaos-soak failure replays exactly by
//! re-running with the same `XQ_FAULT_SEED`/`XQ_FAULT_SPEC` pair, and
//! when the number of draws is itself schedule-independent (it is in
//! the soak: one draw per request per point), the *number of injected
//! faults* is a constant of the configuration, not of thread timing.
//!
//! ## Cost when disabled
//!
//! Faults are off by default: the service holds an
//! `Option<Arc<Faults>>` that is `None` unless explicitly configured,
//! so the entire facility costs one pointer test (`if let Some(_)`) per
//! hosting site on the production path — no atomics, no hashing, no
//! branches inside evaluation.
//!
//! ## Spec grammar
//!
//! ```text
//! spec      := point ("," point)*
//! point     := name "=" prob [ "@" delay_ms ] [ "x" limit ]
//! name      := "worker-panic" | "completion-drop" | "slow-eval" | "submit-refusal"
//! prob      := float in [0, 1]
//! delay_ms  := integer (slow-eval's injected sleep; default 1)
//! limit     := integer (fire at most this many times; default unlimited)
//! ```
//!
//! e.g. `XQ_FAULT_SPEC="worker-panic=0.05,slow-eval=0.2@3,completion-drop=1.0x1"`
//! panics 5% of evaluations, delays 20% of them by 3 ms, and kills
//! exactly one delivery. Malformed specs are rejected with a typed
//! [`FaultSpecError`] — never silently ignored.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The named places the serving stack can inject a failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultPoint {
    /// Panic inside a worker's evaluation — *inside* the service's
    /// `catch_unwind` fence, so firing it proves a panicking query is
    /// answered `internal_error` without killing the worker.
    WorkerPanic,
    /// Panic during result delivery — *outside* the fence, so firing it
    /// kills the worker thread and proves the delivery guard still
    /// answers the request and the supervisor respawns the worker.
    CompletionDrop,
    /// Sleep before evaluation (the delay is the point's `@ms` field) —
    /// models a stalled evaluation without cooking the CPU.
    SlowEval,
    /// Refuse admission at the reactor → pool handoff, as if the queue
    /// were at its high-water mark — exercises the `overloaded` path.
    SubmitRefusal,
}

impl FaultPoint {
    const ALL: [FaultPoint; 4] = [
        FaultPoint::WorkerPanic,
        FaultPoint::CompletionDrop,
        FaultPoint::SlowEval,
        FaultPoint::SubmitRefusal,
    ];

    /// The spec-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WorkerPanic => "worker-panic",
            FaultPoint::CompletionDrop => "completion-drop",
            FaultPoint::SlowEval => "slow-eval",
            FaultPoint::SubmitRefusal => "submit-refusal",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultPoint::WorkerPanic => 0,
            FaultPoint::CompletionDrop => 1,
            FaultPoint::SlowEval => 2,
            FaultPoint::SubmitRefusal => 3,
        }
    }

    /// Per-point salt so two points never share a decision stream.
    fn salt(self) -> u64 {
        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.index() as u64 + 1)
    }
}

/// Why a fault spec was rejected. Carries a rendered message; the spec
/// text is untrusted operator input, so rejection must be a value, not
/// a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// One configured fault point: probability, parameters, counters.
#[derive(Debug)]
struct Point {
    /// Firing probability in [0, 1].
    prob: f64,
    /// `slow-eval`'s injected sleep (parsed for every point, consumed
    /// only by `slow-eval`).
    delay: Duration,
    /// Fire at most this many times (`u64::MAX` = unlimited).
    limit: u64,
    /// Draws taken at this point (the occurrence counter the hash
    /// consumes).
    drawn: AtomicU64,
    /// Draws that fired.
    fired: AtomicU64,
}

impl Point {
    fn off() -> Point {
        Point {
            prob: 0.0,
            delay: Duration::from_millis(1),
            limit: u64::MAX,
            drawn: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }
}

/// A seeded fault registry; see the module docs. Shared as
/// `Arc<Faults>` between the service pool and the front door so one
/// seed governs the whole serving stack.
#[derive(Debug)]
pub struct Faults {
    seed: u64,
    spec: String,
    points: [Point; 4],
}

/// SplitMix64: the standard 64-bit finalizer — full avalanche, so
/// consecutive occurrence indices decorrelate completely.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Faults {
    /// Parses `spec` (see the module-level grammar) under `seed`.
    /// Rejects unknown point names, out-of-range probabilities, and
    /// malformed numbers with a typed [`FaultSpecError`].
    pub fn from_spec(spec: &str, seed: u64) -> Result<Faults, FaultSpecError> {
        let mut points = [Point::off(), Point::off(), Point::off(), Point::off()];
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(FaultSpecError(format!(
                    "empty clause in {spec:?} (trailing or doubled comma?)"
                )));
            }
            let (name, mut rest) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("clause {part:?} is not name=prob")))?;
            let point = FaultPoint::ALL
                .iter()
                .copied()
                .find(|p| p.name() == name.trim())
                .ok_or_else(|| {
                    FaultSpecError(format!(
                        "unknown fault point {:?} (expected one of worker-panic, \
                         completion-drop, slow-eval, submit-refusal)",
                        name.trim()
                    ))
                })?;
            // Suffixes bind right to left: prob[@delay_ms][xlimit].
            let mut limit = u64::MAX;
            if let Some((head, lim)) = rest.split_once('x') {
                limit = lim
                    .parse()
                    .map_err(|_| FaultSpecError(format!("bad limit {lim:?} in {part:?}")))?;
                rest = head;
            }
            let mut delay = Duration::from_millis(1);
            if let Some((head, ms)) = rest.split_once('@') {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| FaultSpecError(format!("bad delay {ms:?} in {part:?}")))?;
                delay = Duration::from_millis(ms);
                rest = head;
            }
            let prob: f64 = rest
                .parse()
                .map_err(|_| FaultSpecError(format!("bad probability {rest:?} in {part:?}")))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(FaultSpecError(format!(
                    "probability {prob} in {part:?} is outside [0, 1]"
                )));
            }
            let slot = &mut points[point.index()];
            slot.prob = prob;
            slot.delay = delay;
            slot.limit = limit;
        }
        let faults = Faults {
            seed,
            spec: spec.to_string(),
            points,
        };
        // Injected panics are expected output, not bugs: keep them off
        // the test/CI stderr so real panics stay visible.
        if faults.points[FaultPoint::WorkerPanic.index()].prob > 0.0
            || faults.points[FaultPoint::CompletionDrop.index()].prob > 0.0
        {
            silence_injected_panics();
        }
        Ok(faults)
    }

    /// The `XQ_FAULT_SPEC` / `XQ_FAULT_SEED` knobs: `Ok(None)` when no
    /// spec is set (the production default), the parsed registry when it
    /// is, and an error for malformed values of either variable — a typo
    /// in a chaos knob must fail loudly, not run a faultless "soak".
    /// The seed defaults to 2005 (the paper's year) when unset.
    pub fn from_env() -> Result<Option<Faults>, FaultSpecError> {
        let Ok(spec) = std::env::var("XQ_FAULT_SPEC") else {
            return Ok(None);
        };
        let seed = match std::env::var("XQ_FAULT_SEED") {
            Ok(s) => s
                .trim()
                .parse()
                .map_err(|_| FaultSpecError(format!("XQ_FAULT_SEED {s:?} is not a u64")))?,
            Err(_) => 2005,
        };
        Faults::from_spec(&spec, seed).map(Some)
    }

    /// Draws the point's next occurrence: true iff the fault fires.
    /// Deterministic in `(seed, point, occurrence)`; see module docs.
    pub fn fires(&self, point: FaultPoint) -> bool {
        let p = &self.points[point.index()];
        if p.prob <= 0.0 {
            return false;
        }
        let n = p.drawn.fetch_add(1, Ordering::Relaxed);
        let fired = if p.prob >= 1.0 {
            true
        } else {
            // Top 53 bits → a uniform float in [0, 1).
            let h = splitmix64(self.seed ^ point.salt() ^ n);
            ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p.prob
        };
        if fired {
            // The limit bounds *fires*, not draws, so `x1` means
            // "exactly one injected fault" regardless of probability.
            let k = p.fired.fetch_add(1, Ordering::Relaxed);
            if k >= p.limit {
                return false;
            }
        }
        fired
    }

    /// `slow-eval`'s configured sleep (the point's `@ms` field).
    pub fn delay(&self, point: FaultPoint) -> Duration {
        self.points[point.index()].delay
    }

    /// Draws taken at `point` so far.
    pub fn drawn(&self, point: FaultPoint) -> u64 {
        self.points[point.index()].drawn.load(Ordering::Relaxed)
    }

    /// Draws at `point` that fired so far (capped observations included,
    /// so this can exceed the `x` limit by at most the number of
    /// concurrent over-limit draws; with `x` unset it is exact).
    pub fn fired(&self, point: FaultPoint) -> u64 {
        self.points[point.index()]
            .fired
            .load(Ordering::Relaxed)
            .min(self.points[point.index()].limit)
    }

    /// The seed the registry was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spec text the registry was built from.
    pub fn spec(&self) -> &str {
        self.spec.as_str()
    }
}

/// The panic payload every injected panic carries, prefixed so the
/// silenced hook (and a human reading an `internal_error` frame) can
/// tell injected faults from real bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// Installs (once, process-wide) a panic hook that suppresses the
/// default "thread panicked" stderr report for payloads carrying
/// [`INJECTED_PANIC_PREFIX`], delegating everything else to the prior
/// hook. A chaos soak injects hundreds of panics by design; their
/// backtrace spam would bury any *real* failure in the test output.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_points_never_fire_and_never_draw() {
        let f = Faults::from_spec("worker-panic=0.5", 7).unwrap();
        for _ in 0..100 {
            assert!(!f.fires(FaultPoint::SlowEval));
        }
        assert_eq!(f.drawn(FaultPoint::SlowEval), 0, "prob-0 points are free");
    }

    #[test]
    fn same_seed_same_decisions_different_seed_differs() {
        let spec = "worker-panic=0.3,completion-drop=0.7";
        let a = Faults::from_spec(spec, 42).unwrap();
        let b = Faults::from_spec(spec, 42).unwrap();
        let c = Faults::from_spec(spec, 43).unwrap();
        let draw = |f: &Faults| -> Vec<bool> {
            (0..256)
                .map(|i| {
                    f.fires(if i % 2 == 0 {
                        FaultPoint::WorkerPanic
                    } else {
                        FaultPoint::CompletionDrop
                    })
                })
                .collect()
        };
        let (da, db, dc) = (draw(&a), draw(&b), draw(&c));
        assert_eq!(da, db, "same (seed, spec) must replay exactly");
        assert_ne!(da, dc, "a different seed must explore differently");
    }

    #[test]
    fn probabilities_are_roughly_honored() {
        let f = Faults::from_spec("worker-panic=0.25", 9).unwrap();
        let fired = (0..4000)
            .filter(|_| f.fires(FaultPoint::WorkerPanic))
            .count();
        assert!(
            (800..=1200).contains(&fired),
            "~25% of 4000 draws should fire, got {fired}"
        );
        assert_eq!(f.drawn(FaultPoint::WorkerPanic), 4000);
        assert_eq!(f.fired(FaultPoint::WorkerPanic), fired as u64);
    }

    #[test]
    fn certain_faults_always_fire_and_limits_cap_them() {
        let f = Faults::from_spec("completion-drop=1.0x3", 1).unwrap();
        let fired = (0..50)
            .filter(|_| f.fires(FaultPoint::CompletionDrop))
            .count();
        assert_eq!(fired, 3, "x3 caps a certain fault at three fires");
        assert_eq!(f.fired(FaultPoint::CompletionDrop), 3);
    }

    #[test]
    fn delay_and_suffix_parsing() {
        let f = Faults::from_spec("slow-eval=0.5@7x9", 3).unwrap();
        assert_eq!(f.delay(FaultPoint::SlowEval), Duration::from_millis(7));
        let f = Faults::from_spec("slow-eval=1.0", 3).unwrap();
        assert_eq!(
            f.delay(FaultPoint::SlowEval),
            Duration::from_millis(1),
            "delay defaults to 1ms"
        );
    }

    #[test]
    fn malformed_specs_are_rejected_not_ignored() {
        for bad in [
            "",
            "worker-panic",                   // no probability
            "worker-panic=",                  // empty probability
            "worker-panic=nope",              // non-numeric
            "worker-panic=1.5",               // out of range
            "worker-panic=-0.1",              // out of range
            "worker-panic=0.5,",              // trailing comma
            "worker-panics=0.5",              // unknown point
            "slow-eval=0.5@fast",             // bad delay
            "completion-drop=1.0xmany",       // bad limit
            "worker-panic=0.5 slow-eval=0.5", // missing comma
        ] {
            assert!(
                Faults::from_spec(bad, 0).is_err(),
                "spec {bad:?} must be rejected"
            );
        }
        let err = Faults::from_spec("worker-panics=0.5", 0).unwrap_err();
        assert!(err.to_string().contains("unknown fault point"));
    }

    #[test]
    fn spec_and_seed_round_trip() {
        let f = Faults::from_spec("worker-panic=0.1", 77).unwrap();
        assert_eq!(f.seed(), 77);
        assert_eq!(f.spec(), "worker-panic=0.1");
    }
}
