//! Flat relational algebra and the conservativity connection to monad
//! algebra (Koch PODS 2005: Theorem 2.5, Proposition 6.1, Figure 11).
//!
//! * [`Relation`]/[`Ra`] — a classical set-semantics relational algebra
//!   (select, project, product, union, difference, rename) over relations
//!   of atoms, the PSPACE-complete baseline the paper compares against;
//! * [`flat_value`] — the `flat(v)` encoding of Prop 6.1: a complex value
//!   becomes relations `Atomic(id, sym)`, `Pair(id, l, r)`, `Set(id, m)`
//!   with node identifiers;
//! * [`v_tau`] — the Figure 11 decoder `V_τ`, a monad-algebra query over
//!   the flat encoding that reassembles `{⟨1: id, 2: {v}⟩}` associations;
//!   [`v_prime`] recovers `{v}` itself;
//! * conservativity spot-checks (Thm 2.5): flat-to-flat monad algebra
//!   queries vs equivalent relational algebra queries, in tests.

use cv_monad::{Cond, Expr, Operand};
use cv_value::{Atom, Value, ValueKind};
use std::collections::BTreeSet;
use std::rc::Rc;

/// A relation: a schema (attribute names) and a set of rows of atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Attribute names, in column order.
    pub schema: Vec<String>,
    /// The rows.
    pub rows: BTreeSet<Vec<Atom>>,
}

impl Relation {
    /// Creates a relation from a schema and rows.
    pub fn new<S: Into<String>>(
        schema: impl IntoIterator<Item = S>,
        rows: impl IntoIterator<Item = Vec<Atom>>,
    ) -> Relation {
        let schema: Vec<String> = schema.into_iter().map(Into::into).collect();
        let rows: BTreeSet<Vec<Atom>> = rows.into_iter().collect();
        for r in &rows {
            assert_eq!(r.len(), schema.len(), "row arity mismatch");
        }
        Relation { schema, rows }
    }

    fn col(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|n| n == name)
    }

    /// The relation as a complex value `{⟨A1: …, …⟩}` (the paper's data
    /// model for flat relations, §2.2).
    pub fn to_value(&self) -> Value {
        Value::set(self.rows.iter().map(|r| {
            Value::tuple(
                self.schema
                    .iter()
                    .zip(r)
                    .map(|(n, a)| (n.as_str(), Value::atom(a.clone()))),
            )
        }))
    }

    /// Parses a complex value `{⟨A: a, …⟩}` back into a relation.
    pub fn from_value(v: &Value) -> Option<Relation> {
        let items = v.items().ok()?;
        let mut schema: Option<Vec<String>> = None;
        let mut rows = BTreeSet::new();
        for t in items {
            let fields = t.as_tuple()?;
            let s: Vec<String> = fields.iter().map(|(n, _)| n.as_str().into()).collect();
            match &schema {
                None => schema = Some(s),
                Some(prev) if *prev == s => {}
                _ => return None,
            }
            rows.insert(
                fields
                    .iter()
                    .map(|(_, fv)| fv.as_atom().cloned())
                    .collect::<Option<Vec<_>>>()?,
            );
        }
        Some(Relation {
            schema: schema.unwrap_or_default(),
            rows,
        })
    }
}

/// A relational algebra expression over named base relations.
#[derive(Clone, Debug)]
pub enum Ra {
    /// A base relation by name.
    Base(String),
    /// `σ_{A = B}`.
    SelectEq(Rc<Ra>, String, String),
    /// `σ_{A = const}`.
    SelectConst(Rc<Ra>, String, Atom),
    /// `π_{A1, …, Ak}`.
    Project(Rc<Ra>, Vec<String>),
    /// Cartesian product (schemas must be disjoint).
    Product(Rc<Ra>, Rc<Ra>),
    /// Union (same schema).
    Union(Rc<Ra>, Rc<Ra>),
    /// Difference (same schema).
    Diff(Rc<Ra>, Rc<Ra>),
    /// Attribute renaming.
    Rename(Rc<Ra>, Vec<(String, String)>),
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaError {
    /// Unknown base relation.
    UnknownRelation(String),
    /// Missing attribute.
    NoSuchAttribute(String),
    /// Schema clash in a product/union/difference.
    SchemaMismatch(String),
}

impl std::fmt::Display for RaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            RaError::NoSuchAttribute(a) => write!(f, "no such attribute {a}"),
            RaError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
        }
    }
}

impl std::error::Error for RaError {}

/// A database: named relations.
pub type Database = std::collections::BTreeMap<String, Relation>;

/// Evaluates a relational algebra expression.
pub fn eval_ra(ra: &Ra, db: &Database) -> Result<Relation, RaError> {
    match ra {
        Ra::Base(name) => db
            .get(name)
            .cloned()
            .ok_or_else(|| RaError::UnknownRelation(name.clone())),
        Ra::SelectEq(e, a, b) => {
            let r = eval_ra(e, db)?;
            let (ia, ib) = (
                r.col(a)
                    .ok_or_else(|| RaError::NoSuchAttribute(a.clone()))?,
                r.col(b)
                    .ok_or_else(|| RaError::NoSuchAttribute(b.clone()))?,
            );
            Ok(Relation {
                schema: r.schema.clone(),
                rows: r.rows.iter().filter(|t| t[ia] == t[ib]).cloned().collect(),
            })
        }
        Ra::SelectConst(e, a, c) => {
            let r = eval_ra(e, db)?;
            let ia = r
                .col(a)
                .ok_or_else(|| RaError::NoSuchAttribute(a.clone()))?;
            Ok(Relation {
                schema: r.schema.clone(),
                rows: r.rows.iter().filter(|t| &t[ia] == c).cloned().collect(),
            })
        }
        Ra::Project(e, attrs) => {
            let r = eval_ra(e, db)?;
            let idx: Vec<usize> = attrs
                .iter()
                .map(|a| r.col(a).ok_or_else(|| RaError::NoSuchAttribute(a.clone())))
                .collect::<Result<_, _>>()?;
            Ok(Relation {
                schema: attrs.clone(),
                rows: r
                    .rows
                    .iter()
                    .map(|t| idx.iter().map(|&i| t[i].clone()).collect())
                    .collect(),
            })
        }
        Ra::Product(l, r) => {
            let (lr, rr) = (eval_ra(l, db)?, eval_ra(r, db)?);
            if lr.schema.iter().any(|a| rr.schema.contains(a)) {
                return Err(RaError::SchemaMismatch(
                    "product schemas must be disjoint".into(),
                ));
            }
            let mut schema = lr.schema.clone();
            schema.extend(rr.schema.clone());
            let mut rows = BTreeSet::new();
            for a in &lr.rows {
                for b in &rr.rows {
                    let mut t = a.clone();
                    t.extend(b.iter().cloned());
                    rows.insert(t);
                }
            }
            Ok(Relation { schema, rows })
        }
        Ra::Union(l, r) => {
            let (lr, rr) = (eval_ra(l, db)?, eval_ra(r, db)?);
            if lr.schema != rr.schema {
                return Err(RaError::SchemaMismatch("union schemas differ".into()));
            }
            Ok(Relation {
                schema: lr.schema,
                rows: lr.rows.union(&rr.rows).cloned().collect(),
            })
        }
        Ra::Diff(l, r) => {
            let (lr, rr) = (eval_ra(l, db)?, eval_ra(r, db)?);
            if lr.schema != rr.schema {
                return Err(RaError::SchemaMismatch("difference schemas differ".into()));
            }
            Ok(Relation {
                schema: lr.schema,
                rows: lr.rows.difference(&rr.rows).cloned().collect(),
            })
        }
        Ra::Rename(e, pairs) => {
            let r = eval_ra(e, db)?;
            let schema = r
                .schema
                .iter()
                .map(|a| {
                    pairs
                        .iter()
                        .find(|(from, _)| from == a)
                        .map(|(_, to)| to.clone())
                        .unwrap_or_else(|| a.clone())
                })
                .collect();
            Ok(Relation {
                schema,
                rows: r.rows,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Prop 6.1: the flat(v) encoding and the V_τ decoder (Figure 11)
// ---------------------------------------------------------------------------

/// The `flat(v)` encoding: node identifiers are assigned in preorder
/// (standing in for the string positions of the proof), and the value is
/// described by three relations packed into a tuple
/// `⟨Atomic: {⟨1,2⟩}, Pair: {⟨1,2,3⟩}, Set: {⟨1,2⟩}⟩`, plus the root id.
pub fn flat_value(v: &Value) -> (Value, u64) {
    let mut atomic = Vec::new();
    let mut pair = Vec::new();
    let mut set = Vec::new();
    let mut next = 0u64;
    fn walk(
        v: &Value,
        next: &mut u64,
        atomic: &mut Vec<Value>,
        pair: &mut Vec<Value>,
        set: &mut Vec<Value>,
    ) -> u64 {
        let id = *next;
        *next += 1;
        match v.kind() {
            ValueKind::Atom(a) => {
                atomic.push(Value::tuple([
                    ("1", Value::atom(id.to_string())),
                    ("2", Value::atom(a.clone())),
                ]));
            }
            ValueKind::Tuple(fields) => {
                assert_eq!(
                    fields.len(),
                    2,
                    "flat(v) is defined for pairs (the proof's simplification)"
                );
                let l = walk(&fields[0].1, next, atomic, pair, set);
                let r = walk(&fields[1].1, next, atomic, pair, set);
                pair.push(Value::tuple([
                    ("1", Value::atom(id.to_string())),
                    ("2", Value::atom(l.to_string())),
                    ("3", Value::atom(r.to_string())),
                ]));
            }
            ValueKind::Set(items) | ValueKind::List(items) | ValueKind::Bag(items) => {
                let mut members = Vec::new();
                for m in items {
                    members.push(walk(m, next, atomic, pair, set));
                }
                for m in members {
                    set.push(Value::tuple([
                        ("1", Value::atom(id.to_string())),
                        ("2", Value::atom(m.to_string())),
                    ]));
                }
            }
        }
        id
    }
    let root = walk(v, &mut next, &mut atomic, &mut pair, &mut set);
    (
        Value::tuple([
            ("Atomic", Value::set(atomic)),
            ("Pair", Value::set(pair)),
            ("Set", Value::set(set)),
        ]),
        root,
    )
}

/// The association lookup `S|v` of the Prop 6.1 proof: given an
/// association set `S = {⟨1: id, 2: {val}⟩}` and an id, the value set
/// `{val}`:
/// `S|v = ⟨1: v, 2: S⟩ ∘ pairwith_2 ∘ σ_{1 = 2.1} ∘ map(π_{2.2}) ∘ flatten`.
fn lookup(s: Expr, v: Expr) -> Expr {
    Expr::mk_tuple([("1", v), ("2", s)])
        .then(Expr::pairwith("2"))
        .then(Expr::Select(Cond::eq_atomic(
            Operand::path("1"),
            Operand::path("2.1"),
        )))
        .then(Expr::proj_path("2.2").mapped())
        .then(Expr::Flatten)
}

/// The Figure 11 decoder `V_τ`: a monad algebra query that maps the
/// [`flat_value`] encoding to the association set
/// `{⟨1: id, 2: {decoded value}⟩}` for the nodes of type `τ`.
///
/// Supported types: `Dom`, binary tuples, and sets thereof, with distinct
/// types at distinct nesting levels (the scope of the Prop 6.1 proof's
/// examples; flat relations always qualify).
pub fn v_tau(ty: &cv_value::Type) -> Expr {
    use cv_value::Type;
    match ty {
        // VDom := Atomic ∘ map(⟨1: π1, 2: π2 ∘ sng⟩)
        Type::Dom => Expr::proj("Atomic").then(
            Expr::mk_tuple([
                ("1", Expr::proj("1")),
                ("2", Expr::proj("2").then(Expr::Sng)),
            ])
            .mapped(),
        ),
        // V⟨A: τ1, B: τ2⟩ := Pair ∘ map(⟨1: π1, 2: Vτ1|π2 × Vτ2|π3⟩)
        Type::Tuple(fields) if fields.len() == 2 => {
            let (n1, t1) = &fields[0];
            let (n2, t2) = &fields[1];
            let (n1, n2) = (n1.clone(), n2.clone());
            let v1 = v_tau(t1);
            let v2 = v_tau(t2);
            // The lookups need both the Pair row and the whole database;
            // carry the database alongside with pairwith.
            Expr::mk_tuple([("P", Expr::proj("Pair")), ("D", Expr::Id)])
                .then(Expr::pairwith("P"))
                .then(
                    Expr::mk_tuple([
                        ("1", Expr::proj_path("P.1")),
                        (
                            "2",
                            product_of(
                                lookup(Expr::proj("D").then(v1), Expr::proj_path("P.2")),
                                lookup(Expr::proj("D").then(v2), Expr::proj_path("P.3")),
                                &n1,
                                &n2,
                            ),
                        ),
                    ])
                    .mapped(),
                )
        }
        // V{τ} groups the Set relation by parent id and decodes members.
        Type::Set(elem) => {
            let velem = v_tau(elem);
            Expr::mk_tuple([
                ("Ids", Expr::proj("Set").then(Expr::proj("1").mapped())),
                ("D", Expr::Id),
            ])
            .then(Expr::pairwith("Ids"))
            .then(
                Expr::mk_tuple([
                    ("1", Expr::proj("Ids")),
                    (
                        "2",
                        Expr::mk_tuple([
                            ("sid", Expr::proj("Ids")),
                            ("Rows", Expr::proj_path("D.Set")),
                            ("D", Expr::proj("D")),
                        ])
                        .then(Expr::pairwith("Rows"))
                        .then(Expr::Select(Cond::eq_atomic(
                            Operand::path("sid"),
                            Operand::path("Rows.1"),
                        )))
                        .then(
                            lookup_in(Expr::proj("D").then(velem), Expr::proj_path("Rows.2"))
                                .mapped(),
                        )
                        .then(Expr::Flatten)
                        .then(Expr::Sng),
                    ),
                ])
                .mapped(),
            )
        }
        other => panic!("V_τ is not defined at type {other}"),
    }
}

fn lookup_in(s: Expr, v: Expr) -> Expr {
    lookup(s, v)
}

/// Cartesian product of two singleton value sets into `{⟨n1: v1, n2: v2⟩}`.
fn product_of(a: Expr, b: Expr, n1: &str, n2: &str) -> Expr {
    Expr::mk_tuple([("L", a), ("R", b)])
        .then(Expr::pairwith("L"))
        .then(Expr::flatmap(Expr::pairwith("R")))
        .then(Expr::mk_tuple([(n1, Expr::proj("L")), (n2, Expr::proj("R"))]).mapped())
}

/// `V′ := V_τ ∘ σ_{1 = root} ∘ map(π2) ∘ flatten` — recovers `{v}` from
/// `flat(v)` (the Prop 6.1 claim, with the root id made explicit).
pub fn v_prime(ty: &cv_value::Type, root_id: u64) -> Expr {
    v_tau(ty)
        .then(Expr::Select(Cond::eq_atomic(
            Operand::path("1"),
            Operand::atom(root_id.to_string()),
        )))
        .then(Expr::proj("2").mapped())
        .then(Expr::Flatten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_monad::{eval, CollectionKind};
    use cv_value::{parse_type, parse_value};

    fn a(s: &str) -> Atom {
        Atom::new(s)
    }

    #[test]
    fn ra_basic_operations() {
        let mut db = Database::new();
        db.insert(
            "R".into(),
            Relation::new(
                ["A", "B"],
                [
                    vec![a("1"), a("x")],
                    vec![a("2"), a("y")],
                    vec![a("2"), a("z")],
                ],
            ),
        );
        db.insert(
            "S".into(),
            Relation::new(["C"], [vec![a("x")], vec![a("y")]]),
        );
        let q = Ra::Project(
            Ra::SelectEq(
                Ra::Product(
                    Ra::Base("R".into()).into(),
                    Ra::Rename(Ra::Base("S".into()).into(), vec![("C".into(), "B2".into())]).into(),
                )
                .into(),
                "B".into(),
                "B2".into(),
            )
            .into(),
            vec!["A".into()],
        );
        let r = eval_ra(&q, &db).unwrap();
        assert_eq!(r, Relation::new(["A"], [vec![a("1")], vec![a("2")]]));
    }

    #[test]
    fn ra_union_difference_and_errors() {
        let mut db = Database::new();
        db.insert(
            "R".into(),
            Relation::new(["A"], [vec![a("1")], vec![a("2")]]),
        );
        db.insert("S".into(), Relation::new(["A"], [vec![a("2")]]));
        let u = eval_ra(
            &Ra::Union(Ra::Base("R".into()).into(), Ra::Base("S".into()).into()),
            &db,
        )
        .unwrap();
        assert_eq!(u.rows.len(), 2);
        let d = eval_ra(
            &Ra::Diff(Ra::Base("R".into()).into(), Ra::Base("S".into()).into()),
            &db,
        )
        .unwrap();
        assert_eq!(d, Relation::new(["A"], [vec![a("1")]]));
        assert!(matches!(
            eval_ra(&Ra::Base("Z".into()), &db),
            Err(RaError::UnknownRelation(_))
        ));
        assert!(matches!(
            eval_ra(
                &Ra::Product(Ra::Base("R".into()).into(), Ra::Base("S".into()).into()),
                &db
            ),
            Err(RaError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn relation_value_round_trip() {
        let r = Relation::new(["A", "B"], [vec![a("1"), a("x")], vec![a("2"), a("y")]]);
        let v = r.to_value();
        assert_eq!(Relation::from_value(&v), Some(r));
    }

    #[test]
    fn flat_encoding_of_the_prop_6_1_example() {
        // {⟨a, b⟩, ⟨c, d⟩} of type {⟨A: Dom, B: Dom⟩}.
        let v = parse_value("{<A: \"a\", B: b>, <A: c, B: d>}").unwrap();
        let (flat, root) = flat_value(&v);
        assert_eq!(root, 0);
        let atomic = flat.project("Atomic").unwrap();
        let pair = flat.project("Pair").unwrap();
        let set = flat.project("Set").unwrap();
        assert_eq!(atomic.items().unwrap().len(), 4);
        assert_eq!(pair.items().unwrap().len(), 2);
        assert_eq!(set.items().unwrap().len(), 2);
    }

    /// The Figure 11 computation: V_τ on flat({⟨a,b⟩, ⟨c,d⟩}) recovers
    /// `{⟨1: rootid, 2: {{⟨a,b⟩, ⟨c,d⟩}}⟩}` — and V′ recovers `{v}`.
    #[test]
    fn figure_11_v_tau_recovers_the_value() {
        let ty = parse_type("{<A: Dom, B: Dom>}").unwrap();
        for src in ["{<A: x, B: y>, <A: u, B: w>}", "{<A: x, B: x>}"] {
            let v = parse_value(src).unwrap();
            let (flat, root) = flat_value(&v);
            let q = v_prime(&ty, root);
            let got = eval(&q, CollectionKind::Set, &flat)
                .unwrap_or_else(|e| panic!("V′ failed on {src}: {e}"));
            assert_eq!(got, Value::set([v]), "src {src}");
        }
    }

    #[test]
    fn v_tau_on_plain_atoms_and_pairs() {
        let v = parse_value("<A: p, B: q>").unwrap();
        let (flat, root) = flat_value(&v);
        let ty = parse_type("<A: Dom, B: Dom>").unwrap();
        let got = eval(&v_prime(&ty, root), CollectionKind::Set, &flat).unwrap();
        assert_eq!(got, Value::set([v]));
    }

    /// Theorem 2.5 spot-check: a flat-to-flat monad algebra query and the
    /// equivalent relational algebra query produce the same relation.
    #[test]
    fn conservativity_select_project() {
        // R(A,B): σ_{A=B} then project A — in both languages.
        let r = Relation::new(
            ["A", "B"],
            [
                vec![a("1"), a("1")],
                vec![a("1"), a("2")],
                vec![a("3"), a("3")],
            ],
        );
        let mut db = Database::new();
        db.insert("R".into(), r.clone());
        let ra = Ra::Project(
            Ra::SelectEq(Ra::Base("R".into()).into(), "A".into(), "B".into()).into(),
            vec!["A".into()],
        );
        let want = eval_ra(&ra, &db).unwrap();

        let ma = Expr::Select(Cond::eq_atomic(Operand::path("A"), Operand::path("B")))
            .then(Expr::mk_tuple([("A", Expr::proj("A"))]).mapped());
        let got = eval(&ma, CollectionKind::Set, &r.to_value()).unwrap();
        assert_eq!(Relation::from_value(&got), Some(want));
    }

    #[test]
    fn conservativity_join() {
        // π_A(R ⋈_{B=C} S) vs the monad-algebra pairing construction.
        let r = Relation::new(["A", "B"], [vec![a("1"), a("x")], vec![a("2"), a("y")]]);
        let s = Relation::new(["C"], [vec![a("x")]]);
        let mut db = Database::new();
        db.insert("R".into(), r.clone());
        db.insert("S".into(), s.clone());
        let ra = Ra::Project(
            Ra::SelectEq(
                Ra::Product(Ra::Base("R".into()).into(), Ra::Base("S".into()).into()).into(),
                "B".into(),
                "C".into(),
            )
            .into(),
            vec!["A".into()],
        );
        let want = eval_ra(&ra, &db).unwrap();

        let ma = Expr::mk_tuple([("R", Expr::proj("R")), ("S", Expr::proj("S"))])
            .then(Expr::pairwith("R"))
            .then(Expr::flatmap(Expr::pairwith("S")))
            .then(Expr::Select(Cond::eq_atomic(
                Operand::path("R.B"),
                Operand::path("S.C"),
            )))
            .then(Expr::mk_tuple([("A", Expr::proj_path("R.A"))]).mapped());
        let input = Value::tuple([("R", r.to_value()), ("S", s.to_value())]);
        let got = eval(&ma, CollectionKind::Set, &input).unwrap();
        assert_eq!(Relation::from_value(&got), Some(want));
    }

    #[test]
    fn conservativity_difference() {
        let r = Relation::new(["A"], [vec![a("1")], vec![a("2")]]);
        let s = Relation::new(["A"], [vec![a("2")]]);
        let mut db = Database::new();
        db.insert("R".into(), r.clone());
        db.insert("S".into(), s.clone());
        let want = eval_ra(
            &Ra::Diff(Ra::Base("R".into()).into(), Ra::Base("S".into()).into()),
            &db,
        )
        .unwrap();
        // Example 2.4's derived difference in M∪[σ].
        let input = Value::tuple([("R", r.to_value()), ("S", s.to_value())]);
        let got = eval(
            &cv_monad::derived::derived_diff(),
            CollectionKind::Set,
            &input,
        )
        .unwrap();
        assert_eq!(Relation::from_value(&got), Some(want));
    }
}
