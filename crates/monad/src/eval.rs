//! The materializing reference evaluator for monad algebra.
//!
//! This is the "naive straightforward functional implementation" the paper
//! measures everything against: each operation materializes its full result.
//! Because `M∪` queries can build values of size `2^2^Ω(|Q|)` (Prop 4.2),
//! every entry point takes a [`Budget`] and fails with
//! [`EvalError::Budget`] instead of exhausting memory.

use crate::{Cond, EqMode, Expr, Operand};
use cv_value::{CollectionKind, Value, ValueError, ValueKind};
use std::collections::HashMap;

/// Resource limits for one evaluation.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of operator applications (including per-element map
    /// steps).
    pub max_steps: u64,
    /// Maximum number of value nodes allocated in total.
    pub max_nodes: u64,
}

impl Budget {
    /// A budget suitable for unit tests: small enough to fail fast.
    pub fn small() -> Budget {
        Budget {
            max_steps: 1_000_000,
            max_nodes: 4_000_000,
        }
    }

    /// A budget suitable for the blowup experiments (hundreds of MB).
    pub fn large() -> Budget {
        Budget {
            max_steps: 200_000_000,
            max_nodes: 400_000_000,
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_steps: 20_000_000,
            max_nodes: 50_000_000,
        }
    }
}

/// Counters reported after evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Operator applications performed.
    pub steps: u64,
    /// Value nodes allocated (a proxy for working memory: the materializing
    /// evaluator's space is Θ(allocated nodes) in the worst case).
    pub nodes_allocated: u64,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A structural error from the value layer (bad projection etc.).
    Value(ValueError),
    /// An operation met a value of the wrong shape.
    Shape {
        /// The operation being evaluated.
        op: String,
        /// What it expected.
        expected: String,
        /// A rendering of what it got.
        got: String,
    },
    /// An operation is not defined for this collection kind
    /// (e.g. `monus` outside bags).
    Unsupported {
        /// The operation.
        op: String,
        /// The active collection kind.
        kind: CollectionKind,
    },
    /// The step or node budget was exhausted.
    Budget {
        /// `"steps"` or `"nodes"`.
        which: &'static str,
        /// The limit that was hit.
        limit: u64,
    },
}

impl From<ValueError> for EvalError {
    fn from(e: ValueError) -> EvalError {
        EvalError::Value(e)
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Value(e) => write!(f, "{e}"),
            EvalError::Shape { op, expected, got } => {
                write!(f, "{op}: expected {expected}, got {got}")
            }
            EvalError::Unsupported { op, kind } => {
                write!(f, "{op} is not defined on {kind}s")
            }
            EvalError::Budget { which, limit } => {
                write!(f, "budget exhausted: more than {limit} {which}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A reusable evaluator carrying a collection kind, a budget, and counters.
pub struct Evaluator {
    kind: CollectionKind,
    budget: Budget,
    stats: EvalStats,
    optimize: bool,
}

impl Evaluator {
    /// Creates an evaluator for the given collection monad with the default
    /// budget.
    pub fn new(kind: CollectionKind) -> Evaluator {
        Evaluator::with_budget(kind, Budget::default())
    }

    /// Creates an evaluator with an explicit budget.
    pub fn with_budget(kind: CollectionKind, budget: Budget) -> Evaluator {
        Evaluator {
            kind,
            budget,
            stats: EvalStats::default(),
            optimize: false,
        }
    }

    /// Enables (or disables) the [`crate::opt`] rewriting pass: every
    /// top-level [`eval`](Evaluator::eval) call first normalizes the
    /// expression — derived Theorem 2.2 constructions run as built-ins.
    /// Off by default, so the naive evaluator stays the paper's baseline.
    pub fn with_optimizer(mut self, on: bool) -> Evaluator {
        self.optimize = on;
        self
    }

    /// Whether the optimizer pass is enabled.
    pub fn optimizes(&self) -> bool {
        self.optimize
    }

    /// The collection monad this evaluator interprets `∪`/`flatten` in.
    pub fn kind(&self) -> CollectionKind {
        self.kind
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    fn step(&mut self) -> Result<(), EvalError> {
        self.stats.steps += 1;
        if self.stats.steps > self.budget.max_steps {
            return Err(EvalError::Budget {
                which: "steps",
                limit: self.budget.max_steps,
            });
        }
        Ok(())
    }

    fn alloc(&mut self, nodes: u64) -> Result<(), EvalError> {
        self.stats.nodes_allocated += nodes;
        if self.stats.nodes_allocated > self.budget.max_nodes {
            return Err(EvalError::Budget {
                which: "nodes",
                limit: self.budget.max_nodes,
            });
        }
        Ok(())
    }

    fn coll(&mut self, items: Vec<Value>) -> Result<Value, EvalError> {
        self.alloc(items.len() as u64 + 1)?;
        Ok(Value::collection(self.kind, items))
    }

    fn items<'v>(&self, op: &str, v: &'v Value) -> Result<&'v [Value], EvalError> {
        match (self.kind, v.kind()) {
            (CollectionKind::Set, ValueKind::Set(xs))
            | (CollectionKind::List, ValueKind::List(xs))
            | (CollectionKind::Bag, ValueKind::Bag(xs)) => Ok(xs),
            _ => Err(EvalError::Shape {
                op: op.to_string(),
                expected: format!("a {}", self.kind),
                got: v.to_string(),
            }),
        }
    }

    /// Evaluates `expr` on `input`. With
    /// [`with_optimizer`](Evaluator::with_optimizer) enabled, the
    /// expression is first rewritten by [`crate::opt::optimize`].
    pub fn eval(&mut self, expr: &Expr, input: &Value) -> Result<Value, EvalError> {
        if self.optimize {
            let (rewritten, _) = crate::opt::optimize(expr, self.kind);
            self.eval_expr(&rewritten, input)
        } else {
            self.eval_expr(expr, input)
        }
    }

    fn eval_expr(&mut self, expr: &Expr, input: &Value) -> Result<Value, EvalError> {
        self.step()?;
        match expr {
            Expr::Id => Ok(input.clone()),
            Expr::Compose(f, g) => {
                let mid = self.eval_expr(f, input)?;
                self.eval_expr(g, &mid)
            }
            Expr::Const(v) => {
                self.alloc(v.node_count())?;
                Ok(v.clone())
            }
            Expr::EmptyColl => self.coll(Vec::new()),
            Expr::Sng => self.coll(vec![input.clone()]),
            Expr::Map(f) => {
                let xs = self.items("map", input)?.to_vec();
                let mut out = Vec::with_capacity(xs.len());
                for x in &xs {
                    out.push(self.eval_expr(f, x)?);
                }
                self.coll(out)
            }
            Expr::Flatten => {
                let outer = self.items("flatten", input)?.to_vec();
                let mut out = Vec::new();
                for inner in &outer {
                    out.extend_from_slice(self.items("flatten", inner)?);
                }
                self.coll(out)
            }
            Expr::PairWith(attr) => {
                let fields = input
                    .as_tuple()
                    .ok_or_else(|| EvalError::Shape {
                        op: format!("pairwith[{attr}]"),
                        expected: "a tuple".into(),
                        got: input.to_string(),
                    })?
                    .to_vec();
                let coll_val = input.project(attr.as_str())?.clone();
                let elems = self.items("pairwith", &coll_val)?.to_vec();
                let mut out = Vec::with_capacity(elems.len());
                for e in &elems {
                    let tuple = Value::tuple(fields.iter().map(|(n, v)| {
                        if n == attr {
                            (n.clone(), e.clone())
                        } else {
                            (n.clone(), v.clone())
                        }
                    }));
                    self.alloc(fields.len() as u64 + 1)?;
                    out.push(tuple);
                }
                self.coll(out)
            }
            Expr::MkTuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (n, f) in fields {
                    out.push((n.clone(), self.eval_expr(f, input)?));
                }
                self.alloc(fields.len() as u64 + 1)?;
                Ok(Value::tuple(out))
            }
            Expr::Proj(a) => Ok(input.project(a.as_str())?.clone()),
            Expr::Union(f, g) => {
                let left = self.eval_expr(f, input)?;
                let right = self.eval_expr(g, input)?;
                let mut items = self.items("union", &left)?.to_vec();
                items.extend_from_slice(self.items("union", &right)?);
                self.coll(items)
            }
            Expr::Pred(c) => {
                let b = self.eval_cond(c, input)?;
                self.coll(if b { vec![Value::unit()] } else { Vec::new() })
            }
            Expr::Select(c) => {
                let xs = self.items("select", input)?.to_vec();
                let mut out = Vec::new();
                for x in &xs {
                    self.step()?;
                    if self.eval_cond(c, x)? {
                        out.push(x.clone());
                    }
                }
                self.coll(out)
            }
            Expr::Not => {
                let xs = self.items("not", input)?;
                let empty = xs.is_empty();
                self.coll(if empty {
                    vec![Value::unit()]
                } else {
                    Vec::new()
                })
            }
            Expr::True => {
                let xs = self.items("true", input)?;
                let nonempty = !xs.is_empty();
                self.coll(if nonempty {
                    vec![Value::unit()]
                } else {
                    Vec::new()
                })
            }
            Expr::Diff(f, g) => {
                let left = self.eval_expr(f, input)?;
                let right = self.eval_expr(g, input)?;
                let rs = self.items("difference", &right)?;
                let ls = self.items("difference", &left)?;
                let mut out = Vec::new();
                for x in ls {
                    self.step()?;
                    if !rs.contains(x) {
                        out.push(x.clone());
                    }
                }
                self.coll(out)
            }
            Expr::Intersect(f, g) => {
                let left = self.eval_expr(f, input)?;
                let right = self.eval_expr(g, input)?;
                let rs = self.items("intersection", &right)?;
                let ls = self.items("intersection", &left)?;
                let mut out = Vec::new();
                for x in ls {
                    self.step()?;
                    if rs.contains(x) {
                        out.push(x.clone());
                    }
                }
                self.coll(out)
            }
            Expr::Nest { collect, into } => self.eval_nest(collect, into, input),
            Expr::Monus(f, g) => {
                if self.kind != CollectionKind::Bag {
                    return Err(EvalError::Unsupported {
                        op: "monus".into(),
                        kind: self.kind,
                    });
                }
                let left = self.eval_expr(f, input)?;
                let right = self.eval_expr(g, input)?;
                // Both canonically sorted; a merge walk computes
                // multiplicity max(0, #left − #right).
                let ls = self.items("monus", &left)?;
                let rs = self.items("monus", &right)?;
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < ls.len() {
                    self.step()?;
                    match (j < rs.len()).then(|| ls[i].cmp(&rs[j])) {
                        Some(std::cmp::Ordering::Greater) => j += 1,
                        Some(std::cmp::Ordering::Equal) => {
                            i += 1;
                            j += 1;
                        }
                        _ => {
                            out.push(ls[i].clone());
                            i += 1;
                        }
                    }
                }
                self.coll(out)
            }
            Expr::Unique => {
                let xs = self.items("unique", input)?;
                let mut out: Vec<Value> = Vec::new();
                match self.kind {
                    // Canonically sorted: adjacent dedup suffices.
                    CollectionKind::Set | CollectionKind::Bag => {
                        for x in xs {
                            if out.last() != Some(x) {
                                out.push(x.clone());
                            }
                        }
                    }
                    // Keep first occurrences in order.
                    CollectionKind::List => {
                        for x in xs {
                            if !out.contains(x) {
                                out.push(x.clone());
                            }
                        }
                    }
                }
                self.coll(out)
            }
            Expr::DescMap => {
                let mut out = Vec::new();
                self.descmap(input, &mut out)?;
                self.coll(out)
            }
        }
    }

    fn descmap(&mut self, tree_val: &Value, out: &mut Vec<Value>) -> Result<(), EvalError> {
        self.step()?;
        out.push(tree_val.clone());
        let children = tree_val.project("children")?.clone();
        for c in self.items("descmap", &children)?.to_vec() {
            self.descmap(&c, out)?;
        }
        Ok(())
    }

    fn eval_nest(
        &mut self,
        collect: &[cv_value::Atom],
        into: &cv_value::Atom,
        input: &Value,
    ) -> Result<Value, EvalError> {
        let xs = self.items("nest", input)?.to_vec();
        // Group rows by the key attributes (those not collected), in first
        // occurrence order; gather the collected attributes per group.
        let mut order: Vec<Value> = Vec::new();
        let mut groups: HashMap<Value, Vec<Value>> = HashMap::new();
        for x in &xs {
            self.step()?;
            let fields = x.as_tuple().ok_or_else(|| EvalError::Shape {
                op: "nest".into(),
                expected: "a collection of tuples".into(),
                got: x.to_string(),
            })?;
            let key = Value::tuple(
                fields
                    .iter()
                    .filter(|(n, _)| !collect.contains(n))
                    .map(|(n, v)| (n.clone(), v.clone())),
            );
            let collected = Value::tuple(
                fields
                    .iter()
                    .filter(|(n, _)| collect.contains(n))
                    .map(|(n, v)| (n.clone(), v.clone())),
            );
            self.alloc(fields.len() as u64 + 2)?;
            groups
                .entry(key.clone())
                .or_insert_with(|| {
                    order.push(key.clone());
                    Vec::new()
                })
                .push(collected);
        }
        let mut out = Vec::with_capacity(order.len());
        for key in order {
            let members = groups.remove(&key).expect("key recorded in order");
            let nested = Value::collection(self.kind, members);
            let mut fields: Vec<(cv_value::Atom, Value)> =
                key.as_tuple().expect("key built as tuple").to_vec();
            fields.push((into.clone(), nested));
            self.alloc(fields.len() as u64 + 1)?;
            out.push(Value::tuple(fields));
        }
        self.coll(out)
    }

    fn resolve<'v>(&self, operand: &'v Operand, ctx: &'v Value) -> Result<Value, EvalError> {
        match operand {
            Operand::Path(p) => Ok(ctx.project_path(p.iter().map(|a| a.as_str()))?.clone()),
            Operand::Const(v) => Ok(v.clone()),
        }
    }

    /// Evaluates a condition against a context value.
    pub fn eval_cond(&mut self, cond: &Cond, ctx: &Value) -> Result<bool, EvalError> {
        self.step()?;
        match cond {
            Cond::True => Ok(true),
            Cond::Eq(a, b, mode) => {
                let va = self.resolve(a, ctx)?;
                let vb = self.resolve(b, ctx)?;
                match mode {
                    EqMode::Atomic => Ok(va.atomic_eq(&vb)?),
                    EqMode::Mon => Ok(va.mon_eq(&vb)?),
                    EqMode::Deep => Ok(va.deep_eq(&vb)),
                }
            }
            Cond::In(a, b) => {
                let va = self.resolve(a, ctx)?;
                let vb = self.resolve(b, ctx)?;
                Ok(vb.items()?.contains(&va))
            }
            Cond::Subset(a, b) => {
                let va = self.resolve(a, ctx)?;
                let vb = self.resolve(b, ctx)?;
                let bs = vb.items()?;
                Ok(va.items()?.iter().all(|x| bs.contains(x)))
            }
            Cond::And(a, b) => Ok(self.eval_cond(a, ctx)? && self.eval_cond(b, ctx)?),
            Cond::Or(a, b) => Ok(self.eval_cond(a, ctx)? || self.eval_cond(b, ctx)?),
            Cond::Not(a) => Ok(!self.eval_cond(a, ctx)?),
        }
    }
}

/// Evaluates `expr` on `input` under the default budget.
pub fn eval(expr: &Expr, kind: CollectionKind, input: &Value) -> Result<Value, EvalError> {
    Evaluator::new(kind).eval(expr, input)
}

/// Evaluates `expr` on `input` with the [`crate::opt`] pass enabled:
/// derived Theorem 2.2 constructions are rewritten to built-ins first.
pub fn eval_optimized(
    expr: &Expr,
    kind: CollectionKind,
    input: &Value,
) -> Result<Value, EvalError> {
    Evaluator::new(kind).with_optimizer(true).eval(expr, input)
}

/// Evaluates with an explicit budget, returning the statistics as well.
pub fn eval_with(
    expr: &Expr,
    kind: CollectionKind,
    input: &Value,
    budget: Budget,
) -> Result<(Value, EvalStats), EvalError> {
    let mut ev = Evaluator::with_budget(kind, budget);
    let v = ev.eval(expr, input)?;
    Ok((v, ev.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operand;
    use cv_value::parse_value;

    fn a(s: &str) -> Value {
        Value::atom(s)
    }

    fn ev(e: &Expr, input: &str) -> Value {
        eval(e, CollectionKind::Set, &parse_value(input).unwrap()).unwrap()
    }

    fn ev_list(e: &Expr, input: &str) -> Value {
        eval(e, CollectionKind::List, &parse_value(input).unwrap()).unwrap()
    }

    fn ev_bag(e: &Expr, input: &str) -> Value {
        eval(e, CollectionKind::Bag, &parse_value(input).unwrap()).unwrap()
    }

    #[test]
    fn id_and_const() {
        assert_eq!(ev(&Expr::Id, "{1, 2}"), parse_value("{1, 2}").unwrap());
        assert_eq!(ev(&Expr::atom("c"), "{1}"), a("c"));
        assert_eq!(ev(&Expr::EmptyColl, "x"), Value::set([]));
        assert_eq!(ev_list(&Expr::EmptyColl, "x"), Value::list([]));
    }

    #[test]
    fn sng_wraps() {
        assert_eq!(ev(&Expr::Sng, "7"), parse_value("{7}").unwrap());
        assert_eq!(ev_list(&Expr::Sng, "7"), parse_value("[7]").unwrap());
        assert_eq!(ev_bag(&Expr::Sng, "7"), parse_value("{|7|}").unwrap());
    }

    #[test]
    fn map_applies_elementwise() {
        let e = Expr::Sng.mapped();
        assert_eq!(ev(&e, "{1, 2}"), parse_value("{{1}, {2}}").unwrap());
        // Lists preserve order.
        assert_eq!(ev_list(&e, "[2, 1]"), parse_value("[[2], [1]]").unwrap());
    }

    #[test]
    fn flatten_per_kind() {
        assert_eq!(
            ev(&Expr::Flatten, "{{1, 2}, {2, 3}}"),
            parse_value("{1, 2, 3}").unwrap()
        );
        assert_eq!(
            ev_list(&Expr::Flatten, "[[1, 2], [2]]"),
            parse_value("[1, 2, 2]").unwrap()
        );
        assert_eq!(
            ev_bag(&Expr::Flatten, "{|{|1|}, {|1|}|}"),
            parse_value("{|1, 1|}").unwrap()
        );
    }

    #[test]
    fn union_per_kind() {
        let e = Expr::konst(parse_value("{1, 2}").unwrap())
            .union(Expr::konst(parse_value("{2, 3}").unwrap()));
        assert_eq!(ev(&e, "<>"), parse_value("{1, 2, 3}").unwrap());
        let e = Expr::konst(parse_value("[1]").unwrap())
            .union(Expr::konst(parse_value("[1]").unwrap()));
        assert_eq!(ev_list(&e, "<>"), parse_value("[1, 1]").unwrap());
    }

    #[test]
    fn pairwith_distributes() {
        // Paper §2.2 operation (7).
        let e = Expr::pairwith("A");
        assert_eq!(
            ev(&e, "<A: {1, 2}, B: x>"),
            parse_value("{<A: 1, B: x>, <A: 2, B: x>}").unwrap()
        );
        // Empty collection gives the empty result.
        assert_eq!(ev(&e, "<A: {}, B: x>"), Value::set([]));
        // Attribute order of the tuple is preserved.
        let e = Expr::pairwith("B");
        assert_eq!(
            ev(&e, "<A: x, B: {1}>"),
            parse_value("{<A: x, B: 1>}").unwrap()
        );
    }

    #[test]
    fn tuple_formation_and_projection() {
        let e = Expr::mk_tuple([("A", Expr::Id), ("B", Expr::Sng)]);
        assert_eq!(ev(&e, "7"), parse_value("<A: 7, B: {7}>").unwrap());
        assert_eq!(ev(&Expr::proj("A"), "<A: 1, B: 2>"), a("1"));
        assert_eq!(ev(&Expr::proj_path("A.B"), "<A: <B: hit>>"), a("hit"));
    }

    #[test]
    fn cartesian_product_example_2_1() {
        // f × g = ⟨1: f, 2: g⟩ ∘ pairwith1 ∘ flatmap(pairwith2)
        let product = Expr::mk_tuple([("1", Expr::Id), ("2", Expr::Id)])
            .then(Expr::pairwith("1"))
            .then(Expr::flatmap(Expr::pairwith("2")));
        let got = ev(&product, "{a, b}");
        assert_eq!(
            got,
            parse_value("{<1: a, 2: a>, <1: a, 2: b>, <1: b, 2: a>, <1: b, 2: b>}").unwrap()
        );
    }

    #[test]
    fn predicates_and_truth() {
        let e = Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B")));
        assert_eq!(ev(&e, "<A: 1, B: 1>"), Value::truth(CollectionKind::Set));
        assert_eq!(ev(&e, "<A: 1, B: 2>"), Value::empty(CollectionKind::Set));
        // =atomic on non-atoms errors out.
        let r = eval(
            &e,
            CollectionKind::Set,
            &parse_value("<A: {1}, B: {1}>").unwrap(),
        );
        assert!(matches!(r, Err(EvalError::Value(_))));
    }

    #[test]
    fn deep_equality_cond() {
        let e = Expr::Pred(Cond::eq_deep(Operand::path("A"), Operand::path("B")));
        assert!(ev(&e, "<A: {1, 2}, B: {2, 1}>").is_true());
        assert!(!ev(&e, "<A: {1}, B: {1, 2}>").is_true());
    }

    #[test]
    fn select_filters() {
        let e = Expr::Select(Cond::eq_atomic(Operand::path("A"), Operand::path("B")));
        assert_eq!(
            ev(&e, "{<A: 1, B: 1>, <A: 1, B: 2>}"),
            parse_value("{<A: 1, B: 1>}").unwrap()
        );
        // Selection against a constant.
        let e = Expr::Select(Cond::eq_atomic(Operand::path("A"), Operand::atom("1")));
        assert_eq!(ev(&e, "{<A: 1>, <A: 2>}"), parse_value("{<A: 1>}").unwrap());
    }

    #[test]
    fn not_and_true_ops() {
        assert!(ev(&Expr::Not, "{}").is_true());
        assert!(!ev(&Expr::Not, "{1}").is_true());
        assert!(ev_list(&Expr::True, "[<>, <>]").is_true());
        assert_eq!(
            ev_list(&Expr::True, "[<>, <>]"),
            parse_value("[<>]").unwrap(),
            "true normalizes duplicate truth entries (§2.3)"
        );
        assert!(!ev_list(&Expr::True, "[]").is_true());
    }

    #[test]
    fn diff_and_intersect() {
        let l = Expr::proj("R");
        let r = Expr::proj("S");
        let diff = Expr::Diff(l.clone().into(), r.clone().into());
        let inter = Expr::Intersect(l.into(), r.into());
        assert_eq!(
            ev(&diff, "<R: {1, 2, 3}, S: {2}>"),
            parse_value("{1, 3}").unwrap()
        );
        assert_eq!(
            ev(&inter, "<R: {1, 2, 3}, S: {2, 4}>"),
            parse_value("{2}").unwrap()
        );
        // On lists, difference preserves order (Prop 5.13).
        assert_eq!(
            ev_list(
                &Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into()),
                "<R: [3, 1, 2, 1], S: [1]>"
            ),
            parse_value("[3, 2]").unwrap()
        );
    }

    #[test]
    fn monus_matches_paper_example() {
        // {|a,a,a,b,b,b,c,d|} monus {|a,a,b,c,e|} = {|a,b,b,d|} (§2.3)
        let e = Expr::Monus(Expr::proj("1").into(), Expr::proj("2").into());
        assert_eq!(
            ev_bag(&e, "<1: {|a, a, a, b, b, b, c, d|}, 2: {|a, a, b, c, e|}>"),
            parse_value("{|a, b, b, d|}").unwrap()
        );
        // monus is bag-only.
        let r = eval(
            &e,
            CollectionKind::Set,
            &parse_value("<1: {a}, 2: {a}>").unwrap(),
        );
        assert!(matches!(r, Err(EvalError::Unsupported { .. })));
    }

    #[test]
    fn unique_eliminates_duplicates() {
        assert_eq!(
            ev_bag(&Expr::Unique, "{|a, a, b|}"),
            parse_value("{|a, b|}").unwrap()
        );
        assert_eq!(
            ev_list(&Expr::Unique, "[b, a, b, a]"),
            parse_value("[b, a]").unwrap()
        );
    }

    #[test]
    fn nest_groups_by_remaining_attributes() {
        // nest_{C=(B)}(R) on R(AB), footnote 5.
        let e = Expr::Nest {
            collect: vec!["B".into()],
            into: "C".into(),
        };
        let got = ev(&e, "{<A: 1, B: x>, <A: 1, B: y>, <A: 2, B: x>}");
        assert_eq!(
            got,
            parse_value("{<A: 1, C: {<B: x>, <B: y>}>, <A: 2, C: {<B: x>}>}").unwrap()
        );
    }

    #[test]
    fn membership_and_subset_conditions() {
        let e = Expr::Pred(Cond::In(Operand::path("A"), Operand::path("B")));
        assert!(ev(&e, "<A: 1, B: {1, 2}>").is_true());
        assert!(!ev(&e, "<A: 3, B: {1, 2}>").is_true());
        let e = Expr::Pred(Cond::Subset(Operand::path("A"), Operand::path("B")));
        assert!(ev(&e, "<A: {1}, B: {1, 2}>").is_true());
        assert!(!ev(&e, "<A: {1, 3}, B: {1, 2}>").is_true());
    }

    #[test]
    fn boolean_conditions() {
        let t = Cond::True;
        let f = Cond::True.negate();
        let cases = [
            (t.clone().and(t.clone()), true),
            (t.clone().and(f.clone()), false),
            (f.clone().or(t.clone()), true),
            (f.clone().or(f.clone()), false),
            (Cond::iff(t.clone(), t.clone()), true),
            (Cond::iff(t, f), false),
        ];
        let unit = Value::unit();
        for (c, want) in cases {
            let mut evl = Evaluator::new(CollectionKind::Set);
            assert_eq!(evl.eval_cond(&c, &unit).unwrap(), want, "{c}");
        }
    }

    #[test]
    fn descmap_lists_subtrees_in_document_order() {
        // C(<a><b/><c/></a>) = ⟨label: a, children: [⟨label: b, ...⟩, ...]⟩
        let v = parse_value(
            "<label: a, children: [<label: b, children: []>, <label: c, children: []>]>",
        )
        .unwrap();
        let got = eval(&Expr::DescMap, CollectionKind::List, &v).unwrap();
        let items = got.items().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], v);
        assert_eq!(items[1].project("label").unwrap(), &a("b"));
        assert_eq!(items[2].project("label").unwrap(), &a("c"));
    }

    #[test]
    fn budget_stops_runaway_queries() {
        // id × id iterated: doubly exponential (Prop 4.2).
        let two = Expr::konst(parse_value("{0, 1}").unwrap());
        let product = Expr::mk_tuple([("1", Expr::Id), ("2", Expr::Id)])
            .then(Expr::pairwith("1"))
            .then(Expr::flatmap(Expr::pairwith("2")));
        let mut q = two;
        for _ in 0..8 {
            q = q.then(product.clone());
        }
        let r = eval_with(
            &q,
            CollectionKind::Set,
            &Value::unit(),
            Budget {
                max_steps: 100_000,
                max_nodes: 100_000,
            },
        );
        assert!(matches!(r, Err(EvalError::Budget { .. })));
    }

    #[test]
    fn stats_are_reported() {
        let (v, stats) =
            eval_with(&Expr::Sng, CollectionKind::Set, &a("x"), Budget::default()).unwrap();
        assert_eq!(v, Value::set([a("x")]));
        assert!(stats.steps >= 1);
        assert!(stats.nodes_allocated >= 2);
    }

    #[test]
    fn shape_errors_are_descriptive() {
        let r = eval(&Expr::Flatten, CollectionKind::Set, &a("x"));
        match r {
            Err(EvalError::Shape { op, .. }) => assert_eq!(op, "flatten"),
            other => panic!("expected shape error, got {other:?}"),
        }
        let r = eval(&Expr::proj("A"), CollectionKind::Set, &a("x"));
        assert!(matches!(r, Err(EvalError::Value(ValueError::NotATuple(_)))));
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        // A list evaluator refuses set inputs to collection ops.
        let r = eval(
            &Expr::Flatten,
            CollectionKind::List,
            &parse_value("{{1}}").unwrap(),
        );
        assert!(matches!(r, Err(EvalError::Shape { .. })));
    }
}
