//! The instruction set of the bytecode VM.
//!
//! A compiled query is a flat [`InstrSeq`] of [`OpCode`]s over three
//! stacks (lists of trees, booleans, loop frames) plus a static array of
//! local binding slots — the `CompiledXPath`/`InstrSeq`/`OpCode` shape of
//! the platynui exemplar, specialized to Figure 1's semantics. `for`/`let`
//! loops and quantifiers compile to jump-backed loops; short-circuit
//! `and`/`or` compile to conditional jumps that *keep* the deciding
//! operand on the stack.
//!
//! Budget accounting is part of the instruction set, not a side effect:
//! [`OpCode::TickQ`]/[`OpCode::TickC`] reproduce the interpreter's
//! per-node `step()` exactly (one tick per `eval`/`eval_cond` entry), and
//! the list-producing opcodes charge `items` exactly where the
//! interpreter's `emit` does — including its idiosyncrasies (`Seq`
//! re-counts the right branch, loops re-count body results). The
//! `vm_diff` suite holds the VM to byte- and counter-identical results.

use crate::ast::{EqMode, Var};
use cv_xtree::{Axis, Label, NodeTest};
use std::fmt;

/// A compile-time-resolved variable reference.
///
/// Binders (`for`/`let`/`some`/`every`) are lexically scoped and the
/// language is nonrecursive, so every bound reference resolves statically
/// to a slot indexed by scope depth. References the query does not bind
/// ([`VarRef::Free`] — `$root`, or genuinely unbound names) resolve in
/// the caller's [`Env`](crate::Env) at execution time, so unbound-variable
/// errors surface at exactly the interpreter's point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VarRef {
    /// A query-bound variable: slot index (= static scope depth of its
    /// binder) plus the surface name for disassembly.
    Local(u16, Var),
    /// Resolved in the runtime environment by name.
    Free(Var),
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarRef::Local(slot, v) => write!(f, "%{slot}({v})"),
            VarRef::Free(v) => write!(f, "free({v})"),
        }
    }
}

/// One VM instruction. Jump targets are absolute instruction indices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpCode {
    /// The `eval()` entry tick of a query node at static scope depth `d`:
    /// charge one step and record `caller depth + d` as the environment
    /// depth (matching the interpreter's `max_env_depth` bookkeeping,
    /// which only query entries update).
    TickQ(u16),
    /// The `eval_cond()` entry tick of a condition node: charge one step.
    TickC,
    /// Push the empty list (`()`).
    PushUnit,
    /// Look the variable up, charge one item, push it as a singleton list.
    Load(VarRef),
    /// Pop the children list, charge one item, push the constructed
    /// `⟨a⟩…⟨/a⟩` node as a singleton list.
    MakeElem(Label),
    /// Pop `y` then `x`; append `y`'s trees to `x` charging one item
    /// each (Figure 1 `Seq` re-counts the right branch); push the result.
    Concat,
    /// Pop the base list; for each base node scan the axis, charging one
    /// step per scanned node and one item per match; push the matches.
    AxisStep(Axis, NodeTest),
    /// Pop a list and open a loop frame over it with an empty accumulator.
    IterInit,
    /// Bind the frame's next item into `slot` and fall through, or — when
    /// exhausted — close the frame, push its accumulator, and jump to
    /// `exit`.
    IterNext {
        /// Destination slot of the loop variable.
        slot: u16,
        /// Surface name, for disassembly.
        var: Var,
        /// Jump target once the work list is exhausted.
        exit: u32,
    },
    /// Pop the body's result list, append it to the innermost frame's
    /// accumulator charging one item per tree, and jump back to `back`
    /// (the loop's `IterNext`).
    IterAccum {
        /// The loop head to continue at.
        back: u32,
    },
    /// Push a boolean constant.
    PushBool(bool),
    /// `$x = $y`: look both up (x first, matching interpreter error
    /// order), compare under the mode, push the verdict. `=mon` errors.
    CmpVars(VarRef, VarRef, EqMode),
    /// `$x = ⟨a/⟩`: look `x` up, compare against the constant leaf.
    CmpConst(VarRef, Label, EqMode),
    /// Pop a list, push whether it was nonempty (query-as-condition).
    NonEmpty,
    /// Pop a boolean, push its negation.
    NotBool,
    /// Pop a boolean; jump to the target when it was false.
    JumpIfFalse(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Short-circuit `and`: if the top boolean is false, *keep* it and
    /// jump (the right operand is never evaluated — no ticks); otherwise
    /// pop it and fall through.
    AndJump(u32),
    /// Short-circuit `or`: if the top boolean is true, keep it and jump;
    /// otherwise pop it and fall through.
    OrJump(u32),
    /// Pop a list and open a quantifier frame over it (no accumulator).
    QuantInit,
    /// Bind the frame's next item into `slot` and fall through, or — when
    /// exhausted — close the frame, push the quantifier's vacuous verdict
    /// (`some` ⇒ false, `every` ⇒ true), and jump to `exit`.
    QuantNext {
        /// Destination slot of the quantified variable.
        slot: u16,
        /// Surface name, for disassembly.
        var: Var,
        /// True for `some`, false for `every`.
        some: bool,
        /// Jump target once candidates are exhausted.
        exit: u32,
    },
    /// Pop the satisfaction verdict; short-circuit (push the decided
    /// verdict, close the frame, jump to `exit`) when it decides the
    /// quantifier, else jump back to `back` for the next candidate.
    QuantCheck {
        /// True for `some` (true decides), false for `every` (false
        /// decides).
        some: bool,
        /// The loop head (`QuantNext`) to continue at.
        back: u32,
        /// Jump target on short-circuit.
        exit: u32,
    },
}

fn mode_str(mode: EqMode) -> &'static str {
    match mode {
        EqMode::Deep => "deep",
        EqMode::Atomic => "atomic",
        EqMode::Mon => "mon",
    }
}

impl fmt::Display for OpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpCode::TickQ(d) => write!(f, "tick.q      depth={d}"),
            OpCode::TickC => f.write_str("tick.c"),
            OpCode::PushUnit => f.write_str("push.unit"),
            OpCode::Load(v) => write!(f, "load        {v}"),
            OpCode::MakeElem(a) => write!(f, "elem        <{a}>"),
            OpCode::Concat => f.write_str("concat"),
            OpCode::AxisStep(axis, test) => write!(f, "step        axis={axis} test={test}"),
            OpCode::IterInit => f.write_str("iter.init"),
            OpCode::IterNext { slot, var, exit } => {
                write!(f, "iter.next   %{slot}({var}) exit=@{exit}")
            }
            OpCode::IterAccum { back } => write!(f, "iter.accum  back=@{back}"),
            OpCode::PushBool(b) => write!(f, "push.bool   {b}"),
            OpCode::CmpVars(x, y, m) => write!(f, "cmp.var     {x}, {y} mode={}", mode_str(*m)),
            OpCode::CmpConst(x, a, m) => write!(f, "cmp.const   {x}, <{a}/> mode={}", mode_str(*m)),
            OpCode::NonEmpty => f.write_str("nonempty"),
            OpCode::NotBool => f.write_str("not"),
            OpCode::JumpIfFalse(t) => write!(f, "jump.false  @{t}"),
            OpCode::Jump(t) => write!(f, "jump        @{t}"),
            OpCode::AndJump(t) => write!(f, "and.sc      @{t}"),
            OpCode::OrJump(t) => write!(f, "or.sc       @{t}"),
            OpCode::QuantInit => f.write_str("quant.init"),
            OpCode::QuantNext {
                slot,
                var,
                some,
                exit,
            } => write!(
                f,
                "quant.next  %{slot}({var}) kind={} exit=@{exit}",
                if *some { "some" } else { "every" }
            ),
            OpCode::QuantCheck { some, back, exit } => write!(
                f,
                "quant.check kind={} back=@{back} exit=@{exit}",
                if *some { "some" } else { "every" }
            ),
        }
    }
}

/// A flat, immutable instruction sequence — the compiled form of one
/// query. Compilation is deterministic: equal queries produce equal
/// sequences (property-tested in `vm_diff`).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct InstrSeq {
    ops: Vec<OpCode>,
}

impl InstrSeq {
    pub(crate) fn from_ops(ops: Vec<OpCode>) -> InstrSeq {
        InstrSeq { ops }
    }

    /// The instructions, in execution order.
    pub fn ops(&self) -> &[OpCode] {
        &self.ops
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the sequence has no instructions (never the case for a
    /// compiled query — every node emits at least its entry tick).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl fmt::Display for InstrSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  @{i:<4} {op}")?;
        }
        Ok(())
    }
}
