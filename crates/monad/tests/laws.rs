//! Property-based tests of the algebraic laws behind monad algebra —
//! the "Cartesian category with a strong monad" structure the paper cites
//! (§2.2, after Tannen et al.): functor laws for `map`, the monad laws
//! for `sng`/`flatten`, tensorial strength for `pairwith`, and the
//! collection-specific laws of `∪`.

use cv_monad::{eval, CollectionKind, Expr};
use cv_value::Value;
use proptest::prelude::*;

fn atom() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::atom("a")),
        Just(Value::atom("b")),
        Just(Value::atom("c")),
        Just(Value::atom("d")),
    ]
}

/// A collection of atoms under the given kind.
fn coll_of_atoms(kind: CollectionKind) -> impl Strategy<Value = Value> {
    prop::collection::vec(atom(), 0..6).prop_map(move |v| Value::collection(kind, v))
}

/// A collection of collections of atoms.
fn coll2(kind: CollectionKind) -> impl Strategy<Value = Value> {
    prop::collection::vec(prop::collection::vec(atom(), 0..4), 0..4).prop_map(move |vv| {
        Value::collection(kind, vv.into_iter().map(|v| Value::collection(kind, v)))
    })
}

/// A collection of collections of collections of atoms.
fn coll3(kind: CollectionKind) -> impl Strategy<Value = Value> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(atom(), 0..3), 0..3),
        0..3,
    )
    .prop_map(move |vvv| {
        Value::collection(
            kind,
            vvv.into_iter().map(|vv| {
                Value::collection(kind, vv.into_iter().map(|v| Value::collection(kind, v)))
            }),
        )
    })
}

fn kinds() -> impl Strategy<Value = CollectionKind> {
    prop_oneof![
        Just(CollectionKind::Set),
        Just(CollectionKind::List),
        Just(CollectionKind::Bag),
    ]
}

fn run(e: &Expr, k: CollectionKind, v: &Value) -> Value {
    eval(e, k, v).unwrap_or_else(|err| panic!("{e} on {v}: {err}"))
}

proptest! {
    /// Functor identity: map(id) = id.
    #[test]
    fn map_identity((k, v) in kinds().prop_flat_map(|k| (Just(k), coll_of_atoms(k)))) {
        prop_assert_eq!(run(&Expr::Id.mapped(), k, &v), v);
    }

    /// Functor composition: map(f ∘ g) = map(f) ∘ map(g), with f = sng,
    /// g = sng.
    #[test]
    fn map_composition((k, v) in kinds().prop_flat_map(|k| (Just(k), coll_of_atoms(k)))) {
        let fused = Expr::Sng.then(Expr::Sng).mapped();
        let staged = Expr::Sng.mapped().then(Expr::Sng.mapped());
        prop_assert_eq!(run(&fused, k, &v), run(&staged, k, &v));
    }

    /// Monad left unit: sng ∘ flatten = id (on a collection, wrapping then
    /// flattening is the identity).
    #[test]
    fn monad_left_unit((k, v) in kinds().prop_flat_map(|k| (Just(k), coll_of_atoms(k)))) {
        let e = Expr::Sng.then(Expr::Flatten);
        prop_assert_eq!(run(&e, k, &v), v);
    }

    /// Monad right unit: map(sng) ∘ flatten = id.
    #[test]
    fn monad_right_unit((k, v) in kinds().prop_flat_map(|k| (Just(k), coll_of_atoms(k)))) {
        let e = Expr::Sng.mapped().then(Expr::Flatten);
        prop_assert_eq!(run(&e, k, &v), v);
    }

    /// Monad associativity: flatten ∘ flatten = map(flatten) ∘ flatten on
    /// triply nested collections.
    #[test]
    fn monad_associativity((k, v) in kinds().prop_flat_map(|k| (Just(k), coll3(k)))) {
        let outer_first = Expr::Flatten.then(Expr::Flatten);
        let inner_first = Expr::Flatten.mapped().then(Expr::Flatten);
        prop_assert_eq!(run(&outer_first, k, &v), run(&inner_first, k, &v));
    }

    /// Naturality of flatten: map(map(f)) ∘ flatten = flatten ∘ map(f),
    /// f = sng.
    #[test]
    fn flatten_naturality((k, v) in kinds().prop_flat_map(|k| (Just(k), coll2(k)))) {
        let lhs = Expr::Sng.mapped().mapped().then(Expr::Flatten);
        let rhs = Expr::Flatten.then(Expr::Sng.mapped());
        prop_assert_eq!(run(&lhs, k, &v), run(&rhs, k, &v));
    }

    /// Union laws: associativity for all kinds; commutativity and
    /// idempotence for sets.
    #[test]
    fn union_laws(
        (k, a, b, c) in kinds().prop_flat_map(|k| {
            (Just(k), coll_of_atoms(k), coll_of_atoms(k), coll_of_atoms(k))
        })
    ) {
        let input = Value::tuple([("A", a.clone()), ("B", b.clone()), ("C", c)]);
        let pa = || Expr::proj("A");
        let pb = || Expr::proj("B");
        let pc = || Expr::proj("C");
        let left = pa().union(pb()).union(pc());
        let right = pa().union(pb().union(pc()));
        prop_assert_eq!(run(&left, k, &input), run(&right, k, &input));
        if k == CollectionKind::Set {
            prop_assert_eq!(
                run(&pa().union(pb()), k, &input),
                run(&pb().union(pa()), k, &input)
            );
            prop_assert_eq!(run(&pa().union(pa()), k, &input), a);
        }
        if k == CollectionKind::Bag {
            // Bags: additive union is commutative but not idempotent.
            prop_assert_eq!(
                run(&pa().union(pb()), k, &input),
                run(&pb().union(pa()), k, &input)
            );
        }
    }

    /// Tensorial strength: pairwith distributes the collection —
    /// cardinality |pairwith_A(t)| = |t.A| and every member keeps the
    /// other attributes intact.
    #[test]
    fn pairwith_strength(
        (k, xs, y) in kinds().prop_flat_map(|k| (Just(k), coll_of_atoms(k), atom()))
    ) {
        let t = Value::tuple([("A", xs.clone()), ("B", y.clone())]);
        let out = run(&Expr::pairwith("A"), k, &t);
        let items = out.items().unwrap();
        if k != CollectionKind::Set {
            prop_assert_eq!(items.len(), xs.items().unwrap().len());
        }
        for m in items {
            prop_assert_eq!(m.project("B").unwrap(), &y);
            prop_assert!(xs.items().unwrap().contains(m.project("A").unwrap()));
        }
    }

    /// The Boolean structure: `not` and `true` are complementary, and
    /// `true` is idempotent normalization.
    #[test]
    fn boolean_ops((k, v) in kinds().prop_flat_map(|k| (Just(k), coll_of_atoms(k)))) {
        let t = run(&Expr::True, k, &v);
        let n = run(&Expr::Not, k, &v);
        prop_assert_ne!(t.is_true(), n.is_true());
        prop_assert_eq!(run(&Expr::True.then(Expr::True), k, &v), t);
    }

    /// unique ∘ unique = unique, and on sets unique = id.
    #[test]
    fn unique_idempotent((k, v) in kinds().prop_flat_map(|k| (Just(k), coll_of_atoms(k)))) {
        let once = run(&Expr::Unique, k, &v);
        let twice = run(&Expr::Unique.then(Expr::Unique), k, &v);
        prop_assert_eq!(&once, &twice);
        if k == CollectionKind::Set {
            prop_assert_eq!(once, v);
        }
    }

    /// Bag monus laws: b monus ∅ = b, b monus b = ∅,
    /// (additive union) a∪b monus b = a.
    #[test]
    fn monus_laws(a in coll_of_atoms(CollectionKind::Bag),
                  b in coll_of_atoms(CollectionKind::Bag)) {
        let k = CollectionKind::Bag;
        let input = Value::tuple([("A", a.clone()), ("B", b.clone())]);
        let pa = || Expr::proj("A");
        let pb = || Expr::proj("B");
        let e = Expr::Monus(pa().into(), Expr::EmptyColl.into());
        prop_assert_eq!(run(&e, k, &input), a.clone());
        let e = Expr::Monus(pa().into(), pa().into());
        prop_assert_eq!(run(&e, k, &input), Value::empty(k));
        let e = Expr::Monus(Rc::new(pa().union(pb())), pb().into());
        prop_assert_eq!(run(&e, k, &input), a);
    }

    /// Difference/intersection partition sets: (A − B) ∪ (A ∩ B) = A.
    #[test]
    fn diff_intersect_partition(a in coll_of_atoms(CollectionKind::Set),
                                b in coll_of_atoms(CollectionKind::Set)) {
        let k = CollectionKind::Set;
        let input = Value::tuple([("A", a.clone()), ("B", b)]);
        let pa = || Expr::proj("A");
        let pb = || Expr::proj("B");
        let e = Expr::Diff(pa().into(), pb().into())
            .union(Expr::Intersect(pa().into(), pb().into()));
        prop_assert_eq!(run(&e, k, &input), a);
    }
}

use std::rc::Rc;
