//! E9 (Thm 6.5/6.6): fixed query, growing data — near-linear scaling of
//! the tree evaluator (the positional evaluator is benchmarked at small
//! sizes; its predicates are deliberately naive scans).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xq_bench::{bib_document, books_query};

fn bench(c: &mut Criterion) {
    let q = books_query();
    let mut g = c.benchmark_group("data_complexity");
    g.sample_size(10);
    for n in [10usize, 100, 1000] {
        let doc = bib_document(n);
        g.bench_with_input(BenchmarkId::new("tree_eval", n), &doc, |b, doc| {
            b.iter(|| xq_core::eval_query(&q, doc).unwrap().len())
        });
    }
    for n in [2usize, 4, 8] {
        let doc = bib_document(n);
        g.bench_with_input(BenchmarkId::new("positional_eval", n), &doc, |b, doc| {
            b.iter(|| xq_fom::eval_positional(&q, doc, u64::MAX).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
