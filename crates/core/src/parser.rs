//! A recursive-descent parser for the Core XQuery surface syntax used in
//! the paper's examples.
//!
//! ```text
//! query  ::= item ("," item)*
//! item   ::= "for" "$x" "in" item ("where" cond)? "return" item
//!          | "let" "$x" ":=" item "return" item
//!          | "if" "(" cond ")" "then" item ("else" item)?
//!          | element | "()" | "(" query ")" | path
//! element::= "<a/>" | "<a>" ( "{" query "}" | element )* "</a>"
//! path   ::= "$x" step*
//! step   ::= "/" ν | "//" ν | "/axis::ν"      ν ::= tag | "*"
//! cond   ::= disjunction of conjunctions of:
//!            "not" "(" cond ")" | "some"/"every" "$x" "in" item
//!            "satisfies" cond | "true" | "(" cond ")"
//!          | operand (eqop operand)? — absent eqop means query-as-condition
//! eqop   ::= "=" | "=deep" (deep) | "eq" | "=atomic" (atomic)
//! ```
//!
//! Sugar handled here rather than in the AST:
//!
//! * `where` clauses become `if` in the `return` body;
//! * `else` branches become `(if φ then α, if not(φ) then β)`;
//! * path operands in equalities become `some`-nesting, exactly as in the
//!   Fig 3 `XQ(Ai = Aj)` translation:
//!   `$x/a = $y/b` ⇒ `some $u in $x/a satisfies some $v in $y/b
//!   satisfies $u = $v`.

use crate::ast::{Cond, EqMode, Query, Var};
use cv_xtree::{Axis, NodeTest};

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for QueryParseError {}

/// Parses a query in the surface syntax.
pub fn parse_query(src: &str) -> Result<Query, QueryParseError> {
    let mut p = Parser {
        src,
        pos: 0,
        fresh: 0,
    };
    let q = p.query()?;
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    fresh: usize,
}

/// An equality operand before desugaring.
enum EqOperand {
    Var(Var),
    Path(Query),
    ConstLeaf(String),
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            message: m.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            if let Some(c) = r.chars().next() {
                if c.is_whitespace() {
                    self.pos += c.len_utf8();
                    continue;
                }
            }
            // XQuery comments: (: ... :)
            if r.starts_with("(:") {
                if let Some(end) = r.find(":)") {
                    self.pos += end + 2;
                    continue;
                }
            }
            break;
        }
    }

    fn peek_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        self.rest().starts_with(s)
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Keyword: like `eat` but must not be followed by an identifier char.
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if let Some(after) = r.strip_prefix(kw) {
            let boundary = after
                .chars()
                .next()
                .map(|c| !c.is_ascii_alphanumeric() && c != '_' && c != '-')
                .unwrap_or(true);
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn expect(&mut self, s: &str) -> Result<(), QueryParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let c = bytes[self.pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        (self.pos > start).then(|| self.src[start..self.pos].to_string())
    }

    fn variable(&mut self) -> Result<Var, QueryParseError> {
        self.skip_ws();
        if !self.eat("$") {
            return Err(self.err("expected a variable"));
        }
        let name = self
            .ident()
            .ok_or_else(|| self.err("expected a variable name"))?;
        Ok(Var::new(name))
    }

    // ----- queries --------------------------------------------------------

    fn query(&mut self) -> Result<Query, QueryParseError> {
        let mut items = vec![self.item()?];
        while self.eat(",") {
            items.push(self.item()?);
        }
        Ok(Query::seq(items))
    }

    fn item(&mut self) -> Result<Query, QueryParseError> {
        self.skip_ws();
        if self.eat_kw("for") {
            let v = self.variable()?;
            if !self.eat_kw("in") {
                return Err(self.err("expected 'in'"));
            }
            let source = self.item()?;
            let where_cond = if self.eat_kw("where") {
                Some(self.cond()?)
            } else {
                None
            };
            if !self.eat_kw("return") {
                return Err(self.err("expected 'return'"));
            }
            let body = self.item()?;
            let body = match where_cond {
                Some(c) => Query::if_then(c, body),
                None => body,
            };
            return Ok(Query::for_in(v, source, body));
        }
        if self.eat_kw("let") {
            let v = self.variable()?;
            self.expect(":=")?;
            let bound = self.item()?;
            if !self.eat_kw("return") {
                return Err(self.err("expected 'return'"));
            }
            let body = self.item()?;
            return Ok(Query::let_in(v, bound, body));
        }
        if self.eat_kw("if") {
            let cond = if self.eat("(") {
                let c = self.cond()?;
                self.expect(")")?;
                c
            } else {
                self.cond()?
            };
            if !self.eat_kw("then") {
                return Err(self.err("expected 'then'"));
            }
            let then = self.item()?;
            if self.eat_kw("else") {
                let els = self.item()?;
                // if φ then α else β := (if φ then α, if not(φ) then β)
                return Ok(Query::seq([
                    Query::if_then(cond.clone(), then),
                    Query::if_then(cond.negate(), els),
                ]));
            }
            return Ok(Query::if_then(cond, then));
        }
        if self.peek_str("<") {
            return self.element();
        }
        if self.eat("(") {
            if self.eat(")") {
                return Ok(Query::Empty);
            }
            let q = self.query()?;
            self.expect(")")?;
            return Ok(self.steps(q)?);
        }
        if self.peek_str("$") {
            let v = self.variable()?;
            return self.steps(Query::Var(v));
        }
        Err(self.err("expected a query"))
    }

    /// Parses trailing `/ν`, `//ν`, `/axis::ν` steps after a base query.
    fn steps(&mut self, mut base: Query) -> Result<Query, QueryParseError> {
        loop {
            if self.eat("//") {
                let nt = self.node_test()?;
                base = Query::step(base, Axis::Descendant, nt);
            } else if self.peek_str("/") {
                self.expect("/")?;
                // Optional axis prefix.
                let save = self.pos;
                let axis = if let Some(word) = self.ident() {
                    if self.eat("::") {
                        Some(match word.as_str() {
                            "child" => Axis::Child,
                            "descendant" => Axis::Descendant,
                            "self" => Axis::SelfAxis,
                            "dos" | "descendant-or-self" => Axis::DescendantOrSelf,
                            other => return Err(self.err(format!("unknown axis {other:?}"))),
                        })
                    } else {
                        // It was a bare node test; rewind.
                        self.pos = save;
                        None
                    }
                } else {
                    None
                };
                let axis = axis.unwrap_or(Axis::Child);
                let nt = self.node_test()?;
                base = Query::step(base, axis, nt);
            } else {
                return Ok(base);
            }
        }
    }

    fn node_test(&mut self) -> Result<NodeTest, QueryParseError> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(NodeTest::Wildcard);
        }
        let name = self
            .ident()
            .ok_or_else(|| self.err("expected a node test"))?;
        Ok(NodeTest::tag(name))
    }

    fn element(&mut self) -> Result<Query, QueryParseError> {
        self.expect("<")?;
        let tag = self
            .ident()
            .ok_or_else(|| self.err("expected a tag name"))?;
        if self.eat("/>") {
            return Ok(Query::leaf(tag));
        }
        self.expect(">")?;
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            if self.peek_str("</") {
                break;
            }
            if self.eat("{") {
                let q = self.query()?;
                self.expect("}")?;
                parts.push(q);
            } else if self.peek_str("<") {
                parts.push(self.element()?);
            } else {
                return Err(self.err("expected '{', an element, or a closing tag"));
            }
        }
        self.expect("</")?;
        let close = self
            .ident()
            .ok_or_else(|| self.err("expected a tag name"))?;
        if close != tag {
            return Err(self.err(format!("mismatched tags <{tag}> and </{close}>")));
        }
        self.expect(">")?;
        Ok(Query::elem(tag, Query::seq(parts)))
    }

    // ----- conditions -------------------------------------------------------

    fn cond(&mut self) -> Result<Cond, QueryParseError> {
        let mut c = self.cond_and()?;
        while self.eat_kw("or") {
            let rhs = self.cond_and()?;
            c = c.or(rhs);
        }
        Ok(c)
    }

    fn cond_and(&mut self) -> Result<Cond, QueryParseError> {
        let mut c = self.cond_atom()?;
        while self.eat_kw("and") {
            let rhs = self.cond_atom()?;
            c = c.and(rhs);
        }
        Ok(c)
    }

    fn cond_atom(&mut self) -> Result<Cond, QueryParseError> {
        self.skip_ws();
        if self.eat_kw("not") {
            self.expect("(")?;
            let c = self.cond()?;
            self.expect(")")?;
            return Ok(c.negate());
        }
        if self.eat_kw("some") {
            let v = self.variable()?;
            if !self.eat_kw("in") {
                return Err(self.err("expected 'in'"));
            }
            let src = self.item()?;
            if !self.eat_kw("satisfies") {
                return Err(self.err("expected 'satisfies'"));
            }
            let sat = self.cond_atom()?;
            return Ok(Cond::some(v, src, sat));
        }
        if self.eat_kw("every") {
            let v = self.variable()?;
            if !self.eat_kw("in") {
                return Err(self.err("expected 'in'"));
            }
            let src = self.item()?;
            if !self.eat_kw("satisfies") {
                return Err(self.err("expected 'satisfies'"));
            }
            let sat = self.cond_atom()?;
            return Ok(Cond::every(v, src, sat));
        }
        if self.eat_kw("true") {
            let _ = self.eat("()");
            return Ok(Cond::True);
        }
        // Query-only constructs used as conditions (XQ∼ style).
        if self.peek_str("for ")
            || self.peek_str("for\t")
            || self.peek_str("for\n")
            || self.peek_str("if ")
            || self.peek_str("if(")
            || self.peek_str("let ")
        {
            return Ok(Cond::query(self.item()?));
        }
        if self.eat("(") {
            if self.eat(")") {
                // The empty sequence as a (false) condition.
                return Ok(Cond::query(Query::Empty));
            }
            // Could be a parenthesized condition or a parenthesized query;
            // try the condition reading first and backtrack on failure —
            // or when a step follows (then it was a query after all).
            let save = self.pos;
            if let Ok(c) = self.cond() {
                if self.eat(")") && !self.peek_str("/") {
                    return Ok(c);
                }
            }
            self.pos = save;
            let q = self.query()?;
            self.expect(")")?;
            let q = self.steps(q)?;
            return Ok(Cond::query(q));
        }
        // An element: either a ⟨a/⟩ equality operand or a query condition.
        if self.peek_str("<") {
            let el = self.element()?;
            let is_leaf = matches!(&el, Query::Elem(_, b) if matches!(&**b, Query::Empty));
            let has_eq = self.peek_str("=") || self.peek_str("eq ");
            if !(is_leaf && has_eq) {
                return Ok(Cond::query(el));
            }
            // Fall through to the equality machinery with the leaf operand.
            let Query::Elem(tag, _) = el else {
                unreachable!()
            };
            let mode = if self.eat("=deep") {
                EqMode::Deep
            } else if self.eat("=atomic") {
                EqMode::Atomic
            } else if self.eat("=") {
                EqMode::Deep
            } else {
                self.expect("eq")?;
                EqMode::Atomic
            };
            let rhs = self.eq_operand()?;
            return Ok(self.desugar_eq(EqOperand::ConstLeaf(tag.as_str().to_string()), rhs, mode));
        }
        // operand (= operand)?
        let lhs = self.eq_operand()?;
        let mode = if self.eat("=deep") {
            Some(EqMode::Deep)
        } else if self.eat("=atomic") {
            Some(EqMode::Atomic)
        } else if self.eat("=") {
            Some(EqMode::Deep)
        } else if self.eat_kw("eq") {
            Some(EqMode::Atomic)
        } else {
            None
        };
        match mode {
            None => match lhs {
                EqOperand::Var(v) => Ok(Cond::query(Query::Var(v))),
                EqOperand::Path(q) => Ok(Cond::query(q)),
                EqOperand::ConstLeaf(_) => Err(self.err("an element is not a condition")),
            },
            Some(mode) => {
                let rhs = self.eq_operand()?;
                Ok(self.desugar_eq(lhs, rhs, mode))
            }
        }
    }

    fn eq_operand(&mut self) -> Result<EqOperand, QueryParseError> {
        self.skip_ws();
        if self.peek_str("<") {
            let save = self.pos;
            let el = self.element()?;
            return match el {
                Query::Elem(tag, body) if matches!(*body, Query::Empty) => {
                    Ok(EqOperand::ConstLeaf(tag.as_str().to_string()))
                }
                _ => {
                    self.pos = save;
                    Err(self.err("only empty elements ⟨a/⟩ may appear in equalities"))
                }
            };
        }
        let v = self.variable()?;
        let q = self.steps(Query::Var(v.clone()))?;
        match q {
            Query::Var(v) => Ok(EqOperand::Var(v)),
            path => Ok(EqOperand::Path(path)),
        }
    }

    /// Builds the equality condition, `some`-wrapping path operands.
    fn desugar_eq(&mut self, lhs: EqOperand, rhs: EqOperand, mode: EqMode) -> Cond {
        // Normalize to var-or-const by binding paths with fresh variables.
        let (lv, lbind) = self.operand_var(lhs);
        let (rv, rbind) = self.operand_var(rhs);
        let core = match (lv, rv) {
            (OpVar::Var(x), OpVar::Var(y)) => Cond::VarEq(x, y, mode),
            (OpVar::Var(x), OpVar::Leaf(a)) | (OpVar::Leaf(a), OpVar::Var(x)) => {
                Cond::ConstEq(x, a.as_str().into(), mode)
            }
            (OpVar::Leaf(a), OpVar::Leaf(b)) => {
                if a == b {
                    Cond::True
                } else {
                    Cond::True.negate()
                }
            }
        };
        let core = match rbind {
            Some((v, src)) => Cond::some(v, src, core),
            None => core,
        };
        match lbind {
            Some((v, src)) => Cond::some(v, src, core),
            None => core,
        }
    }

    fn operand_var(&mut self, op: EqOperand) -> (OpVar, Option<(Var, Query)>) {
        match op {
            EqOperand::Var(v) => (OpVar::Var(v), None),
            EqOperand::ConstLeaf(a) => (OpVar::Leaf(a), None),
            EqOperand::Path(q) => {
                self.fresh += 1;
                let v = Var::fresh(self.fresh);
                (OpVar::Var(v.clone()), Some((v, q)))
            }
        }
    }
}

enum OpVar {
    Var(Var),
    Leaf(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{boolean_result, eval_query};
    use cv_xtree::parse_tree;

    fn p(src: &str) -> Query {
        parse_query(src).unwrap_or_else(|e| panic!("{e}\nsource: {src}"))
    }

    #[test]
    fn parses_simple_forms() {
        assert_eq!(p("()"), Query::Empty);
        assert_eq!(p("$x"), Query::var("x"));
        assert_eq!(p("<a/>"), Query::leaf("a"));
        assert_eq!(p("<a></a>"), Query::leaf("a"));
        assert_eq!(p("$x/b"), Query::child(Query::var("x"), "b"));
        assert_eq!(p("$x/*"), Query::child_any(Query::var("x")));
    }

    #[test]
    fn parses_axes() {
        assert_eq!(
            p("$x//b"),
            Query::step(Query::var("x"), Axis::Descendant, NodeTest::tag("b"))
        );
        assert_eq!(
            p("$x/descendant::b"),
            Query::step(Query::var("x"), Axis::Descendant, NodeTest::tag("b"))
        );
        assert_eq!(
            p("$x/self::*"),
            Query::step(Query::var("x"), Axis::SelfAxis, NodeTest::Wildcard)
        );
        assert_eq!(
            p("$x/child::b/c"),
            Query::child(Query::child(Query::var("x"), "b"), "c")
        );
    }

    #[test]
    fn parses_for_if_let() {
        let q = p("for $x in $root/a return <hit>{$x}</hit>");
        assert!(matches!(q, Query::For(_, _, _)));
        let q = p("if ($x) then <y/>");
        assert!(matches!(q, Query::If(_, _)));
        let q = p("let $x := <a/> return $x");
        assert!(matches!(q, Query::Let(_, _, _)));
    }

    #[test]
    fn parses_element_content_with_braces() {
        let q = p("<out>{ $x }{ $y }</out>");
        match q {
            Query::Elem(tag, body) => {
                assert_eq!(tag.as_str(), "out");
                assert!(matches!(&*body, Query::Seq(_, _)));
            }
            other => panic!("expected element, got {other}"),
        }
        // Nested literal elements.
        let q = p("<out><inner/></out>");
        assert_eq!(q, Query::elem("out", Query::leaf("inner")));
    }

    #[test]
    fn equality_modes_in_conditions() {
        let q = p("if ($x = $y) then <t/>");
        match q {
            Query::If(c, _) => assert_eq!(*c, Cond::var_eq_deep("x", "y")),
            other => panic!("{other}"),
        }
        let q = p("if ($x =atomic $y) then <t/>");
        match q {
            Query::If(c, _) => assert_eq!(*c, Cond::var_eq_atomic("x", "y")),
            other => panic!("{other}"),
        }
        let q = p("if ($x eq $y) then <t/>");
        match q {
            Query::If(c, _) => assert_eq!(*c, Cond::var_eq_atomic("x", "y")),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn const_equality() {
        let q = p("if ($x =atomic <true/>) then <t/>");
        match q {
            Query::If(c, _) => {
                assert_eq!(*c, Cond::ConstEq("x".into(), "true".into(), EqMode::Atomic))
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn path_equality_desugars_to_some() {
        let q = p("if ($x/year = $y/year) then <t/>");
        match q {
            Query::If(c, _) => assert!(matches!(&*c, Cond::Some(_, _, _))),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn where_clause_desugars_to_if() {
        let a = p("for $x in $root/a where $x = $x return $x");
        let b = p("for $x in $root/a return if ($x = $x) then $x");
        assert_eq!(a, b);
    }

    #[test]
    fn else_desugars_to_negation() {
        let q = p("if (true) then <a/> else <b/>");
        assert!(matches!(q, Query::Seq(_, _)));
        let t = parse_tree("<r/>").unwrap();
        let out = eval_query(&q.desugar(&mut 0), &t).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].label().as_str(), "a");
    }

    #[test]
    fn boolean_connectives() {
        let q = p("if (true and not(true)) then <t/>");
        let t = parse_tree("<r/>").unwrap();
        assert!(eval_query(&q, &t).unwrap().is_empty());
        let q = p("if (true or not(true)) then <t/>");
        assert_eq!(eval_query(&q, &t).unwrap().len(), 1);
    }

    #[test]
    fn parses_the_intro_books_query() {
        // The paper's flagship composition-free example (with year as a
        // leaf-tag comparison in our text-free data model).
        let q = p(r#"
            <books_2004>
            { for $x in $root/bib/book
              where some $w in $x/year satisfies $w/y2004
              return
              <book>
                {$x/title}
                <authors>
                  { for $y in $x/author return
                    <author> {$y/lastname} </author> }
                </authors>
              </book> }
            </books_2004>
        "#);
        let doc = parse_tree(
            "<bib>\
               <book><year><y2004/></year><title><t1/></title>\
                 <author><lastname><smith/></lastname></author>\
                 <author><lastname><jones/></lastname></author></book>\
               <book><year><y1999/></year><title><t2/></title></book>\
             </bib>",
        )
        .unwrap();
        // $root/bib is a child step from root; our root *is* bib, so use a
        // wrapper document.
        let wrapper = cv_xtree::Tree::node("doc", [doc]);
        let out = eval_query(&q, &wrapper).unwrap();
        assert_eq!(out.len(), 1);
        let result = &out[0];
        assert_eq!(result.label().as_str(), "books_2004");
        assert_eq!(result.children().len(), 1, "only the 2004 book");
        let book = &result.children()[0];
        assert_eq!(book.children().len(), 2); // title + authors
        let authors = &book.children()[1];
        assert_eq!(authors.children().len(), 2);
        assert!(boolean_result(&q, &wrapper).unwrap());
    }

    #[test]
    fn parses_qbf_style_query_from_example_7_5() {
        let q = p(r#"
          <a>
          { if (every $x in $root/* satisfies
               (some $y in $root/* satisfies
                 ((not($x =atomic <true/>) or $y =atomic <true/>) and
                  ($x =atomic <true/> or not($y =atomic <true/>)))))
            then <yes/> }
          </a>
        "#);
        let t = parse_tree("<r><true/><false/></r>").unwrap();
        assert!(
            boolean_result(&q, &t).unwrap(),
            "the QBF of Ex. 7.5 is true"
        );
    }

    #[test]
    fn comments_are_skipped() {
        let q = p("(: a comment :) $x (: another :)");
        assert_eq!(q, Query::var("x"));
    }

    #[test]
    fn comma_sequences() {
        let q = p("(<a/>, <b/>, $x)");
        let t = parse_tree("<r/>").unwrap();
        let out = eval_query(&q, &cv_xtree::Tree::node("root", [t])).unwrap_err();
        // $x is unbound — error proves all three items parsed.
        assert!(matches!(out, crate::semantics::XqError::UnboundVariable(_)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("").is_err());
        assert!(parse_query("for $x return $x").is_err());
        assert!(parse_query("<a>").is_err());
        assert!(parse_query("<a></b>").is_err());
        assert!(parse_query("if $x then").is_err());
        assert!(parse_query("$x/unknownaxis::a").is_err());
    }

    #[test]
    fn steps_on_parenthesized_queries() {
        // Used by the §7.2 rewriting experiments: (⟨a⟩…⟨/a⟩)/χ::ν.
        let q = p("(<a><b/></a>)/b");
        assert!(matches!(q, Query::Step(_, _, _)));
        let t = parse_tree("<r/>").unwrap();
        let out = eval_query(&q, &t).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].label().as_str(), "b");
    }
}
