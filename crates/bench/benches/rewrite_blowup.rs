//! E10 (Thm 7.9): composition elimination and its exponential size cost.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xq_bench::let_chain_query;
use xq_rewrite::eliminate_composition;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rewrite_blowup");
    g.sample_size(10);
    for depth in [2usize, 4, 6] {
        let q = let_chain_query(depth);
        g.bench_with_input(BenchmarkId::new("eliminate", depth), &q, |b, q| {
            b.iter(|| eliminate_composition(q, 50_000_000).unwrap().0.size())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
