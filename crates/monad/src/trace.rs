//! Rewrite traces shared by the optimizer ([`crate::opt`]) and the §7.2
//! composition-elimination rewriter (`xq_rewrite`).
//!
//! Both passes are term rewriting systems whose *derivations* matter as
//! much as their results (Figure 10 reproduces one verbatim; the optimizer
//! golden tests pin one per rule), so rule applications are recorded as
//! [`TraceStep`]s: the rule's name plus a rendering of the redex it fired
//! on.

/// A rule application record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The rule applied. The composition eliminator uses the paper's names
    /// (`"elim.let"`, `"Lem.7.8"`, `"Fig.9(1)"` … `"Fig.9(6)"`,
    /// `"subst-eq"`, `"simplify-self"`); the optimizer uses the catalog of
    /// [`crate::opt`] (`"diff-2.4"`, `"intersect-2.3"`, `"elim-id"`, …).
    pub rule: &'static str,
    /// Rendering of the redex that was rewritten.
    pub redex: String,
}

/// The sequence of rule applications performed by a rewriting pass.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Steps in application order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Records one rule application. The redex rendering is capped at
    /// ~160 bytes (on a UTF-8 character boundary — atom and constant text
    /// is arbitrary) — rewriting inputs can blow up exponentially.
    pub fn log(&mut self, rule: &'static str, redex: &impl std::fmt::Display) {
        let mut s = redex.to_string();
        if s.len() > 160 {
            let mut cut = 160;
            while !s.is_char_boundary(cut) {
                cut -= 1;
            }
            s.truncate(cut);
        }
        self.steps.push(TraceStep { rule, redex: s });
    }

    /// Rules applied, in order.
    pub fn rules(&self) -> Vec<&'static str> {
        self.steps.iter().map(|s| s.rule).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_truncates_on_char_boundaries() {
        let mut t = Trace::default();
        // A two-byte char straddling the 160-byte cap must not panic.
        t.log("probe", &format!("{}é tail", "x".repeat(159)));
        assert_eq!(t.steps[0].redex.len(), 159);
        t.log("probe", &"y".repeat(200));
        assert_eq!(t.steps[1].redex.len(), 160);
        t.log("short", &"ok");
        assert_eq!(t.steps[2].redex, "ok");
    }
}
