//! E6 (Prop 7.6/7.7): 3-colorability via witness search vs nested loops.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cv_xtree::{ArenaDoc, TreeGen};
use xq_compfree::{witness_boolean, NestedLoopEngine};
use xq_reductions::{color_tree, random_graph, three_col_query};

fn bench(c: &mut Criterion) {
    let tree = color_tree();
    let doc = ArenaDoc::from_tree(&tree);
    let mut g = c.benchmark_group("three_col");
    g.sample_size(10);
    for v in [4usize, 6, 8] {
        let graph = random_graph(&mut TreeGen::new(11), v, v + 2);
        let q = three_col_query(&graph);
        g.bench_with_input(BenchmarkId::new("witness_search", v), &q, |b, q| {
            b.iter(|| witness_boolean(q, &tree).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("nested_loop", v), &q, |b, q| {
            b.iter(|| NestedLoopEngine::new(&doc).boolean(q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
