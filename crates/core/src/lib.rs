//! Core XQuery (`XQ`) — the paper's primary contribution (Koch, PODS 2005,
//! §3): a recursion-free fragment of XQuery that captures monad algebra on
//! lists up to representation issues.
//!
//! * [`ast`] — the abstract syntax (core grammar + Prop 3.1 derived forms);
//! * [`doc`] — document loading for the suites, with the `XQ_ARENA`
//!   switch between the `Rc` tree and the arena document store;
//! * [`parser`] — a parser for the surface syntax used in the paper's
//!   examples;
//! * [`semantics`] — the Figure 1 denotational semantics (environments of
//!   trees → lists of trees), with resource budgets;
//! * [`plan`] — the parallel planner: a recursive analysis producing a
//!   [`ParPlan`] of shardable loops (`Seq` branches, flattened `for`-nests,
//!   hoisted `let` sources, predicate-filtered sources);
//! * [`par`] — data-parallel evaluation over the arena store: every loop
//!   the planner proves shardable split across threads with an
//!   order-preserving interned-token splice merge;
//! * [`service`] — a supervised worker pool batching many (query,
//!   document) pairs, the serve-heavy-traffic shape, with per-request
//!   panic containment;
//! * [`fault`] — seeded, deterministic fault injection (named fault
//!   points, `XQ_FAULT_SPEC`/`XQ_FAULT_SEED`) for chaos-testing the
//!   serving stack;
//! * [`vm`] — the bytecode VM: queries lower once to a flat instruction
//!   sequence (static slots, baked planner hint and optimizer verdict)
//!   held in a process-wide lock-striped plan cache, executed on a stack
//!   machine byte-identical to the Figure 1 interpreter;
//! * [`fragments`] — feature analysis and the composition-free fragments
//!   `XQ⁻`/`XQ∼` of §7, with the Prop 7.1 interconversions;
//! * [`translate`] — the Figure 2/3 translations to and from monad algebra
//!   on lists and the `C`/`C′`/`T` data encodings (Lemmas 3.2 and 3.3).

pub mod ast;
pub mod doc;
pub mod fault;
pub mod fragments;
pub mod par;
pub mod parser;
pub mod plan;
pub mod semantics;
pub mod service;
pub mod translate;
pub mod vm;

pub use ast::{cond_as_query, Cond, EqMode, Query, Var};
pub use doc::{load_document, DocRepr};
pub use fault::{FaultPoint, FaultSpecError, Faults};
pub use fragments::{
    free_vars, is_composition_free, is_strict_core, is_xq_tilde, to_composition_free, to_xq_tilde,
    Features,
};
pub use par::{eval_compiled_par, eval_query_par, outer_for_split, resolve_node_source, ParStats};
pub use parser::{parse_query, QueryParseError};
pub use plan::{ParPlan, ShardPlan};
pub use semantics::{
    boolean_result, eval_cond_with, eval_query, eval_with, Budget, CancelFlag, Env, EvalStats,
    Threads, XqError,
};
pub use service::{CompletionSink, PoolConfig, QueryService, Request, ServeMode, ServiceError};
pub use translate::{
    c_forest, c_tree, c_tree_inverse, ma_env, ma_invariant_holds, ma_query, ma_query_optimized,
    t_value, t_value_inverse, value_query, xq_invariant_holds, xq_of_ma, TranslateError,
};
pub use vm::{compile_query, compile_query_text, CompiledPlan, InstrSeq, OpCode, PlanCache};
