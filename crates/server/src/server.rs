//! The TCP front door: accept loop, per-connection protocol state, and
//! the bridge from wire frames to [`QueryService`] batches.
//!
//! ## Connection anatomy
//!
//! Each accepted connection gets **two** threads:
//!
//! * The **reader** owns the socket's read half. It parses one frame per
//!   line, answers `hello`/`cancel`/malformed frames immediately, and
//!   hands well-formed `query` frames to the eval thread over an
//!   in-process channel. Crucially it also *registers the request's
//!   [`CancelFlag`] at frame-parse time* — before the query is even
//!   queued — so a `cancel` that races ahead of its query's evaluation
//!   still finds a flag to set, and a disconnect cancels work that is
//!   still waiting in the pool queue.
//! * The **eval** thread drains that channel greedily — up to
//!   [`ServerConfig::batch_max`] queued frames per round — and submits
//!   them as one [`QueryService::try_run_batch`] call, reusing the
//!   pool's batch path (admission control included). Responses go back
//!   in submission order, so a pipelining client reads answers in the
//!   order it sent queries.
//!
//! Both threads write through one mutex-held writer; every response is a
//! single line, flushed, so frames never interleave mid-line.
//!
//! ## Cancellation and deadlines
//!
//! A `query` frame's [`Budget`] starts from the connection tenant's
//! quota (or the server default), gains a fresh [`CancelFlag`], and — if
//! the frame carries `deadline_ms` — an absolute deadline that many
//! milliseconds out. Both are observed at every budget tick inside the
//! interpreter and the VM, so an expired deadline or a set flag aborts
//! mid-evaluation within one tick, deterministically
//! (`XqError::Cancelled` / `XqError::DeadlineExceeded` — distinct wire
//! codes). Client disconnect sets every flag the connection has
//! registered: an abandoned request stops burning pool time within one
//! tick of the EOF.
//!
//! ## Shedding
//!
//! Admission is the pool's compare-and-swap against
//! [`ServerConfig::queue_capacity`]: a frame that arrives past the
//! high-water mark is answered `overloaded` immediately — bounded queue,
//! bounded memory, and the latency of *admitted* requests stays bounded
//! under overload (the T19 harness plots exactly that).

use crate::protocol::Frame;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use xq_core::{Budget, CancelFlag, QueryService, Request, ServeMode, ServiceError};

use cv_xtree::ArenaDoc;

/// Server configuration; see the field docs. `Default` gives two
/// workers, the VM route, an effectively unbounded queue, and no
/// documents — tests and embedders override what they need.
#[derive(Clone)]
pub struct ServerConfig {
    /// Pool worker threads.
    pub workers: usize,
    /// Pool evaluation route (VM by default).
    pub mode: ServeMode,
    /// Admission high-water mark: frames arriving while this many
    /// requests are queued (accepted, unserved) are shed with an
    /// `overloaded` response.
    pub queue_capacity: usize,
    /// Most queued frames one eval round submits as a single pool batch.
    pub batch_max: usize,
    /// Budget for connections that never identify a tenant (and for
    /// unknown tenant ids).
    pub default_budget: Budget,
    /// Per-tenant budget quotas, keyed by the `hello` frame's tenant id.
    pub tenants: HashMap<String, Budget>,
    /// The served documents, keyed by the name `query` frames cite.
    pub docs: HashMap<String, Arc<ArenaDoc>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            mode: ServeMode::default(),
            queue_capacity: usize::MAX,
            batch_max: 32,
            default_budget: Budget::default(),
            tenants: HashMap::new(),
            docs: HashMap::new(),
        }
    }
}

/// Monotonic counters the server exposes for tests and the T19 harness.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Query frames answered `ok`.
    pub served: AtomicU64,
    /// Query frames answered `overloaded` (shed at admission).
    pub shed: AtomicU64,
    /// Query frames answered `cancelled` or `deadline`.
    pub cancelled: AtomicU64,
}

/// A running front door bound to a loopback port. Dropping it stops the
/// accept loop and joins it; open connections wind down as their clients
/// disconnect.
pub struct Server {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:0` (the OS picks a free port — [`Server::addr`]
    /// says which) and starts accepting.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let service = Arc::new(
            QueryService::with_mode(config.workers, config.mode)
                .with_queue_capacity(config.queue_capacity),
        );
        let shared = Arc::new(config);
        let accept = {
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Line-delimited request/response RPC is exactly the
                    // small-write pattern Nagle + delayed ACK punish with
                    // ~40ms stalls; every response must go out now.
                    let _ = stream.set_nodelay(true);
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    let conn = Connection {
                        config: Arc::clone(&shared),
                        service: Arc::clone(&service),
                        stats: Arc::clone(&stats),
                    };
                    std::thread::spawn(move || conn.run(stream));
                }
            })
        };
        Ok(Server {
            addr,
            stats,
            service,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (always loopback, ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's monotonic counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests accepted into the pool queue but not yet being
    /// evaluated — by construction never exceeds the configured
    /// `queue_capacity` on the `try_run_batch` path.
    pub fn queue_depth(&self) -> usize {
        self.service.queue_depth()
    }

    /// Requests a pool worker is evaluating right now.
    pub fn in_flight(&self) -> usize {
        self.service.in_flight()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// One query frame on its way from the reader to the eval thread.
struct Pending {
    id: u64,
    request: Request,
    flag: CancelFlag,
}

/// Per-connection state shared by its reader and eval threads.
struct Connection {
    config: Arc<ServerConfig>,
    service: Arc<QueryService>,
    stats: Arc<ServerStats>,
}

/// The flags of every request this connection has submitted and not yet
/// answered — what `cancel` frames and disconnects trip.
type FlagRegistry = Arc<Mutex<HashMap<u64, CancelFlag>>>;

/// Writes one response line and flushes it. A client that hung up makes
/// this fail; callers treat that as "connection over" via the returned
/// bool rather than erroring, since the reader will see the EOF too.
fn write_line(writer: &Mutex<TcpStream>, frame: &Frame) -> bool {
    let mut line = frame.encode();
    line.push('\n');
    let mut w = writer.lock().expect("writer lock");
    w.write_all(line.as_bytes())
        .and_then(|()| w.flush())
        .is_ok()
}

impl Connection {
    fn run(self, stream: TcpStream) {
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        let writer = Arc::new(Mutex::new(stream));
        let flags: FlagRegistry = Arc::new(Mutex::new(HashMap::new()));
        let (queue_tx, queue_rx) = channel::<Pending>();

        let eval = {
            let conn = Connection {
                config: Arc::clone(&self.config),
                service: Arc::clone(&self.service),
                stats: Arc::clone(&self.stats),
            };
            let writer = Arc::clone(&writer);
            let flags = Arc::clone(&flags);
            std::thread::spawn(move || conn.eval_loop(queue_rx, writer, flags))
        };

        self.read_loop(reader, &writer, &flags, queue_tx);

        // Reader done (EOF, read error, or unwritable socket): cancel
        // everything still in flight so abandoned work stops at its next
        // budget tick, then let the eval thread drain and exit (the
        // queue sender is dropped by read_loop's return).
        for flag in flags.lock().expect("flag registry").values() {
            flag.cancel();
        }
        let _ = eval.join();
    }

    /// The reader: one frame per line until EOF. Returns (dropping the
    /// queue sender) when the client is gone in either direction.
    fn read_loop(
        &self,
        reader: BufReader<TcpStream>,
        writer: &Mutex<TcpStream>,
        flags: &FlagRegistry,
        queue: Sender<Pending>,
    ) {
        let mut tenant_budget = self.config.default_budget.clone();
        for line in reader.lines() {
            let Ok(line) = line else { return };
            if line.trim().is_empty() {
                continue;
            }
            let frame = match Frame::parse(&line) {
                Ok(f) => f,
                Err(e) => {
                    let resp = Frame::new()
                        .bool("ok", false)
                        .str("code", "bad_request")
                        .str("error", e);
                    if !write_line(writer, &resp) {
                        return;
                    }
                    continue;
                }
            };
            match frame.get_str("op") {
                Some("hello") => {
                    let tenant = frame.get_str("tenant").unwrap_or("default");
                    tenant_budget = self
                        .config
                        .tenants
                        .get(tenant)
                        .cloned()
                        .unwrap_or_else(|| self.config.default_budget.clone());
                    let resp = Frame::new()
                        .bool("ok", true)
                        .str("op", "hello")
                        .str("tenant", tenant);
                    if !write_line(writer, &resp) {
                        return;
                    }
                }
                Some("cancel") => {
                    let Some(id) = frame.get_uint("id") else {
                        let resp = Frame::new()
                            .bool("ok", false)
                            .str("code", "bad_request")
                            .str("error", "cancel needs a numeric id");
                        if !write_line(writer, &resp) {
                            return;
                        }
                        continue;
                    };
                    // Ack first, then trip the flag: the ack's position
                    // in the response stream is deterministic (before
                    // the cancelled query's own response), which the
                    // golden suite pins.
                    let resp = Frame::new()
                        .bool("ok", true)
                        .str("op", "cancel")
                        .uint("id", id);
                    if !write_line(writer, &resp) {
                        return;
                    }
                    if let Some(flag) = flags.lock().expect("flag registry").get(&id) {
                        flag.cancel();
                    }
                }
                Some("query") => {
                    let (id, pending) = match self.build_request(&frame, &tenant_budget) {
                        Ok(p) => p,
                        Err(resp) => {
                            if !write_line(writer, &resp) {
                                return;
                            }
                            continue;
                        }
                    };
                    // Register before enqueueing: a cancel (or EOF) that
                    // arrives while the request waits in the pool queue
                    // must still reach its flag.
                    flags
                        .lock()
                        .expect("flag registry")
                        .insert(id, pending.flag.clone());
                    if queue.send(pending).is_err() {
                        return; // eval thread gone: connection is over
                    }
                }
                _ => {
                    let resp = Frame::new()
                        .bool("ok", false)
                        .str("code", "bad_request")
                        .str("error", "op must be hello, query, or cancel");
                    if !write_line(writer, &resp) {
                        return;
                    }
                }
            }
        }
    }

    /// Turns a `query` frame into a pool request, or into the error
    /// response to send instead.
    fn build_request(
        &self,
        frame: &Frame,
        tenant_budget: &Budget,
    ) -> Result<(u64, Pending), Frame> {
        let bad = |msg: &str| {
            Frame::new()
                .bool("ok", false)
                .str("code", "bad_request")
                .str("error", msg)
        };
        let Some(id) = frame.get_uint("id") else {
            return Err(bad("query needs a numeric id"));
        };
        let Some(query) = frame.get_str("query") else {
            return Err(bad("query needs query text").uint("id", id));
        };
        let Some(doc_name) = frame.get_str("doc") else {
            return Err(bad("query needs a doc name").uint("id", id));
        };
        let Some(doc) = self.config.docs.get(doc_name) else {
            return Err(Frame::new()
                .bool("ok", false)
                .uint("id", id)
                .str("code", "unknown_doc")
                .str("error", format!("no document named {doc_name:?}")));
        };
        let flag = CancelFlag::new();
        let mut budget = tenant_budget.clone().with_cancel(flag.clone());
        if let Some(ms) = frame.get_uint("deadline_ms") {
            budget = budget.with_deadline_in(Duration::from_millis(ms));
        }
        let mut request = Request::new(query, Arc::clone(doc));
        request.budget = budget;
        Ok((id, Pending { id, request, flag }))
    }

    /// The eval thread: greedy rounds over the queued frames. Each round
    /// takes up to `batch_max` frames and submits them as one admission-
    /// controlled pool batch; responses are written in submission order.
    fn eval_loop(
        &self,
        queue: Receiver<Pending>,
        writer: Arc<Mutex<TcpStream>>,
        flags: FlagRegistry,
    ) {
        loop {
            // Block for the round's first frame, then drain whatever
            // else has already arrived — pipelined clients batch, serial
            // clients get per-frame latency.
            let first = match queue.recv() {
                Ok(p) => p,
                Err(_) => return, // reader gone, queue drained
            };
            let mut round = vec![first];
            while round.len() < self.config.batch_max.max(1) {
                match queue.try_recv() {
                    Ok(p) => round.push(p),
                    Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                }
            }
            let requests: Vec<Request> = round.iter().map(|p| p.request.clone()).collect();
            let results = self.service.try_run_batch(requests);
            for (pending, result) in round.iter().zip(results) {
                flags.lock().expect("flag registry").remove(&pending.id);
                let resp = self.render(pending.id, result);
                if !write_line(&writer, &resp) {
                    return; // client hung up; reader sees it too
                }
            }
        }
    }

    /// Maps a pool result to its wire frame, bumping the stats counters.
    fn render(&self, id: u64, result: Result<String, ServiceError>) -> Frame {
        match result {
            Ok(xml) => {
                self.stats.served.fetch_add(1, Ordering::Relaxed);
                Frame::new()
                    .bool("ok", true)
                    .uint("id", id)
                    .str("result", xml)
            }
            Err(e) => {
                let code = match &e {
                    ServiceError::Parse(_) => "parse",
                    ServiceError::Eval(_) => "eval",
                    ServiceError::Overloaded => "overloaded",
                    ServiceError::Cancelled => "cancelled",
                    ServiceError::DeadlineExceeded => "deadline",
                };
                match &e {
                    ServiceError::Overloaded => {
                        self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    }
                    ServiceError::Cancelled | ServiceError::DeadlineExceeded => {
                        self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                Frame::new()
                    .bool("ok", false)
                    .uint("id", id)
                    .str("code", code)
                    .str("error", e.to_string())
            }
        }
    }
}
