//! Fault-containment contracts for the supervised pool, driven through
//! the seeded registry in `xq_core::fault`:
//!
//! * a panicking evaluation is *contained* — answered
//!   [`ServiceError::Internal`] with the worker surviving;
//! * a worker lost mid-delivery is *replaced* — the supervisor joins the
//!   corpse and respawns under its restart budget;
//! * a pool that exhausts the budget *degrades* — every job still gets
//!   an answer, nothing hangs;
//! * every gauge (`queued`/`admitted`/`in_flight`) returns to zero on
//!   every one of those paths — the RAII-guard regression suite.

use std::sync::Arc;
use std::time::{Duration, Instant};
use xq_core::{Faults, PoolConfig, QueryService, Request, ServiceError};

use cv_xtree::{parse_tree, ArenaDoc};

fn doc() -> Arc<ArenaDoc> {
    Arc::new(ArenaDoc::from_tree(
        &parse_tree("<r><a/><b><k/></b><k/></r>").unwrap(),
    ))
}

fn service_with(spec: &str, seed: u64, workers: usize) -> QueryService {
    QueryService::with_config(PoolConfig {
        workers,
        faults: Some(Arc::new(Faults::from_spec(spec, seed).unwrap())),
        ..PoolConfig::default()
    })
}

/// Spins until `probe` holds (schedule-independent waiting).
fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn gauges_zero(service: &QueryService) -> bool {
    service.queue_depth() == 0 && service.admitted_depth() == 0 && service.in_flight() == 0
}

#[test]
fn contained_panic_answers_internal_and_keeps_the_worker() {
    let d = doc();
    // Exactly the first two evaluations panic; the pool must answer
    // them `Internal` and serve the rest normally, with no worker lost.
    let service = service_with("worker-panic=1x2", 7, 2);
    let got = service.run_batch((0..4).map(|_| Request::new("$root/*", d.clone())).collect());
    let internal = got
        .iter()
        .filter(|r| matches!(r, Err(ServiceError::Internal(_))))
        .count();
    let ok = got.iter().filter(|r| r.is_ok()).count();
    assert_eq!((internal, ok), (2, 2), "got {got:?}");
    assert_eq!(service.contained_panics(), 2);
    assert_eq!(service.worker_deaths(), 0, "the fence held: nobody died");
    assert_eq!(service.restarts(), 0);
    assert_eq!(service.alive_workers(), 2);
    wait_for("gauges settle", || gauges_zero(&service));
}

#[test]
fn internal_answers_carry_the_panic_message() {
    let d = doc();
    let service = service_with("worker-panic=1x1", 7, 1);
    let got = service.run_batch(vec![Request::new("$root/*", d)]);
    match &got[0] {
        Err(ServiceError::Internal(m)) => {
            assert!(m.contains("injected fault: worker-panic"), "message: {m}")
        }
        other => panic!("expected Internal, got {other:?}"),
    }
}

#[test]
fn crashed_worker_is_respawned_and_the_job_still_answered() {
    let d = doc();
    // completion-drop panics *outside* the unwind fence, mid-delivery:
    // the worker thread dies. The Delivery guard's destructor must still
    // answer the job, and the supervisor must bring the pool back to
    // strength.
    let service = service_with("completion-drop=1x1", 7, 2);
    let got = service.run_batch(vec![Request::new("$root/*", d.clone())]);
    assert!(
        matches!(&got[0], Err(ServiceError::Internal(m)) if m.contains("abandoned")),
        "the dying worker's job must be answered: {:?}",
        got[0]
    );
    // The Delivery guard answers from the unwinding thread *before* the
    // death sentinel runs, so the reply can beat the counter — wait.
    wait_for("death observed and worker respawned", || {
        service.worker_deaths() == 1 && service.restarts() == 1 && service.alive_workers() == 2
    });
    // The healed pool serves normally.
    let got = service.run_batch(vec![Request::new("$root/*", d)]);
    assert!(got[0].is_ok());
    wait_for("gauges settle", || gauges_zero(&service));
}

#[test]
fn exhausted_restart_budget_degrades_instead_of_hanging() {
    let d = doc();
    // Every delivery kills its worker; with 1 worker and a budget of 2
    // respawns, the third death leaves nobody — the supervisor must
    // switch to answering jobs itself rather than letting callers hang.
    let service = QueryService::with_config(PoolConfig {
        workers: 1,
        faults: Some(Arc::new(Faults::from_spec("completion-drop=1", 7).unwrap())),
        restart_budget: 2,
        restart_backoff: Duration::from_millis(1),
        ..PoolConfig::default()
    });
    let got = service.run_batch((0..6).map(|_| Request::new("$root/*", d.clone())).collect());
    assert_eq!(got.len(), 6, "every job answered, none hang");
    for r in &got {
        assert!(
            matches!(r, Err(ServiceError::Internal(_))),
            "collapsed pool answers Internal: {r:?}"
        );
    }
    assert_eq!(service.worker_deaths(), 3, "1 original + 2 respawns died");
    assert_eq!(service.restarts(), 2, "budget spent exactly");
    assert_eq!(service.alive_workers(), 0);
    wait_for("gauges settle", || gauges_zero(&service));
    // Drop must not hang either: the supervisor's degraded drain exits
    // when the job channel closes.
    drop(service);
}

#[test]
fn admission_slot_survives_neither_panic_nor_worker_death() {
    let d = doc();
    // The RAII regression: a worker dying between admit() and
    // completion used to leak the admission slot forever, shrinking the
    // pool's effective capacity with every crash. With capacity 1, one
    // leak would make every later try_run_batch shed.
    let service = QueryService::with_config(PoolConfig {
        workers: 1,
        faults: Some(Arc::new(
            // The first request hits *both* leak paths at once: its
            // evaluation panics (contained), and the delivery of that
            // Internal answer then panics too, killing the worker.
            Faults::from_spec("worker-panic=1x1,completion-drop=1x1", 7).unwrap(),
        )),
        ..PoolConfig::default()
    })
    .with_queue_capacity(1);
    for (round, expect) in ["panic+death", "healthy", "healthy"].iter().enumerate() {
        wait_for("pool ready", || service.alive_workers() == 1);
        let got = service.try_run_batch(vec![Request::new("$root/*", d.clone())]);
        assert!(
            !matches!(got[0], Err(ServiceError::Overloaded)),
            "round {round} ({expect}): a leaked slot would shed here: {:?}",
            got[0]
        );
        match *expect {
            "healthy" => assert!(got[0].is_ok(), "round {round}: {:?}", got[0]),
            _ => assert!(matches!(got[0], Err(ServiceError::Internal(_)))),
        }
        wait_for("admission slot released", || {
            service.admitted_depth() == 0 && gauges_zero(&service)
        });
    }
    assert_eq!(service.contained_panics(), 1);
    assert_eq!(service.worker_deaths(), 1);
    wait_for("worker respawned", || {
        service.restarts() == 1 && service.alive_workers() == 1
    });
}

#[test]
fn slow_eval_fault_delays_measurably() {
    let d = doc();
    let service = service_with("slow-eval=1@40", 7, 1);
    let start = Instant::now();
    let got = service.run_batch(vec![
        Request::new("$root/*", d.clone()),
        Request::new("$root/*", d),
    ]);
    assert!(got.iter().all(Result::is_ok));
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(80),
        "two injected 40ms delays on one worker, finished in {elapsed:?}"
    );
}

#[test]
fn same_seed_replays_the_same_outcome_sequence() {
    let d = doc();
    // One worker + sequential submission ⇒ fault draws happen in job
    // order, so the per-request outcome sequence is a pure function of
    // (spec, seed) — the replayability contract chaos debugging needs.
    let spec = "worker-panic=0.3,slow-eval=0.2@1";
    let outcomes = |seed: u64| -> Vec<bool> {
        let service = service_with(spec, seed, 1);
        (0..40)
            .map(|_| {
                let got = service.run_batch(vec![Request::new("$root/*", d.clone())]);
                got[0].is_ok()
            })
            .collect()
    };
    let a = outcomes(2005);
    let b = outcomes(2005);
    assert_eq!(a, b, "identical seed must replay identically");
    assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !*ok));
    let c = outcomes(9999);
    assert_ne!(a, c, "a different seed should explore a different path");
}
